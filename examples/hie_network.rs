//! Healthcare Information Exchange scenario — the paper's motivating
//! application (§I).
//!
//! A state-wide network of hospitals stores patient records. A patient
//! arrives unconscious at an emergency room; the attending physician
//! uses the locator service to find the hospitals holding the patient's
//! history, then retrieves the records through each hospital's access
//! control. Meanwhile a tabloid journalist scraping the public index
//! learns (almost) nothing about a celebrity patient.
//!
//! ```sh
//! cargo run --example hie_network
//! ```

use eppi::attacks::primary::expected_confidence;
use eppi::core::construct::{construct, ConstructionConfig};
use eppi::core::model::{Epsilon, OwnerId};
use eppi::index::access::{AccessPolicy, SearcherId};
use eppi::index::search::{LocatorService, ProviderEndpoint};
use eppi::index::server::PpiServer;
use eppi::index::store::LocalStore;
use eppi::workload::collections::CollectionTable;
use rand::rngs::StdRng;
use rand::SeedableRng;

const HOSPITALS: usize = 500;
const PATIENTS: usize = 2_000;
const CELEBRITY: OwnerId = OwnerId(0);
const ER_PHYSICIAN: SearcherId = SearcherId(1);
const JOURNALIST_TRIALS: usize = 5;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2014);

    // A realistic membership structure: Zipf-skewed visit histories.
    let network = CollectionTable::new(HOSPITALS, PATIENTS)
        .zipf_exponent(1.1)
        .max_frequency(25)
        .build(&mut rng);

    // Privacy degrees: the celebrity demands ε = 0.95; everyone else
    // defaults to ε = 0.4.
    let mut epsilons = vec![Epsilon::new(0.4)?; PATIENTS];
    epsilons[CELEBRITY.index()] = Epsilon::new(0.95)?;

    // Hospitals jointly construct the ε-PPI (modelled here with the
    // centralized constructor; `examples/distributed_construction.rs`
    // runs the real trusted-party-free protocol).
    let built = construct(&network, &epsilons, ConstructionConfig::default(), &mut rng)?;

    // Stand up the locator service: the index goes to an untrusted
    // third-party server; each hospital keeps its records behind its own
    // access control (the ER physician is enrolled everywhere).
    let endpoints: Vec<ProviderEndpoint> = network
        .provider_ids()
        .map(|p| {
            let mut store = LocalStore::new(p);
            for owner in network.owner_ids() {
                if network.get(p, owner) {
                    store.delegate(
                        owner,
                        epsilons[owner.index()],
                        format!("record of {owner} at {p}"),
                    );
                }
            }
            ProviderEndpoint {
                store,
                policy: AccessPolicy::allowing([ER_PHYSICIAN]),
            }
        })
        .collect();
    let service = LocatorService::new(PpiServer::new(built.index.clone()), endpoints);

    // --- The emergency search ------------------------------------------------
    let outcome = service.search(ER_PHYSICIAN, CELEBRITY);
    let true_hospitals = network.frequency(CELEBRITY);
    println!("ER physician searches for the unconscious celebrity patient:");
    println!(
        "  contacted {} hospitals, found all {} records ({} true hospitals, {} decoys)",
        outcome.providers_contacted,
        outcome.records.len(),
        outcome.true_hits,
        outcome.false_hits
    );
    assert_eq!(outcome.true_hits, true_hospitals, "recall must be 100%");

    // An unauthorized searcher gets nothing past AuthSearch.
    let snoop = service.search(SearcherId(999), CELEBRITY);
    println!(
        "  an unenrolled searcher is denied by all {} hospitals and retrieves {} records",
        snoop.denied,
        snoop.records.len()
    );
    assert!(snoop.records.is_empty());

    // --- The journalist's attack ---------------------------------------------
    println!("\njournalist scraping the public index (primary attack):");
    let conf = expected_confidence(&network, &built.index, CELEBRITY).unwrap_or(0.0);
    println!(
        "  confidence against the celebrity: {conf:.3} (bound requested: ≤ {:.3})",
        1.0 - epsilons[CELEBRITY.index()].value()
    );
    for trial in 0..JOURNALIST_TRIALS {
        let claim =
            eppi::attacks::primary::attack_owner(&network, &built.index, CELEBRITY, &mut rng)
                .expect("celebrity is indexed");
        println!(
            "  trial {trial}: accuses {} — {}",
            claim.provider,
            if claim.succeeded {
                "correct (lucky guess)"
            } else {
                "wrong"
            }
        );
    }
    println!("\nwith ε = 0.95, roughly 19 of every 20 accusations are wrong.");
    Ok(())
}
