//! The trusted-party-free construction protocol, end to end.
//!
//! Runs the paper's two-phase protocol (§IV) over a simulated provider
//! network — SecSumShare among all providers, then the CountBelow and
//! mix-decision MPC among `c = 3` coordinators — and compares its cost
//! against the pure-MPC baseline on the same (small) network.
//!
//! ```sh
//! cargo run --release --example distributed_construction
//! ```

use eppi::core::model::{Epsilon, MembershipMatrix, OwnerId, ProviderId};
use eppi::protocol::construct::{construct_distributed, ProtocolConfig};
use eppi::protocol::countbelow::Backend;
use eppi::protocol::pure_mpc::{construct_pure_mpc, PureMpcConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 60-provider network with 12 identities; identity 0 is common
    // (59 of 60 providers) and must be protected by identity mixing.
    let providers = 60usize;
    let identities = 12usize;
    let mut network = MembershipMatrix::new(providers, identities);
    for p in 0..59u32 {
        network.set(ProviderId(p), OwnerId(0), true);
    }
    for j in 1..identities {
        for k in 0..5 {
            let p = ((j * 13 + k * 7) % providers) as u32;
            network.set(ProviderId(p), OwnerId(j as u32), true);
        }
    }
    let epsilons = vec![Epsilon::new(0.6)?; identities];

    // --- ε-PPI: the MPC-reduced protocol --------------------------------------
    let config = ProtocolConfig {
        c: 3,
        backend: Backend::Threaded,
        seed: 7,
        ..ProtocolConfig::default()
    };
    let out = construct_distributed(&network, &epsilons, &config)?;

    println!("ε-PPI construction over {providers} providers, {identities} identities (c = 3):");
    println!(
        "  SecSumShare: {} rounds, {} messages, {:.1} KiB, {:.2} ms simulated",
        out.report.secsum.rounds,
        out.report.secsum.messages,
        out.report.secsum.bytes as f64 / 1024.0,
        out.report.secsum.simulated_us / 1000.0,
    );
    println!(
        "  CountBelow MPC: {} gates ({} AND), {:.1} KiB exchanged",
        out.report.count_stage.circuit.total_gates,
        out.report.count_stage.circuit.and_gates,
        out.report.count_stage.bytes as f64 / 1024.0,
    );
    println!(
        "  Mix-decision MPC: {} gates, {:.1} KiB exchanged",
        out.report.mix_stage.circuit.total_gates,
        out.report.mix_stage.bytes as f64 / 1024.0,
    );
    println!(
        "  commons found: {}, λ = {:.4}, wall {:.2} ms",
        out.common_count,
        out.lambda,
        out.report.wall.as_secs_f64() * 1e3,
    );
    assert_eq!(out.common_count, 1, "the planted common identity is found");
    assert_eq!(
        out.index.query(OwnerId(0)).len(),
        providers,
        "common identity publishes everywhere (β = 1)"
    );

    // --- Pure MPC baseline on the same network --------------------------------
    let pure = construct_pure_mpc(
        &network,
        &epsilons,
        &PureMpcConfig {
            backend: Backend::Threaded,
            seed: 7,
            ..PureMpcConfig::default()
        },
    )?;
    println!("\npure-MPC baseline (all {providers} providers in one circuit):");
    println!(
        "  circuit: {} gates ({} AND), {:.1} KiB exchanged, wall {:.2} ms",
        pure.stage.circuit.total_gates,
        pure.stage.circuit.and_gates,
        pure.stage.bytes as f64 / 1024.0,
        pure.wall.as_secs_f64() * 1e3,
    );

    let ratio = pure.stage.circuit.total_gates as f64 / out.report.circuit_size() as f64;
    println!("\nthe pure-MPC circuit is {ratio:.1}× larger — and it grows with m, while");
    println!("ε-PPI's generic-MPC part stays pinned to the c = 3 coordinators.");
    Ok(())
}
