//! The locator-service lifecycle through the paper's four operations:
//! `Delegate → ConstructPPI → QueryPPI → AuthSearch`, including what
//! happens when new delegations arrive after construction (the index is
//! static by design — and the re-publication attack shows why).
//!
//! ```sh
//! cargo run --release --example locator_lifecycle
//! ```

use eppi::attacks::refresh::IndexArchive;
use eppi::core::model::{Epsilon, OwnerId, ProviderId};
use eppi::index::access::SearcherId;
use eppi::index::network::InformationNetwork;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(99);
    let mut net = InformationNetwork::new(300);

    // --- Delegate -------------------------------------------------------
    // A patient delegates records to three hospitals with ε = 0.8.
    let alice = OwnerId(0);
    for p in [4u32, 90, 201] {
        net.delegate(
            alice,
            Epsilon::new(0.8)?,
            ProviderId(p),
            format!("visit@{p}"),
        );
    }
    // A second patient with no privacy concern.
    let bob = OwnerId(1);
    net.delegate(bob, Epsilon::new(0.0)?, ProviderId(7), "checkup");
    println!("delegations done; index stale: {}", net.is_stale());

    // --- ConstructPPI ----------------------------------------------------
    net.construct_ppi(&mut rng)?;
    println!("constructed; index stale: {}\n", net.is_stale());

    // --- QueryPPI + AuthSearch -------------------------------------------
    let candidates = net.query_ppi(alice);
    let outcome = net.auth_search(SearcherId(1), alice);
    println!(
        "QueryPPI(alice): {} candidates — AuthSearch found {} records ({} decoy contacts)",
        candidates.len(),
        outcome.records.len(),
        outcome.false_hits
    );
    assert_eq!(outcome.records.len(), 3);

    let bob_out = net.auth_search(SearcherId(1), bob);
    println!(
        "QueryPPI(bob):   {} candidates (ε = 0 ⇒ exact) — {} records",
        net.query_ppi(bob).len(),
        bob_out.records.len()
    );

    // --- A late delegation -----------------------------------------------
    let carol = OwnerId(2);
    net.delegate(carol, Epsilon::new(0.5)?, ProviderId(33), "new patient");
    println!(
        "\ncarol delegated after construction; stale: {}, QueryPPI(carol): {:?}",
        net.is_stale(),
        net.query_ppi(carol)
    );
    net.construct_ppi(&mut rng)?;
    println!(
        "after re-construction, QueryPPI(carol) finds {} candidates",
        net.query_ppi(carol).len()
    );

    // --- Why the index must stay static between real changes --------------
    // Suppose the server re-randomized alice's row on every request: an
    // archiving attacker intersects the versions.
    println!("\nre-publication attack (what the static design prevents):");
    let mut archive = IndexArchive::new();
    let matrix = net.membership_matrix();
    let eps = net.epsilon_assignment();
    for epoch in 0..5u64 {
        let mut fresh = StdRng::seed_from_u64(5000 + epoch);
        let built = eppi::core::construct::construct(
            &matrix,
            &eps,
            eppi::core::construct::ConstructionConfig::default(),
            &mut fresh,
        )?;
        archive.record(built.index);
        let conf = archive.intersection_confidence(&matrix, alice).unwrap();
        println!(
            "  after {} re-randomized epochs: intersection confidence {conf:.3}",
            epoch + 1
        );
    }
    println!("\nε-PPI publishes once and stays put — repeated queries add nothing.");
    Ok(())
}
