//! The locator-service lifecycle through the paper's four operations —
//! `Delegate → ConstructPPI → QueryPPI → AuthSearch` — extended with
//! the epoch/delta refresh path: late changes are folded in by
//! re-running the secure construction over *only* the touched columns
//! (`pending_delta → construct_delta`) and installed into a running
//! serve engine copy-on-write (`apply_delta`), while queries keep
//! flowing and untouched rows stay bit-identical (which is exactly
//! what defuses the re-publication attack shown at the end).
//!
//! ```sh
//! cargo run --release --example locator_lifecycle
//! ```

use eppi::attacks::refresh::IndexArchive;
use eppi::core::model::{Epsilon, OwnerId, ProviderId};
use eppi::index::access::SearcherId;
use eppi::index::network::InformationNetwork;
use eppi::protocol::construct::ProtocolConfig;
use eppi::protocol::epoch::{construct_delta, construct_epoch};
use eppi::serve::{ServeConfig, ServeEngine};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut net = InformationNetwork::new(300);

    // --- Delegate -------------------------------------------------------
    // A patient delegates records to three hospitals with ε = 0.8.
    let alice = OwnerId(0);
    for p in [4u32, 90, 201] {
        net.delegate(
            alice,
            Epsilon::new(0.8)?,
            ProviderId(p),
            format!("visit@{p}"),
        );
    }
    // A second patient with no privacy concern.
    let bob = OwnerId(1);
    net.delegate(bob, Epsilon::new(0.0)?, ProviderId(7), "checkup");
    println!("delegations done; index stale: {}", net.is_stale());

    // --- ConstructPPI (epoch 0) ------------------------------------------
    // The distributed, trusted-party-free construction, retaining the
    // protocol state the delta path reuses.
    let config = ProtocolConfig {
        seed: 99,
        ..ProtocolConfig::default()
    };
    let mut epoch = construct_epoch(&net.membership_matrix(), &net.epsilon_assignment(), &config)?;
    net.install_index(epoch.index().clone());
    let engine = ServeEngine::start(
        epoch.index(),
        ServeConfig {
            shards: 4,
            ..ServeConfig::default()
        },
    );
    let client = engine.client();
    println!(
        "constructed epoch {}; index stale: {}\n",
        epoch.epoch(),
        net.is_stale()
    );

    // --- QueryPPI + AuthSearch -------------------------------------------
    let candidates = client.query(alice);
    let outcome = net.auth_search(SearcherId(1), alice);
    println!(
        "QueryPPI(alice): {} candidates — AuthSearch found {} records ({} decoy contacts)",
        candidates.len(),
        outcome.records.len(),
        outcome.false_hits
    );
    assert_eq!(outcome.records.len(), 3);

    let bob_out = net.auth_search(SearcherId(1), bob);
    println!(
        "QueryPPI(bob):   {} candidates (ε = 0 ⇒ exact) — {} records",
        client.query(bob).len(),
        bob_out.records.len()
    );

    // --- Late changes: the delta refresh ----------------------------------
    // Carol arrives, and alice delegates to a fourth hospital. The
    // network aggregates both into one change batch.
    let carol = OwnerId(2);
    net.delegate(carol, Epsilon::new(0.5)?, ProviderId(33), "new patient");
    net.delegate(alice, Epsilon::new(0.8)?, ProviderId(250), "follow-up");
    let delta = net.pending_delta().expect("an installed index to refresh");
    println!(
        "\n{} columns changed of {} (stale: {}); QueryPPI(carol) pre-refresh: {:?}",
        delta.len(),
        delta.owners(),
        net.is_stale(),
        client.query(carol)
    );

    // The secure stages re-run over the 2 touched columns only; the
    // engine installs the new epoch copy-on-write while queries flow.
    let built = construct_delta(&epoch, &net.membership_matrix(), &delta)?;
    epoch = built.epoch;
    engine
        .apply_delta(epoch.index(), &delta.touched())
        .expect("delta install in lineage order");
    net.install_index(epoch.index().clone());
    println!(
        "delta epoch {} constructed over {} columns ({} MPC gates vs {} for a full rebuild); \
         QueryPPI(carol): {} candidates",
        epoch.epoch(),
        built.report.columns,
        built.report.circuit_size(),
        {
            // What a from-scratch run would have cost, for contrast.
            let full = eppi::protocol::construct::construct_distributed(
                &net.membership_matrix(),
                &net.epsilon_assignment(),
                &config,
            )?;
            full.report.circuit_size()
        },
        client.query(carol).len()
    );
    assert_eq!(net.auth_search(SearcherId(1), alice).records.len(), 4);

    // --- Why the deterministic coins matter --------------------------------
    // Suppose the refresh re-randomized every row: an archiving
    // attacker intersects the versions and alice's decoys melt away.
    println!("\nre-publication attack (what the deterministic coins prevent):");
    let mut archive = IndexArchive::new();
    let matrix = net.membership_matrix();
    let eps = net.epsilon_assignment();
    for round in 0..5u64 {
        let mut fresh = StdRng::seed_from_u64(5000 + round);
        let built = eppi::core::construct::construct(
            &matrix,
            &eps,
            eppi::core::construct::ConstructionConfig::default(),
            &mut fresh,
        )?;
        archive.record(built.index);
        let conf = archive.intersection_confidence(&matrix, alice).unwrap();
        println!(
            "  after {} re-randomized epochs: intersection confidence {conf:.3}",
            round + 1
        );
    }
    // The delta path instead keys every publication coin by
    // (seed, provider, owner): untouched cells are bit-identical across
    // epochs, so archiving delta refreshes adds nothing.
    let mut safe = IndexArchive::new();
    safe.record(epoch.index().clone());
    for round in 0..4u64 {
        net.delegate(
            bob,
            Epsilon::new(0.0)?,
            ProviderId(7 + round as u32),
            "transfer",
        );
        let delta = net.pending_delta().expect("delta");
        epoch = construct_delta(&epoch, &net.membership_matrix(), &delta)?.epoch;
        engine
            .apply_delta(epoch.index(), &delta.touched())
            .expect("delta install in lineage order");
        net.install_index(epoch.index().clone());
        safe.record(epoch.index().clone());
        let conf = safe.intersection_confidence(&matrix, alice).unwrap();
        println!(
            "  after {} delta epochs (bob churning): alice's confidence {conf:.3} — flat",
            round + 2
        );
    }
    engine.shutdown();
    println!("\nε-PPI refreshes only what changed — archived epochs add nothing.");
    Ok(())
}
