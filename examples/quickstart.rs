//! Quickstart: build an ε-PPI over a small information network, query
//! it, and verify the personalized privacy guarantee.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use eppi::core::construct::{construct, ConstructionConfig};
use eppi::core::model::{Epsilon, MembershipMatrix, OwnerId, ProviderId};
use eppi::core::policy::PolicyKind;
use eppi::core::privacy::owner_privacy;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An information network of 200 providers (hospitals) and 3 owners
    // (patients).
    let mut network = MembershipMatrix::new(200, 3);

    // Owner t0 — an average patient: visited 5 hospitals, modest
    // privacy concern (ε = 0.3 ⇒ attacker confidence bounded by 0.7).
    for p in 0..5u32 {
        network.set(ProviderId(p * 17 % 200), OwnerId(0), true);
    }
    // Owner t1 — a celebrity: visited 3 hospitals, wants strong privacy
    // (ε = 0.9 ⇒ attacker confidence bounded by 0.1).
    for p in [11u32, 42, 137] {
        network.set(ProviderId(p), OwnerId(1), true);
    }
    // Owner t2 — no privacy concern at all (ε = 0).
    network.set(ProviderId(99), OwnerId(2), true);

    let epsilons = vec![Epsilon::new(0.3)?, Epsilon::new(0.9)?, Epsilon::new(0.0)?];

    // Construct the ε-PPI with the Chernoff-bound policy (γ = 0.9):
    // each owner's false-positive rate meets their ε with ≥ 90%
    // probability (Theorem 3.1 of the paper).
    let config = ConstructionConfig {
        policy: PolicyKind::Chernoff { gamma: 0.9 },
        mixing: true,
    };
    let mut rng = StdRng::seed_from_u64(42);
    let built = construct(&network, &epsilons, config, &mut rng)?;

    println!("constructed ε-PPI over {} providers / {} owners\n", 200, 3);
    for owner in network.owner_ids() {
        let answer = built.index.query(owner);
        let privacy = owner_privacy(&network, &built.index, owner);
        println!(
            "QueryPPI({owner}): {:3} providers returned ({} true, β = {:.3})",
            answer.len(),
            privacy.true_frequency,
            built.index.betas()[owner.index()],
        );
        if let Some(conf) = privacy.attacker_confidence() {
            println!(
                "  attacker confidence {conf:.3} (requested bound ≤ {:.3}) — {}",
                1.0 - epsilons[owner.index()].value(),
                if privacy.satisfies(epsilons[owner.index()]) {
                    "satisfied"
                } else {
                    "VIOLATED"
                },
            );
        }
        // The truthful-publication rule guarantees 100% recall.
        for p in network.providers_of(owner) {
            assert!(answer.contains(&p), "recall violated for {owner}");
        }
    }

    println!("\nthe celebrity's 3 true hospitals hide among ~10× more decoys;");
    println!("the ε = 0 owner costs searchers no overhead at all.");
    Ok(())
}
