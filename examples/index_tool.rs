//! A miniature locator-service admin tool: build an index over a
//! synthetic network, persist it with the binary codec, reload it, and
//! answer queries — the operational loop of a real PPI server.
//!
//! ```sh
//! cargo run --release --example index_tool                # build + query demo
//! cargo run --release --example index_tool -- 42 17 99    # query specific owners
//! ```

use eppi::core::construct::{construct, ConstructionConfig};
use eppi::core::model::OwnerId;
use eppi::index::codec::{decode, encode};
use eppi::workload::collections::uniform_epsilons;
use eppi::workload::presets::Preset;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(1);

    // 1. Build: a Mini-preset network (250 providers, 500 owners) with
    //    the paper's uniform-ε assignment.
    let matrix = Preset::Mini.build(&mut rng);
    let epsilons = uniform_epsilons(matrix.owners(), &mut rng);
    let built = construct(&matrix, &epsilons, ConstructionConfig::default(), &mut rng)?;
    println!(
        "constructed index: {} providers × {} owners, {} published positives",
        matrix.providers(),
        matrix.owners(),
        built.index.matrix().ones()
    );

    // 2. Persist with the versioned binary codec.
    let path: PathBuf = std::env::temp_dir().join("eppi_index.bin");
    let bytes = encode(&built.index);
    std::fs::write(&path, &bytes)?;
    println!("wrote {} bytes to {}", bytes.len(), path.display());

    // 3. Reload (what the PPI server does at boot) and verify.
    let served = decode(&std::fs::read(&path)?)?;
    assert_eq!(served, built.index, "persisted index must round-trip");

    // 4. Answer queries: owners from argv, or a default sample.
    let owners: Vec<OwnerId> = {
        let args: Vec<u32> = std::env::args()
            .skip(1)
            .filter_map(|a| a.parse().ok())
            .collect();
        if args.is_empty() {
            vec![OwnerId(0), OwnerId(123), OwnerId(499)]
        } else {
            args.into_iter().map(OwnerId).collect()
        }
    };
    for owner in owners {
        if owner.index() >= served.matrix().owners() {
            println!("QueryPPI({owner}): unknown owner");
            continue;
        }
        let answer = served.query(owner);
        println!(
            "QueryPPI({owner}): {} candidate providers (ε = {:.2}, true = {})",
            answer.len(),
            epsilons[owner.index()].value(),
            matrix.frequency(owner),
        );
    }

    std::fs::remove_file(&path).ok();
    Ok(())
}
