//! Attack resistance — the Table II story, narrated.
//!
//! Builds the same network with all three PPI designs (grouping PPI,
//! SS-PPI, ε-PPI), mounts the primary and the common-identity attacks
//! against each, and prints the attacker's measured confidence.
//!
//! ```sh
//! cargo run --release --example attack_resistance
//! ```

use eppi::attacks::evaluate::evaluate;
use eppi::baselines::grouping::GroupingPpi;
use eppi::baselines::ss_ppi::SsPpi;
use eppi::core::construct::{construct, ConstructionConfig};
use eppi::core::model::{Epsilon, MembershipMatrix, OwnerId, ProviderId};
use eppi::core::privacy::PrivacyDegree;
use eppi::workload::collections::{pinned_cohorts, Cohort};
use rand::rngs::StdRng;
use rand::SeedableRng;

const PROVIDERS: usize = 600;
const REGULARS: usize = 300;
const COMMONS: usize = 4;
const EPSILON: f64 = 0.95;

fn degree(d: PrivacyDegree) -> &'static str {
    match d {
        PrivacyDegree::Unleaked => "Unleaked",
        PrivacyDegree::EpsPrivate => "ε-PRIVATE",
        PrivacyDegree::NoGuarantee => "NoGuarantee",
        PrivacyDegree::NoProtect => "NoProtect",
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2014);

    // 300 regular identities (12 providers each) + 4 common identities
    // present at every provider.
    let base = pinned_cohorts(
        PROVIDERS,
        &[Cohort {
            owners: REGULARS,
            frequency: 12,
        }],
        &mut rng,
    );
    let mut network = MembershipMatrix::new(PROVIDERS, REGULARS + COMMONS);
    for p in base.provider_ids() {
        for o in base.owner_ids() {
            if base.get(p, o) {
                network.set(p, o, true);
            }
        }
    }
    for j in REGULARS..REGULARS + COMMONS {
        for p in 0..PROVIDERS {
            network.set(ProviderId(p as u32), OwnerId(j as u32), true);
        }
    }
    let epsilons = vec![Epsilon::new(EPSILON)?; REGULARS + COMMONS];

    println!(
        "network: {PROVIDERS} providers, {} identities ({COMMONS} common), ε = {EPSILON}\n",
        REGULARS + COMMONS
    );
    println!(
        "{:<22} {:>18} {:>12} {:>18} {:>11}",
        "PPI", "primary degree", "confidence", "common-id degree", "precision"
    );

    let show = |name: &str, index, leak: Option<&[usize]>| {
        let ev = evaluate(&network, index, &epsilons, leak, 0.95, 0.15);
        println!(
            "{:<22} {:>18} {:>12.3} {:>18} {:>11}",
            name,
            degree(ev.primary_degree),
            ev.primary_mean_confidence,
            degree(ev.common_degree),
            ev.common
                .precision
                .map_or("-".to_string(), |p| format!("{p:.3}")),
        );
    };

    let grouping = GroupingPpi::construct(&network, 60, &mut rng);
    show("Grouping PPI [12,13]", grouping.index(), None);

    let ss = SsPpi::construct(&network, 60, &mut rng);
    let leak = ss.leaked_frequencies().to_vec();
    show("SS-PPI [22]", ss.index(), Some(&leak));

    let eppi = construct(&network, &epsilons, ConstructionConfig::default(), &mut rng)?;
    show("ε-PPI", &eppi.index, None);

    let nomix = construct(
        &network,
        &epsilons,
        ConstructionConfig {
            mixing: false,
            ..ConstructionConfig::default()
        },
        &mut rng,
    )?;
    show("ε-PPI (no mixing)", &nomix.index, None);

    println!("\nreading the table:");
    println!(" * grouping designs cannot honour a per-owner ε (NoGuarantee);");
    println!(" * SS-PPI leaks exact frequencies at construction time, so the");
    println!("   common-identity attacker is certain (NoProtect);");
    println!(" * ε-PPI bounds both attacks by 1 − ε — and the no-mixing ablation");
    println!("   shows the common-identity defense is exactly the mixing step.");
    Ok(())
}
