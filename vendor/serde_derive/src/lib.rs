//! No-op `Serialize`/`Deserialize` derives for the vendored serde
//! stand-in: each derive emits an empty impl of the corresponding
//! marker trait. Without syn/quote available offline, the type name is
//! recovered by scanning the raw token stream for the `struct`/`enum`
//! keyword. Generic types are rejected (none exist in this workspace).

use proc_macro::{TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}

/// Extracts the type name following `struct`/`enum`/`union`, asserting
/// the type is not generic.
fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter();
    while let Some(tree) = tokens.next() {
        if let TokenTree::Ident(ident) = &tree {
            let kw = ident.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                let name = match tokens.next() {
                    Some(TokenTree::Ident(name)) => name.to_string(),
                    other => panic!("expected type name after `{kw}`, got {other:?}"),
                };
                if let Some(TokenTree::Punct(p)) = tokens.next() {
                    assert!(
                        p.as_char() != '<',
                        "the vendored serde derive does not support generic type `{name}`"
                    );
                }
                return name;
            }
        }
    }
    panic!("no struct/enum/union found in derive input");
}
