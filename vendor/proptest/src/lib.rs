//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest 1.x surface the workspace's
//! tests use: the [`proptest!`] macro (with optional
//! `#![proptest_config(...)]`), range and [`any`] strategies, and the
//! `prop_assert*` macros. Each test body runs for a configurable number
//! of cases with inputs drawn from a deterministic per-test generator.
//! There is no shrinking: a failing case panics with the offending
//! assertion directly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod prelude {
    //! Single-import surface mirroring `proptest::prelude::*`.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

/// Per-test configuration (only case count is honored).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration with a custom case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A source of random values for one property-test argument.
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

/// Types with a whole-domain default strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen()
            }
        }
    )*};
}

impl_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64);

/// Strategy over a type's full domain.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Builds the deterministic generator for one test case.
#[doc(hidden)]
pub fn case_rng(test_name: &str, case: u64) -> StdRng {
    // FNV-1a over the test name, mixed with the case index, so each
    // property gets its own reproducible stream.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(hash ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Declares property tests: each `fn name(arg in strategy, ...)` block
/// becomes a `#[test]` running the body over many drawn cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cases = ({ let __cfg: $crate::ProptestConfig = $cfg; __cfg.cases as u64 }); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cases = ($crate::ProptestConfig::default().cases as u64); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cases = ($cases:expr);) => {};
    (cases = ($cases:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            for __case in 0..$cases {
                let mut __rng = $crate::case_rng(stringify!($name), __case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_fns! { cases = ($cases); $($rest)* }
    };
}

/// Asserts a property-test condition (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(a in 3u64..17, b in 0usize..=4, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&a));
            prop_assert!(b <= 4);
            prop_assert!((0.25..0.75).contains(&f));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Doc comments and config both parse.
        #[test]
        fn any_values_differ_across_cases(x in any::<u64>(), y in any::<u16>()) {
            prop_assert_eq!(x, x);
            prop_assert_ne!(u32::from(y), u32::MAX);
        }
    }

    #[test]
    fn case_rng_is_deterministic_per_test() {
        use rand::Rng;
        let a: u64 = super::case_rng("t", 0).gen();
        let b: u64 = super::case_rng("t", 0).gen();
        let c: u64 = super::case_rng("t", 1).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
