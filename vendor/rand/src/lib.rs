//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate reimplements exactly the subset of the rand 0.8 API the
//! workspace uses: [`Rng`] / [`RngCore`] / [`SeedableRng`], the
//! [`rngs::StdRng`] generator (xoshiro256++ here, seeded via SplitMix64),
//! and the [`seq`] helpers (`SliceRandom`, `index::sample`). Streams are
//! deterministic per seed but differ from upstream rand's ChaCha streams;
//! all in-repo tests assert distributional properties, not exact streams.

pub mod rngs;
pub mod seq;

/// The minimal core generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T` (uniform
    /// over the type for integers, `[0, 1)` for floats, fair coin for
    /// `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be constructed from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed byte array type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64
    /// (the same convention upstream rand documents).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let out = splitmix64(&mut state);
            let bytes = out.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Types samplable from their "standard" distribution (`Rng::gen`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits over [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span) as $t
            }
        }
    )*};
}

impl_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + <$t as Standard>::sample_standard(rng) * (self.end - self.start)
            }
        }
    )*};
}

impl_range_float!(f32, f64);

/// Uniform draw from `0..span` (`span > 0`) via 128-bit widening
/// multiply (Lemire reduction without the rejection loop; the residual
/// bias is < 2⁻⁶⁴·span, irrelevant for simulation workloads).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(5..17);
            assert!((5..17).contains(&v));
            let w: usize = rng.gen_range(0..=3);
            assert!(w <= 3);
            let f: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sum = 0.0;
        let n = 100_000;
        for _ in 0..n {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
