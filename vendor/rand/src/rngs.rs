//! Named generators. Only `StdRng` is provided; it is xoshiro256++
//! rather than upstream's ChaCha12, so per-seed streams differ from
//! crates.io rand while keeping equivalent statistical quality.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator (xoshiro256++).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        if s == [0; 4] {
            // xoshiro must not start from the all-zero state.
            let mut state = 0x9e37_79b9_7f4a_7c15;
            for slot in &mut s {
                *slot = crate::splitmix64(&mut state);
            }
        }
        StdRng { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_rescued() {
        let mut rng = StdRng::from_seed([0; 32]);
        assert_ne!(rng.next_u64(), 0);
    }

    #[test]
    fn low_bits_are_mixed() {
        // xoshiro256++ (unlike the ** variant's weak low bits under some
        // seeds) should have balanced parity.
        let mut rng = StdRng::seed_from_u64(42);
        let ones = (0..10_000).filter(|_| rng.next_u64() & 1 == 1).count();
        assert!((4_500..5_500).contains(&ones), "low-bit ones {ones}");
    }
}
