//! Sequence helpers: random element choice, in-place shuffling, and
//! distinct-index sampling (`rand::seq` subset).

use crate::Rng;

/// Slice extensions mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Returns a uniformly random element, or `None` for an empty slice.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.gen_range(0..=i));
        }
    }
}

/// Distinct-index sampling (`rand::seq::index` subset).
pub mod index {
    use crate::Rng;
    use std::collections::HashSet;

    /// A set of sampled indices.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct IndexVec(Vec<usize>);

    impl IndexVec {
        /// Iterates the sampled indices.
        pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
            self.0.iter().copied()
        }

        /// Number of sampled indices.
        pub fn len(&self) -> usize {
            self.0.len()
        }

        /// Whether the sample is empty.
        pub fn is_empty(&self) -> bool {
            self.0.is_empty()
        }

        /// Consumes into a plain vector.
        pub fn into_vec(self) -> Vec<usize> {
            self.0
        }
    }

    impl IntoIterator for IndexVec {
        type Item = usize;
        type IntoIter = std::vec::IntoIter<usize>;

        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    /// Samples `amount` distinct indices from `0..length`.
    ///
    /// Uses Floyd's algorithm for sparse samples and a partial
    /// Fisher–Yates shuffle for dense ones; the order of returned
    /// indices is unspecified (as upstream documents).
    ///
    /// # Panics
    ///
    /// Panics if `amount > length`.
    pub fn sample<R: Rng + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
        assert!(
            amount <= length,
            "cannot sample {amount} distinct indices from 0..{length}"
        );
        if amount * 4 <= length {
            // Floyd's combination sampling: O(amount) expected work.
            let mut chosen = HashSet::with_capacity(amount);
            let mut out = Vec::with_capacity(amount);
            for j in length - amount..length {
                let t = rng.gen_range(0..=j);
                let pick = if chosen.insert(t) { t } else { j };
                if pick != t {
                    chosen.insert(pick);
                }
                out.push(pick);
            }
            IndexVec(out)
        } else {
            let mut pool: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..length);
                pool.swap(i, j);
            }
            pool.truncate(amount);
            IndexVec(pool)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::index::sample;
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn choose_and_shuffle() {
        let mut rng = StdRng::seed_from_u64(1);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let items = [1, 2, 3];
        assert!(items.contains(items.choose(&mut rng).unwrap()));
        let mut v: Vec<u32> = (0..100).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig, "shuffle must be a permutation");
        assert_ne!(v, orig, "a 100-element shuffle staying put is ~impossible");
    }

    #[test]
    fn sample_yields_distinct_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        for (len, amt) in [(100, 5), (100, 90), (1, 1), (50, 0), (64, 64)] {
            let s = sample(&mut rng, len, amt);
            assert_eq!(s.len(), amt);
            let set: std::collections::HashSet<usize> = s.iter().collect();
            assert_eq!(set.len(), amt, "indices must be distinct");
            assert!(s.iter().all(|i| i < len));
        }
    }

    #[test]
    fn sample_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 20];
        for _ in 0..10_000 {
            for i in sample(&mut rng, 20, 3) {
                counts[i] += 1;
            }
        }
        // Each index expected 1500 times.
        for (i, &c) in counts.iter().enumerate() {
            assert!((1_200..1_800).contains(&c), "index {i}: {c}");
        }
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn oversample_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        sample(&mut rng, 3, 4);
    }
}
