//! Offline stand-in for the `criterion` crate.
//!
//! Keeps the workspace's benches compiling and runnable without
//! crates.io: [`Criterion::bench_function`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Measurement is a
//! simple calibrated loop reporting mean ns/iteration — adequate for
//! relative comparisons, with none of criterion's statistics.

use std::time::{Duration, Instant};

/// Re-export so `use criterion::black_box` keeps working.
pub use std::hint::black_box;

/// Target wall-clock spent measuring each benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Registers and immediately runs one benchmark, printing its mean
    /// iteration time.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        match b.report {
            Some((iters, elapsed)) => {
                let ns = elapsed.as_nanos() as f64 / iters.max(1) as f64;
                println!("bench {id:<48} {ns:>14.1} ns/iter ({iters} iters)");
            }
            None => println!("bench {id:<48} (no measurement)"),
        }
        self
    }
}

/// Per-benchmark measurement handle.
#[derive(Debug, Default)]
pub struct Bencher {
    report: Option<(u64, Duration)>,
}

impl Bencher {
    /// Times `routine` over a budgeted number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate: grow the batch until it is long enough to time.
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= MEASURE_BUDGET / 4 || batch >= 1 << 24 {
                self.report = Some((batch, elapsed));
                return;
            }
            batch = (batch * 4).max(batch + 1);
        }
    }

    /// Times `routine` over fresh inputs built by `setup` (setup time
    /// excluded from the measurement).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut iters: u64 = 0;
        let mut spent = Duration::ZERO;
        while spent < MEASURE_BUDGET && iters < 1 << 20 {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            spent += start.elapsed();
            iters += 1;
        }
        self.report = Some((iters, spent));
    }
}

/// Batch sizing hints (accepted for API compatibility, not used).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Declares a bench group function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut c = Criterion::default();
        let mut ran = 0u64;
        c.bench_function("smoke/iter", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
        c.bench_function("smoke/batched", |b| {
            b.iter_batched(|| 21u64, |x| x * 2, BatchSize::SmallInput)
        });
    }
}
