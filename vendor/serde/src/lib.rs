//! Offline stand-in for the `serde` crate.
//!
//! The workspace annotates its data model with
//! `#[derive(Serialize, Deserialize)]` for downstream consumers, but no
//! in-tree code performs serde serialization (the index wire format in
//! `eppi-index::codec` is hand-rolled). With crates.io unreachable this
//! vendored crate supplies just enough for those annotations to
//! compile: empty marker traits and matching no-op derive macros.

/// Marker for types declaring themselves serializable.
pub trait Serialize {}

/// Marker for types declaring themselves deserializable.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
