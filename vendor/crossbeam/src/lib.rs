//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the two facilities the workspace uses — MPMC channels
//! ([`channel`]) and scoped threads ([`thread`]) — implemented over
//! `std::sync` primitives (`Mutex` + `Condvar`, `std::thread::scope`).
//! Semantics mirror crossbeam 0.8: cloneable senders *and* receivers,
//! bounded channels that block producers when full, and disconnect
//! errors once the other side is gone.

pub mod channel;
pub mod thread;
