//! MPMC channels (`crossbeam::channel` subset): [`unbounded`],
//! [`bounded`], cloneable [`Sender`]/[`Receiver`], blocking and
//! non-blocking operations, and disconnect-aware errors.
//!
//! Built on a `Mutex<VecDeque>` with two condvars (not-empty /
//! not-full). A bounded capacity of 0 is rounded up to 1: the strict
//! rendezvous semantics of crossbeam's zero-capacity channels are not
//! reproduced (nothing in this workspace relies on them).

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when every receiver is gone; the
/// unsent message is handed back.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T> Error for SendError<T> {}

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// every sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// The channel is empty and all senders disconnected.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("receiving on an empty channel"),
            TryRecvError::Disconnected => f.write_str("receiving on a disconnected channel"),
        }
    }
}

impl Error for TryRecvError {}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The wait timed out with nothing received.
    Timeout,
    /// The channel is empty and all senders disconnected.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
            RecvTimeoutError::Disconnected => f.write_str("receiving on a disconnected channel"),
        }
    }
}

impl Error for RecvTimeoutError {}

struct State<T> {
    queue: VecDeque<T>,
    cap: Option<usize>,
    senders: usize,
    receivers: usize,
}

struct Chan<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// The sending half; cloning adds another producer.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

/// The receiving half; cloning adds another consumer.
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

/// Creates a channel with unlimited buffering.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

/// Creates a channel buffering at most `cap` messages; senders block
/// while the buffer is full. `cap == 0` is rounded up to 1.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(Some(cap.max(1)))
}

fn with_capacity<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            cap,
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            chan: Arc::clone(&chan),
        },
        Receiver { chan },
    )
}

impl<T> Sender<T> {
    /// Sends `msg`, blocking while a bounded buffer is full.
    ///
    /// # Errors
    ///
    /// Returns the message back if every receiver has been dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut state = self.chan.state.lock().expect("channel poisoned");
        loop {
            if state.receivers == 0 {
                return Err(SendError(msg));
            }
            let full = state.cap.is_some_and(|c| state.queue.len() >= c);
            if !full {
                state.queue.push_back(msg);
                drop(state);
                self.chan.not_empty.notify_one();
                return Ok(());
            }
            state = self.chan.not_full.wait(state).expect("channel poisoned");
        }
    }
}

impl<T> Receiver<T> {
    /// Receives the next message, blocking while the channel is empty.
    ///
    /// # Errors
    ///
    /// Returns [`RecvError`] once the channel is empty and every sender
    /// has been dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.chan.state.lock().expect("channel poisoned");
        loop {
            if let Some(msg) = state.queue.pop_front() {
                drop(state);
                self.chan.not_full.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.chan.not_empty.wait(state).expect("channel poisoned");
        }
    }

    /// Receives without blocking.
    ///
    /// # Errors
    ///
    /// [`TryRecvError::Empty`] when nothing is buffered,
    /// [`TryRecvError::Disconnected`] once additionally all senders are
    /// gone.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.chan.state.lock().expect("channel poisoned");
        match state.queue.pop_front() {
            Some(msg) => {
                drop(state);
                self.chan.not_full.notify_one();
                Ok(msg)
            }
            None if state.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Receives with a deadline.
    ///
    /// # Errors
    ///
    /// [`RecvTimeoutError::Timeout`] if nothing arrived in time,
    /// [`RecvTimeoutError::Disconnected`] once the channel is empty and
    /// all senders are gone.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.chan.state.lock().expect("channel poisoned");
        loop {
            if let Some(msg) = state.queue.pop_front() {
                drop(state);
                self.chan.not_full.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _) = self
                .chan
                .not_empty
                .wait_timeout(state, deadline - now)
                .expect("channel poisoned");
            state = guard;
        }
    }

    /// Number of messages currently buffered in the channel.
    pub fn len(&self) -> usize {
        self.chan
            .state
            .lock()
            .expect("channel poisoned")
            .queue
            .len()
    }

    /// Whether the channel currently buffers no messages.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocking iterator over messages until disconnect.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }
}

/// Iterator returned by [`Receiver::iter`].
#[derive(Debug)]
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.chan.state.lock().expect("channel poisoned").senders += 1;
        Sender {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.chan.state.lock().expect("channel poisoned").receivers += 1;
        Receiver {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let remaining = {
            let mut state = self.chan.state.lock().expect("channel poisoned");
            state.senders -= 1;
            state.senders
        };
        if remaining == 0 {
            self.chan.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let remaining = {
            let mut state = self.chan.state.lock().expect("channel poisoned");
            state.receivers -= 1;
            state.receivers
        };
        if remaining == 0 {
            self.chan.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn unbounded_fifo() {
        let (tx, rx) = unbounded();
        assert!(rx.is_empty());
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        assert_eq!(rx.len(), 10);
        let got: Vec<i32> = (0..10).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        assert!(rx.is_empty());
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let t = thread::spawn(move || {
            tx.send(3).unwrap(); // blocks until the main thread drains one
            drop(tx);
        });
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
        assert_eq!(rx.recv(), Err(RecvError));
        t.join().unwrap();
    }

    #[test]
    fn disconnect_errors() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));

        let (tx, rx) = unbounded::<u8>();
        tx.send(9).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(9));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn try_and_timeout_recv() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(5).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(5));
    }

    #[test]
    fn mpmc_cloned_endpoints() {
        let (tx, rx) = bounded(4);
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..100u64 {
                        tx.send(p * 100 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || rx.iter().count())
            })
            .collect();
        drop(rx);
        producers.into_iter().for_each(|t| t.join().unwrap());
        let total: usize = consumers.into_iter().map(|t| t.join().unwrap()).sum();
        assert_eq!(total, 400);
    }
}
