//! Scoped threads (`crossbeam::thread` subset) over `std::thread::scope`.
//!
//! Mirrors the crossbeam call shape: the closure passed to
//! [`Scope::spawn`] receives a `&Scope` so children can spawn siblings,
//! and [`scope`] returns a `Result` (always `Ok` here — a panicking
//! child propagates through its [`ScopedJoinHandle::join`], and an
//! unjoined panicking child aborts the scope exactly as std does).

/// A handle for spawning threads tied to the enclosing [`scope`] call.
#[derive(Debug, Clone, Copy)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// Owned handle to a scoped thread.
#[derive(Debug)]
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Waits for the thread and returns its result (`Err` if it
    /// panicked).
    pub fn join(self) -> std::thread::Result<T> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a thread inside the scope; the closure receives the scope
    /// itself, crossbeam-style.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let scope = *self;
        ScopedJoinHandle {
            inner: self.inner.spawn(move || f(&scope)),
        }
    }
}

/// Runs `f` with a scope handle; all spawned threads are joined before
/// this returns.
///
/// # Errors
///
/// Never errors in this implementation (kept as `Result` for crossbeam
/// API compatibility).
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn spawn_and_join_results() {
        let out = scope(|s| {
            let joins: Vec<_> = (0..4u64).map(|i| s.spawn(move |_| i * i)).collect();
            joins.into_iter().map(|j| j.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(out, 0 + 1 + 4 + 9);
    }

    #[test]
    fn children_can_spawn_siblings() {
        let counter = AtomicU64::new(0);
        scope(|s| {
            s.spawn(|s2| {
                counter.fetch_add(1, Ordering::Relaxed);
                s2.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                })
                .join()
                .unwrap();
            })
            .join()
            .unwrap();
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn panics_surface_via_join() {
        scope(|s| {
            let j = s.spawn(|_| panic!("child panic"));
            assert!(j.join().is_err());
        })
        .unwrap();
    }
}
