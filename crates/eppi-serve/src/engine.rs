//! The concurrent query engine: one worker thread per shard over
//! bounded channels.
//!
//! Request flow mirrors the threaded construction runtime in
//! `eppi-net::threaded` (OS threads + channels, no async runtime): a
//! [`ServeClient`] routes each `QueryPPI` to the owner's shard worker
//! through a bounded queue (back-pressure instead of unbounded memory
//! growth under overload) and blocks on a one-shot reply channel.
//! Batched requests are scattered to the involved shards and gathered
//! back in request order.
//!
//! Each worker *owns* its shard view as a plain `Arc` — the read path
//! takes no lock of any kind. A [`refresh`](ServeEngine::refresh)
//! publishes the new version to the engine's [`SnapshotCell`] and
//! enqueues an install message per worker, so in-flight queries finish
//! on the old version and later ones see the new one: readers are never
//! blocked and never observe a torn index.
//!
//! ## Telemetry
//!
//! The engine reports through [`eppi_telemetry`] (DESIGN.md §8): the
//! cumulative `serve.queries`/`serve.batches`/`serve.refreshes`
//! counters (always on — each is one relaxed atomic add, the same cost
//! as the counters they replaced), and, when
//! [`ServeConfig::telemetry`] is set, per-shard queue-depth gauges and
//! enqueue-wait / in-service / batch-size / install-lag histograms plus
//! a shutdown-drain histogram. Worker-side latency recording goes
//! through per-thread [`Recorder`]s, and each queue-depth gauge is
//! written only by its own shard worker (sampled from the channel at
//! dequeue) — the hot read path never contends on a shared cache line
//! per query. Recorders merge into the shared family on refresh, on
//! shutdown, and every [`FLUSH_EVERY`](eppi_telemetry::FLUSH_EVERY)
//! observations.

use crate::shard::{shard_of, EpochOrderError, ShardedIndex};
use crate::snapshot::SnapshotCell;
use crossbeam::channel::{bounded, Receiver, Sender};
use eppi_core::model::{OwnerId, ProviderId, PublishedIndex};
use eppi_core::rowstore::RowBackend;
use eppi_durability::serve_cache::{load_serve_snapshot, save_serve_snapshot};
use eppi_durability::{DurableStore, StoreError};
use eppi_pir::SelectionVector;
use eppi_telemetry::{Counter, Gauge, Histogram, Recorder, Registry};
use eppi_trace::{SpanCtx, SpanGuard, Tracer};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Default shard count: one worker per hardware thread (minimum 4 when
/// parallelism cannot be determined). Shared by [`ServeConfig::default`]
/// and the bench harness's paper-scale configuration.
pub fn default_shards() -> usize {
    std::thread::available_parallelism().map_or(4, |p| p.get())
}

/// Owners per base shard before the default shard count stops being
/// CPU-bound and starts scaling with the population.
const OWNERS_PER_SHARD: usize = 16_384;

/// Hard ceiling on the auto-chosen shard count — past this, more shards
/// only buy routing-table overhead on any plausible machine.
const MAX_DEFAULT_SHARDS: usize = 256;

/// Default shard count for a known owner population: at least one
/// worker per hardware thread (as [`default_shards`]), but growing with
/// the population (one shard per 16,384 owners, capped at
/// 256) so million-owner indexes don't funnel
/// through paper-scale shard counts: shards bound both the per-shard
/// rebuild unit on delta installs and the granularity of PIR scan
/// parallelism. The chosen count is observable as the `serve.shards`
/// gauge on any engine started with it.
pub fn default_shards_for(owners: usize) -> usize {
    default_shards()
        .max(owners / OWNERS_PER_SHARD)
        .min(MAX_DEFAULT_SHARDS)
}

/// Ceiling on spawned worker threads: 4× the hardware parallelism
/// (minimum 4). Workers are symmetric — every worker serves any data
/// shard via the shared snapshot, and clients route over the worker
/// pool, not the shard map — so more runnable workers than hardware
/// threads buys nothing but scheduler queueing in the latency tail.
/// Data-shard counts ([`ServeConfig::shards`] and append growth) are
/// unaffected; only thread spawning is capped.
fn worker_cap() -> usize {
    std::thread::available_parallelism().map_or(4, |p| p.get() * 4)
}

/// Engine sizing knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Number of base data shards. The data-shard count can grow past
    /// this as owners append ([`ShardMap`]). Worker threads default to
    /// one per shard but are capped at 4× the hardware parallelism —
    /// workers are symmetric, so extra runnable threads only add
    /// scheduler queueing — and serve data shards round-robin
    /// (`shard % workers`).
    ///
    /// [`ShardMap`]: crate::shard::ShardMap
    pub shards: usize,
    /// Bounded depth of each shard's request queue.
    pub queue_depth: usize,
    /// Physical row storage for the snapshots this engine serves
    /// (DESIGN.md §14). [`RowBackend::Compressed`] cuts resident memory
    /// ~10× at paper-like sparsity but cannot serve oblivious PIR
    /// scans — the private serve mode pins its replicas to
    /// [`RowBackend::Dense`] regardless of this field.
    pub backend: RowBackend,
    /// Enables per-shard latency/queue instrumentation. The cumulative
    /// counters stay on either way; disabling this removes the two
    /// `Instant::now` calls and recorder writes from the read path
    /// (measured at < 5% throughput difference — DESIGN.md §8).
    pub telemetry: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: default_shards(),
            queue_depth: 1024,
            backend: RowBackend::Dense,
            telemetry: true,
        }
    }
}

/// Cumulative engine counters, registered in the engine's telemetry
/// registry as `serve.queries`, `serve.batches`, and `serve.refreshes`
/// (relaxed atomics, monotone).
#[derive(Debug, Clone)]
pub struct ServeStats {
    queries: Arc<Counter>,
    batches: Arc<Counter>,
    batch_dupes: Arc<Counter>,
    refreshes: Arc<Counter>,
    deltas: Arc<Counter>,
    pir_scans: Arc<Counter>,
    pir_queries: Arc<Counter>,
    pir_scanned_words: Arc<Counter>,
    pir_answer_bytes: Arc<Counter>,
    pir_version_retries: Arc<Counter>,
}

impl ServeStats {
    fn register(registry: &Registry) -> Self {
        ServeStats {
            queries: registry.counter("serve.queries", &[]),
            batches: registry.counter("serve.batches", &[]),
            batch_dupes: registry.counter("serve.batch_dupes", &[]),
            refreshes: registry.counter("serve.refreshes", &[]),
            deltas: registry.counter("serve.delta_refreshes", &[]),
            pir_scans: registry.counter("pir.scans", &[]),
            pir_queries: registry.counter("pir.queries", &[]),
            pir_scanned_words: registry.counter("pir.scanned_words", &[]),
            pir_answer_bytes: registry.counter("pir.answer_bytes", &[]),
            pir_version_retries: registry.counter("pir.version_retries", &[]),
        }
    }

    /// Total single queries answered (batch members included).
    pub fn queries(&self) -> u64 {
        self.queries.get()
    }

    /// Total batch requests answered.
    pub fn batches(&self) -> u64 {
        self.batches.get()
    }

    /// Snapshot refreshes installed (counted once per publication, not
    /// per shard; delta installs included).
    pub fn refreshes(&self) -> u64 {
        self.refreshes.get()
    }

    /// The subset of refreshes installed through the copy-on-write
    /// delta path ([`ServeEngine::apply_delta`]).
    pub fn delta_refreshes(&self) -> u64 {
        self.deltas.get()
    }

    /// Duplicate batch members answered from an already-resolved row
    /// instead of a second row read (batch coalescing).
    pub fn batch_dupes(&self) -> u64 {
        self.batch_dupes.get()
    }

    /// Oblivious scan passes served (one per [`ServeEngine::pir_submit`],
    /// however many query vectors it carried).
    pub fn pir_scans(&self) -> u64 {
        self.pir_scans.get()
    }

    /// PIR query vectors answered (batch members included).
    pub fn pir_queries(&self) -> u64 {
        self.pir_queries.get()
    }

    /// `u64` words XOR-scanned by PIR jobs — moves by exactly
    /// `owners × words_per_row` per scan pass, whatever the queries
    /// select (the obliviousness invariant, asserted by tests) and
    /// however many vectors the pass serves (the batch kernel reads
    /// each data word once per pass — the amortization lever).
    pub fn pir_scanned_words(&self) -> u64 {
        self.pir_scanned_words.get()
    }

    /// Bytes of PIR answer shares returned to clients.
    pub fn pir_answer_bytes(&self) -> u64 {
        self.pir_answer_bytes.get()
    }

    /// Private-client retries forced by the two replicas answering from
    /// different snapshot versions (an install raced the scatter).
    pub fn pir_version_retries(&self) -> u64 {
        self.pir_version_retries.get()
    }

    /// Counts one replica-version mismatch retry (private client side).
    pub(crate) fn note_version_retry(&self) {
        self.pir_version_retries.inc();
    }
}

enum Job {
    Query {
        owner: OwnerId,
        /// Enqueue time, for the `serve.enqueue_wait_ns` histogram.
        at: Instant,
        /// Trace context of the submitting request ([`SpanCtx::NONE`]
        /// when untraced — the worker then records nothing).
        ctx: SpanCtx,
        reply: Sender<Vec<ProviderId>>,
    },
    Batch {
        /// `(position in the caller's batch, owner)` pairs for this shard.
        entries: Vec<(u32, OwnerId)>,
        at: Instant,
        ctx: SpanCtx,
        reply: Sender<Vec<(u32, Vec<ProviderId>)>>,
    },
    /// Obliviously XOR-scan one shard of a pinned snapshot for a batch
    /// of PIR selection vectors. The job carries the snapshot so every
    /// shard of one submission scans the *same* version even while an
    /// install is racing through the workers — the cross-shard XOR of
    /// partial shares is only meaningful over a single version.
    PirScan {
        snapshot: Arc<ShardedIndex>,
        shard: usize,
        queries: Arc<Vec<SelectionVector>>,
        /// Scatter-span context the per-shard scan spans hang under.
        ctx: SpanCtx,
        /// One partial answer share per query vector.
        reply: Sender<Vec<Vec<u64>>>,
    },
    Install {
        view: Arc<ShardedIndex>,
        /// Publication time, for the `serve.install_lag_ns` histogram.
        published_at: Instant,
    },
    Shutdown,
}

/// Everything one worker thread needs besides its receiver and view.
struct WorkerCtx {
    stats: ServeStats,
    telemetry: bool,
    tracer: Tracer,
    queue_depth: Arc<Gauge>,
    install_lag: Arc<Histogram>,
    enqueue_wait: Recorder,
    service: Recorder,
    batch_size: Recorder,
}

/// The sharded serving engine; owns the worker threads.
///
/// Shutdown is idempotent: [`shutdown`](Self::shutdown) may be called
/// any number of times, and dropping the engine (with or without a
/// prior explicit shutdown) performs the same ordered drain — queued
/// queries are answered, workers joined. Clients outlive the engine
/// safely and fail fast (empty answers) once it is gone.
///
/// ```
/// use eppi_core::model::{MembershipMatrix, OwnerId, ProviderId, PublishedIndex};
/// use eppi_serve::{ServeConfig, ServeEngine};
///
/// let mut m = MembershipMatrix::new(4, 2);
/// m.set(ProviderId(1), OwnerId(0), true);
/// let index = PublishedIndex::new(m, vec![0.0, 0.0]);
/// let config = ServeConfig { shards: 2, queue_depth: 16, ..ServeConfig::default() };
/// let engine = ServeEngine::start(&index, config);
/// let client = engine.client();
/// assert_eq!(client.query(OwnerId(0)), vec![ProviderId(1)]);
/// assert_eq!(client.query_batch(&[OwnerId(1), OwnerId(0)]).len(), 2);
/// engine.shutdown();
/// ```
#[derive(Debug)]
pub struct ServeEngine {
    senders: Vec<Sender<Job>>,
    /// Drained by the first shutdown (explicit or via drop).
    workers: Mutex<Vec<JoinHandle<()>>>,
    snapshot: Arc<SnapshotCell<ShardedIndex>>,
    stats: ServeStats,
    version: AtomicU64,
    /// Serializes snapshot installs ([`refresh`](Self::refresh) /
    /// [`apply_delta`](Self::apply_delta)): concurrent installers could
    /// otherwise pair a freshly drawn version with a stale snapshot and
    /// publish out of epoch order. The read path never takes it.
    install: Mutex<()>,
    backend: RowBackend,
    telemetry: bool,
    tracer: Tracer,
    shutdown_drain: Arc<Histogram>,
    /// Resident bytes of the serving snapshot's row storage, labeled by
    /// backend — re-set on every publish so the ~10× compressed-memory
    /// claim is a readable gauge, not an inference.
    index_bytes: Arc<Gauge>,
    /// Data shards in the serving snapshot (base + append); the fixed
    /// worker count is the `serve.shards` gauge.
    data_shards: Arc<Gauge>,
}

impl ServeEngine {
    /// Shards `index` and spawns one worker thread per shard (capped
    /// at 4× the hardware parallelism), reporting into the
    /// process-global telemetry registry.
    ///
    /// # Panics
    ///
    /// Panics if `config.shards == 0`.
    pub fn start(index: &PublishedIndex, config: ServeConfig) -> Self {
        Self::start_with_registry(index, config, eppi_telemetry::global())
    }

    /// [`start`](Self::start) reporting into a caller-owned registry —
    /// used by the bench harness so each run snapshots only its own
    /// metrics.
    ///
    /// # Panics
    ///
    /// Panics if `config.shards == 0`.
    pub fn start_with_registry(
        index: &PublishedIndex,
        config: ServeConfig,
        registry: &Registry,
    ) -> Self {
        Self::start_traced(index, config, registry, Tracer::disabled())
    }

    /// [`start_with_registry`](Self::start_with_registry) with causal
    /// span tracing: requests submitted through this engine's clients
    /// open root spans, and shard workers hang per-job child spans
    /// under whatever [`SpanCtx`] arrives in the job — so traced
    /// requests produce complete cross-thread span trees while
    /// untraced ones (a [`Tracer::disabled`] handle, or jobs carrying
    /// [`SpanCtx::NONE`]) record nothing.
    ///
    /// # Panics
    ///
    /// Panics if `config.shards == 0`.
    pub fn start_traced(
        index: &PublishedIndex,
        config: ServeConfig,
        registry: &Registry,
        tracer: Tracer,
    ) -> Self {
        let initial = Arc::new(ShardedIndex::from_index_with(
            index,
            config.shards,
            config.backend,
            0,
        ));
        Self::boot(initial, config, registry, tracer)
    }

    /// Common boot tail: wraps an already-built serving layout in the
    /// snapshot cell, registers telemetry, and spawns the shard worker
    /// pool. The engine's version counter starts at the layout's own
    /// snapshot version (0 for cold boots, the cached version for warm
    /// ones).
    fn boot(
        initial: Arc<ShardedIndex>,
        config: ServeConfig,
        registry: &Registry,
        tracer: Tracer,
    ) -> Self {
        let snapshot = Arc::new(SnapshotCell::new(Arc::clone(&initial)));
        let stats = ServeStats::register(registry);
        let backend_labels: &[(&str, &str)] = &[("backend", config.backend.name())];
        let index_bytes = registry.gauge("serve.index_bytes", backend_labels);
        index_bytes.set(initial.resident_bytes() as i64);
        let data_shards = registry.gauge("serve.data_shards", &[]);
        data_shards.set(initial.shard_count() as i64);
        let worker_count = config.shards.min(worker_cap());
        registry.gauge("serve.shards", &[]).set(worker_count as i64);
        let mut senders = Vec::with_capacity(worker_count);
        let mut workers = Vec::with_capacity(worker_count);
        for shard in 0..worker_count {
            let label = shard.to_string();
            let labels: &[(&str, &str)] = &[("shard", &label)];
            let ctx = WorkerCtx {
                stats: stats.clone(),
                telemetry: config.telemetry,
                tracer: tracer.clone(),
                queue_depth: registry.gauge("serve.queue_depth", labels),
                install_lag: registry.histogram("serve.install_lag_ns", labels),
                enqueue_wait: registry.recorder("serve.enqueue_wait_ns", labels),
                service: registry.recorder("serve.service_ns", labels),
                batch_size: registry.recorder("serve.batch_size", labels),
            };
            let (tx, rx) = bounded(config.queue_depth.max(1));
            senders.push(tx);
            let view = Arc::clone(&initial);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("eppi-serve-{shard}"))
                    .spawn(move || worker_loop(rx, view, ctx))
                    .expect("spawn shard worker"),
            );
        }
        ServeEngine {
            senders,
            workers: Mutex::new(workers),
            snapshot,
            stats,
            version: AtomicU64::new(initial.version()),
            install: Mutex::new(()),
            backend: config.backend,
            telemetry: config.telemetry,
            tracer,
            shutdown_drain: registry.histogram("serve.shutdown_drain_ns", &[]),
            index_bytes,
            data_shards,
        }
    }

    /// Warm serve boot: starts serving the head of a recovered
    /// [`DurableStore`] directly — the recovered epoch goes live with
    /// no reconstruction and no MPC re-run (reporting into the
    /// process-global telemetry registry).
    ///
    /// When the store directory holds a valid EPPI v3 serve cache (see
    /// [`persist_serve_cache`](Self::persist_serve_cache)) stamped with
    /// the head's epoch and matching this config's backend and shard
    /// count, the cached layout is restored as-is and the re-shard
    /// (transpose, routing, row re-encoding) is skipped entirely. The
    /// cache is advisory: any mismatch, corruption, or restore failure
    /// falls back to the cold path. The chosen path is visible as the
    /// `serve.boots{mode="warm"|"cold"}` counter.
    ///
    /// # Panics
    ///
    /// Panics if `config.shards == 0`.
    pub fn from_store(store: &DurableStore, config: ServeConfig) -> Self {
        Self::from_store_with_registry(store, config, eppi_telemetry::global())
    }

    /// [`from_store`](Self::from_store) reporting into a caller-owned
    /// registry.
    ///
    /// # Panics
    ///
    /// Panics if `config.shards == 0`.
    pub fn from_store_with_registry(
        store: &DurableStore,
        config: ServeConfig,
        registry: &Registry,
    ) -> Self {
        Self::from_store_traced(store, config, registry, Tracer::disabled())
    }

    /// [`from_store_with_registry`](Self::from_store_with_registry)
    /// with causal span tracing (see
    /// [`start_traced`](Self::start_traced)).
    ///
    /// # Panics
    ///
    /// Panics if `config.shards == 0`.
    pub fn from_store_traced(
        store: &DurableStore,
        config: ServeConfig,
        registry: &Registry,
        tracer: Tracer,
    ) -> Self {
        assert!(config.shards > 0, "at least one shard required");
        let head = store.head();
        if let Ok(Some(record)) = load_serve_snapshot(store.dir()) {
            // The cache must describe exactly the layout this engine
            // would rebuild: same lineage position (head epoch), same
            // storage backend, same base shard count, and the same
            // published contents. Anything else is a stale or foreign
            // cache — fall back to the cold re-shard.
            let index = head.index();
            let usable = record.snapshot_version == head.epoch()
                && record.backend == config.backend
                && record.base_shards as usize == config.shards
                && record.providers as usize == index.matrix().providers()
                && record.betas == index.betas();
            if usable {
                if let Ok(restored) = ShardedIndex::from_record(&record) {
                    registry.counter("serve.boots", &[("mode", "warm")]).inc();
                    return Self::boot(Arc::new(restored), config, registry, tracer);
                }
            }
        }
        registry.counter("serve.boots", &[("mode", "cold")]).inc();
        Self::start_traced(head.index(), config, registry, tracer)
    }

    /// Persists the currently serving layout as the store directory's
    /// EPPI v3 serve cache, stamped with the store head's epoch, so the
    /// next [`from_store`](Self::from_store) at this lineage position
    /// boots warm. Call it when the serving snapshot reflects the store
    /// head (e.g. right after checkpointing the epoch the engine
    /// serves); a later head moves the lineage past the stamp and the
    /// cache reads as stale. Returns the encoded byte count.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if writing the cache file fails; the previous
    /// cache (if any) survives unless the atomic replace completed.
    pub fn persist_serve_cache(&self, store: &DurableStore) -> Result<u64, StoreError> {
        let mut record = self.current().to_record();
        record.snapshot_version = store.head().epoch();
        save_serve_snapshot(store.dir(), &record)
    }

    /// A cloneable client handle; any number of threads may hold one.
    pub fn client(&self) -> ServeClient {
        ServeClient {
            senders: self.senders.clone(),
            telemetry: self.telemetry,
            epoch: Instant::now(),
            tracer: self.tracer.clone(),
        }
    }

    /// The engine's tracer ([`Tracer::disabled`] unless started via
    /// [`start_traced`](Self::start_traced)).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Number of worker threads (base shards at start, capped at 4×
    /// the hardware parallelism).
    pub fn shards(&self) -> usize {
        self.senders.len()
    }

    /// Data shards resident in the current snapshot (base + append);
    /// can exceed [`shards`](Self::shards) after appending growth.
    pub fn data_shards(&self) -> usize {
        self.current().shard_count()
    }

    /// The physical row backend this engine's snapshots use.
    pub fn backend(&self) -> RowBackend {
        self.backend
    }

    /// Engine counters.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// The latest installed index version (also readable without the
    /// engine via [`current`](Self::current)).
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::SeqCst)
    }

    /// The latest published sharded snapshot (lock-free read).
    pub fn current(&self) -> Arc<ShardedIndex> {
        self.snapshot.load()
    }

    /// Installs a re-published index: stamps the next version, shards
    /// it, publishes the snapshot, and hands every worker the new view.
    /// Readers keep executing throughout; queries already queued finish
    /// against whichever version their worker holds at dequeue time.
    pub fn refresh(&self, index: &PublishedIndex) {
        let _guard = self.install.lock().expect("install lock poisoned");
        let version = self.version.load(Ordering::SeqCst) + 1;
        let sharded = Arc::new(ShardedIndex::from_index_with(
            index,
            self.senders.len(),
            self.backend,
            version,
        ));
        self.publish(sharded, version);
        self.stats.refreshes.inc();
    }

    /// Publishes an already-built snapshot: snapshot cell first, then
    /// one install message per worker. Callers hold the install lock.
    fn publish(&self, sharded: Arc<ShardedIndex>, version: u64) {
        self.index_bytes.set(sharded.resident_bytes() as i64);
        self.data_shards.set(sharded.shard_count() as i64);
        self.snapshot.store(Arc::clone(&sharded));
        self.version.store(version, Ordering::SeqCst);
        let published_at = Instant::now();
        for tx in &self.senders {
            // A worker gone mid-shutdown just misses the update.
            let _ = tx.send(Job::Install {
                view: Arc::clone(&sharded),
                published_at,
            });
        }
    }

    /// Installs the next epoch incrementally: builds the new snapshot
    /// copy-on-write from the current one
    /// ([`ShardedIndex::apply_delta`] — shards without a touched owner
    /// share their row words with the previous snapshot), then installs
    /// it exactly like [`refresh`](Self::refresh): through the
    /// [`SnapshotCell`] plus one install message per worker, with
    /// readers never blocked and in-flight queries finishing on the
    /// version their worker holds at dequeue time. Installs are
    /// serialized on the engine's install lock, so the delta always
    /// builds on the snapshot it is stamped against. Returns the
    /// installed version.
    ///
    /// # Errors
    ///
    /// Surfaces [`EpochOrderError`] from
    /// [`ShardedIndex::apply_delta`] when the delta does not extend the
    /// current snapshot by exactly one version; nothing is installed
    /// and the current snapshot keeps serving.
    ///
    /// # Panics
    ///
    /// Panics under the same dimension conditions as
    /// [`ShardedIndex::apply_delta`].
    pub fn apply_delta(
        &self,
        index: &PublishedIndex,
        touched: &[OwnerId],
    ) -> Result<u64, EpochOrderError> {
        let _guard = self.install.lock().expect("install lock poisoned");
        let version = self.version.load(Ordering::SeqCst) + 1;
        let sharded = Arc::new(self.current().apply_delta(index, touched, version)?);
        self.publish(sharded, version);
        self.stats.refreshes.inc();
        self.stats.deltas.inc();
        Ok(version)
    }

    /// Submits a batch of PIR selection vectors for an oblivious scan
    /// and returns a handle to gather the answer shares.
    ///
    /// The scan is pinned to one snapshot: `pir_submit` loads the
    /// current [`SnapshotCell`] value once and ships that `Arc` inside
    /// every per-shard job, so all shards scan the *same* version even
    /// while a [`refresh`](Self::refresh) or
    /// [`apply_delta`](Self::apply_delta) races through the worker
    /// queues. Every shard is always scanned — the set of jobs, their
    /// sizes, and the scan work per job depend only on the snapshot
    /// shape, never on which owners the vectors select (this server's
    /// whole transcript is query-independent).
    ///
    /// Vectors shorter or longer than the snapshot's owner count are
    /// served as-is: rows outside a vector's span contribute nothing
    /// ([`SelectionVector::mask`] is 0 out of range), which keeps a
    /// client that generated its vectors against a slightly stale owner
    /// count consistent across both replicas of a 2-server deployment.
    pub fn pir_submit(&self, queries: Arc<Vec<SelectionVector>>) -> PendingPir {
        self.pir_submit_traced(queries, SpanCtx::NONE)
    }

    /// [`pir_submit`](Self::pir_submit) under a trace: opens a
    /// `pir.scatter` span (closed when [`PendingPir::gather`] returns,
    /// so it covers the whole replica round trip) whose children are
    /// the per-shard `pir.scan` worker spans. The scatter span's
    /// payload is the answer-share byte count — like every payload on
    /// the private path, a function of the snapshot shape only, never
    /// of what the vectors select.
    pub fn pir_submit_traced(
        &self,
        queries: Arc<Vec<SelectionVector>>,
        parent: SpanCtx,
    ) -> PendingPir {
        let span = self.tracer.child(parent, "pir.scatter");
        let scan_ctx = span.ctx();
        let snapshot = self.current();
        self.stats.pir_scans.inc();
        self.stats.pir_queries.add(queries.len() as u64);
        // One job per *data* shard of the pinned snapshot — append
        // shards from owner growth included — routed round-robin onto
        // the fixed worker pool. The job set is a function of the
        // snapshot shape alone, so the scatter stays query-independent.
        let data_shards = snapshot.shard_count();
        let workers = self.senders.len();
        let mut replies = Vec::with_capacity(data_shards);
        for shard in 0..data_shards {
            let (reply, rx) = bounded(1);
            let job = Job::PirScan {
                snapshot: Arc::clone(&snapshot),
                shard,
                queries: Arc::clone(&queries),
                ctx: scan_ctx,
                reply,
            };
            if self.senders[shard % workers].send(job).is_ok() {
                replies.push(rx);
            }
        }
        PendingPir {
            snapshot,
            expected: data_shards,
            queries: queries.len(),
            replies,
            stats: self.stats.clone(),
            tracer: self.tracer.clone(),
            span: Some(span),
        }
    }

    /// Stops all workers and joins them. Queued queries are answered
    /// first; clients created from this engine fail fast afterwards.
    /// Idempotent: later calls (and the eventual drop) are no-ops.
    pub fn shutdown(&self) {
        let mut workers = self.workers.lock().expect("worker list poisoned");
        if workers.is_empty() {
            return;
        }
        let drain_started = Instant::now();
        for tx in &self.senders {
            let _ = tx.send(Job::Shutdown);
        }
        for worker in workers.drain(..) {
            let _ = worker.join();
        }
        if self.telemetry {
            self.shutdown_drain
                .record(drain_started.elapsed().as_nanos() as u64);
        }
    }
}

impl Drop for ServeEngine {
    /// Drops perform the same ordered drain as [`shutdown`](Self::shutdown)
    /// (and are a no-op after an explicit shutdown).
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(rx: Receiver<Job>, mut view: Arc<ShardedIndex>, mut ctx: WorkerCtx) {
    while let Ok(job) = rx.recv() {
        match job {
            Job::Query {
                owner,
                at,
                ctx: span_ctx,
                reply,
            } => {
                let started = if ctx.telemetry {
                    // This worker is the gauge's only writer: the store
                    // stays in its own cache line, uncontended.
                    ctx.queue_depth.set(rx.len() as i64);
                    let now = Instant::now();
                    ctx.enqueue_wait
                        .record(now.saturating_duration_since(at).as_nanos() as u64);
                    Some(now)
                } else {
                    None
                };
                ctx.stats.queries.inc();
                let result = {
                    let mut span = ctx.tracer.child(span_ctx, "serve.shard_query");
                    let result = view.try_query(owner).unwrap_or_default();
                    span.set_payload(result.len() as u64);
                    result
                };
                if let Some(started) = started {
                    ctx.service.record(started.elapsed().as_nanos() as u64);
                }
                let _ = reply.send(result);
            }
            Job::Batch {
                mut entries,
                at,
                ctx: span_ctx,
                reply,
            } => {
                let started = if ctx.telemetry {
                    ctx.queue_depth.set(rx.len() as i64);
                    let now = Instant::now();
                    ctx.enqueue_wait
                        .record(now.saturating_duration_since(at).as_nanos() as u64);
                    ctx.batch_size.record(entries.len() as u64);
                    Some(now)
                } else {
                    None
                };
                ctx.stats.queries.add(entries.len() as u64);
                ctx.stats.batches.inc();
                let mut span = ctx.tracer.child(span_ctx, "serve.shard_batch");
                span.set_payload(entries.len() as u64);
                // Coalesce duplicate owners: sort by owner so repeats are
                // adjacent, resolve each unique row once, and answer the
                // repeats from the previous result. The reply carries
                // batch positions, so the reordering is invisible to the
                // gathering client.
                entries.sort_unstable_by_key(|&(_, owner)| owner.index());
                let mut results: Vec<(u32, Vec<ProviderId>)> = Vec::with_capacity(entries.len());
                let mut last_owner: Option<OwnerId> = None;
                let mut dupes = 0u64;
                for (pos, owner) in entries {
                    if last_owner == Some(owner) {
                        dupes += 1;
                        let prev = results.last().map(|(_, r)| r.clone()).unwrap_or_default();
                        results.push((pos, prev));
                    } else {
                        last_owner = Some(owner);
                        results.push((pos, view.try_query(owner).unwrap_or_default()));
                    }
                }
                if dupes > 0 {
                    ctx.stats.batch_dupes.add(dupes);
                }
                // End the span before replying so the gathering client
                // observes a complete trace.
                drop(span);
                if let Some(started) = started {
                    ctx.service.record(started.elapsed().as_nanos() as u64);
                }
                let _ = reply.send(results);
            }
            Job::PirScan {
                snapshot,
                shard,
                queries,
                ctx: span_ctx,
                reply,
            } => {
                let wpr = snapshot.words_per_row();
                let mut accs = vec![vec![0u64; wpr]; queries.len()];
                let words = {
                    // The scan span's payload is the words scanned —
                    // `rows × words_per_row` for this shard whatever
                    // the vectors select, so a traced private query
                    // leaks nothing the scan-volume counters don't.
                    let mut span = ctx.tracer.child(span_ctx, "pir.scan");
                    let words = snapshot.pir_scan_shard(shard, &queries, &mut accs);
                    span.set_payload(words);
                    words
                };
                ctx.stats.pir_scanned_words.add(words);
                let _ = reply.send(accs);
            }
            Job::Install {
                view: v,
                published_at,
            } => {
                view = v;
                if ctx.telemetry {
                    ctx.install_lag
                        .record(published_at.elapsed().as_nanos() as u64);
                    // Make the just-served traffic visible to snapshots
                    // taken after the refresh.
                    ctx.enqueue_wait.flush();
                    ctx.service.flush();
                    ctx.batch_size.flush();
                }
            }
            Job::Shutdown => {
                if ctx.telemetry {
                    // The queue is drained; leave the truthful level.
                    ctx.queue_depth.set(0);
                }
                break;
            }
        }
    }
    // Recorder drops flush the tail observations.
}

/// An in-flight PIR scan: one receiver per shard worker, gathered into
/// the server's full answer shares by [`gather`](Self::gather).
#[derive(Debug)]
pub struct PendingPir {
    snapshot: Arc<ShardedIndex>,
    /// Shards the scan was supposed to reach.
    expected: usize,
    /// Query vectors in the submission.
    queries: usize,
    replies: Vec<Receiver<Vec<Vec<u64>>>>,
    stats: ServeStats,
    tracer: Tracer,
    /// The `pir.scatter` span, closed when the gather completes.
    span: Option<SpanGuard>,
}

impl PendingPir {
    /// Blocks for every shard's partial shares and XORs them into the
    /// server's answer (one share per submitted vector). `None` if any
    /// shard worker was gone or died mid-scan (engine shut down) — the
    /// PIR analogue of the plaintext client's fail-fast empty answer.
    pub fn gather(self) -> Option<PirServerAnswer> {
        let PendingPir {
            snapshot,
            expected,
            queries,
            replies,
            stats,
            tracer,
            mut span,
        } = self;
        if replies.len() != expected {
            return None;
        }
        let scatter_ctx = span.as_ref().map_or(SpanCtx::NONE, SpanGuard::ctx);
        let gather_span = tracer.child(scatter_ctx, "pir.gather");
        let wpr = snapshot.words_per_row();
        let mut shares = vec![vec![0u64; wpr]; queries];
        for rx in replies {
            let partials = rx.recv().ok()?;
            for (share, partial) in shares.iter_mut().zip(partials) {
                for (s, p) in share.iter_mut().zip(partial) {
                    *s ^= p;
                }
            }
        }
        drop(gather_span);
        let answer_bytes = (queries * wpr * 8) as u64;
        stats.pir_answer_bytes.add(answer_bytes);
        if let Some(span) = &mut span {
            span.set_payload(answer_bytes);
        }
        Some(PirServerAnswer {
            version: snapshot.version(),
            rows: snapshot.owners(),
            providers: snapshot.providers(),
            shares,
        })
    }
}

/// One server's complete answer to a PIR submission: its XOR share of
/// each requested row, stamped with the snapshot version it was scanned
/// against. A client XORs the `shares` of the two replicas positionwise
/// to recover the selected rows — but only when both answers carry the
/// same `version` (otherwise it regenerates and retries).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PirServerAnswer {
    /// Snapshot version the scan ran against.
    pub version: u64,
    /// Owner rows resident in that snapshot.
    pub rows: usize,
    /// Provider universe size (decodes the recombined row).
    pub providers: usize,
    /// One answer share per submitted selection vector, each
    /// `words_per_row` words.
    pub shares: Vec<Vec<u64>>,
}

/// A handle for submitting queries; cheap to clone and share.
#[derive(Debug, Clone)]
pub struct ServeClient {
    senders: Vec<Sender<Job>>,
    telemetry: bool,
    /// Placeholder enqueue stamp when telemetry is off (skips the
    /// clock read on the submit path).
    epoch: Instant,
    /// Roots a span per request when the engine was started traced.
    tracer: Tracer,
}

impl ServeClient {
    /// The enqueue stamp for a job submitted now.
    fn stamp(&self) -> Instant {
        if self.telemetry {
            Instant::now()
        } else {
            self.epoch
        }
    }

    /// Evaluates `QueryPPI(owner)` on the owner's shard. Unknown owners
    /// (beyond the current index) and a shut-down engine both answer
    /// with the empty candidate list, matching an empty `PpiServer`.
    pub fn query(&self, owner: OwnerId) -> Vec<ProviderId> {
        let mut span = self.tracer.root("serve.query");
        let (reply, rx) = bounded(1);
        let shard = shard_of(owner, self.senders.len());
        let job = Job::Query {
            owner,
            at: self.stamp(),
            ctx: span.ctx(),
            reply,
        };
        if self.senders[shard].send(job).is_err() {
            return Vec::new();
        }
        let result = rx.recv().unwrap_or_default();
        span.set_payload(result.len() as u64);
        result
    }

    /// Evaluates a batch of queries: scatters the owners to their
    /// shards, gathers the per-shard answers, and returns results in
    /// request order (`result[i]` answers `owners[i]`).
    pub fn query_batch(&self, owners: &[OwnerId]) -> Vec<Vec<ProviderId>> {
        let mut span = self.tracer.root("serve.query_batch");
        span.set_payload(owners.len() as u64);
        let shards = self.senders.len();
        let mut per_shard: Vec<Vec<(u32, OwnerId)>> = vec![Vec::new(); shards];
        for (pos, &owner) in owners.iter().enumerate() {
            per_shard[shard_of(owner, shards)].push((pos as u32, owner));
        }
        let mut results: Vec<Vec<ProviderId>> = vec![Vec::new(); owners.len()];
        let mut replies = Vec::new();
        for (shard, entries) in per_shard.into_iter().enumerate() {
            if entries.is_empty() {
                continue;
            }
            let (reply, rx) = bounded(1);
            let job = Job::Batch {
                entries,
                at: self.stamp(),
                ctx: span.ctx(),
                reply,
            };
            if self.senders[shard].send(job).is_ok() {
                replies.push(rx);
            }
        }
        for rx in replies {
            if let Ok(part) = rx.recv() {
                for (pos, row) in part {
                    results[pos as usize] = row;
                }
            }
        }
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eppi_core::model::MembershipMatrix;
    use eppi_index::server::PpiServer;
    use eppi_telemetry::MetricValue;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_index(rng: &mut StdRng, providers: usize, owners: usize, p: f64) -> PublishedIndex {
        let mut matrix = MembershipMatrix::new(providers, owners);
        for pr in 0..providers as u32 {
            for o in 0..owners as u32 {
                if rng.gen_bool(p) {
                    matrix.set(ProviderId(pr), OwnerId(o), true);
                }
            }
        }
        let betas = vec![0.1; owners];
        PublishedIndex::new(matrix, betas)
    }

    fn config(shards: usize, queue_depth: usize) -> ServeConfig {
        ServeConfig {
            shards,
            queue_depth,
            backend: RowBackend::Dense,
            telemetry: true,
        }
    }

    #[test]
    fn engine_answers_like_the_unsharded_server() {
        let mut rng = StdRng::seed_from_u64(21);
        let index = random_index(&mut rng, 50, 200, 0.2);
        let server = PpiServer::new(index.clone());
        let registry = Registry::new();
        let engine = ServeEngine::start_with_registry(&index, config(4, 64), &registry);
        let client = engine.client();
        for o in 0..200u32 {
            assert_eq!(
                client.query(OwnerId(o)),
                server.query(OwnerId(o)),
                "owner {o}"
            );
        }
        let owners: Vec<OwnerId> = (0..200).map(OwnerId).collect();
        assert_eq!(client.query_batch(&owners), server.query_batch(&owners));
        assert!(engine.stats().queries() >= 400);
        assert_eq!(engine.stats().batches(), 4);
        engine.shutdown();
    }

    #[test]
    fn unknown_owner_answers_empty() {
        let index = random_index(&mut StdRng::seed_from_u64(22), 8, 4, 0.5);
        let engine = ServeEngine::start_with_registry(&index, config(2, 8), &Registry::new());
        assert!(engine.client().query(OwnerId(4000)).is_empty());
    }

    #[test]
    fn refresh_installs_new_version_for_later_queries() {
        let mut rng = StdRng::seed_from_u64(23);
        let before = random_index(&mut rng, 30, 60, 0.1);
        let after = random_index(&mut rng, 30, 60, 0.6);
        let registry = Registry::new();
        let engine = ServeEngine::start_with_registry(&before, config(3, 16), &registry);
        let client = engine.client();
        let expect_before = PpiServer::new(before.clone());
        for o in 0..60u32 {
            assert_eq!(client.query(OwnerId(o)), expect_before.query(OwnerId(o)));
        }
        engine.refresh(&after);
        assert_eq!(engine.version(), 1);
        assert_eq!(engine.current().version(), 1);
        let expect_after = PpiServer::new(after.clone());
        for o in 0..60u32 {
            assert_eq!(client.query(OwnerId(o)), expect_after.query(OwnerId(o)));
        }
        assert_eq!(engine.stats().refreshes(), 1);
        engine.shutdown();
    }

    #[test]
    fn queries_after_shutdown_fail_fast_and_empty() {
        let index = random_index(&mut StdRng::seed_from_u64(24), 10, 10, 0.9);
        let engine = ServeEngine::start_with_registry(&index, config(2, 4), &Registry::new());
        let client = engine.client();
        engine.shutdown();
        assert!(client.query(OwnerId(0)).is_empty());
        assert!(client
            .query_batch(&[OwnerId(0), OwnerId(1)])
            .iter()
            .all(Vec::is_empty));
    }

    #[test]
    fn shutdown_is_idempotent_and_drop_safe() {
        let index = random_index(&mut StdRng::seed_from_u64(26), 10, 20, 0.3);
        let registry = Registry::new();
        let engine = ServeEngine::start_with_registry(&index, config(2, 8), &registry);
        let client = engine.client();
        assert!(!client.query(OwnerId(1)).is_empty() || client.query(OwnerId(1)).is_empty());
        engine.shutdown();
        engine.shutdown();
        engine.shutdown();
        // Queries keep failing fast, drop after shutdown is a no-op.
        assert!(client.query(OwnerId(0)).is_empty());
        drop(engine);
        // The drain was recorded exactly once, by the first shutdown.
        // `expect` turns an absent metric into a typed, printable miss
        // instead of an opaque `unwrap` panic.
        let snap = registry.snapshot();
        let drain = snap
            .expect("serve.shutdown_drain_ns", &[])
            .unwrap_or_else(|miss| panic!("{miss}"));
        match &drain.value {
            MetricValue::Histogram(h) => assert_eq!(h.count, 1),
            other => panic!("unexpected metric {other:?}"),
        }
    }

    #[test]
    fn batch_duplicates_coalesce_to_one_row_read() {
        let mut rng = StdRng::seed_from_u64(30);
        let index = random_index(&mut rng, 40, 60, 0.3);
        let registry = Registry::new();
        let engine = ServeEngine::start_with_registry(&index, config(3, 16), &registry);
        let client = engine.client();
        // 5 distinct owners, each asked 4 times, shuffled across the batch.
        let distinct = [
            OwnerId(1),
            OwnerId(7),
            OwnerId(20),
            OwnerId(33),
            OwnerId(59),
        ];
        let mut owners = Vec::new();
        for round in 0..4 {
            for i in 0..distinct.len() {
                owners.push(distinct[(i + round) % distinct.len()]);
            }
        }
        let got = client.query_batch(&owners);
        let server = PpiServer::new(index.clone());
        for (o, row) in owners.iter().zip(&got) {
            assert_eq!(row, &server.query(*o), "owner {o}");
        }
        // 20 batch members but only 5 unique rows: 15 answered from the
        // coalesced previous result.
        assert_eq!(engine.stats().batch_dupes(), 15);
        engine.shutdown();
    }

    #[test]
    fn pir_submit_answers_match_plaintext_and_scan_everything() {
        let mut rng = StdRng::seed_from_u64(32);
        let index = random_index(&mut rng, 70, 90, 0.25);
        let registry = Registry::new();
        let engine = ServeEngine::start_with_registry(&index, config(3, 16), &registry);
        let snapshot = engine.current();
        let (rows, wpr) = (snapshot.owners(), snapshot.words_per_row());

        let targets = [0usize, 41, 89];
        let pairs: Vec<eppi_pir::QueryPair> = targets
            .iter()
            .map(|&t| eppi_pir::QueryPair::generate(rows, t, &mut rng))
            .collect();
        let a: Arc<Vec<SelectionVector>> = Arc::new(pairs.iter().map(|p| p.a.clone()).collect());
        let b: Arc<Vec<SelectionVector>> = Arc::new(pairs.iter().map(|p| p.b.clone()).collect());
        let answer_a = engine.pir_submit(a).gather().unwrap();
        let answer_b = engine.pir_submit(b).gather().unwrap();
        assert_eq!(answer_a.version, answer_b.version);
        for (i, &t) in targets.iter().enumerate() {
            let row: Vec<u64> = answer_a.shares[i]
                .iter()
                .zip(&answer_b.shares[i])
                .map(|(x, y)| x ^ y)
                .collect();
            assert_eq!(
                eppi_core::providers_in_row(&row, answer_a.providers),
                snapshot.query(OwnerId(t as u32)),
                "target {t}"
            );
        }
        // Two submissions, each one full pass over the packed rows —
        // the batch kernel reads each data word once per pass no matter
        // how many vectors ride along (the amortization the private
        // batch path banks on).
        assert_eq!(engine.stats().pir_scans(), 2);
        assert_eq!(engine.stats().pir_queries(), 6);
        assert_eq!(engine.stats().pir_scanned_words(), (2 * rows * wpr) as u64);
        assert_eq!(engine.stats().pir_answer_bytes(), (6 * wpr * 8) as u64);
        engine.shutdown();
        // After shutdown the scatter fails fast: gather reports the miss.
        let dead = engine.pir_submit(Arc::new(vec![SelectionVector::zero(rows)]));
        assert!(dead.gather().is_none());
    }

    #[test]
    fn telemetry_covers_the_serve_path() {
        let mut rng = StdRng::seed_from_u64(27);
        let index = random_index(&mut rng, 30, 64, 0.2);
        let registry = Registry::new();
        let engine = ServeEngine::start_with_registry(&index, config(2, 32), &registry);
        let client = engine.client();
        for o in 0..64u32 {
            client.query(OwnerId(o));
        }
        let owners: Vec<OwnerId> = (0..64).map(OwnerId).collect();
        client.query_batch(&owners);
        engine.refresh(&index);
        // One more query after the refresh so both shards saw traffic.
        client.query(OwnerId(0));
        engine.shutdown();

        let snap = registry.snapshot();
        let service: u64 = snap
            .family("serve.service_ns")
            .iter()
            .map(|m| match &m.value {
                MetricValue::Histogram(h) => h.count,
                other => panic!("unexpected metric {other:?}"),
            })
            .sum();
        // 65 singles + one batch job per shard involved.
        assert!(service >= 66, "service histogram undercounts: {service}");
        let waits: u64 = snap
            .family("serve.enqueue_wait_ns")
            .iter()
            .map(|m| match &m.value {
                MetricValue::Histogram(h) => h.count,
                other => panic!("unexpected metric {other:?}"),
            })
            .sum();
        assert_eq!(waits, service, "every served job has an enqueue wait");
        let batch_sizes = snap.family("serve.batch_size");
        let recorded: u64 = batch_sizes
            .iter()
            .map(|m| match &m.value {
                MetricValue::Histogram(h) => h.sum,
                other => panic!("unexpected metric {other:?}"),
            })
            .sum();
        assert_eq!(recorded, 64, "batch members recorded once each");
        let lags = snap.family("serve.install_lag_ns");
        let installs: u64 = lags
            .iter()
            .map(|m| match &m.value {
                MetricValue::Histogram(h) => h.count,
                other => panic!("unexpected metric {other:?}"),
            })
            .sum();
        assert_eq!(installs, 2, "one install per shard per refresh");
        // All queues drained back to zero (depth is sampled by the
        // worker at dequeue, so the peak may legitimately stay 0 when
        // clients always block on replies).
        for m in snap.family("serve.queue_depth") {
            match &m.value {
                MetricValue::Gauge { value, peak } => {
                    assert_eq!(*value, 0, "queue depth leaked on {}", m.id());
                    assert!(*peak >= 0);
                }
                other => panic!("unexpected metric {other:?}"),
            }
        }
    }

    #[test]
    fn telemetry_off_keeps_counters_only() {
        let index = random_index(&mut StdRng::seed_from_u64(28), 10, 16, 0.4);
        let registry = Registry::new();
        let cfg = ServeConfig {
            shards: 2,
            queue_depth: 8,
            backend: RowBackend::Dense,
            telemetry: false,
        };
        let engine = ServeEngine::start_with_registry(&index, cfg, &registry);
        let client = engine.client();
        for o in 0..16u32 {
            client.query(OwnerId(o));
        }
        engine.shutdown();
        assert_eq!(engine.stats().queries(), 16);
        let snap = registry.snapshot();
        for m in snap.family("serve.service_ns") {
            match &m.value {
                MetricValue::Histogram(h) => assert_eq!(h.count, 0, "{} recorded", m.id()),
                other => panic!("unexpected metric {other:?}"),
            }
        }
        for m in snap.family("serve.queue_depth") {
            match &m.value {
                MetricValue::Gauge { value, peak } => {
                    assert_eq!((*value, *peak), (0, 0), "{} moved", m.id())
                }
                other => panic!("unexpected metric {other:?}"),
            }
        }
    }

    #[test]
    fn apply_delta_installs_next_epoch_and_shares_untouched_shards() {
        let mut rng = StdRng::seed_from_u64(29);
        let index = random_index(&mut rng, 30, 120, 0.2);
        let registry = Registry::new();
        let engine = ServeEngine::start_with_registry(&index, config(4, 16), &registry);
        let client = engine.client();
        let before = engine.current();

        // One changed owner + one appended owner.
        let mut matrix = index.matrix().clone();
        matrix.grow_owners(121);
        matrix.set(ProviderId(3), OwnerId(7), true);
        matrix.set(ProviderId(9), OwnerId(120), true);
        let mut betas = index.betas().to_vec();
        betas.push(0.5);
        let next = PublishedIndex::new(matrix, betas);
        let touched = [OwnerId(7), OwnerId(120)];
        let installed = engine.apply_delta(&next, &touched).unwrap();

        assert_eq!(installed, 1);
        assert_eq!(engine.version(), 1);
        assert_eq!(engine.stats().refreshes(), 1);
        assert_eq!(engine.stats().delta_refreshes(), 1);
        let after = engine.current();
        // The changed owner dirties its base shard; the appended owner
        // opens an append shard past the base four. Every other base
        // shard shares its row block with the previous snapshot.
        assert_eq!(after.shard_count(), 5);
        let hot = shard_of(OwnerId(7), 4);
        for s in 0..4 {
            assert_eq!(after.shares_rows_with(&before, s), s != hot, "shard {s}");
        }
        // Served answers match the new index.
        let server = PpiServer::new(next.clone());
        for o in 0..121u32 {
            assert_eq!(client.query(OwnerId(o)), server.query(OwnerId(o)));
        }
        engine.shutdown();
    }

    #[test]
    fn default_shards_scale_with_owner_count() {
        let cpu = default_shards();
        assert_eq!(default_shards_for(0), cpu);
        assert_eq!(default_shards_for(20_000), cpu.max(1));
        assert!(default_shards_for(1_000_000) >= 61);
        assert!(default_shards_for(1_000_000_000) <= 256);
        // Monotone in the population.
        assert!(default_shards_for(1_000_000) <= default_shards_for(2_000_000));
    }

    #[test]
    fn compressed_backend_serves_identically_and_reports_bytes() {
        let mut rng = StdRng::seed_from_u64(33);
        let index = random_index(&mut rng, 300, 150, 0.02);
        let registry = Registry::new();
        let cfg = ServeConfig {
            backend: eppi_core::rowstore::RowBackend::Compressed,
            ..config(3, 16)
        };
        let engine = ServeEngine::start_with_registry(&index, cfg, &registry);
        assert_eq!(
            engine.backend(),
            eppi_core::rowstore::RowBackend::Compressed
        );
        let client = engine.client();
        let server = PpiServer::new(index.clone());
        for o in 0..150u32 {
            assert_eq!(client.query(OwnerId(o)), server.query(OwnerId(o)));
        }
        let snap = registry.snapshot();
        let bytes = snap
            .expect("serve.index_bytes", &[("backend", "compressed")])
            .unwrap_or_else(|miss| panic!("{miss}"));
        match &bytes.value {
            MetricValue::Gauge { value, .. } => {
                assert_eq!(*value, engine.current().resident_bytes() as i64);
                assert!(*value > 0);
            }
            other => panic!("unexpected metric {other:?}"),
        }
        let shards_gauge = snap
            .expect("serve.shards", &[])
            .unwrap_or_else(|miss| panic!("{miss}"));
        match &shards_gauge.value {
            MetricValue::Gauge { value, .. } => assert_eq!(*value, 3),
            other => panic!("unexpected metric {other:?}"),
        }
        engine.shutdown();
    }

    /// Appending growth makes the snapshot hold more data shards than
    /// the engine has workers; the PIR scatter must still cover every
    /// shard (round-robin onto the fixed pool), and the scan volume
    /// stays exactly `owners × words_per_row` per pass.
    #[test]
    fn pir_covers_append_shards_beyond_the_worker_pool() {
        let mut rng = StdRng::seed_from_u64(34);
        let index = random_index(&mut rng, 70, 90, 0.25);
        let registry = Registry::new();
        let engine = ServeEngine::start_with_registry(&index, config(2, 16), &registry);

        // Grow by enough owners to open an append shard.
        let mut matrix = index.matrix().clone();
        matrix.grow_owners(140);
        for o in 90..140u32 {
            matrix.set(ProviderId(o % 70), OwnerId(o), true);
        }
        let mut betas = index.betas().to_vec();
        betas.resize(140, 0.1);
        let next = PublishedIndex::new(matrix, betas);
        engine.apply_delta(&next, &[]).unwrap();
        assert!(engine.data_shards() > engine.shards());

        let snapshot = engine.current();
        let (rows, wpr) = (snapshot.owners(), snapshot.words_per_row());
        // Recover an appended owner's row privately.
        let target = 123usize;
        let pair = eppi_pir::QueryPair::generate(rows, target, &mut rng);
        let a = engine.pir_submit(Arc::new(vec![pair.a])).gather().unwrap();
        let b = engine.pir_submit(Arc::new(vec![pair.b])).gather().unwrap();
        let row: Vec<u64> = a.shares[0]
            .iter()
            .zip(&b.shares[0])
            .map(|(x, y)| x ^ y)
            .collect();
        assert_eq!(
            eppi_core::providers_in_row(&row, a.providers),
            snapshot.query(OwnerId(target as u32))
        );
        assert_eq!(engine.stats().pir_scanned_words(), (2 * rows * wpr) as u64);
        engine.shutdown();
    }

    #[test]
    fn from_store_serves_the_recovered_head_without_rebuild() {
        use eppi_core::model::Epsilon;
        use eppi_protocol::{construct_epoch, ProtocolConfig};

        let dir = std::env::temp_dir().join(format!("eppi-boot-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut matrix = MembershipMatrix::new(12, 4);
        for o in 0..4u32 {
            for p in 0..=o {
                matrix.set(ProviderId(p * 3), OwnerId(o), true);
            }
        }
        let epsilons = vec![Epsilon::new(0.5).unwrap(); 4];
        let protocol = ProtocolConfig {
            seed: 77,
            ..ProtocolConfig::default()
        };
        let registry = Registry::new();
        let epoch0 = construct_epoch(&matrix, &epsilons, &protocol).unwrap();
        DurableStore::create_with_registry(&dir, &epoch0, &registry).unwrap();

        // Restart: recover and boot the engine straight off the store.
        let (store, recovery) = DurableStore::open_with_registry(&dir, &registry).unwrap();
        assert_eq!(recovery.replayed, 0);
        let engine = ServeEngine::from_store_with_registry(&store, config(2, 8), &registry);
        let client = engine.client();
        let server = PpiServer::new(epoch0.index().clone());
        for o in 0..4u32 {
            assert_eq!(client.query(OwnerId(o)), server.query(OwnerId(o)));
        }
        engine.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn seeded_store(dir: &std::path::Path, registry: &Registry) -> eppi_protocol::IndexEpoch {
        use eppi_core::model::Epsilon;
        use eppi_protocol::{construct_epoch, ProtocolConfig};

        let _ = std::fs::remove_dir_all(dir);
        let mut matrix = MembershipMatrix::new(10, 6);
        for o in 0..6u32 {
            for p in 0..=(o % 5) {
                matrix.set(ProviderId(p * 2), OwnerId(o), true);
            }
        }
        let epsilons = vec![Epsilon::new(0.5).unwrap(); 6];
        let protocol = ProtocolConfig {
            seed: 91,
            ..ProtocolConfig::default()
        };
        let epoch0 = construct_epoch(&matrix, &epsilons, &protocol).unwrap();
        DurableStore::create_with_registry(dir, &epoch0, registry).unwrap();
        epoch0
    }

    fn boots(registry: &Registry, mode: &str) -> u64 {
        match registry.snapshot().expect("serve.boots", &[("mode", mode)]) {
            Ok(m) => match &m.value {
                MetricValue::Counter(v) => *v,
                other => panic!("unexpected metric {other:?}"),
            },
            Err(_) => 0,
        }
    }

    #[test]
    fn warm_boot_restores_the_cached_layout_without_resharding() {
        let dir = std::env::temp_dir().join(format!("eppi-warmboot-{}", std::process::id()));
        let registry = Registry::new();
        let epoch0 = seeded_store(&dir, &registry);

        // First boot finds no cache: cold re-shard, version 0. Persist
        // the layout it built for the next boot.
        let (store, _) = DurableStore::open_with_registry(&dir, &registry).unwrap();
        let cold = ServeEngine::from_store_with_registry(&store, config(2, 8), &registry);
        assert_eq!((boots(&registry, "cold"), boots(&registry, "warm")), (1, 0));
        assert_eq!(cold.version(), 0);
        cold.persist_serve_cache(&store).unwrap();
        cold.shutdown();

        // Second boot restores the cached layout: no re-shard (the
        // warm counter moves, cold does not), and the engine resumes
        // at the head's lineage position instead of version 0.
        let warm = ServeEngine::from_store_with_registry(&store, config(2, 8), &registry);
        assert_eq!((boots(&registry, "cold"), boots(&registry, "warm")), (1, 1));
        assert_eq!(warm.version(), store.head().epoch());
        assert_eq!(warm.current().version(), store.head().epoch());
        let client = warm.client();
        let server = PpiServer::new(epoch0.index().clone());
        for o in 0..6u32 {
            assert_eq!(client.query(OwnerId(o)), server.query(OwnerId(o)));
        }
        warm.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mismatched_serve_cache_falls_back_to_a_cold_boot() {
        use eppi_durability::serve_cache::load_serve_snapshot as load_raw;
        use eppi_durability::serve_cache::save_serve_snapshot as save_raw;

        let dir = std::env::temp_dir().join(format!("eppi-staleboot-{}", std::process::id()));
        let registry = Registry::new();
        let epoch0 = seeded_store(&dir, &registry);
        let (store, _) = DurableStore::open_with_registry(&dir, &registry).unwrap();
        let first = ServeEngine::from_store_with_registry(&store, config(2, 8), &registry);
        first.persist_serve_cache(&store).unwrap();
        first.shutdown();

        // A cache stamped for a different lineage position is stale:
        // the boot must re-shard, never serve it.
        let mut record = load_raw(store.dir()).unwrap().unwrap();
        record.snapshot_version += 7;
        save_raw(store.dir(), &record).unwrap();
        let engine = ServeEngine::from_store_with_registry(&store, config(2, 8), &registry);
        assert_eq!(boots(&registry, "cold"), 2);
        assert_eq!(boots(&registry, "warm"), 0);
        assert_eq!(engine.version(), 0);
        engine.shutdown();

        // So is one built for a different shard count, even at the
        // right version.
        record.snapshot_version -= 7;
        save_raw(store.dir(), &record).unwrap();
        let engine = ServeEngine::from_store_with_registry(&store, config(3, 8), &registry);
        assert_eq!(boots(&registry, "cold"), 3);
        assert_eq!(boots(&registry, "warm"), 0);
        let client = engine.client();
        let server = PpiServer::new(epoch0.index().clone());
        for o in 0..6u32 {
            assert_eq!(client.query(OwnerId(o)), server.query(OwnerId(o)));
        }
        engine.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// The acceptance stress: ≥ 4 shards, ≥ 8 client threads, refreshes
    /// alternating between two indexes under full query load. Every
    /// result must exactly equal one version's answer — never a blend —
    /// and the engine must never deadlock.
    #[test]
    fn refresh_under_concurrent_load_is_never_torn() {
        let mut rng = StdRng::seed_from_u64(25);
        let owners = 128u32;
        let a = random_index(&mut rng, 40, owners as usize, 0.15);
        let b = random_index(&mut rng, 40, owners as usize, 0.45);
        let expect_a: Vec<Vec<ProviderId>> = (0..owners).map(|o| a.query(OwnerId(o))).collect();
        let expect_b: Vec<Vec<ProviderId>> = (0..owners).map(|o| b.query(OwnerId(o))).collect();

        let registry = Registry::new();
        let engine = ServeEngine::start_with_registry(&a, config(4, 32), &registry);
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let client = engine.client();
                let expect_a = &expect_a;
                let expect_b = &expect_b;
                s.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(100 + t);
                    for i in 0..2_000 {
                        let o = OwnerId(rng.gen_range(0..owners));
                        let got = client.query(o);
                        let ok = got == expect_a[o.index()] || got == expect_b[o.index()];
                        assert!(ok, "thread {t} iter {i}: torn/wrong result for {o}");
                        if i % 97 == 0 {
                            let batch: Vec<OwnerId> =
                                (0..16).map(|_| OwnerId(rng.gen_range(0..owners))).collect();
                            for (q, row) in batch.iter().zip(client.query_batch(&batch)) {
                                assert!(
                                    row == expect_a[q.index()] || row == expect_b[q.index()],
                                    "thread {t}: torn batch row for {q}"
                                );
                            }
                        }
                    }
                });
            }
            // Refresh continuously while the clients hammer queries.
            for round in 0..200 {
                engine.refresh(if round % 2 == 0 { &b } else { &a });
            }
        });
        assert_eq!(engine.stats().refreshes(), 200);
        assert!(engine.stats().queries() >= 8 * 2_000);
        engine.shutdown();
    }
}
