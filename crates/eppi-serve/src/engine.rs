//! The concurrent query engine: one worker thread per shard over
//! bounded channels.
//!
//! Request flow mirrors the threaded construction runtime in
//! `eppi-net::threaded` (OS threads + channels, no async runtime): a
//! [`ServeClient`] routes each `QueryPPI` to the owner's shard worker
//! through a bounded queue (back-pressure instead of unbounded memory
//! growth under overload) and blocks on a one-shot reply channel.
//! Batched requests are scattered to the involved shards and gathered
//! back in request order.
//!
//! Each worker *owns* its shard view as a plain `Arc` — the read path
//! takes no lock of any kind. A [`refresh`](ServeEngine::refresh)
//! publishes the new version to the engine's [`SnapshotCell`] and
//! enqueues an install message per worker, so in-flight queries finish
//! on the old version and later ones see the new one: readers are never
//! blocked and never observe a torn index.

use crate::shard::{shard_of, ShardedIndex};
use crate::snapshot::SnapshotCell;
use crossbeam::channel::{bounded, Receiver, Sender};
use eppi_core::model::{OwnerId, ProviderId, PublishedIndex};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Engine sizing knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Number of shards (= worker threads).
    pub shards: usize,
    /// Bounded depth of each shard's request queue.
    pub queue_depth: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: std::thread::available_parallelism().map_or(4, |p| p.get()),
            queue_depth: 1024,
        }
    }
}

/// Cumulative engine counters (relaxed atomics, monotone).
#[derive(Debug, Default)]
pub struct ServeStats {
    queries: AtomicU64,
    batches: AtomicU64,
    refreshes: AtomicU64,
}

impl ServeStats {
    /// Total single queries answered (batch members included).
    pub fn queries(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Total batch requests answered.
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Snapshot refreshes installed (counted once per publication, not
    /// per shard).
    pub fn refreshes(&self) -> u64 {
        self.refreshes.load(Ordering::Relaxed)
    }
}

enum Job {
    Query {
        owner: OwnerId,
        reply: Sender<Vec<ProviderId>>,
    },
    Batch {
        /// `(position in the caller's batch, owner)` pairs for this shard.
        entries: Vec<(u32, OwnerId)>,
        reply: Sender<Vec<(u32, Vec<ProviderId>)>>,
    },
    Install(Arc<ShardedIndex>),
    Shutdown,
}

/// The sharded serving engine; owns the worker threads.
///
/// ```
/// use eppi_core::model::{MembershipMatrix, OwnerId, ProviderId, PublishedIndex};
/// use eppi_serve::{ServeConfig, ServeEngine};
///
/// let mut m = MembershipMatrix::new(4, 2);
/// m.set(ProviderId(1), OwnerId(0), true);
/// let index = PublishedIndex::new(m, vec![0.0, 0.0]);
/// let engine = ServeEngine::start(&index, ServeConfig { shards: 2, queue_depth: 16 });
/// let client = engine.client();
/// assert_eq!(client.query(OwnerId(0)), vec![ProviderId(1)]);
/// assert_eq!(client.query_batch(&[OwnerId(1), OwnerId(0)]).len(), 2);
/// engine.shutdown();
/// ```
#[derive(Debug)]
pub struct ServeEngine {
    senders: Vec<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    snapshot: Arc<SnapshotCell<ShardedIndex>>,
    stats: Arc<ServeStats>,
    version: AtomicU64,
}

impl ServeEngine {
    /// Shards `index` and spawns one worker thread per shard.
    ///
    /// # Panics
    ///
    /// Panics if `config.shards == 0`.
    pub fn start(index: &PublishedIndex, config: ServeConfig) -> Self {
        let initial = Arc::new(ShardedIndex::from_index_versioned(index, config.shards, 0));
        let snapshot = Arc::new(SnapshotCell::new(Arc::clone(&initial)));
        let stats = Arc::new(ServeStats::default());
        let mut senders = Vec::with_capacity(config.shards);
        let mut workers = Vec::with_capacity(config.shards);
        for shard in 0..config.shards {
            let (tx, rx) = bounded(config.queue_depth.max(1));
            senders.push(tx);
            let view = Arc::clone(&initial);
            let stats = Arc::clone(&stats);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("eppi-serve-{shard}"))
                    .spawn(move || worker_loop(rx, view, stats))
                    .expect("spawn shard worker"),
            );
        }
        ServeEngine {
            senders,
            workers,
            snapshot,
            stats,
            version: AtomicU64::new(0),
        }
    }

    /// A cloneable client handle; any number of threads may hold one.
    pub fn client(&self) -> ServeClient {
        ServeClient {
            senders: self.senders.clone(),
        }
    }

    /// Number of shards / workers.
    pub fn shards(&self) -> usize {
        self.senders.len()
    }

    /// Engine counters.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// The latest installed index version (also readable without the
    /// engine via [`current`](Self::current)).
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::SeqCst)
    }

    /// The latest published sharded snapshot (lock-free read).
    pub fn current(&self) -> Arc<ShardedIndex> {
        self.snapshot.load()
    }

    /// Installs a re-published index: stamps the next version, shards
    /// it, publishes the snapshot, and hands every worker the new view.
    /// Readers keep executing throughout; queries already queued finish
    /// against whichever version their worker holds at dequeue time.
    pub fn refresh(&self, index: &PublishedIndex) {
        let version = self.version.fetch_add(1, Ordering::SeqCst) + 1;
        let sharded = Arc::new(ShardedIndex::from_index_versioned(
            index,
            self.senders.len(),
            version,
        ));
        self.snapshot.store(Arc::clone(&sharded));
        for tx in &self.senders {
            // A worker gone mid-shutdown just misses the update.
            let _ = tx.send(Job::Install(Arc::clone(&sharded)));
        }
        self.stats.refreshes.fetch_add(1, Ordering::Relaxed);
    }

    /// Stops all workers and joins them. Queued queries are answered
    /// first; clients created from this engine fail fast afterwards.
    pub fn shutdown(mut self) {
        self.stop_workers();
    }

    fn stop_workers(&mut self) {
        for tx in &self.senders {
            let _ = tx.send(Job::Shutdown);
        }
        self.senders.clear();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        self.stop_workers();
    }
}

fn worker_loop(rx: Receiver<Job>, mut view: Arc<ShardedIndex>, stats: Arc<ServeStats>) {
    while let Ok(job) = rx.recv() {
        match job {
            Job::Query { owner, reply } => {
                stats.queries.fetch_add(1, Ordering::Relaxed);
                let result = view.try_query(owner).unwrap_or_default();
                let _ = reply.send(result);
            }
            Job::Batch { entries, reply } => {
                stats
                    .queries
                    .fetch_add(entries.len() as u64, Ordering::Relaxed);
                stats.batches.fetch_add(1, Ordering::Relaxed);
                let results = entries
                    .into_iter()
                    .map(|(pos, owner)| (pos, view.try_query(owner).unwrap_or_default()))
                    .collect();
                let _ = reply.send(results);
            }
            Job::Install(new_view) => view = new_view,
            Job::Shutdown => break,
        }
    }
}

/// A handle for submitting queries; cheap to clone and share.
#[derive(Debug, Clone)]
pub struct ServeClient {
    senders: Vec<Sender<Job>>,
}

impl ServeClient {
    /// Evaluates `QueryPPI(owner)` on the owner's shard. Unknown owners
    /// (beyond the current index) and a shut-down engine both answer
    /// with the empty candidate list, matching an empty `PpiServer`.
    pub fn query(&self, owner: OwnerId) -> Vec<ProviderId> {
        let (reply, rx) = bounded(1);
        let shard = shard_of(owner, self.senders.len());
        if self.senders[shard]
            .send(Job::Query { owner, reply })
            .is_err()
        {
            return Vec::new();
        }
        rx.recv().unwrap_or_default()
    }

    /// Evaluates a batch of queries: scatters the owners to their
    /// shards, gathers the per-shard answers, and returns results in
    /// request order (`result[i]` answers `owners[i]`).
    pub fn query_batch(&self, owners: &[OwnerId]) -> Vec<Vec<ProviderId>> {
        let shards = self.senders.len();
        let mut per_shard: Vec<Vec<(u32, OwnerId)>> = vec![Vec::new(); shards];
        for (pos, &owner) in owners.iter().enumerate() {
            per_shard[shard_of(owner, shards)].push((pos as u32, owner));
        }
        let mut results: Vec<Vec<ProviderId>> = vec![Vec::new(); owners.len()];
        let mut replies = Vec::new();
        for (shard, entries) in per_shard.into_iter().enumerate() {
            if entries.is_empty() {
                continue;
            }
            let (reply, rx) = bounded(1);
            if self.senders[shard]
                .send(Job::Batch { entries, reply })
                .is_ok()
            {
                replies.push(rx);
            }
        }
        for rx in replies {
            if let Ok(part) = rx.recv() {
                for (pos, row) in part {
                    results[pos as usize] = row;
                }
            }
        }
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eppi_core::model::MembershipMatrix;
    use eppi_index::server::PpiServer;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_index(rng: &mut StdRng, providers: usize, owners: usize, p: f64) -> PublishedIndex {
        let mut matrix = MembershipMatrix::new(providers, owners);
        for pr in 0..providers as u32 {
            for o in 0..owners as u32 {
                if rng.gen_bool(p) {
                    matrix.set(ProviderId(pr), OwnerId(o), true);
                }
            }
        }
        let betas = vec![0.1; owners];
        PublishedIndex::new(matrix, betas)
    }

    #[test]
    fn engine_answers_like_the_unsharded_server() {
        let mut rng = StdRng::seed_from_u64(21);
        let index = random_index(&mut rng, 50, 200, 0.2);
        let server = PpiServer::new(index.clone());
        let engine = ServeEngine::start(
            &index,
            ServeConfig {
                shards: 4,
                queue_depth: 64,
            },
        );
        let client = engine.client();
        for o in 0..200u32 {
            assert_eq!(
                client.query(OwnerId(o)),
                server.query(OwnerId(o)),
                "owner {o}"
            );
        }
        let owners: Vec<OwnerId> = (0..200).map(OwnerId).collect();
        assert_eq!(client.query_batch(&owners), server.query_batch(&owners));
        assert!(engine.stats().queries() >= 400);
        assert_eq!(engine.stats().batches(), 4);
        engine.shutdown();
    }

    #[test]
    fn unknown_owner_answers_empty() {
        let index = random_index(&mut StdRng::seed_from_u64(22), 8, 4, 0.5);
        let engine = ServeEngine::start(
            &index,
            ServeConfig {
                shards: 2,
                queue_depth: 8,
            },
        );
        assert!(engine.client().query(OwnerId(4000)).is_empty());
    }

    #[test]
    fn refresh_installs_new_version_for_later_queries() {
        let mut rng = StdRng::seed_from_u64(23);
        let before = random_index(&mut rng, 30, 60, 0.1);
        let after = random_index(&mut rng, 30, 60, 0.6);
        let engine = ServeEngine::start(
            &before,
            ServeConfig {
                shards: 3,
                queue_depth: 16,
            },
        );
        let client = engine.client();
        let expect_before = PpiServer::new(before.clone());
        for o in 0..60u32 {
            assert_eq!(client.query(OwnerId(o)), expect_before.query(OwnerId(o)));
        }
        engine.refresh(&after);
        assert_eq!(engine.version(), 1);
        assert_eq!(engine.current().version(), 1);
        let expect_after = PpiServer::new(after.clone());
        for o in 0..60u32 {
            assert_eq!(client.query(OwnerId(o)), expect_after.query(OwnerId(o)));
        }
        assert_eq!(engine.stats().refreshes(), 1);
        engine.shutdown();
    }

    #[test]
    fn queries_after_shutdown_fail_fast_and_empty() {
        let index = random_index(&mut StdRng::seed_from_u64(24), 10, 10, 0.9);
        let engine = ServeEngine::start(
            &index,
            ServeConfig {
                shards: 2,
                queue_depth: 4,
            },
        );
        let client = engine.client();
        engine.shutdown();
        assert!(client.query(OwnerId(0)).is_empty());
        assert!(client
            .query_batch(&[OwnerId(0), OwnerId(1)])
            .iter()
            .all(Vec::is_empty));
    }

    /// The acceptance stress: ≥ 4 shards, ≥ 8 client threads, refreshes
    /// alternating between two indexes under full query load. Every
    /// result must exactly equal one version's answer — never a blend —
    /// and the engine must never deadlock.
    #[test]
    fn refresh_under_concurrent_load_is_never_torn() {
        let mut rng = StdRng::seed_from_u64(25);
        let owners = 128u32;
        let a = random_index(&mut rng, 40, owners as usize, 0.15);
        let b = random_index(&mut rng, 40, owners as usize, 0.45);
        let expect_a: Vec<Vec<ProviderId>> = (0..owners).map(|o| a.query(OwnerId(o))).collect();
        let expect_b: Vec<Vec<ProviderId>> = (0..owners).map(|o| b.query(OwnerId(o))).collect();

        let engine = ServeEngine::start(
            &a,
            ServeConfig {
                shards: 4,
                queue_depth: 32,
            },
        );
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let client = engine.client();
                let expect_a = &expect_a;
                let expect_b = &expect_b;
                s.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(100 + t);
                    for i in 0..2_000 {
                        let o = OwnerId(rng.gen_range(0..owners));
                        let got = client.query(o);
                        let ok = got == expect_a[o.index()] || got == expect_b[o.index()];
                        assert!(ok, "thread {t} iter {i}: torn/wrong result for {o}");
                        if i % 97 == 0 {
                            let batch: Vec<OwnerId> =
                                (0..16).map(|_| OwnerId(rng.gen_range(0..owners))).collect();
                            for (q, row) in batch.iter().zip(client.query_batch(&batch)) {
                                assert!(
                                    row == expect_a[q.index()] || row == expect_b[q.index()],
                                    "thread {t}: torn batch row for {q}"
                                );
                            }
                        }
                    }
                });
            }
            // Refresh continuously while the clients hammer queries.
            for round in 0..200 {
                engine.refresh(if round % 2 == 0 { &b } else { &a });
            }
        });
        assert_eq!(engine.stats().refreshes(), 200);
        assert!(engine.stats().queries() >= 8 * 2_000);
        engine.shutdown();
    }
}
