//! The private serve mode: a two-replica XOR-PIR front-end over the
//! worker-per-shard engine (DESIGN.md §12).
//!
//! The plaintext [`ServeClient`](crate::ServeClient) tells the server
//! *which owner* every query is about — exactly the access pattern the
//! paper's threat model says a curious locator service will mine. The
//! private mode removes that signal with the classic two-server
//! information-theoretic PIR (Chor–Goldreich–Kushilevitz–Sudan):
//!
//! 1. The client draws a uniformly random selection vector `a` over
//!    the `n` owner rows and sends `a` to replica A and `a ⊕ e_j` to
//!    replica B, where `j` is the queried owner.
//! 2. Each replica XORs together the packed provider rows its vector
//!    selects — by obliviously scanning *every* resident row under a
//!    branchless mask ([`eppi_pir::xor_scan_indexed_batch`]), so its
//!    work and its memory-access shape are query-independent.
//! 3. The client XORs the two answer shares: everything cancels except
//!    row `j`, which decodes to exactly the plaintext answer.
//!
//! Each replica alone sees a uniformly random vector whatever the
//! target, so privacy holds against either server individually; the
//! only assumption is that the two replicas do not collude (§12 spells
//! out why this fits the e-PPI deployment, where the index is already
//! replicated across brokers). Both replicas live in this process —
//! the crate models the trust split, it does not deploy it.
//!
//! The linear scan is the price of information-theoretic privacy. The
//! batched path ([`PrivateClient::query_batch`]) recovers most of it:
//! one pass over the rows serves a whole batch of vectors (row-outer,
//! query-inner), so per-query cost falls roughly linearly with batch
//! size until the vector set stops fitting in cache.
//!
//! ## Epoch consistency
//!
//! Refreshes and delta installs keep running under private traffic.
//! Each replica pins one snapshot per scatter
//! ([`ServeEngine::pir_submit`]), so its own share is always internally
//! consistent; when an install lands *between* the two replicas'
//! scatters, their answers carry different versions and the client
//! regenerates and retries (`pir.version_retries`). Vectors built
//! against a slightly stale owner count stay safe either way:
//! [`SelectionVector::mask`] is zero beyond the vector span on both
//! replicas, so the XOR still cancels cleanly.

use crate::engine::{PirServerAnswer, ServeConfig, ServeEngine, ServeStats};
use crate::shard::EpochOrderError;
use eppi_core::model::{OwnerId, ProviderId, PublishedIndex};
use eppi_core::rows::providers_in_row;
use eppi_pir::{QueryPair, SelectionVector};
use eppi_telemetry::Registry;
use eppi_trace::Tracer;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Retry budget for replica-version mismatches. Installs are rare
/// relative to queries; two replicas settle on the same version as soon
/// as the install drains, so even 2 would almost always do.
const MAX_VERSION_RETRIES: usize = 64;

/// Two non-colluding serve replicas behind one handle.
///
/// Both replicas are full [`ServeEngine`]s over the same published
/// index and report into the same telemetry registry, so the `pir.*`
/// counters aggregate across replicas (each private query performs one
/// scan on *each* replica — `pir.scans` moves by 2 per submission
/// round).
///
/// ```
/// use eppi_core::model::{MembershipMatrix, OwnerId, ProviderId, PublishedIndex};
/// use eppi_serve::{PrivateEngine, ServeConfig};
///
/// let mut m = MembershipMatrix::new(4, 2);
/// m.set(ProviderId(1), OwnerId(0), true);
/// let index = PublishedIndex::new(m, vec![0.0, 0.0]);
/// let config = ServeConfig { shards: 2, queue_depth: 16, ..ServeConfig::default() };
/// let engine = PrivateEngine::start(&index, config);
/// let mut client = engine.client(7);
/// assert_eq!(client.query(OwnerId(0)), vec![ProviderId(1)]);
/// assert!(client.query(OwnerId(1)).is_empty());
/// engine.shutdown();
/// ```
#[derive(Debug)]
pub struct PrivateEngine {
    a: Arc<ServeEngine>,
    b: Arc<ServeEngine>,
}

impl PrivateEngine {
    /// Starts both replicas, reporting into the process-global
    /// telemetry registry.
    ///
    /// # Panics
    ///
    /// Panics if `config.shards == 0`.
    pub fn start(index: &PublishedIndex, config: ServeConfig) -> Self {
        Self::start_with_registry(index, config, eppi_telemetry::global())
    }

    /// [`start`](Self::start) reporting into a caller-owned registry.
    ///
    /// # Panics
    ///
    /// Panics if `config.shards == 0`.
    pub fn start_with_registry(
        index: &PublishedIndex,
        config: ServeConfig,
        registry: &Registry,
    ) -> Self {
        Self::start_traced(index, config, registry, Tracer::disabled())
    }

    /// [`start_with_registry`](Self::start_with_registry) with causal
    /// span tracing: both replicas share `tracer`, and every client
    /// query opens a `private.query` root span whose children cover
    /// vector generation, each replica's scatter / per-shard oblivious
    /// scan / gather, and the final recombine. The traced tree is
    /// oblivious by construction — every span name, count, and payload
    /// on this path depends only on the batch length and the snapshot
    /// shape, never on which owners are probed (enforced by the
    /// `trace_obliviousness` property test).
    ///
    /// Whatever row backend `config` names, both replicas are pinned to
    /// [`RowBackend::Dense`](eppi_core::rowstore::RowBackend::Dense):
    /// the oblivious scan's memory traffic must depend only on the
    /// snapshot shape, and a compressed row's decode cost tracks its
    /// content — exactly the signal PIR exists to hide (DESIGN.md §14).
    ///
    /// # Panics
    ///
    /// Panics if `config.shards == 0`.
    pub fn start_traced(
        index: &PublishedIndex,
        config: ServeConfig,
        registry: &Registry,
        tracer: Tracer,
    ) -> Self {
        let config = ServeConfig {
            backend: eppi_core::rowstore::RowBackend::Dense,
            ..config
        };
        PrivateEngine {
            a: Arc::new(ServeEngine::start_traced(
                index,
                config,
                registry,
                tracer.clone(),
            )),
            b: Arc::new(ServeEngine::start_traced(index, config, registry, tracer)),
        }
    }

    /// A private-query client. `seed` drives the client's query-vector
    /// generator ([`StdRng`]) — deterministic here for reproducible
    /// tests and benches; a real deployment would use a CSPRNG, since
    /// vector unpredictability is the entire privacy guarantee.
    pub fn client(&self, seed: u64) -> PrivateClient {
        PrivateClient {
            a: Arc::clone(&self.a),
            b: Arc::clone(&self.b),
            rng: StdRng::seed_from_u64(seed),
            tracer: self.a.tracer().clone(),
        }
    }

    /// The engines' shared tracer ([`Tracer::disabled`] unless started
    /// via [`start_traced`](Self::start_traced)).
    pub fn tracer(&self) -> &Tracer {
        self.a.tracer()
    }

    /// Installs a re-published index on both replicas (A first, then
    /// B). A client scattering between the two installs observes a
    /// version mismatch and retries; see the module docs.
    pub fn refresh(&self, index: &PublishedIndex) {
        self.a.refresh(index);
        self.b.refresh(index);
    }

    /// Installs the next epoch incrementally on both replicas
    /// ([`ServeEngine::apply_delta`]). Returns the installed version.
    ///
    /// # Errors
    ///
    /// Surfaces [`EpochOrderError`] from the first replica that rejects
    /// the delta; a replica that already installed it keeps the new
    /// version (the client's version check masks the transient skew,
    /// and the caller is expected to re-drive both replicas to the same
    /// lineage).
    pub fn apply_delta(
        &self,
        index: &PublishedIndex,
        touched: &[OwnerId],
    ) -> Result<u64, EpochOrderError> {
        let version = self.a.apply_delta(index, touched)?;
        let other = self.b.apply_delta(index, touched)?;
        debug_assert_eq!(version, other, "replicas diverged");
        Ok(version)
    }

    /// Replica A — also the replica whose snapshot the clients read
    /// public metadata (row count) from.
    pub fn replica_a(&self) -> &ServeEngine {
        &self.a
    }

    /// Replica B.
    pub fn replica_b(&self) -> &ServeEngine {
        &self.b
    }

    /// The shared engine counters (both replicas report here).
    pub fn stats(&self) -> &ServeStats {
        self.a.stats()
    }

    /// Stops both replicas. Idempotent, and implied by drop. Clients
    /// fail fast (empty answers) afterwards, like the plaintext
    /// [`ServeClient`](crate::ServeClient).
    pub fn shutdown(&self) {
        self.a.shutdown();
        self.b.shutdown();
    }
}

/// A private-query client: generates per-query [`QueryPair`]s, scatters
/// the halves to the two replicas, and recombines the answer shares.
///
/// Not `Clone` (it owns its RNG stream); create one per thread via
/// [`PrivateEngine::client`] with distinct seeds.
#[derive(Debug)]
pub struct PrivateClient {
    a: Arc<ServeEngine>,
    b: Arc<ServeEngine>,
    rng: StdRng,
    tracer: Tracer,
}

impl PrivateClient {
    /// Privately evaluates `QueryPPI(owner)`: bit-identical to the
    /// plaintext [`ServeClient::query`](crate::ServeClient::query) on
    /// the same snapshot, while neither replica learns `owner`. Unknown
    /// owners cost exactly one real query (a null pair scans the same
    /// rows) and answer empty; a shut-down engine answers empty.
    pub fn query(&mut self, owner: OwnerId) -> Vec<ProviderId> {
        self.query_batch(std::slice::from_ref(&owner))
            .pop()
            .unwrap_or_default()
    }

    /// Privately evaluates a batch: one oblivious pass per replica
    /// serves every vector in the batch (`result[i]` answers
    /// `owners[i]`), amortizing the linear scan that single-shot
    /// private queries pay per query.
    pub fn query_batch(&mut self, owners: &[OwnerId]) -> Vec<Vec<ProviderId>> {
        if owners.is_empty() {
            return Vec::new();
        }
        // Every span and payload below is owner-independent: the root
        // and generate/recombine payloads are the public batch length,
        // the scatter/scan payloads are snapshot-shape byte and word
        // counts. The `trace_obliviousness` test holds this door shut.
        let mut root = self.tracer.root("private.query");
        root.set_payload(owners.len() as u64);
        let rctx = root.ctx();
        for _ in 0..MAX_VERSION_RETRIES {
            // Row count is public metadata (the index's owner universe);
            // reading it from replica A costs no privacy.
            let rows = self.a.current().owners();
            let pairs: Vec<QueryPair> = {
                let mut gen = self.tracer.child(rctx, "pir.generate");
                gen.set_payload(owners.len() as u64);
                owners
                    .iter()
                    .map(|&o| {
                        if o.index() < rows {
                            QueryPair::generate(rows, o.index(), &mut self.rng)
                        } else {
                            QueryPair::null(rows, &mut self.rng)
                        }
                    })
                    .collect()
            };
            let to_a: Arc<Vec<SelectionVector>> =
                Arc::new(pairs.iter().map(|p| p.a.clone()).collect());
            let to_b: Arc<Vec<SelectionVector>> =
                Arc::new(pairs.iter().map(|p| p.b.clone()).collect());
            // Scatter to both replicas before gathering either, so the
            // two scans overlap.
            let pending_a = self.a.pir_submit_traced(to_a, rctx);
            let pending_b = self.b.pir_submit_traced(to_b, rctx);
            let (share_a, share_b) = match (pending_a.gather(), pending_b.gather()) {
                (Some(x), Some(y)) => (x, y),
                _ => return vec![Vec::new(); owners.len()],
            };
            if share_a.version != share_b.version {
                self.a.stats().note_version_retry();
                self.tracer.instant(rctx, "pir.version_retry", 1);
                continue;
            }
            let mut rec = self.tracer.child(rctx, "pir.recombine");
            rec.set_payload(owners.len() as u64);
            return recombine(&share_a, &share_b);
        }
        // Installs outpaced the retry budget; fail closed like a
        // shut-down engine rather than mixing versions.
        vec![Vec::new(); owners.len()]
    }
}

/// XORs two replicas' answer shares and decodes each recovered row.
/// Null pairs (unknown owners) recombine to the all-zero row, i.e. the
/// empty candidate list.
fn recombine(a: &PirServerAnswer, b: &PirServerAnswer) -> Vec<Vec<ProviderId>> {
    debug_assert_eq!(a.version, b.version);
    a.shares
        .iter()
        .zip(&b.shares)
        .map(|(sa, sb)| {
            let row: Vec<u64> = sa.iter().zip(sb).map(|(x, y)| x ^ y).collect();
            providers_in_row(&row, a.providers)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eppi_core::model::MembershipMatrix;
    use rand::Rng;

    fn random_index(seed: u64, providers: usize, owners: usize, p: f64) -> PublishedIndex {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut matrix = MembershipMatrix::new(providers, owners);
        for pr in 0..providers as u32 {
            for o in 0..owners as u32 {
                if rng.gen_bool(p) {
                    matrix.set(ProviderId(pr), OwnerId(o), true);
                }
            }
        }
        PublishedIndex::new(matrix, vec![0.2; owners])
    }

    fn config() -> ServeConfig {
        ServeConfig {
            shards: 3,
            queue_depth: 32,
            backend: eppi_core::rowstore::RowBackend::Dense,
            telemetry: true,
        }
    }

    /// A compressed-backend config must still yield dense replicas: the
    /// obliviousness invariant cannot be configured away.
    #[test]
    fn private_replicas_are_pinned_dense_whatever_the_config() {
        use eppi_core::rowstore::RowBackend;

        let index = random_index(49, 40, 60, 0.3);
        let registry = Registry::new();
        let cfg = ServeConfig {
            backend: RowBackend::Compressed,
            ..config()
        };
        let engine = PrivateEngine::start_with_registry(&index, cfg, &registry);
        assert_eq!(engine.replica_a().backend(), RowBackend::Dense);
        assert_eq!(engine.replica_b().backend(), RowBackend::Dense);
        assert_eq!(engine.replica_a().current().backend(), RowBackend::Dense);
        let mut client = engine.client(9);
        let plain = engine.replica_a().client();
        // Scan volume stays owner-independent under the pinned backend.
        let mut deltas = Vec::new();
        for o in [0u32, 30, 59, 9999] {
            let before = engine.stats().pir_scanned_words();
            let got = client.query(OwnerId(o));
            deltas.push(engine.stats().pir_scanned_words() - before);
            if o < 60 {
                assert_eq!(got, plain.query(OwnerId(o)), "owner {o}");
            } else {
                assert!(got.is_empty());
            }
        }
        assert!(
            deltas.windows(2).all(|w| w[0] == w[1]),
            "scan volume varies: {deltas:?}"
        );
        engine.shutdown();
    }

    #[test]
    fn private_answers_match_plaintext_for_every_owner() {
        let index = random_index(41, 70, 90, 0.25);
        let registry = Registry::new();
        let engine = PrivateEngine::start_with_registry(&index, config(), &registry);
        let mut client = engine.client(1);
        let plain = engine.replica_a().client();
        for o in 0..90u32 {
            assert_eq!(
                client.query(OwnerId(o)),
                plain.query(OwnerId(o)),
                "owner {o}"
            );
        }
        engine.shutdown();
    }

    #[test]
    fn batch_matches_singles_and_unknowns_are_empty() {
        let index = random_index(42, 33, 50, 0.4);
        let registry = Registry::new();
        let engine = PrivateEngine::start_with_registry(&index, config(), &registry);
        let mut client = engine.client(2);
        let owners: Vec<OwnerId> = vec![OwnerId(3), OwnerId(49), OwnerId(1000), OwnerId(3)];
        let batch = client.query_batch(&owners);
        assert_eq!(batch.len(), owners.len());
        let plain = engine.replica_a().client();
        assert_eq!(batch[0], plain.query(OwnerId(3)));
        assert_eq!(batch[1], plain.query(OwnerId(49)));
        assert!(batch[2].is_empty(), "unknown owner answers empty");
        assert_eq!(batch[3], batch[0]);
        engine.shutdown();
    }

    #[test]
    fn refresh_and_delta_keep_private_answers_current() {
        let before = random_index(43, 30, 40, 0.2);
        let registry = Registry::new();
        let engine = PrivateEngine::start_with_registry(&before, config(), &registry);
        let mut client = engine.client(3);

        let after = random_index(44, 30, 40, 0.6);
        engine.refresh(&after);
        let plain = engine.replica_a().client();
        for o in 0..40u32 {
            assert_eq!(client.query(OwnerId(o)), plain.query(OwnerId(o)));
        }

        // Delta-install one touched + one appended owner.
        let mut matrix = after.matrix().clone();
        matrix.grow_owners(41);
        matrix.set(ProviderId(2), OwnerId(5), true);
        matrix.set(ProviderId(7), OwnerId(40), true);
        let mut betas = after.betas().to_vec();
        betas.push(0.3);
        let next = PublishedIndex::new(matrix, betas);
        let v = engine
            .apply_delta(&next, &[OwnerId(5), OwnerId(40)])
            .unwrap();
        assert_eq!(v, 2);
        for o in 0..41u32 {
            assert_eq!(
                client.query(OwnerId(o)),
                plain.query(OwnerId(o)),
                "owner {o}"
            );
        }
        engine.shutdown();
    }

    #[test]
    fn scan_transcript_is_owner_independent() {
        let index = random_index(45, 64, 128, 0.3);
        let registry = Registry::new();
        let engine = PrivateEngine::start_with_registry(&index, config(), &registry);
        let mut client = engine.client(4);
        let words_per_query = |engine: &PrivateEngine| engine.stats().pir_scanned_words();
        let mut rng = StdRng::seed_from_u64(46);
        let mut deltas = Vec::new();
        for _ in 0..6 {
            let before = words_per_query(&engine);
            client.query(OwnerId(rng.gen_range(0..128)));
            deltas.push(words_per_query(&engine) - before);
        }
        // Unknown owner: same scan volume as any real one.
        let before = words_per_query(&engine);
        client.query(OwnerId(9999));
        deltas.push(words_per_query(&engine) - before);
        assert!(
            deltas.windows(2).all(|w| w[0] == w[1]),
            "scan volume varies with the queried owner: {deltas:?}"
        );
        engine.shutdown();
    }

    #[test]
    fn trace_obliviousness() {
        use eppi_trace::{TraceConfig, Tracer};

        let index = random_index(48, 48, 96, 0.3);
        let registry = Registry::new();
        let tracer = Tracer::new(TraceConfig::default());
        let engine = PrivateEngine::start_traced(&index, config(), &registry, tracer.clone());
        let mut client = engine.client(6);
        // Probe the extremes, the middle, and an owner beyond the
        // universe (the unknown-owner null pair). If trace structure
        // leaked anything about the target, these would differ.
        let probes = [OwnerId(0), OwnerId(47), OwnerId(95), OwnerId(4000)];
        for &owner in &probes {
            client.query(owner);
        }
        engine.shutdown();

        let log = tracer.collect();
        let traces = log.trace_ids();
        assert_eq!(traces.len(), probes.len(), "one trace per probe");
        let shapes: Vec<_> = traces
            .iter()
            .map(|&t| log.shape(t).expect("trace survived the ring"))
            .collect();

        // The first probe's trace must be the full private-query tree:
        // root -> generate, two scatters each fanning into one scan per
        // shard plus a gather, then the recombine.
        let tree = log.span_tree(traces[0]).unwrap();
        assert_eq!(tree.name, "private.query");
        assert_eq!(tree.count("pir.generate"), 1);
        assert_eq!(tree.count("pir.scatter"), 2);
        assert_eq!(tree.count("pir.scan"), 2 * config().shards);
        assert_eq!(tree.count("pir.gather"), 2);
        assert_eq!(tree.count("pir.recombine"), 1);

        // The obliviousness property itself: every probe's normalized
        // shape — names, kinds, payloads, child multisets — is
        // identical whichever owner was targeted.
        for (i, shape) in shapes.iter().enumerate().skip(1) {
            assert_eq!(
                shape, &shapes[0],
                "trace shape distinguishes probe {i} ({:?}) from probe 0",
                probes[i]
            );
        }
    }

    #[test]
    fn shutdown_fails_fast_with_empty_answers() {
        let index = random_index(47, 10, 12, 0.5);
        let registry = Registry::new();
        let engine = PrivateEngine::start_with_registry(&index, config(), &registry);
        let mut client = engine.client(5);
        engine.shutdown();
        engine.shutdown();
        assert!(client.query(OwnerId(0)).is_empty());
        assert!(client
            .query_batch(&[OwnerId(0), OwnerId(1)])
            .iter()
            .all(Vec::is_empty));
    }
}
