//! Sharded, query-optimized storage for a published index.
//!
//! `QueryPPI(t_j)` reads one owner *column* of the published matrix
//! `M'`, but [`eppi_core::model::MembershipMatrix`] is provider-row
//! major: a column read strides through `m` cache lines. The serving
//! layer therefore keeps a transposed copy — one packed `u64` provider
//! bitmap per owner, so a query is a single contiguous row read — and
//! partitions owners into shards by a [`ShardMap`] so independent
//! worker threads can each own a disjoint slice of the query space.
//!
//! Physical row storage is pluggable ([`eppi_core::rowstore`], DESIGN.md
//! §14): the plaintext serve path can hold shards as EWAH-compressed
//! bitmaps (~10× smaller at paper-like sparsity), while the PIR
//! replicas keep the dense packed layout their oblivious scans require.
//!
//! Owner growth is append-only: the [`ShardMap`] routes owners past the
//! build-time population into capacity-bounded *append shards*, so
//! [`ShardedIndex::apply_delta`] with a grown owner set adds shards
//! instead of rebuilding the ones already serving.

use eppi_core::model::{MembershipMatrix, OwnerId, ProviderId, PublishedIndex};
use eppi_core::rowstore::{CompressedRows, DenseRows, RowBackend, RowBlock, RowStore};
use eppi_index::codec::{CodecError, ServeShardRecord, ServeSnapshotRecord, ShardRowsRecord};
use eppi_pir::SelectionVector;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

const BLOCK_BITS: usize = 64;

/// Owners routed into one append shard before the next one opens. Large
/// enough that append shards amortize like base shards under load,
/// small enough that rebuilding the one partially-filled tail shard on
/// further growth stays cheap.
pub const DEFAULT_APPEND_CAPACITY: u32 = 8192;

/// A delta was submitted out of snapshot order: its version is not
/// exactly one past the snapshot it would build on. Installing it would
/// silently skip (or replay) an epoch — the serving layer's equivalent
/// of the lineage-order check the durable store enforces on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochOrderError {
    /// The only acceptable next version (`current + 1`).
    pub expected: u64,
    /// The version actually submitted.
    pub actual: u64,
}

impl fmt::Display for EpochOrderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "delta out of snapshot order: expected version {}, got {}",
            self.expected, self.actual
        )
    }
}

impl Error for EpochOrderError {}

/// Routes an owner to its shard: Fibonacci (multiplicative) hashing of
/// the owner id, folded onto `0..shards`. Dense owner ids therefore
/// spread evenly even when query workloads are rank-correlated.
///
/// # Panics
///
/// Panics if `shards == 0`.
pub fn shard_of(owner: OwnerId, shards: usize) -> usize {
    assert!(shards >= 1, "at least one shard required");
    let h = (owner.0 as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    // Multiply-shift onto the shard range: unbiased enough for routing
    // and much cheaper than a modulo on the hot path.
    ((h >> 32).wrapping_mul(shards as u64) >> 32) as usize
}

/// The extendable owner → shard routing function.
///
/// Owners known at build time (`id < base_owners`) hash onto the
/// `base_shards` base shards via [`shard_of`]. Owners appended later
/// fill *append shards* in arrival order, `append_capacity` owners per
/// shard: owner `o ≥ base_owners` lives in shard
/// `base_shards + (o − base_owners) / append_capacity`.
///
/// Routing is a pure function of the owner id and the three frozen
/// parameters — no per-epoch state — so every replica, the codec, and a
/// from-scratch rebuild of the same population all agree on placement,
/// and growth can only ever touch the one partially-filled tail shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    base_shards: u32,
    base_owners: u32,
    append_capacity: u32,
}

impl ShardMap {
    /// A map with `base_shards` hash-routed shards over the first
    /// `base_owners` owners and the default append capacity.
    ///
    /// # Panics
    ///
    /// Panics if `base_shards == 0`.
    pub fn new(base_shards: usize, base_owners: usize) -> Self {
        Self::with_append_capacity(base_shards, base_owners, DEFAULT_APPEND_CAPACITY)
    }

    /// As [`new`](Self::new) with an explicit append-shard capacity.
    ///
    /// # Panics
    ///
    /// Panics if `base_shards == 0` or `append_capacity == 0`.
    pub fn with_append_capacity(
        base_shards: usize,
        base_owners: usize,
        append_capacity: u32,
    ) -> Self {
        assert!(base_shards >= 1, "at least one shard required");
        assert!(append_capacity >= 1, "append capacity must be positive");
        ShardMap {
            base_shards: u32::try_from(base_shards).expect("shard count fits u32"),
            base_owners: u32::try_from(base_owners).expect("owner count fits u32"),
            append_capacity,
        }
    }

    /// Which shard `owner` lives in.
    pub fn shard_of_owner(&self, owner: OwnerId) -> usize {
        if owner.0 < self.base_owners {
            shard_of(owner, self.base_shards as usize)
        } else {
            (self.base_shards + (owner.0 - self.base_owners) / self.append_capacity) as usize
        }
    }

    /// Total shard count once `owners` owners are resident.
    pub fn shard_count_for(&self, owners: usize) -> usize {
        let appended = owners.saturating_sub(self.base_owners as usize);
        self.base_shards as usize + appended.div_ceil(self.append_capacity as usize)
    }

    /// Number of hash-routed base shards.
    pub fn base_shards(&self) -> usize {
        self.base_shards as usize
    }

    /// Owner population the base shards were hashed over.
    pub fn base_owners(&self) -> usize {
        self.base_owners as usize
    }

    /// Owners per append shard.
    pub fn append_capacity(&self) -> u32 {
        self.append_capacity
    }
}

/// Where an owner's row lives: which shard, and which slot inside it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SlotRef {
    shard: u32,
    slot: u32,
}

/// One shard: the provider bitmaps of the owners routed to it, held in
/// a backend-tagged [`RowBlock`] (dense packed words or EWAH-compressed
/// — see `eppi_core::rowstore`).
///
/// The row block sits behind an [`Arc`] so [`ShardedIndex::apply_delta`]
/// can build the next snapshot copy-on-write: shards with no touched
/// owner share their rows with the previous snapshot instead of copying
/// them. `PartialEq` still compares contents (with the usual pointer
/// fast path).
#[derive(Debug, Clone, PartialEq)]
struct Shard {
    /// Slot → owner, for reassembly and introspection.
    owners: Vec<OwnerId>,
    /// Packed provider bitmaps, shared across snapshots for untouched
    /// shards.
    rows: Arc<RowBlock>,
}

/// A published index re-laid out for serving: transposed to owner-major
/// provider bitmaps and partitioned into shards by a [`ShardMap`].
///
/// Query results are bit-for-bit identical to
/// [`PpiServer::query`](eppi_index::server::PpiServer::query) on the
/// same index (providers in ascending id order), whichever storage
/// backend holds the rows — asserted by property tests across random
/// matrices, shard counts, and backends.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedIndex {
    shards: Vec<Shard>,
    map: ShardMap,
    route: Vec<SlotRef>,
    providers: usize,
    betas: Vec<f64>,
    backend: RowBackend,
    version: u64,
}

impl ShardedIndex {
    /// Builds the sharded layout from a published index (version 0,
    /// dense rows).
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn from_index(index: &PublishedIndex, shards: usize) -> Self {
        Self::from_index_versioned(index, shards, 0)
    }

    /// Builds the dense sharded layout carrying an explicit snapshot
    /// version (the serve engine stamps each re-publication).
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn from_index_versioned(index: &PublishedIndex, shards: usize, version: u64) -> Self {
        Self::from_index_with(index, shards, RowBackend::Dense, version)
    }

    /// Builds the sharded layout with an explicit storage backend: the
    /// current owner population becomes the [`ShardMap`]'s base.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn from_index_with(
        index: &PublishedIndex,
        shards: usize,
        backend: RowBackend,
        version: u64,
    ) -> Self {
        let map = ShardMap::new(shards, index.matrix().owners());
        Self::from_index_mapped(index, map, backend, version)
    }

    /// Builds the sharded layout under an explicit [`ShardMap`] — the
    /// fully general constructor (codec restore, tests exercising
    /// append shards from scratch). Owners beyond the map's base route
    /// into append shards exactly as successive
    /// [`apply_delta`](Self::apply_delta) growth would place them.
    pub fn from_index_mapped(
        index: &PublishedIndex,
        map: ShardMap,
        backend: RowBackend,
        version: u64,
    ) -> Self {
        let matrix = index.matrix();
        let (m, n) = (matrix.providers(), matrix.owners());
        let words_per_row = m.div_ceil(BLOCK_BITS).max(1);
        let shards = map.shard_count_for(n);

        // Route every owner, counting per-shard slot occupancy.
        let mut route = Vec::with_capacity(n);
        let mut counts = vec![0u32; shards];
        for o in 0..n as u32 {
            let shard = map.shard_of_owner(OwnerId(o)) as u32;
            route.push(SlotRef {
                shard,
                slot: counts[shard as usize],
            });
            counts[shard as usize] += 1;
        }
        let mut owners_by_shard: Vec<Vec<OwnerId>> = counts
            .iter()
            .map(|&c| vec![OwnerId(0); c as usize])
            .collect();
        let mut rows_by_shard: Vec<Vec<u64>> = counts
            .iter()
            .map(|&c| vec![0u64; c as usize * words_per_row])
            .collect();
        for (o, slot_ref) in route.iter().enumerate() {
            owners_by_shard[slot_ref.shard as usize][slot_ref.slot as usize] = OwnerId(o as u32);
        }

        // Word-level transpose: walk each provider row once and scatter
        // its set bits into the owners' shard rows — O(ones + m·n/64)
        // instead of m·n single-bit probes.
        for p in 0..m {
            let (word, mask) = (p / BLOCK_BITS, 1u64 << (p % BLOCK_BITS));
            for (block, &w) in matrix.row_words(ProviderId(p as u32)).iter().enumerate() {
                let mut bits = w;
                while bits != 0 {
                    let o = block * BLOCK_BITS + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    if o >= n {
                        break;
                    }
                    let slot_ref = route[o];
                    rows_by_shard[slot_ref.shard as usize]
                        [slot_ref.slot as usize * words_per_row + word] |= mask;
                }
            }
        }

        ShardedIndex {
            shards: owners_by_shard
                .into_iter()
                .zip(rows_by_shard)
                .map(|(owners, rows)| Shard {
                    owners,
                    rows: Arc::new(RowBlock::build(backend, rows, m)),
                })
                .collect(),
            map,
            route,
            providers: m,
            betas: index.betas().to_vec(),
            backend,
            version,
        }
    }

    /// Builds the *next* snapshot from this one copy-on-write: only the
    /// shards holding a `touched` owner get fresh row blocks, and
    /// appended owners route into capacity-bounded append shards past
    /// the existing ones — growth never rebuilds a full shard already
    /// serving (only the partially-filled tail append shard, if any,
    /// absorbs more owners). Every other shard shares its rows with
    /// `self` via [`Arc`] — verifiable with
    /// [`shares_rows_with`](Self::shares_rows_with).
    ///
    /// `index` is the next epoch's published index. Owners may only be
    /// appended (`index.matrix().owners() >= self.owners()`); the
    /// [`ShardMap`]'s parameters are frozen at first build, so a
    /// delta-grown snapshot and
    /// [`from_index_mapped`](Self::from_index_mapped) over the same map
    /// and population lay out identically.
    ///
    /// # Errors
    ///
    /// [`EpochOrderError`] unless `version` is exactly this snapshot's
    /// version + 1 — a skipped or replayed epoch would serve a state
    /// the lineage never published.
    ///
    /// # Panics
    ///
    /// Panics if the provider count changed, the owner count shrank, or
    /// a touched owner is out of range of the new index.
    pub fn apply_delta(
        &self,
        index: &PublishedIndex,
        touched: &[OwnerId],
        version: u64,
    ) -> Result<ShardedIndex, EpochOrderError> {
        if version != self.version + 1 {
            return Err(EpochOrderError {
                expected: self.version + 1,
                actual: version,
            });
        }
        let matrix = index.matrix();
        let (m, n_new) = (matrix.providers(), matrix.owners());
        assert_eq!(m, self.providers, "provider count must not change");
        let n_old = self.route.len();
        assert!(
            n_new >= n_old,
            "owners cannot shrink ({n_old} -> {n_new}); withdrawn owners keep their slot"
        );
        let shards = self.map.shard_count_for(n_new);
        let words_per_row = m.div_ceil(BLOCK_BITS).max(1);

        // Route appended owners; the map sends them into append shards
        // at or past the current tail, never into a full shard.
        let mut route = self.route.clone();
        let mut counts: Vec<u32> = self.shards.iter().map(|s| s.owners.len() as u32).collect();
        counts.resize(shards, 0);
        let mut added: Vec<Vec<OwnerId>> = vec![Vec::new(); shards];
        for o in n_old..n_new {
            let shard = self.map.shard_of_owner(OwnerId(o as u32)) as u32;
            route.push(SlotRef {
                shard,
                slot: counts[shard as usize],
            });
            counts[shard as usize] += 1;
            added[shard as usize].push(OwnerId(o as u32));
        }
        // Touched pre-existing owners, grouped by shard.
        let mut dirty: Vec<Vec<OwnerId>> = vec![Vec::new(); shards];
        for &owner in touched {
            assert!(
                owner.index() < n_new,
                "touched owner {} out of range {n_new}",
                owner.0
            );
            if owner.index() < n_old {
                dirty[route[owner.index()].shard as usize].push(owner);
            }
        }

        let new_shards: Vec<Shard> = (0..shards)
            .map(|s| {
                let existing = self.shards.get(s);
                let clean = dirty[s].is_empty() && added[s].is_empty();
                if let (Some(shard), true) = (existing, clean) {
                    // Untouched shard: share the row block, zero copies.
                    return shard.clone();
                }
                // Rebuild: decompress the previous block (if any), grow
                // it, splice in the dirty and appended owners' columns,
                // then re-encode in this layout's backend.
                let (mut rows, mut owners) = match existing {
                    Some(shard) => (shard.rows.to_dense_words(), shard.owners.clone()),
                    None => (Vec::new(), Vec::new()),
                };
                rows.resize(counts[s] as usize * words_per_row, 0);
                owners.extend(&added[s]);
                for &owner in dirty[s].iter().chain(&added[s]) {
                    let slot = route[owner.index()].slot as usize;
                    let column = matrix.column_words(owner);
                    rows[slot * words_per_row..(slot + 1) * words_per_row]
                        .copy_from_slice(&column[..words_per_row]);
                }
                Shard {
                    owners,
                    rows: Arc::new(RowBlock::build(self.backend, rows, m)),
                }
            })
            .collect();

        Ok(ShardedIndex {
            shards: new_shards,
            map: self.map,
            route,
            providers: m,
            betas: index.betas().to_vec(),
            backend: self.backend,
            version,
        })
    }

    /// `true` if shard `s` of `self` and `other` share the same
    /// physical row block (the copy-on-write reuse check:
    /// `Arc::ptr_eq`, not content equality).
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range of either index.
    pub fn shares_rows_with(&self, other: &ShardedIndex, s: usize) -> bool {
        Arc::ptr_eq(&self.shards[s].rows, &other.shards[s].rows)
    }

    /// Number of shards currently resident (base + append).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The frozen owner → shard routing parameters.
    pub fn shard_map(&self) -> ShardMap {
        self.map
    }

    /// The physical row-storage backend every shard uses.
    pub fn backend(&self) -> RowBackend {
        self.backend
    }

    /// Heap bytes resident in this snapshot's row storage (all shards'
    /// row blocks plus the routing table and slot→owner maps) — the
    /// quantity the `serve.index_bytes` gauge reports.
    pub fn resident_bytes(&self) -> usize {
        let rows: usize = self.shards.iter().map(|s| s.rows.resident_bytes()).sum();
        let owners: usize = self
            .shards
            .iter()
            .map(|s| s.owners.capacity() * std::mem::size_of::<OwnerId>())
            .sum();
        rows + owners + self.route.capacity() * std::mem::size_of::<SlotRef>()
    }

    /// Number of owners indexed.
    pub fn owners(&self) -> usize {
        self.route.len()
    }

    /// Number of providers in the network.
    pub fn providers(&self) -> usize {
        self.providers
    }

    /// The per-owner publishing probabilities (public data).
    pub fn betas(&self) -> &[f64] {
        &self.betas
    }

    /// The snapshot version stamped at construction.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of owners resident in shard `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn shard_len(&self, s: usize) -> usize {
        self.shards[s].owners.len()
    }

    /// Evaluates `QueryPPI(owner)`: the published candidate providers in
    /// ascending id order, bit-identical to the unsharded row lookup.
    ///
    /// # Panics
    ///
    /// Panics if `owner` is out of range.
    pub fn query(&self, owner: OwnerId) -> Vec<ProviderId> {
        self.try_query(owner)
            .unwrap_or_else(|| panic!("owner {} out of range {}", owner.0, self.route.len()))
    }

    /// As [`query`](Self::query), but `None` for an unknown owner — the
    /// non-panicking form the serve engine uses on untrusted input.
    pub fn try_query(&self, owner: OwnerId) -> Option<Vec<ProviderId>> {
        let slot_ref = *self.route.get(owner.index())?;
        Some(
            self.shards[slot_ref.shard as usize]
                .rows
                .providers_in_slot(slot_ref.slot as usize),
        )
    }

    /// Words per packed provider row (`ceil(m / 64)`, minimum 1) — the
    /// accumulator size a PIR scan over this snapshot needs.
    pub fn words_per_row(&self) -> usize {
        self.providers.div_ceil(BLOCK_BITS).max(1)
    }

    /// Obliviously XOR-scans shard `s` for a batch of PIR selection
    /// vectors, accumulating each query's partial answer share into
    /// `accs[i]`. The kernel reads every resident row under a
    /// branchless mask (`eppi_pir::xor_scan_indexed_batch`), so the
    /// scan shape depends only on the shard's size — never on which
    /// owner the vectors select. Partial shares from all shards XOR
    /// together into the server's full answer share (XOR is
    /// associative and each owner is resident in exactly one shard).
    ///
    /// Returns the number of `u64` words scanned.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's rows are not [`RowBackend::Dense`]:
    /// decompressing on the scan path would make memory traffic depend
    /// on row content, voiding the obliviousness invariant, so a
    /// compressed snapshot fails loudly instead of scanning. (The
    /// private serve mode pins its replicas to the dense backend.)
    /// Also panics if `s` is out of range, `queries` and `accs` differ
    /// in length, or an accumulator is not
    /// [`words_per_row`](Self::words_per_row) words long.
    pub fn pir_scan_shard(
        &self,
        s: usize,
        queries: &[SelectionVector],
        accs: &mut [Vec<u64>],
    ) -> u64 {
        let shard = &self.shards[s];
        let dense = shard.rows.as_dense().expect(
            "oblivious scans require the dense row backend; \
             compressed snapshots must not serve PIR",
        );
        eppi_pir::xor_scan_indexed_batch(dense, self.words_per_row(), &shard.owners, queries, accs)
    }

    /// Batched queries, result `i` answering `owners[i]`.
    ///
    /// # Panics
    ///
    /// Panics if any owner is out of range.
    pub fn query_batch(&self, owners: &[OwnerId]) -> Vec<Vec<ProviderId>> {
        owners.iter().map(|&o| self.query(o)).collect()
    }

    /// Reassembles the published index this layout was built from
    /// (matrix + βs). Used by codec round-trip tests to show the shard
    /// transform is lossless, and to compare delta-grown snapshots
    /// against from-scratch builds whose shard layouts differ.
    pub fn reassemble(&self) -> PublishedIndex {
        let mut matrix = MembershipMatrix::new(self.providers, self.route.len());
        let words_per_row = self.words_per_row();
        let mut row = vec![0u64; words_per_row];
        for shard in &self.shards {
            for (slot, &owner) in shard.owners.iter().enumerate() {
                shard.rows.read_row_into(slot, &mut row);
                for (block, &w) in row.iter().enumerate() {
                    let mut bits = w;
                    while bits != 0 {
                        let p = block * BLOCK_BITS + bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        matrix.set(ProviderId(p as u32), owner, true);
                    }
                }
            }
        }
        PublishedIndex::new(matrix, self.betas.clone())
    }

    /// Snapshots this layout into the codec's version-3 record — the
    /// persistable form `eppi_durability::serve_cache` writes so a
    /// serve node can boot warm without re-sharding (DESIGN.md §14).
    /// Physical layout is preserved exactly: dense blocks keep their
    /// packed words, compressed blocks keep their token streams, and
    /// the [`ShardMap`] manifest rides along so restored snapshots
    /// route (and grow) identically.
    pub fn to_record(&self) -> ServeSnapshotRecord {
        let shards = self
            .shards
            .iter()
            .map(|shard| ServeShardRecord {
                owners: shard.owners.iter().map(|o| o.0).collect(),
                rows: match shard.rows.as_ref() {
                    RowBlock::Dense(d) => ShardRowsRecord::Dense(d.words().to_vec()),
                    RowBlock::Compressed(c) => ShardRowsRecord::Compressed {
                        stream: c.stream().to_vec(),
                        offsets: c.offsets().to_vec(),
                    },
                },
            })
            .collect();
        ServeSnapshotRecord {
            snapshot_version: self.version,
            backend: self.backend,
            providers: self.providers as u32,
            betas: self.betas.clone(),
            base_shards: self.map.base_shards() as u32,
            base_owners: self.map.base_owners() as u32,
            append_capacity: self.map.append_capacity(),
            shards,
        }
    }

    /// Restores a layout from a version-3 record, re-deriving the
    /// routing table and validating the record against the shard map:
    /// every owner must sit in exactly the shard and slot the map
    /// assigns it, and every row block must be well-formed for the
    /// declared backend. A record that decoded cleanly (checksum, βs)
    /// but was assembled inconsistently is rejected here.
    ///
    /// # Errors
    ///
    /// [`CodecError::InvalidShard`] when a shard's owners disagree with
    /// the map's routing, a dense block is mis-sized, or a compressed
    /// stream fails structural validation; [`CodecError::InvalidField`]
    /// when the manifest itself is degenerate (zero base shards or
    /// append capacity, or a shard count disagreeing with the owner
    /// population).
    pub fn from_record(record: &ServeSnapshotRecord) -> Result<Self, CodecError> {
        if record.base_shards == 0 || record.append_capacity == 0 {
            return Err(CodecError::InvalidField {
                field: "shard map manifest",
            });
        }
        let map = ShardMap::with_append_capacity(
            record.base_shards as usize,
            record.base_owners as usize,
            record.append_capacity,
        );
        let n = record.betas.len();
        if record.shards.len() != map.shard_count_for(n) {
            return Err(CodecError::InvalidField {
                field: "shard count",
            });
        }
        let providers = record.providers as usize;
        let words_per_row = providers.div_ceil(BLOCK_BITS).max(1);

        // Re-derive the canonical route, then check each shard holds
        // exactly the owners the map sends it, in slot order.
        let mut route = Vec::with_capacity(n);
        let mut counts = vec![0u32; record.shards.len()];
        for o in 0..n as u32 {
            let shard = map.shard_of_owner(OwnerId(o)) as u32;
            route.push(SlotRef {
                shard,
                slot: counts[shard as usize],
            });
            counts[shard as usize] += 1;
        }
        let mut shards = Vec::with_capacity(record.shards.len());
        for (s, shard) in record.shards.iter().enumerate() {
            if shard.owners.len() != counts[s] as usize {
                return Err(CodecError::InvalidShard {
                    shard: s as u32,
                    reason: "owner count disagrees with the shard map",
                });
            }
            for (slot, &o) in shard.owners.iter().enumerate() {
                let ok = (o as usize) < n
                    && route[o as usize]
                        == SlotRef {
                            shard: s as u32,
                            slot: slot as u32,
                        };
                if !ok {
                    return Err(CodecError::InvalidShard {
                        shard: s as u32,
                        reason: "owner routed to a different shard or slot",
                    });
                }
            }
            let rows = match (&shard.rows, record.backend) {
                (ShardRowsRecord::Dense(words), RowBackend::Dense) => {
                    if words.len() != shard.owners.len() * words_per_row {
                        return Err(CodecError::InvalidShard {
                            shard: s as u32,
                            reason: "dense block not sized to its slots",
                        });
                    }
                    RowBlock::Dense(DenseRows::from_words(words.clone(), providers))
                }
                (ShardRowsRecord::Compressed { stream, offsets }, RowBackend::Compressed) => {
                    if offsets.len() != shard.owners.len() + 1 {
                        return Err(CodecError::InvalidShard {
                            shard: s as u32,
                            reason: "offset table not sized to its slots",
                        });
                    }
                    match CompressedRows::from_parts(stream.clone(), offsets.clone(), providers) {
                        Ok(rows) => RowBlock::Compressed(rows),
                        Err(reason) => {
                            return Err(CodecError::InvalidShard {
                                shard: s as u32,
                                reason,
                            })
                        }
                    }
                }
                _ => {
                    return Err(CodecError::InvalidShard {
                        shard: s as u32,
                        reason: "row variant disagrees with the snapshot backend",
                    })
                }
            };
            shards.push(Shard {
                owners: shard.owners.iter().map(|&o| OwnerId(o)).collect(),
                rows: Arc::new(rows),
            });
        }

        Ok(ShardedIndex {
            shards,
            map,
            route,
            providers,
            betas: record.betas.clone(),
            backend: record.backend,
            version: record.snapshot_version,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eppi_core::rows::providers_in_row;
    use eppi_index::server::PpiServer;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_index(rng: &mut StdRng, providers: usize, owners: usize) -> PublishedIndex {
        let mut matrix = MembershipMatrix::new(providers, owners);
        for p in 0..providers as u32 {
            for o in 0..owners as u32 {
                if rng.gen_bool(0.3) {
                    matrix.set(ProviderId(p), OwnerId(o), true);
                }
            }
        }
        let betas: Vec<f64> = (0..owners).map(|_| rng.gen::<f64>()).collect();
        PublishedIndex::new(matrix, betas)
    }

    #[test]
    fn shard_routing_is_total_and_stable() {
        for shards in 1..=16 {
            for o in 0..1000u32 {
                let s = shard_of(OwnerId(o), shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(OwnerId(o), shards));
            }
        }
    }

    #[test]
    fn shard_routing_spreads_dense_ids() {
        let shards = 8;
        let mut counts = vec![0usize; shards];
        for o in 0..8000u32 {
            counts[shard_of(OwnerId(o), shards)] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!((700..1300).contains(&c), "shard {s} holds {c} of 8000");
        }
    }

    #[test]
    fn shard_map_appends_past_the_base() {
        let map = ShardMap::with_append_capacity(4, 100, 8);
        for o in 0..100u32 {
            assert!(map.shard_of_owner(OwnerId(o)) < 4);
        }
        assert_eq!(map.shard_of_owner(OwnerId(100)), 4);
        assert_eq!(map.shard_of_owner(OwnerId(107)), 4);
        assert_eq!(map.shard_of_owner(OwnerId(108)), 5);
        assert_eq!(map.shard_count_for(100), 4);
        assert_eq!(map.shard_count_for(101), 5);
        assert_eq!(map.shard_count_for(108), 5);
        assert_eq!(map.shard_count_for(109), 6);
    }

    #[test]
    fn query_matches_unsharded_server_across_backends() {
        let mut rng = StdRng::seed_from_u64(11);
        for backend in [RowBackend::Dense, RowBackend::Compressed] {
            for shards in [1, 2, 3, 7, 16] {
                let index = random_index(&mut rng, 70, 90);
                let server = PpiServer::new(index.clone());
                let sharded = ShardedIndex::from_index_with(&index, shards, backend, 0);
                assert_eq!(sharded.shard_count(), shards);
                assert_eq!(sharded.backend(), backend);
                for o in 0..90u32 {
                    assert_eq!(
                        sharded.query(OwnerId(o)),
                        server.query(OwnerId(o)),
                        "owner {o}, {shards} shards, {backend}"
                    );
                }
            }
        }
    }

    #[test]
    fn batch_matches_singles() {
        let mut rng = StdRng::seed_from_u64(12);
        let index = random_index(&mut rng, 40, 30);
        let sharded = ShardedIndex::from_index(&index, 4);
        let owners: Vec<OwnerId> = (0..30).map(OwnerId).collect();
        let batched = sharded.query_batch(&owners);
        for (o, row) in owners.iter().zip(&batched) {
            assert_eq!(row, &sharded.query(*o));
        }
    }

    #[test]
    fn reassemble_roundtrips() {
        let mut rng = StdRng::seed_from_u64(13);
        let index = random_index(&mut rng, 65, 129);
        for backend in [RowBackend::Dense, RowBackend::Compressed] {
            for shards in [1, 5, 16] {
                let back = ShardedIndex::from_index_with(&index, shards, backend, 0).reassemble();
                assert_eq!(&back, &index, "{shards} shards, {backend}");
            }
        }
    }

    #[test]
    fn compressed_resident_bytes_shrink_sparse_indexes() {
        // Paper-like sparsity: each owner names a handful of the 10k
        // providers, so compressed rows should sit far below dense.
        let mut rng = StdRng::seed_from_u64(14);
        let providers = 10_000;
        let owners = 256;
        let mut matrix = MembershipMatrix::new(providers, owners);
        for o in 0..owners as u32 {
            for _ in 0..12 {
                matrix.set(
                    ProviderId(rng.gen_range(0..providers as u32)),
                    OwnerId(o),
                    true,
                );
            }
        }
        let index = PublishedIndex::new(matrix, vec![0.5; owners]);
        let dense = ShardedIndex::from_index_with(&index, 4, RowBackend::Dense, 0);
        let comp = ShardedIndex::from_index_with(&index, 4, RowBackend::Compressed, 0);
        let ratio = comp.resident_bytes() as f64 / dense.resident_bytes() as f64;
        assert!(ratio < 0.5, "compressed/dense resident ratio {ratio:.3}");
        for o in 0..owners as u32 {
            assert_eq!(comp.query(OwnerId(o)), dense.query(OwnerId(o)));
        }
    }

    #[test]
    fn try_query_handles_unknown_owner() {
        let index = PublishedIndex::new(MembershipMatrix::new(3, 2), vec![0.0, 0.0]);
        let sharded = ShardedIndex::from_index(&index, 2);
        assert_eq!(sharded.try_query(OwnerId(1)), Some(vec![]));
        assert_eq!(sharded.try_query(OwnerId(2)), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn query_out_of_range_panics() {
        let index = PublishedIndex::new(MembershipMatrix::new(1, 1), vec![0.0]);
        ShardedIndex::from_index(&index, 1).query(OwnerId(1));
    }

    #[test]
    fn version_is_stamped() {
        let index = PublishedIndex::new(MembershipMatrix::new(1, 1), vec![0.5]);
        assert_eq!(ShardedIndex::from_index(&index, 1).version(), 0);
        assert_eq!(
            ShardedIndex::from_index_versioned(&index, 1, 9).version(),
            9
        );
    }

    /// Grows an index by two owners and flips a few columns; the delta
    /// must answer exactly like a from-scratch build of the grown index
    /// under the *same* shard map (growth adds append shards, so the
    /// layout legitimately differs from a fresh build whose base covers
    /// all owners — equivalence is semantic: reassembly and queries).
    #[test]
    fn apply_delta_equals_from_scratch_build() {
        let mut rng = StdRng::seed_from_u64(21);
        let index = random_index(&mut rng, 70, 90);
        for backend in [RowBackend::Dense, RowBackend::Compressed] {
            for shards in [1, 3, 8] {
                let base = ShardedIndex::from_index_with(&index, shards, backend, 1);
                // Flip a few owners' columns, grow by two owners, change βs.
                let mut matrix = index.matrix().clone();
                matrix.grow_owners(92);
                let touched = [OwnerId(5), OwnerId(41), OwnerId(90), OwnerId(91)];
                for &o in &touched {
                    for p in 0..70u32 {
                        matrix.set(ProviderId(p), o, (p + o.0) % 3 == 0);
                    }
                }
                let mut betas = index.betas().to_vec();
                betas.extend([0.2, 0.9]);
                betas[5] = 0.7;
                let next_index = PublishedIndex::new(matrix, betas);

                let next = base.apply_delta(&next_index, &touched, 2).unwrap();
                // Same map + same population ⇒ bit-identical layout.
                let scratch =
                    ShardedIndex::from_index_mapped(&next_index, base.shard_map(), backend, 2);
                assert_eq!(next, scratch, "{shards} shards, {backend}");
                assert_eq!(next.reassemble(), next_index);
                assert_eq!(next.version(), 2);
                // The two appended owners opened one append shard.
                assert_eq!(next.shard_count(), shards + 1);
                for o in 0..92u32 {
                    assert_eq!(
                        next.try_query(OwnerId(o)),
                        scratch.try_query(OwnerId(o)),
                        "owner {o}"
                    );
                }
            }
        }
    }

    #[test]
    fn apply_delta_shares_untouched_shard_rows() {
        let mut rng = StdRng::seed_from_u64(22);
        let index = random_index(&mut rng, 40, 200);
        let shards = 8;
        let base = ShardedIndex::from_index(&index, shards);
        // Touch exactly one owner: only its shard may reallocate.
        let touched = [OwnerId(17)];
        let hot = shard_of(touched[0], shards);
        let mut matrix = index.matrix().clone();
        matrix.set(ProviderId(0), touched[0], true);
        let next_index = PublishedIndex::new(matrix, index.betas().to_vec());
        let next = base.apply_delta(&next_index, &touched, 1).unwrap();
        for s in 0..shards {
            assert_eq!(
                next.shares_rows_with(&base, s),
                s != hot,
                "shard {s} (hot = {hot})"
            );
        }
        // The shared snapshot still answers like a from-scratch build.
        let scratch = ShardedIndex::from_index_versioned(&next_index, shards, 1);
        assert_eq!(next, scratch);
    }

    /// The carried-over re-shard item, closed: growing the owner set
    /// with no touched columns appends new shards and leaves every
    /// pre-existing shard's rows physically shared (`Arc::ptr_eq`).
    #[test]
    fn growth_appends_shards_without_touching_existing_ones() {
        let mut rng = StdRng::seed_from_u64(25);
        let index = random_index(&mut rng, 50, 60);
        for backend in [RowBackend::Dense, RowBackend::Compressed] {
            let map = ShardMap::with_append_capacity(4, 60, 8);
            let base = ShardedIndex::from_index_mapped(&index, map, backend, 0);
            assert_eq!(base.shard_count(), 4);

            // Grow by 20 owners: 8 + 8 + 4 → three new append shards.
            let mut matrix = index.matrix().clone();
            matrix.grow_owners(80);
            for o in 60..80u32 {
                for p in 0..50u32 {
                    if (p * 7 + o) % 5 == 0 {
                        matrix.set(ProviderId(p), OwnerId(o), true);
                    }
                }
            }
            let mut betas = index.betas().to_vec();
            betas.extend(std::iter::repeat_n(0.4, 20));
            let next_index = PublishedIndex::new(matrix.clone(), betas.clone());
            let next = base.apply_delta(&next_index, &[], 1).unwrap();
            assert_eq!(next.shard_count(), 7);
            for s in 0..4 {
                assert!(
                    next.shares_rows_with(&base, s),
                    "base shard {s} was rebuilt by append-only growth ({backend})"
                );
            }
            // Appended owners land in arrival order at capacity 8.
            assert_eq!(next.shard_len(4), 8);
            assert_eq!(next.shard_len(5), 8);
            assert_eq!(next.shard_len(6), 4);
            assert_eq!(next.reassemble(), next_index);

            // Growing again fills the partial tail shard (6) and opens
            // another; full append shards 4 and 5 stay shared too.
            let mut matrix2 = matrix.clone();
            matrix2.grow_owners(90);
            let mut betas2 = betas.clone();
            betas2.extend(std::iter::repeat_n(0.4, 10));
            let next2 = next
                .apply_delta(&PublishedIndex::new(matrix2, betas2), &[], 2)
                .unwrap();
            assert_eq!(next2.shard_count(), 8);
            for s in 0..6 {
                assert!(next2.shares_rows_with(&next, s), "shard {s} rebuilt");
            }
            assert!(!next2.shares_rows_with(&next, 6), "tail shard must grow");
            assert_eq!(next2.shard_len(6), 8);
            assert_eq!(next2.shard_len(7), 6);
        }
    }

    #[test]
    fn empty_delta_shares_every_shard() {
        let mut rng = StdRng::seed_from_u64(23);
        let index = random_index(&mut rng, 30, 50);
        let base = ShardedIndex::from_index(&index, 4);
        let next = base.apply_delta(&index, &[], 1).unwrap();
        for s in 0..4 {
            assert!(next.shares_rows_with(&base, s), "shard {s} copied");
        }
        assert_eq!(next.version(), 1);
    }

    #[test]
    fn out_of_order_deltas_are_rejected() {
        let mut rng = StdRng::seed_from_u64(24);
        let index = random_index(&mut rng, 30, 50);
        let base = ShardedIndex::from_index_versioned(&index, 4, 3);
        // Skipping ahead, replaying the current version, and going
        // backwards are all epoch-order violations.
        for bad in [0, 3, 5, 7] {
            let err = base.apply_delta(&index, &[], bad).unwrap_err();
            assert_eq!((err.expected, err.actual), (4, bad));
            assert!(err.to_string().contains("expected version 4"));
        }
        assert_eq!(base.apply_delta(&index, &[], 4).unwrap().version(), 4);
    }

    #[test]
    fn pir_scan_across_shards_recovers_any_row() {
        use eppi_pir::QueryPair;

        let mut rng = StdRng::seed_from_u64(31);
        let index = random_index(&mut rng, 70, 90);
        let sharded = ShardedIndex::from_index(&index, 4);
        let wpr = sharded.words_per_row();
        let rows = sharded.owners();
        for target in [0usize, 41, 89] {
            let pair = QueryPair::generate(rows, target, &mut rng);
            let mut share_a = vec![vec![0u64; wpr]];
            let mut share_b = vec![vec![0u64; wpr]];
            let mut words = 0;
            for s in 0..sharded.shard_count() {
                words += sharded.pir_scan_shard(s, std::slice::from_ref(&pair.a), &mut share_a);
                sharded.pir_scan_shard(s, std::slice::from_ref(&pair.b), &mut share_b);
            }
            // Every scan covers every resident row, whatever the target.
            assert_eq!(words, (rows * wpr) as u64);
            let row: Vec<u64> = share_a[0]
                .iter()
                .zip(&share_b[0])
                .map(|(a, b)| a ^ b)
                .collect();
            assert_eq!(
                providers_in_row(&row, sharded.providers()),
                sharded.query(OwnerId(target as u32)),
                "target {target}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "oblivious scans require the dense row backend")]
    fn pir_scan_refuses_compressed_snapshots() {
        let index = PublishedIndex::new(MembershipMatrix::new(3, 2), vec![0.0; 2]);
        let sharded = ShardedIndex::from_index_with(&index, 1, RowBackend::Compressed, 0);
        let mut accs = vec![vec![0u64; sharded.words_per_row()]];
        let pair = eppi_pir::QueryPair::generate(2, 0, &mut StdRng::seed_from_u64(1));
        sharded.pir_scan_shard(0, std::slice::from_ref(&pair.a), &mut accs);
    }

    #[test]
    #[should_panic(expected = "provider count must not change")]
    fn apply_delta_rejects_provider_growth() {
        let index = PublishedIndex::new(MembershipMatrix::new(3, 2), vec![0.0; 2]);
        let grown = PublishedIndex::new(MembershipMatrix::new(4, 2), vec![0.0; 2]);
        let _ = ShardedIndex::from_index(&index, 2).apply_delta(&grown, &[], 1);
    }

    /// The v3 record round-trip is the identity on the full struct —
    /// routing, shard map, physical layout, βs, version — for both
    /// backends, including a snapshot that has grown append shards.
    #[test]
    fn v3_record_roundtrips_grown_snapshots_in_both_backends() {
        let mut rng = StdRng::seed_from_u64(0xc0dec);
        for backend in [RowBackend::Dense, RowBackend::Compressed] {
            let base = random_index(&mut rng, 70, 60);
            let map = ShardMap::with_append_capacity(4, 60, 8);
            let sharded = ShardedIndex::from_index_mapped(&base, map, backend, 1);
            let grown_index = random_index(&mut rng, 70, 80);
            let touched: Vec<OwnerId> = (60..80).map(OwnerId).collect();
            let grown = sharded.apply_delta(&grown_index, &touched, 2).unwrap();
            assert!(grown.shard_count() > grown.shard_map().base_shards());

            for snapshot in [&sharded, &grown] {
                let record = snapshot.to_record();
                let bytes = eppi_index::codec::encode_serve_snapshot(&record);
                let decoded = eppi_index::codec::decode_serve_snapshot(&bytes).unwrap();
                let restored = ShardedIndex::from_record(&decoded).unwrap();
                assert_eq!(&restored, snapshot, "{backend}");
                assert_eq!(restored.reassemble(), snapshot.reassemble());
            }
        }
    }

    /// `from_record` rejects records whose shards disagree with the
    /// map's routing or whose blocks are structurally unsound, even
    /// when the bytes themselves decode cleanly.
    #[test]
    fn from_record_rejects_inconsistent_records() {
        let mut rng = StdRng::seed_from_u64(0xbad);
        let index = random_index(&mut rng, 40, 30);
        let sharded = ShardedIndex::from_index_with(&index, 3, RowBackend::Dense, 0);

        let mut swapped = sharded.to_record();
        let o = swapped.shards[0].owners[0];
        swapped.shards[0].owners[0] = swapped.shards[1].owners[0];
        swapped.shards[1].owners[0] = o;
        assert!(matches!(
            ShardedIndex::from_record(&swapped),
            Err(CodecError::InvalidShard { .. })
        ));

        let mut short = sharded.to_record();
        if let ShardRowsRecord::Dense(words) = &mut short.shards[2].rows {
            words.pop();
        }
        assert!(matches!(
            ShardedIndex::from_record(&short),
            Err(CodecError::InvalidShard { shard: 2, .. })
        ));

        let mut degenerate = sharded.to_record();
        degenerate.append_capacity = 0;
        assert!(matches!(
            ShardedIndex::from_record(&degenerate),
            Err(CodecError::InvalidField { .. })
        ));

        let mut miscounted = sharded.to_record();
        miscounted.shards.pop();
        assert!(matches!(
            ShardedIndex::from_record(&miscounted),
            Err(CodecError::InvalidField { .. })
        ));
    }
}
