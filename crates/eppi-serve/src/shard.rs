//! Sharded, query-optimized storage for a published index.
//!
//! `QueryPPI(t_j)` reads one owner *column* of the published matrix
//! `M'`, but [`eppi_core::model::MembershipMatrix`] is provider-row
//! major: a column read strides through `m` cache lines. The serving
//! layer therefore keeps a transposed copy — one packed `u64` provider
//! bitmap per owner, so a query is a single contiguous row read — and
//! partitions owners into `S` shards by owner hash so independent
//! worker threads can each own a disjoint slice of the query space.

use eppi_core::model::{MembershipMatrix, OwnerId, ProviderId, PublishedIndex};
use eppi_core::rows::providers_in_row;
use eppi_pir::SelectionVector;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

const BLOCK_BITS: usize = 64;

/// A delta was submitted out of snapshot order: its version is not
/// exactly one past the snapshot it would build on. Installing it would
/// silently skip (or replay) an epoch — the serving layer's equivalent
/// of the lineage-order check the durable store enforces on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochOrderError {
    /// The only acceptable next version (`current + 1`).
    pub expected: u64,
    /// The version actually submitted.
    pub actual: u64,
}

impl fmt::Display for EpochOrderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "delta out of snapshot order: expected version {}, got {}",
            self.expected, self.actual
        )
    }
}

impl Error for EpochOrderError {}

/// Routes an owner to its shard: Fibonacci (multiplicative) hashing of
/// the owner id, folded onto `0..shards`. Dense owner ids therefore
/// spread evenly even when query workloads are rank-correlated.
///
/// # Panics
///
/// Panics if `shards == 0`.
pub fn shard_of(owner: OwnerId, shards: usize) -> usize {
    assert!(shards >= 1, "at least one shard required");
    let h = (owner.0 as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    // Multiply-shift onto the shard range: unbiased enough for routing
    // and much cheaper than a modulo on the hot path.
    ((h >> 32).wrapping_mul(shards as u64) >> 32) as usize
}

/// Where an owner's row lives: which shard, and which slot inside it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SlotRef {
    shard: u32,
    slot: u32,
}

/// One shard: the provider bitmaps of the owners routed to it, packed
/// slot-major (`words_per_row` consecutive `u64`s per owner).
///
/// The row block sits behind an [`Arc`] so [`ShardedIndex::apply_delta`]
/// can build the next snapshot copy-on-write: shards with no touched
/// owner share their row words with the previous snapshot instead of
/// copying them. `PartialEq` still compares contents (with the usual
/// pointer fast path).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Shard {
    /// Slot → owner, for reassembly and introspection.
    owners: Vec<OwnerId>,
    /// Slot-major packed provider bitmaps, shared across snapshots for
    /// untouched shards.
    rows: Arc<Vec<u64>>,
    words_per_row: usize,
}

impl Shard {
    fn row(&self, slot: u32) -> &[u64] {
        let s = slot as usize * self.words_per_row;
        &self.rows[s..s + self.words_per_row]
    }
}

/// A published index re-laid out for serving: transposed to owner-major
/// provider bitmaps and partitioned into owner-hash shards.
///
/// Query results are bit-for-bit identical to
/// [`PpiServer::query`](eppi_index::server::PpiServer::query) on the
/// same index (providers in ascending id order) — asserted by property
/// tests across random matrices and shard counts.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedIndex {
    shards: Vec<Shard>,
    route: Vec<SlotRef>,
    providers: usize,
    betas: Vec<f64>,
    version: u64,
}

impl ShardedIndex {
    /// Builds the sharded layout from a published index (version 0).
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn from_index(index: &PublishedIndex, shards: usize) -> Self {
        Self::from_index_versioned(index, shards, 0)
    }

    /// Builds the sharded layout carrying an explicit snapshot version
    /// (the serve engine stamps each re-publication).
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn from_index_versioned(index: &PublishedIndex, shards: usize, version: u64) -> Self {
        assert!(shards >= 1, "at least one shard required");
        let matrix = index.matrix();
        let (m, n) = (matrix.providers(), matrix.owners());
        let words_per_row = m.div_ceil(BLOCK_BITS).max(1);

        // Route every owner, counting per-shard slot occupancy.
        let mut route = Vec::with_capacity(n);
        let mut counts = vec![0u32; shards];
        for o in 0..n as u32 {
            let shard = shard_of(OwnerId(o), shards) as u32;
            route.push(SlotRef {
                shard,
                slot: counts[shard as usize],
            });
            counts[shard as usize] += 1;
        }
        let mut owners_by_shard: Vec<Vec<OwnerId>> = counts
            .iter()
            .map(|&c| vec![OwnerId(0); c as usize])
            .collect();
        let mut rows_by_shard: Vec<Vec<u64>> = counts
            .iter()
            .map(|&c| vec![0u64; c as usize * words_per_row])
            .collect();
        for (o, slot_ref) in route.iter().enumerate() {
            owners_by_shard[slot_ref.shard as usize][slot_ref.slot as usize] = OwnerId(o as u32);
        }

        // Word-level transpose: walk each provider row once and scatter
        // its set bits into the owners' shard rows — O(ones + m·n/64)
        // instead of m·n single-bit probes.
        for p in 0..m {
            let (word, mask) = (p / BLOCK_BITS, 1u64 << (p % BLOCK_BITS));
            for (block, &w) in matrix.row_words(ProviderId(p as u32)).iter().enumerate() {
                let mut bits = w;
                while bits != 0 {
                    let o = block * BLOCK_BITS + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    if o >= n {
                        break;
                    }
                    let slot_ref = route[o];
                    rows_by_shard[slot_ref.shard as usize]
                        [slot_ref.slot as usize * words_per_row + word] |= mask;
                }
            }
        }

        ShardedIndex {
            shards: owners_by_shard
                .into_iter()
                .zip(rows_by_shard)
                .map(|(owners, rows)| Shard {
                    owners,
                    rows: Arc::new(rows),
                    words_per_row,
                })
                .collect(),
            route,
            providers: m,
            betas: index.betas().to_vec(),
            version,
        }
    }

    /// Builds the *next* snapshot from this one copy-on-write: only the
    /// shards holding a `touched` (or newly added) owner get fresh row
    /// blocks; every other shard shares its packed rows with `self` via
    /// [`Arc`] — verifiable with [`shares_rows_with`](Self::shares_rows_with).
    ///
    /// `index` is the next epoch's published index. Owners may only be
    /// appended (`index.matrix().owners() >= self.owners()`); new
    /// owners are routed exactly as
    /// [`from_index_versioned`](Self::from_index_versioned) would route
    /// them, so the layout stays identical to a from-scratch build of
    /// the same index.
    ///
    /// # Errors
    ///
    /// [`EpochOrderError`] unless `version` is exactly this snapshot's
    /// version + 1 — a skipped or replayed epoch would serve a state
    /// the lineage never published.
    ///
    /// # Panics
    ///
    /// Panics if the provider count changed, the owner count shrank, or
    /// a touched owner is out of range of the new index.
    pub fn apply_delta(
        &self,
        index: &PublishedIndex,
        touched: &[OwnerId],
        version: u64,
    ) -> Result<ShardedIndex, EpochOrderError> {
        if version != self.version + 1 {
            return Err(EpochOrderError {
                expected: self.version + 1,
                actual: version,
            });
        }
        let matrix = index.matrix();
        let (m, n_new) = (matrix.providers(), matrix.owners());
        assert_eq!(m, self.providers, "provider count must not change");
        let n_old = self.route.len();
        assert!(
            n_new >= n_old,
            "owners cannot shrink ({n_old} -> {n_new}); withdrawn owners keep their slot"
        );
        let shards = self.shards.len();
        let words_per_row = m.div_ceil(BLOCK_BITS).max(1);

        // Route appended owners, extending the per-shard slot counts.
        let mut route = self.route.clone();
        let mut counts: Vec<u32> = self.shards.iter().map(|s| s.owners.len() as u32).collect();
        let mut added: Vec<Vec<OwnerId>> = vec![Vec::new(); shards];
        for o in n_old..n_new {
            let shard = shard_of(OwnerId(o as u32), shards) as u32;
            route.push(SlotRef {
                shard,
                slot: counts[shard as usize],
            });
            counts[shard as usize] += 1;
            added[shard as usize].push(OwnerId(o as u32));
        }
        // Touched pre-existing owners, grouped by shard.
        let mut dirty: Vec<Vec<OwnerId>> = vec![Vec::new(); shards];
        for &owner in touched {
            assert!(
                owner.index() < n_new,
                "touched owner {} out of range {n_new}",
                owner.0
            );
            if owner.index() < n_old {
                dirty[route[owner.index()].shard as usize].push(owner);
            }
        }

        let new_shards: Vec<Shard> = self
            .shards
            .iter()
            .enumerate()
            .map(|(s, shard)| {
                if dirty[s].is_empty() && added[s].is_empty() {
                    // Untouched shard: share the row block, zero copies.
                    return shard.clone();
                }
                let mut rows = shard.rows.as_ref().clone();
                let mut owners = shard.owners.clone();
                rows.resize(counts[s] as usize * words_per_row, 0);
                owners.extend(&added[s]);
                for &owner in dirty[s].iter().chain(&added[s]) {
                    let slot = route[owner.index()].slot as usize;
                    let column = matrix.column_words(owner);
                    rows[slot * words_per_row..(slot + 1) * words_per_row]
                        .copy_from_slice(&column[..words_per_row]);
                }
                Shard {
                    owners,
                    rows: Arc::new(rows),
                    words_per_row,
                }
            })
            .collect();

        Ok(ShardedIndex {
            shards: new_shards,
            route,
            providers: m,
            betas: index.betas().to_vec(),
            version,
        })
    }

    /// `true` if shard `s` of `self` and `other` share the same
    /// physical row block (the copy-on-write reuse check:
    /// `Arc::ptr_eq`, not content equality).
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range of either index.
    pub fn shares_rows_with(&self, other: &ShardedIndex, s: usize) -> bool {
        Arc::ptr_eq(&self.shards[s].rows, &other.shards[s].rows)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of owners indexed.
    pub fn owners(&self) -> usize {
        self.route.len()
    }

    /// Number of providers in the network.
    pub fn providers(&self) -> usize {
        self.providers
    }

    /// The per-owner publishing probabilities (public data).
    pub fn betas(&self) -> &[f64] {
        &self.betas
    }

    /// The snapshot version stamped at construction.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of owners resident in shard `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn shard_len(&self, s: usize) -> usize {
        self.shards[s].owners.len()
    }

    /// Evaluates `QueryPPI(owner)`: the published candidate providers in
    /// ascending id order, bit-identical to the unsharded row lookup.
    ///
    /// # Panics
    ///
    /// Panics if `owner` is out of range.
    pub fn query(&self, owner: OwnerId) -> Vec<ProviderId> {
        self.try_query(owner)
            .unwrap_or_else(|| panic!("owner {} out of range {}", owner.0, self.route.len()))
    }

    /// As [`query`](Self::query), but `None` for an unknown owner — the
    /// non-panicking form the serve engine uses on untrusted input.
    pub fn try_query(&self, owner: OwnerId) -> Option<Vec<ProviderId>> {
        let slot_ref = *self.route.get(owner.index())?;
        let row = self.shards[slot_ref.shard as usize].row(slot_ref.slot);
        Some(providers_in_row(row, self.providers))
    }

    /// Words per packed provider row (`ceil(m / 64)`, minimum 1) — the
    /// accumulator size a PIR scan over this snapshot needs.
    pub fn words_per_row(&self) -> usize {
        self.providers.div_ceil(BLOCK_BITS).max(1)
    }

    /// Obliviously XOR-scans shard `s` for a batch of PIR selection
    /// vectors, accumulating each query's partial answer share into
    /// `accs[i]`. The kernel reads every resident row under a
    /// branchless mask (`eppi_pir::xor_scan_indexed_batch`), so the
    /// scan shape depends only on the shard's size — never on which
    /// owner the vectors select. Partial shares from all shards XOR
    /// together into the server's full answer share (XOR is
    /// associative and each owner is resident in exactly one shard).
    ///
    /// Returns the number of `u64` words scanned.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range, `queries` and `accs` differ in
    /// length, or an accumulator is not [`words_per_row`](Self::words_per_row)
    /// words long.
    pub fn pir_scan_shard(
        &self,
        s: usize,
        queries: &[SelectionVector],
        accs: &mut [Vec<u64>],
    ) -> u64 {
        let shard = &self.shards[s];
        eppi_pir::xor_scan_indexed_batch(
            &shard.rows,
            shard.words_per_row,
            &shard.owners,
            queries,
            accs,
        )
    }

    /// Batched queries, result `i` answering `owners[i]`.
    ///
    /// # Panics
    ///
    /// Panics if any owner is out of range.
    pub fn query_batch(&self, owners: &[OwnerId]) -> Vec<Vec<ProviderId>> {
        owners.iter().map(|&o| self.query(o)).collect()
    }

    /// Reassembles the published index this layout was built from
    /// (matrix + βs). Used by codec round-trip tests to show the shard
    /// transform is lossless.
    pub fn reassemble(&self) -> PublishedIndex {
        let mut matrix = MembershipMatrix::new(self.providers, self.route.len());
        for shard in &self.shards {
            for (slot, &owner) in shard.owners.iter().enumerate() {
                let row = shard.row(slot as u32);
                for (block, &w) in row.iter().enumerate() {
                    let mut bits = w;
                    while bits != 0 {
                        let p = block * BLOCK_BITS + bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        matrix.set(ProviderId(p as u32), owner, true);
                    }
                }
            }
        }
        PublishedIndex::new(matrix, self.betas.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eppi_index::server::PpiServer;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_index(rng: &mut StdRng, providers: usize, owners: usize) -> PublishedIndex {
        let mut matrix = MembershipMatrix::new(providers, owners);
        for p in 0..providers as u32 {
            for o in 0..owners as u32 {
                if rng.gen_bool(0.3) {
                    matrix.set(ProviderId(p), OwnerId(o), true);
                }
            }
        }
        let betas: Vec<f64> = (0..owners).map(|_| rng.gen::<f64>()).collect();
        PublishedIndex::new(matrix, betas)
    }

    #[test]
    fn shard_routing_is_total_and_stable() {
        for shards in 1..=16 {
            for o in 0..1000u32 {
                let s = shard_of(OwnerId(o), shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(OwnerId(o), shards));
            }
        }
    }

    #[test]
    fn shard_routing_spreads_dense_ids() {
        let shards = 8;
        let mut counts = vec![0usize; shards];
        for o in 0..8000u32 {
            counts[shard_of(OwnerId(o), shards)] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!((700..1300).contains(&c), "shard {s} holds {c} of 8000");
        }
    }

    #[test]
    fn query_matches_unsharded_server() {
        let mut rng = StdRng::seed_from_u64(11);
        for shards in [1, 2, 3, 7, 16] {
            let index = random_index(&mut rng, 70, 90);
            let server = PpiServer::new(index.clone());
            let sharded = ShardedIndex::from_index(&index, shards);
            assert_eq!(sharded.shard_count(), shards);
            for o in 0..90u32 {
                assert_eq!(
                    sharded.query(OwnerId(o)),
                    server.query(OwnerId(o)),
                    "owner {o}, {shards} shards"
                );
            }
        }
    }

    #[test]
    fn batch_matches_singles() {
        let mut rng = StdRng::seed_from_u64(12);
        let index = random_index(&mut rng, 40, 30);
        let sharded = ShardedIndex::from_index(&index, 4);
        let owners: Vec<OwnerId> = (0..30).map(OwnerId).collect();
        let batched = sharded.query_batch(&owners);
        for (o, row) in owners.iter().zip(&batched) {
            assert_eq!(row, &sharded.query(*o));
        }
    }

    #[test]
    fn reassemble_roundtrips() {
        let mut rng = StdRng::seed_from_u64(13);
        let index = random_index(&mut rng, 65, 129);
        for shards in [1, 5, 16] {
            let back = ShardedIndex::from_index(&index, shards).reassemble();
            assert_eq!(&back, &index, "{shards} shards");
        }
    }

    #[test]
    fn try_query_handles_unknown_owner() {
        let index = PublishedIndex::new(MembershipMatrix::new(3, 2), vec![0.0, 0.0]);
        let sharded = ShardedIndex::from_index(&index, 2);
        assert_eq!(sharded.try_query(OwnerId(1)), Some(vec![]));
        assert_eq!(sharded.try_query(OwnerId(2)), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn query_out_of_range_panics() {
        let index = PublishedIndex::new(MembershipMatrix::new(1, 1), vec![0.0]);
        ShardedIndex::from_index(&index, 1).query(OwnerId(1));
    }

    #[test]
    fn version_is_stamped() {
        let index = PublishedIndex::new(MembershipMatrix::new(1, 1), vec![0.5]);
        assert_eq!(ShardedIndex::from_index(&index, 1).version(), 0);
        assert_eq!(
            ShardedIndex::from_index_versioned(&index, 1, 9).version(),
            9
        );
    }

    #[test]
    fn apply_delta_equals_from_scratch_build() {
        let mut rng = StdRng::seed_from_u64(21);
        let index = random_index(&mut rng, 70, 90);
        for shards in [1, 3, 8] {
            let base = ShardedIndex::from_index_versioned(&index, shards, 1);
            // Flip a few owners' columns, grow by two owners, change βs.
            let mut matrix = index.matrix().clone();
            matrix.grow_owners(92);
            let touched = [OwnerId(5), OwnerId(41), OwnerId(90), OwnerId(91)];
            for &o in &touched {
                for p in 0..70u32 {
                    matrix.set(ProviderId(p), o, (p + o.0) % 3 == 0);
                }
            }
            let mut betas = index.betas().to_vec();
            betas.extend([0.2, 0.9]);
            betas[5] = 0.7;
            let next_index = PublishedIndex::new(matrix, betas);

            let next = base.apply_delta(&next_index, &touched, 2).unwrap();
            let scratch = ShardedIndex::from_index_versioned(&next_index, shards, 2);
            assert_eq!(next, scratch, "{shards} shards");
            assert_eq!(next.version(), 2);
        }
    }

    #[test]
    fn apply_delta_shares_untouched_shard_rows() {
        let mut rng = StdRng::seed_from_u64(22);
        let index = random_index(&mut rng, 40, 200);
        let shards = 8;
        let base = ShardedIndex::from_index(&index, shards);
        // Touch exactly one owner: only its shard may reallocate.
        let touched = [OwnerId(17)];
        let hot = shard_of(touched[0], shards);
        let mut matrix = index.matrix().clone();
        matrix.set(ProviderId(0), touched[0], true);
        let next_index = PublishedIndex::new(matrix, index.betas().to_vec());
        let next = base.apply_delta(&next_index, &touched, 1).unwrap();
        for s in 0..shards {
            assert_eq!(
                next.shares_rows_with(&base, s),
                s != hot,
                "shard {s} (hot = {hot})"
            );
        }
        // The shared snapshot still answers like a from-scratch build.
        let scratch = ShardedIndex::from_index_versioned(&next_index, shards, 1);
        assert_eq!(next, scratch);
    }

    #[test]
    fn empty_delta_shares_every_shard() {
        let mut rng = StdRng::seed_from_u64(23);
        let index = random_index(&mut rng, 30, 50);
        let base = ShardedIndex::from_index(&index, 4);
        let next = base.apply_delta(&index, &[], 1).unwrap();
        for s in 0..4 {
            assert!(next.shares_rows_with(&base, s), "shard {s} copied");
        }
        assert_eq!(next.version(), 1);
    }

    #[test]
    fn out_of_order_deltas_are_rejected() {
        let mut rng = StdRng::seed_from_u64(24);
        let index = random_index(&mut rng, 30, 50);
        let base = ShardedIndex::from_index_versioned(&index, 4, 3);
        // Skipping ahead, replaying the current version, and going
        // backwards are all epoch-order violations.
        for bad in [0, 3, 5, 7] {
            let err = base.apply_delta(&index, &[], bad).unwrap_err();
            assert_eq!((err.expected, err.actual), (4, bad));
            assert!(err.to_string().contains("expected version 4"));
        }
        assert_eq!(base.apply_delta(&index, &[], 4).unwrap().version(), 4);
    }

    #[test]
    fn pir_scan_across_shards_recovers_any_row() {
        use eppi_pir::QueryPair;

        let mut rng = StdRng::seed_from_u64(31);
        let index = random_index(&mut rng, 70, 90);
        let sharded = ShardedIndex::from_index(&index, 4);
        let wpr = sharded.words_per_row();
        let rows = sharded.owners();
        for target in [0usize, 41, 89] {
            let pair = QueryPair::generate(rows, target, &mut rng);
            let mut share_a = vec![vec![0u64; wpr]];
            let mut share_b = vec![vec![0u64; wpr]];
            let mut words = 0;
            for s in 0..sharded.shard_count() {
                words += sharded.pir_scan_shard(s, std::slice::from_ref(&pair.a), &mut share_a);
                sharded.pir_scan_shard(s, std::slice::from_ref(&pair.b), &mut share_b);
            }
            // Every scan covers every resident row, whatever the target.
            assert_eq!(words, (rows * wpr) as u64);
            let row: Vec<u64> = share_a[0]
                .iter()
                .zip(&share_b[0])
                .map(|(a, b)| a ^ b)
                .collect();
            assert_eq!(
                providers_in_row(&row, sharded.providers()),
                sharded.query(OwnerId(target as u32)),
                "target {target}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "provider count must not change")]
    fn apply_delta_rejects_provider_growth() {
        let index = PublishedIndex::new(MembershipMatrix::new(3, 2), vec![0.0; 2]);
        let grown = PublishedIndex::new(MembershipMatrix::new(4, 2), vec![0.0; 2]);
        let _ = ShardedIndex::from_index(&index, 2).apply_delta(&grown, &[], 1);
    }
}
