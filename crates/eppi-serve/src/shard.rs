//! Sharded, query-optimized storage for a published index.
//!
//! `QueryPPI(t_j)` reads one owner *column* of the published matrix
//! `M'`, but [`eppi_core::model::MembershipMatrix`] is provider-row
//! major: a column read strides through `m` cache lines. The serving
//! layer therefore keeps a transposed copy — one packed `u64` provider
//! bitmap per owner, so a query is a single contiguous row read — and
//! partitions owners into `S` shards by owner hash so independent
//! worker threads can each own a disjoint slice of the query space.

use eppi_core::model::{MembershipMatrix, OwnerId, ProviderId, PublishedIndex};

const BLOCK_BITS: usize = 64;

/// Routes an owner to its shard: Fibonacci (multiplicative) hashing of
/// the owner id, folded onto `0..shards`. Dense owner ids therefore
/// spread evenly even when query workloads are rank-correlated.
///
/// # Panics
///
/// Panics if `shards == 0`.
pub fn shard_of(owner: OwnerId, shards: usize) -> usize {
    assert!(shards >= 1, "at least one shard required");
    let h = (owner.0 as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    // Multiply-shift onto the shard range: unbiased enough for routing
    // and much cheaper than a modulo on the hot path.
    ((h >> 32).wrapping_mul(shards as u64) >> 32) as usize
}

/// Where an owner's row lives: which shard, and which slot inside it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SlotRef {
    shard: u32,
    slot: u32,
}

/// One shard: the provider bitmaps of the owners routed to it, packed
/// slot-major (`words_per_row` consecutive `u64`s per owner).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Shard {
    /// Slot → owner, for reassembly and introspection.
    owners: Vec<OwnerId>,
    /// Slot-major packed provider bitmaps.
    rows: Vec<u64>,
    words_per_row: usize,
}

impl Shard {
    fn row(&self, slot: u32) -> &[u64] {
        let s = slot as usize * self.words_per_row;
        &self.rows[s..s + self.words_per_row]
    }
}

/// A published index re-laid out for serving: transposed to owner-major
/// provider bitmaps and partitioned into owner-hash shards.
///
/// Query results are bit-for-bit identical to
/// [`PpiServer::query`](eppi_index::server::PpiServer::query) on the
/// same index (providers in ascending id order) — asserted by property
/// tests across random matrices and shard counts.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedIndex {
    shards: Vec<Shard>,
    route: Vec<SlotRef>,
    providers: usize,
    betas: Vec<f64>,
    version: u64,
}

impl ShardedIndex {
    /// Builds the sharded layout from a published index (version 0).
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn from_index(index: &PublishedIndex, shards: usize) -> Self {
        Self::from_index_versioned(index, shards, 0)
    }

    /// Builds the sharded layout carrying an explicit snapshot version
    /// (the serve engine stamps each re-publication).
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn from_index_versioned(index: &PublishedIndex, shards: usize, version: u64) -> Self {
        assert!(shards >= 1, "at least one shard required");
        let matrix = index.matrix();
        let (m, n) = (matrix.providers(), matrix.owners());
        let words_per_row = m.div_ceil(BLOCK_BITS).max(1);

        // Route every owner, counting per-shard slot occupancy.
        let mut route = Vec::with_capacity(n);
        let mut counts = vec![0u32; shards];
        for o in 0..n as u32 {
            let shard = shard_of(OwnerId(o), shards) as u32;
            route.push(SlotRef {
                shard,
                slot: counts[shard as usize],
            });
            counts[shard as usize] += 1;
        }
        let mut built: Vec<Shard> = counts
            .iter()
            .map(|&c| Shard {
                owners: vec![OwnerId(0); c as usize],
                rows: vec![0u64; c as usize * words_per_row],
                words_per_row,
            })
            .collect();
        for (o, slot_ref) in route.iter().enumerate() {
            built[slot_ref.shard as usize].owners[slot_ref.slot as usize] = OwnerId(o as u32);
        }

        // Word-level transpose: walk each provider row once and scatter
        // its set bits into the owners' shard rows — O(ones + m·n/64)
        // instead of m·n single-bit probes.
        for p in 0..m {
            let (word, mask) = (p / BLOCK_BITS, 1u64 << (p % BLOCK_BITS));
            for (block, &w) in matrix.row_words(ProviderId(p as u32)).iter().enumerate() {
                let mut bits = w;
                while bits != 0 {
                    let o = block * BLOCK_BITS + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    if o >= n {
                        break;
                    }
                    let slot_ref = route[o];
                    let shard = &mut built[slot_ref.shard as usize];
                    shard.rows[slot_ref.slot as usize * words_per_row + word] |= mask;
                }
            }
        }

        ShardedIndex {
            shards: built,
            route,
            providers: m,
            betas: index.betas().to_vec(),
            version,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of owners indexed.
    pub fn owners(&self) -> usize {
        self.route.len()
    }

    /// Number of providers in the network.
    pub fn providers(&self) -> usize {
        self.providers
    }

    /// The per-owner publishing probabilities (public data).
    pub fn betas(&self) -> &[f64] {
        &self.betas
    }

    /// The snapshot version stamped at construction.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of owners resident in shard `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn shard_len(&self, s: usize) -> usize {
        self.shards[s].owners.len()
    }

    /// Evaluates `QueryPPI(owner)`: the published candidate providers in
    /// ascending id order, bit-identical to the unsharded row lookup.
    ///
    /// # Panics
    ///
    /// Panics if `owner` is out of range.
    pub fn query(&self, owner: OwnerId) -> Vec<ProviderId> {
        self.try_query(owner)
            .unwrap_or_else(|| panic!("owner {} out of range {}", owner.0, self.route.len()))
    }

    /// As [`query`](Self::query), but `None` for an unknown owner — the
    /// non-panicking form the serve engine uses on untrusted input.
    pub fn try_query(&self, owner: OwnerId) -> Option<Vec<ProviderId>> {
        let slot_ref = *self.route.get(owner.index())?;
        let row = self.shards[slot_ref.shard as usize].row(slot_ref.slot);
        let mut out = Vec::new();
        for (block, &w) in row.iter().enumerate() {
            let mut bits = w;
            while bits != 0 {
                let p = block * BLOCK_BITS + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                out.push(ProviderId(p as u32));
            }
        }
        Some(out)
    }

    /// Batched queries, result `i` answering `owners[i]`.
    ///
    /// # Panics
    ///
    /// Panics if any owner is out of range.
    pub fn query_batch(&self, owners: &[OwnerId]) -> Vec<Vec<ProviderId>> {
        owners.iter().map(|&o| self.query(o)).collect()
    }

    /// Reassembles the published index this layout was built from
    /// (matrix + βs). Used by codec round-trip tests to show the shard
    /// transform is lossless.
    pub fn reassemble(&self) -> PublishedIndex {
        let mut matrix = MembershipMatrix::new(self.providers, self.route.len());
        for shard in &self.shards {
            for (slot, &owner) in shard.owners.iter().enumerate() {
                let row = shard.row(slot as u32);
                for (block, &w) in row.iter().enumerate() {
                    let mut bits = w;
                    while bits != 0 {
                        let p = block * BLOCK_BITS + bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        matrix.set(ProviderId(p as u32), owner, true);
                    }
                }
            }
        }
        PublishedIndex::new(matrix, self.betas.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eppi_index::server::PpiServer;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_index(rng: &mut StdRng, providers: usize, owners: usize) -> PublishedIndex {
        let mut matrix = MembershipMatrix::new(providers, owners);
        for p in 0..providers as u32 {
            for o in 0..owners as u32 {
                if rng.gen_bool(0.3) {
                    matrix.set(ProviderId(p), OwnerId(o), true);
                }
            }
        }
        let betas: Vec<f64> = (0..owners).map(|_| rng.gen::<f64>()).collect();
        PublishedIndex::new(matrix, betas)
    }

    #[test]
    fn shard_routing_is_total_and_stable() {
        for shards in 1..=16 {
            for o in 0..1000u32 {
                let s = shard_of(OwnerId(o), shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(OwnerId(o), shards));
            }
        }
    }

    #[test]
    fn shard_routing_spreads_dense_ids() {
        let shards = 8;
        let mut counts = vec![0usize; shards];
        for o in 0..8000u32 {
            counts[shard_of(OwnerId(o), shards)] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!((700..1300).contains(&c), "shard {s} holds {c} of 8000");
        }
    }

    #[test]
    fn query_matches_unsharded_server() {
        let mut rng = StdRng::seed_from_u64(11);
        for shards in [1, 2, 3, 7, 16] {
            let index = random_index(&mut rng, 70, 90);
            let server = PpiServer::new(index.clone());
            let sharded = ShardedIndex::from_index(&index, shards);
            assert_eq!(sharded.shard_count(), shards);
            for o in 0..90u32 {
                assert_eq!(
                    sharded.query(OwnerId(o)),
                    server.query(OwnerId(o)),
                    "owner {o}, {shards} shards"
                );
            }
        }
    }

    #[test]
    fn batch_matches_singles() {
        let mut rng = StdRng::seed_from_u64(12);
        let index = random_index(&mut rng, 40, 30);
        let sharded = ShardedIndex::from_index(&index, 4);
        let owners: Vec<OwnerId> = (0..30).map(OwnerId).collect();
        let batched = sharded.query_batch(&owners);
        for (o, row) in owners.iter().zip(&batched) {
            assert_eq!(row, &sharded.query(*o));
        }
    }

    #[test]
    fn reassemble_roundtrips() {
        let mut rng = StdRng::seed_from_u64(13);
        let index = random_index(&mut rng, 65, 129);
        for shards in [1, 5, 16] {
            let back = ShardedIndex::from_index(&index, shards).reassemble();
            assert_eq!(&back, &index, "{shards} shards");
        }
    }

    #[test]
    fn try_query_handles_unknown_owner() {
        let index = PublishedIndex::new(MembershipMatrix::new(3, 2), vec![0.0, 0.0]);
        let sharded = ShardedIndex::from_index(&index, 2);
        assert_eq!(sharded.try_query(OwnerId(1)), Some(vec![]));
        assert_eq!(sharded.try_query(OwnerId(2)), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn query_out_of_range_panics() {
        let index = PublishedIndex::new(MembershipMatrix::new(1, 1), vec![0.0]);
        ShardedIndex::from_index(&index, 1).query(OwnerId(1));
    }

    #[test]
    fn version_is_stamped() {
        let index = PublishedIndex::new(MembershipMatrix::new(1, 1), vec![0.5]);
        assert_eq!(ShardedIndex::from_index(&index, 1).version(), 0);
        assert_eq!(
            ShardedIndex::from_index_versioned(&index, 1, 9).version(),
            9
        );
    }
}
