//! eppi-serve: the locator-service front-end.
//!
//! The e-PPI constructions (`eppi-index`, `eppi-mpc`) end with a
//! published index `M'` handed to an untrusted PPI server; this crate
//! is that server's serving layer, built for sustained `QueryPPI`
//! traffic:
//!
//! * [`shard::ShardedIndex`] — the published matrix transposed to
//!   owner-major packed bitmaps and partitioned into owner-hash shards,
//!   so each query is one contiguous row read inside one shard.
//! * [`engine::ServeEngine`] / [`engine::ServeClient`] — a
//!   worker-per-shard thread pool over bounded channels serving single
//!   and batched queries; the read path takes no locks.
//! * [`snapshot::SnapshotCell`] — wait-free snapshot publication so a
//!   `ConstructPPI` re-run can replace the index without ever blocking
//!   readers or exposing a torn version.
//! * [`private::PrivateEngine`] / [`private::PrivateClient`] — the
//!   oblivious serve mode: two non-colluding replicas answer XOR-PIR
//!   queries (`eppi-pir`) so neither ever learns which owner a query
//!   targets, with answers bit-identical to the plaintext path.
//!
//! Query results are bit-for-bit identical to
//! [`PpiServer::query`](eppi_index::server::PpiServer::query); the
//! sharding is purely a serving-side layout change and does not alter
//! the privacy semantics of the published index.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod engine;
pub mod private;
pub mod shard;
pub mod snapshot;

pub use engine::{
    default_shards, default_shards_for, PendingPir, PirServerAnswer, ServeClient, ServeConfig,
    ServeEngine, ServeStats,
};
pub use private::{PrivateClient, PrivateEngine};
pub use shard::{shard_of, EpochOrderError, ShardMap, ShardedIndex, DEFAULT_APPEND_CAPACITY};
pub use snapshot::SnapshotCell;
