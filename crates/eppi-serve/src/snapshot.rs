//! Wait-free snapshot publication for index refresh.
//!
//! `ConstructPPI` re-publication must install a new index version while
//! query traffic keeps flowing: readers may never block on a writer and
//! may never observe a half-installed index (the serving-side answer to
//! the static-index discussion in `eppi-attacks::refresh` — the index
//! is immutable between versions; a refresh replaces it wholesale).
//!
//! [`SnapshotCell`] is a hand-rolled RCU-style cell built only on std
//! atomics: a small ring of slots, each holding an `Arc<T>` guarded by
//! a reader reference count. Readers resolve the current slot, pin it
//! with a count increment, re-validate, and clone the `Arc` — a few
//! atomic operations, no locks, no spinning against writers. A writer
//! (serialized by a mutex, which only writers touch) installs into the
//! *oldest* slot — never the currently-published one — waits for that
//! slot's stragglers to drain, swaps the value, then flips the
//! `current` pointer. Old snapshots are freed by normal `Arc` reference
//! counting once the last reader drops its clone.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Number of ring slots. A writer can lap a reader only after
/// `SLOTS - 1` further refreshes occur within one reader's pin window
/// (a handful of instructions), at which point the writer briefly
/// spins; readers are never delayed.
const SLOTS: usize = 8;

struct Slot<T> {
    /// Readers currently pinning this slot (mid-clone).
    refs: AtomicUsize,
    value: UnsafeCell<Option<Arc<T>>>,
}

/// A lock-free publication point for immutable snapshots.
pub struct SnapshotCell<T> {
    slots: [Slot<T>; SLOTS],
    /// Index of the slot holding the latest snapshot.
    current: AtomicUsize,
    /// Serializes writers and tracks the write cursor.
    writer: Mutex<usize>,
}

// Readers on any thread clone `Arc<T>` out of slots; writers move
// `Arc<T>` in. Both need the payload to cross threads.
unsafe impl<T: Send + Sync> Sync for SnapshotCell<T> {}
unsafe impl<T: Send + Sync> Send for SnapshotCell<T> {}

impl<T> SnapshotCell<T> {
    /// Creates the cell publishing `initial`.
    pub fn new(initial: Arc<T>) -> Self {
        let slots = std::array::from_fn(|i| Slot {
            refs: AtomicUsize::new(0),
            value: UnsafeCell::new(if i == 0 { Some(initial.clone()) } else { None }),
        });
        SnapshotCell {
            slots,
            current: AtomicUsize::new(0),
            writer: Mutex::new(0),
        }
    }

    /// Returns the latest published snapshot. Wait-free for readers: a
    /// few atomic ops; retries only if a writer flipped `current`
    /// mid-read (at most once per concurrent refresh).
    pub fn load(&self) -> Arc<T> {
        loop {
            let i = self.current.load(Ordering::SeqCst);
            let slot = &self.slots[i];
            slot.refs.fetch_add(1, Ordering::SeqCst);
            if self.current.load(Ordering::SeqCst) == i {
                // The slot is still current, so the writer (which only
                // ever touches non-current slots whose refs are 0)
                // cannot be mutating it: the clone below is safe.
                let arc = unsafe {
                    (*slot.value.get())
                        .as_ref()
                        .expect("current slot set")
                        .clone()
                };
                slot.refs.fetch_sub(1, Ordering::SeqCst);
                return arc;
            }
            // A refresh moved on while we pinned; release and retry.
            slot.refs.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Publishes a new snapshot. Writers serialize among themselves and
    /// may briefly spin waiting for stale readers of the reclaimed slot;
    /// concurrent [`load`](Self::load) calls are never blocked.
    pub fn store(&self, value: Arc<T>) {
        let mut cursor = self.writer.lock().expect("snapshot writer poisoned");
        let next = (*cursor + 1) % SLOTS;
        let slot = &self.slots[next];
        // Wait out readers that pinned this slot SLOTS-1 generations
        // ago and have not yet re-validated (a nanosecond-scale window).
        while slot.refs.load(Ordering::SeqCst) != 0 {
            std::hint::spin_loop();
        }
        // No reader will clone from this slot: it is not `current`, and
        // any late pinner re-validates `current` before dereferencing.
        unsafe {
            *slot.value.get() = Some(value);
        }
        self.current.store(next, Ordering::SeqCst);
        *cursor = next;
    }
}

impl<T> std::fmt::Debug for SnapshotCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotCell")
            .field("current", &self.current.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn load_returns_latest_store() {
        let cell = SnapshotCell::new(Arc::new(1u64));
        assert_eq!(*cell.load(), 1);
        for v in 2..50 {
            cell.store(Arc::new(v));
            assert_eq!(*cell.load(), v);
        }
    }

    #[test]
    fn old_snapshots_are_reclaimed() {
        let cell = SnapshotCell::new(Arc::new(0u64));
        let pinned = cell.load();
        for v in 1..=(2 * SLOTS as u64) {
            cell.store(Arc::new(v));
        }
        // The explicitly held clone stays valid; the cell itself has
        // long dropped its reference.
        assert_eq!(*pinned, 0);
        assert_eq!(Arc::strong_count(&pinned), 1);
    }

    #[test]
    fn concurrent_readers_see_only_complete_values() {
        // Snapshots are (v, v*3) pairs; a torn read would break the
        // invariant.
        let cell = Arc::new(SnapshotCell::new(Arc::new((0u64, 0u64))));
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    let mut last = 0;
                    while !stop.load(Ordering::Relaxed) {
                        let snap = cell.load();
                        assert_eq!(snap.1, snap.0 * 3, "torn snapshot");
                        assert!(snap.0 >= last, "version went backwards");
                        last = snap.0;
                    }
                });
            }
            for v in 1..=20_000u64 {
                cell.store(Arc::new((v, v * 3)));
            }
            stop.store(true, Ordering::Relaxed);
        });
        assert_eq!(cell.load().0, 20_000);
    }
}
