//! Property tests for the log-linear histogram: quantile accuracy
//! against exact sorted-vector quantiles, and merge equivalence.

use eppi_telemetry::{Histogram, Recorder, MAX_RELATIVE_ERROR};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// The exact quantile rule the histogram documents: the value of rank
/// `⌈q·n⌉` (clamped to `1..=n`) in the sorted samples.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Draws a latency-shaped sample set: log-uniform magnitudes so every
/// octave of the nanosecond domain gets exercised.
fn draw_samples(seed: u64, len: usize, max_exp: u32) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            let exp = rng.gen_range(0..max_exp);
            rng.gen_range(0..(1u64 << exp).max(1) * 2)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Recorded p50/p95/p99 stay within the documented relative-error
    /// bound of exact sorted-vector quantiles.
    #[test]
    fn quantiles_within_documented_error(seed in any::<u64>(), len in 1usize..4_000, max_exp in 1u32..40) {
        let samples = draw_samples(seed, len, max_exp);
        let hist = Histogram::new();
        for &v in &samples {
            hist.record(v);
        }
        let mut sorted = samples;
        sorted.sort_unstable();
        for q in [0.50, 0.95, 0.99] {
            let exact = exact_quantile(&sorted, q);
            let got = hist.value_at_quantile(q).unwrap();
            let tolerance = (exact as f64 * MAX_RELATIVE_ERROR).max(0.0);
            prop_assert!(
                (got as f64 - exact as f64).abs() <= tolerance,
                "q={}: histogram {} vs exact {} (tolerance {})",
                q, got, exact, tolerance
            );
        }
        // Extremes are tracked exactly, not bucketed.
        prop_assert_eq!(hist.min().unwrap(), sorted[0]);
        prop_assert_eq!(hist.max().unwrap(), *sorted.last().unwrap());
    }

    /// Merging histograms (shared-shared and recorder-into-shared) is
    /// bucket-exact: indistinguishable from recording every observation
    /// into one histogram.
    #[test]
    fn merge_equals_single_histogram(seed in any::<u64>(), len in 1usize..3_000, parts in 2usize..6) {
        let samples = draw_samples(seed, len, 34);
        let one = Histogram::new();
        for &v in &samples {
            one.record(v);
        }

        // Shared-into-shared merge.
        let merged = Histogram::new();
        for chunk in samples.chunks(samples.len().div_ceil(parts)) {
            let part = Histogram::new();
            for &v in chunk {
                part.record(v);
            }
            merged.merge(&part);
        }
        prop_assert_eq!(merged.bucket_counts(), one.bucket_counts());
        prop_assert_eq!(merged.summary(), one.summary());

        // Per-thread recorders draining into one shared family.
        let family = Arc::new(Histogram::new());
        for chunk in samples.chunks(samples.len().div_ceil(parts)) {
            let mut recorder = Recorder::new(Arc::clone(&family));
            for &v in chunk {
                recorder.record(v);
            }
            // Drop flushes the remainder.
        }
        prop_assert_eq!(family.bucket_counts(), one.bucket_counts());
        prop_assert_eq!(family.summary(), one.summary());
    }
}
