//! # eppi-telemetry — workspace-wide metrics & tracing
//!
//! The paper's whole evaluation (Figures 4–6, Table 2) is a story about
//! *where time and messages go*: per-phase construction cost, per-round
//! MPC traffic, query latency. This crate is the shared measurement
//! layer every subsystem reports through, built on `std` only:
//!
//! * [`Counter`] / [`Gauge`] — single relaxed atomics; gauges track a
//!   high-water mark (queue depths, in-flight work).
//! * [`Histogram`] — a mergeable log-linear (HDR-style) histogram over
//!   the `u64` nanosecond domain with a documented relative-error bound
//!   ([`MAX_RELATIVE_ERROR`]) per reported quantile.
//! * [`Recorder`] — a per-thread buffer for one histogram: hot paths
//!   pay a plain array increment, and buffered counts merge into the
//!   shared histogram every [`FLUSH_EVERY`] observations. No shared
//!   cache line is touched per event.
//! * [`SpanTimer`] — RAII wall-clock scopes for coarse phases.
//! * [`Registry`] — labeled metric families; [`Registry::snapshot`]
//!   exports as aligned text or JSON and parses back
//!   ([`Snapshot::from_json`]), so every benchmark run doubles as an
//!   observability report.
//! * [`json`] — the minimal JSON writer/parser behind the exporters
//!   (the build environment has no serde_json).
//!
//! ## Example
//!
//! ```
//! use eppi_telemetry::Registry;
//!
//! let registry = Registry::new();
//! let queries = registry.counter("serve.queries", &[("shard", "0")]);
//! let mut lat = registry.recorder("serve.service_ns", &[("shard", "0")]);
//! for v in [250u64, 900, 17_000] {
//!     queries.inc();
//!     lat.record(v); // thread-private; merges in batches
//! }
//! lat.flush();
//! let snap = registry.snapshot();
//! assert_eq!(snap.find("serve.queries", &[("shard", "0")]).is_some(), true);
//! let round_trip = eppi_telemetry::Snapshot::from_json(&snap.to_json()).unwrap();
//! assert_eq!(round_trip, snap);
//! ```
//!
//! ## Global registry
//!
//! Most call sites accept a `&Registry` so tests and benchmarks can
//! isolate their metrics; [`global()`] provides the process-wide
//! default used when nothing is threaded through. Counters in the
//! global registry are cumulative across a process's whole life.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod hist;
pub mod json;
pub mod metrics;
pub mod registry;
pub mod span;

pub use hist::{Histogram, HistogramSummary, Recorder, FLUSH_EVERY, MAX_RELATIVE_ERROR};
pub use metrics::{Counter, Gauge};
pub use registry::{Labels, MetricMiss, MetricSnapshot, MetricValue, Registry, Snapshot};
pub use span::SpanTimer;

use std::sync::OnceLock;

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide default registry.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    #[test]
    fn global_registry_is_a_singleton() {
        let c = super::global().counter("telemetry.self_test", &[]);
        c.add(2);
        assert!(super::global().counter("telemetry.self_test", &[]).get() >= 2);
    }
}
