//! Scalar instruments: monotone counters and up/down gauges.
//!
//! Both are single relaxed atomics — one uncontended cache line per
//! instrument, no read-modify-write ordering beyond the increment
//! itself — so hot paths (the serve read path, the per-message transport
//! path) can update them without cross-thread serialization. Exact
//! cross-metric consistency is explicitly *not* promised: a snapshot
//! taken mid-run may observe counter A's increment but not counter B's.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter starting at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// An instantaneous level (queue depth, in-flight requests) that can go
/// up and down; the high-water mark since creation is tracked alongside
/// the live value.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
    peak: AtomicI64,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Adds one and updates the high-water mark.
    #[inline]
    pub fn inc(&self) {
        let now = self.value.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Subtracts one.
    #[inline]
    pub fn dec(&self) {
        self.value.fetch_sub(1, Ordering::Relaxed);
    }

    /// Sets the level outright (also raises the high-water mark).
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
        self.peak.fetch_max(v, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Highest level ever observed by [`inc`](Self::inc)/[`set`](Self::set).
    pub fn peak(&self) -> i64 {
        self.peak.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_tracks_level_and_peak() {
        let g = Gauge::new();
        g.inc();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 2);
        assert_eq!(g.peak(), 3);
        g.set(10);
        g.dec();
        assert_eq!(g.get(), 9);
        assert_eq!(g.peak(), 10);
    }

    #[test]
    fn concurrent_updates_are_lossless() {
        let c = Arc::new(Counter::new());
        let g = Arc::new(Gauge::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = Arc::clone(&c);
                let g = Arc::clone(&g);
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                        g.inc();
                        g.dec();
                    }
                });
            }
        });
        assert_eq!(c.get(), 40_000);
        assert_eq!(g.get(), 0);
        assert!(g.peak() >= 1);
    }
}
