//! The labeled metric registry and its exporters.
//!
//! A [`Registry`] maps `(family name, label set)` to one instrument.
//! Hot paths register once (taking an `Arc` handle) and then update the
//! instrument without ever touching the registry again — the internal
//! mutex guards only registration and snapshotting.
//!
//! Naming convention (enforced socially, documented in DESIGN.md §8):
//! `subsystem.metric[_unit]`, lower-case, dot-separated subsystem
//! prefix, unit suffix for non-obvious units (`_ns`, `_bytes`). Labels
//! distinguish instances of a family (`shard="3"`, `peer="0"`,
//! `pass="closed_loop"`).
//!
//! [`Registry::snapshot`] yields a point-in-time [`Snapshot`] that
//! serializes to an aligned text report ([`Snapshot::to_text`]) or JSON
//! ([`Snapshot::to_json`]) and parses back ([`Snapshot::from_json`]) —
//! the exporter surface the bench harness embeds into
//! `results/BENCH_serve.json`.

use crate::hist::{Histogram, HistogramSummary, Recorder};
use crate::json::JsonValue;
use crate::metrics::{Counter, Gauge};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// Sorted `(key, value)` label pairs identifying one family member.
pub type Labels = Vec<(String, String)>;

#[derive(Debug, Clone)]
enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Instrument {
    fn kind(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
        }
    }
}

/// A concurrent registry of labeled metric families.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<BTreeMap<(String, Labels), Instrument>>,
}

fn canonical(labels: &[(&str, &str)]) -> Labels {
    let mut out: Labels = labels
        .iter()
        .map(|&(k, v)| (k.to_string(), v.to_string()))
        .collect();
    out.sort();
    out
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn instrument(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Instrument,
    ) -> Instrument {
        let key = (name.to_string(), canonical(labels));
        let mut inner = self.inner.lock().expect("registry poisoned");
        inner.entry(key).or_insert_with(make).clone()
    }

    /// Returns (creating on first use) the counter `name{labels}`.
    ///
    /// # Panics
    ///
    /// Panics if the key is already registered as a different kind.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.instrument(name, labels, || {
            Instrument::Counter(Arc::new(Counter::new()))
        }) {
            Instrument::Counter(c) => c,
            other => panic!("{name} already registered as a {}", other.kind()),
        }
    }

    /// Returns (creating on first use) the gauge `name{labels}`.
    ///
    /// # Panics
    ///
    /// Panics if the key is already registered as a different kind.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.instrument(name, labels, || Instrument::Gauge(Arc::new(Gauge::new()))) {
            Instrument::Gauge(g) => g,
            other => panic!("{name} already registered as a {}", other.kind()),
        }
    }

    /// Returns (creating on first use) the histogram `name{labels}`.
    ///
    /// # Panics
    ///
    /// Panics if the key is already registered as a different kind.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        match self.instrument(name, labels, || {
            Instrument::Histogram(Arc::new(Histogram::new()))
        }) {
            Instrument::Histogram(h) => h,
            other => panic!("{name} already registered as a {}", other.kind()),
        }
    }

    /// A per-thread [`Recorder`] feeding the histogram `name{labels}`.
    ///
    /// # Panics
    ///
    /// Panics if the key is already registered as a different kind.
    pub fn recorder(&self, name: &str, labels: &[(&str, &str)]) -> Recorder {
        Recorder::new(self.histogram(name, labels))
    }

    /// Captures every registered metric at this instant. Values across
    /// metrics are weakly consistent (concurrent updates may be half
    /// visible), which is fine for reporting.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().expect("registry poisoned");
        Snapshot {
            metrics: inner
                .iter()
                .map(|((name, labels), instrument)| MetricSnapshot {
                    name: name.clone(),
                    labels: labels.clone(),
                    value: match instrument {
                        Instrument::Counter(c) => MetricValue::Counter(c.get()),
                        Instrument::Gauge(g) => MetricValue::Gauge {
                            value: g.get(),
                            peak: g.peak(),
                        },
                        Instrument::Histogram(h) => MetricValue::Histogram(h.summary()),
                    },
                })
                .collect(),
        }
    }
}

/// One metric's captured value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotone event count.
    Counter(u64),
    /// Instantaneous level plus high-water mark.
    Gauge {
        /// Level at snapshot time.
        value: i64,
        /// Highest level observed.
        peak: i64,
    },
    /// Histogram digest.
    Histogram(HistogramSummary),
}

/// One metric at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    /// Family name (`subsystem.metric[_unit]`).
    pub name: String,
    /// Sorted label pairs.
    pub labels: Labels,
    /// Captured value.
    pub value: MetricValue,
}

impl MetricSnapshot {
    /// `name{k="v",…}` — the text-exporter metric identifier.
    pub fn id(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let labels: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}={v:?}"))
            .collect();
        format!("{}{{{}}}", self.name, labels.join(","))
    }
}

/// A typed lookup miss from [`Snapshot::expect`]: the requested
/// metric was not in the snapshot. Carries the full key so callers can
/// report (or assert on) exactly what was absent instead of panicking
/// on a bare `Option`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricMiss {
    /// The family name that was looked up.
    pub name: String,
    /// The canonicalized label set that was looked up.
    pub labels: Labels,
}

impl std::fmt::Display for MetricMiss {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let labels: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}={v:?}"))
            .collect();
        write!(
            f,
            "metric {}{{{}}} not present in snapshot",
            self.name,
            labels.join(",")
        )
    }
}

impl std::error::Error for MetricMiss {}

/// A point-in-time capture of a whole [`Registry`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// All metrics, sorted by `(name, labels)`.
    pub metrics: Vec<MetricSnapshot>,
}

impl Snapshot {
    /// Finds a metric by family name and exact label set.
    pub fn find(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricSnapshot> {
        let labels = canonical(labels);
        self.metrics
            .iter()
            .find(|m| m.name == name && m.labels == labels)
    }

    /// As [`find`](Self::find), but a miss comes back as a typed
    /// [`MetricMiss`] naming the absent key — for callers that treat a
    /// missing metric as a reportable condition rather than a panic
    /// (e.g. the serve shutdown-drain check).
    ///
    /// # Errors
    ///
    /// [`MetricMiss`] when no metric matches `(name, labels)`.
    pub fn expect(
        &self,
        name: &str,
        labels: &[(&str, &str)],
    ) -> Result<&MetricSnapshot, MetricMiss> {
        self.find(name, labels).ok_or_else(|| MetricMiss {
            name: name.to_string(),
            labels: canonical(labels),
        })
    }

    /// All members of a family, in label order.
    pub fn family(&self, name: &str) -> Vec<&MetricSnapshot> {
        self.metrics.iter().filter(|m| m.name == name).collect()
    }

    /// Renders the aligned human-readable report (one metric per line).
    pub fn to_text(&self) -> String {
        let width = self.metrics.iter().map(|m| m.id().len()).max().unwrap_or(0);
        let mut out = String::new();
        for m in &self.metrics {
            let _ = write!(out, "{:<width$}  ", m.id());
            match &m.value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{v}");
                }
                MetricValue::Gauge { value, peak } => {
                    let _ = writeln!(out, "{value} (peak {peak})");
                }
                MetricValue::Histogram(h) => {
                    let _ = writeln!(
                        out,
                        "count={} mean={:.1} min={} p50={} p90={} p95={} p99={} max={}",
                        h.count, h.mean, h.min, h.p50, h.p90, h.p95, h.p99, h.max
                    );
                }
            }
        }
        out
    }

    /// The snapshot as a JSON document tree (for embedding into larger
    /// reports, e.g. `results/BENCH_serve.json`).
    pub fn to_json_value(&self) -> JsonValue {
        let metrics = self
            .metrics
            .iter()
            .map(|m| {
                let mut entry = vec![
                    ("name".to_string(), JsonValue::Str(m.name.clone())),
                    (
                        "labels".to_string(),
                        JsonValue::Object(
                            m.labels
                                .iter()
                                .map(|(k, v)| (k.clone(), JsonValue::Str(v.clone())))
                                .collect(),
                        ),
                    ),
                ];
                match &m.value {
                    MetricValue::Counter(v) => {
                        entry.push(("kind".into(), JsonValue::Str("counter".into())));
                        entry.push(("value".into(), JsonValue::UInt(*v)));
                    }
                    MetricValue::Gauge { value, peak } => {
                        entry.push(("kind".into(), JsonValue::Str("gauge".into())));
                        entry.push(("value".into(), JsonValue::Int(*value)));
                        entry.push(("peak".into(), JsonValue::Int(*peak)));
                    }
                    MetricValue::Histogram(h) => {
                        entry.push(("kind".into(), JsonValue::Str("histogram".into())));
                        for (key, v) in [
                            ("count", h.count),
                            ("sum", h.sum),
                            ("min", h.min),
                            ("max", h.max),
                            ("p50", h.p50),
                            ("p90", h.p90),
                            ("p95", h.p95),
                            ("p99", h.p99),
                        ] {
                            entry.push((key.into(), JsonValue::UInt(v)));
                        }
                        entry.push(("mean".into(), JsonValue::Float(h.mean)));
                    }
                }
                JsonValue::Object(entry)
            })
            .collect();
        JsonValue::Object(vec![("metrics".to_string(), JsonValue::Array(metrics))])
    }

    /// Serializes to pretty-printed JSON.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_pretty()
    }

    /// Parses a document produced by [`to_json`](Self::to_json) back
    /// into a snapshot (exact round-trip; asserted by tests).
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural violation.
    pub fn from_json(text: &str) -> Result<Snapshot, String> {
        Snapshot::from_json_value(&JsonValue::parse(text)?)
    }

    /// [`from_json`](Self::from_json) over an already-parsed tree.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural violation.
    pub fn from_json_value(doc: &JsonValue) -> Result<Snapshot, String> {
        let metrics = doc
            .get("metrics")
            .and_then(JsonValue::as_array)
            .ok_or("missing \"metrics\" array")?;
        let mut out = Vec::with_capacity(metrics.len());
        for (i, m) in metrics.iter().enumerate() {
            let field = |key: &str| {
                m.get(key)
                    .ok_or_else(|| format!("metric {i}: missing \"{key}\""))
            };
            let uint = |key: &str| {
                field(key)?
                    .as_u64()
                    .ok_or_else(|| format!("metric {i}: \"{key}\" not a u64"))
            };
            let int = |key: &str| {
                field(key)?
                    .as_i64()
                    .ok_or_else(|| format!("metric {i}: \"{key}\" not an i64"))
            };
            let name = field("name")?
                .as_str()
                .ok_or_else(|| format!("metric {i}: \"name\" not a string"))?
                .to_string();
            let labels = match field("labels")? {
                JsonValue::Object(entries) => entries
                    .iter()
                    .map(|(k, v)| {
                        v.as_str()
                            .map(|v| (k.clone(), v.to_string()))
                            .ok_or_else(|| format!("metric {i}: label \"{k}\" not a string"))
                    })
                    .collect::<Result<Labels, String>>()?,
                _ => return Err(format!("metric {i}: \"labels\" not an object")),
            };
            let value = match field("kind")?.as_str() {
                Some("counter") => MetricValue::Counter(uint("value")?),
                Some("gauge") => MetricValue::Gauge {
                    value: int("value")?,
                    peak: int("peak")?,
                },
                Some("histogram") => MetricValue::Histogram(HistogramSummary {
                    count: uint("count")?,
                    sum: uint("sum")?,
                    mean: field("mean")?
                        .as_f64()
                        .ok_or_else(|| format!("metric {i}: \"mean\" not a number"))?,
                    min: uint("min")?,
                    max: uint("max")?,
                    p50: uint("p50")?,
                    p90: uint("p90")?,
                    p95: uint("p95")?,
                    p99: uint("p99")?,
                }),
                _ => return Err(format!("metric {i}: unknown \"kind\"")),
            };
            out.push(MetricSnapshot {
                name,
                labels,
                value,
            });
        }
        Ok(Snapshot { metrics: out })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_are_get_or_create() {
        let r = Registry::new();
        let a = r.counter("net.messages", &[("peer", "0")]);
        let b = r.counter("net.messages", &[("peer", "0")]);
        let c = r.counter("net.messages", &[("peer", "1")]);
        a.inc();
        b.inc();
        c.add(5);
        assert_eq!(a.get(), 2, "same key must alias the same counter");
        let snap = r.snapshot();
        assert_eq!(snap.family("net.messages").len(), 2);
        assert_eq!(
            snap.expect("net.messages", &[("peer", "1")]).unwrap().value,
            MetricValue::Counter(5)
        );
    }

    #[test]
    fn label_order_does_not_matter() {
        let r = Registry::new();
        r.gauge("q.depth", &[("a", "1"), ("b", "2")]).set(3);
        let g = r.gauge("q.depth", &[("b", "2"), ("a", "1")]);
        assert_eq!(g.get(), 3);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_conflicts_are_loud() {
        let r = Registry::new();
        r.counter("serve.queries", &[]);
        r.histogram("serve.queries", &[]);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let r = Registry::new();
        r.counter("serve.queries", &[("shard", "0")]).add(123);
        let g = r.gauge("serve.queue_depth", &[("shard", "0")]);
        g.set(4);
        g.dec();
        let h = r.histogram("serve.service_ns", &[("shard", "0")]);
        for v in [250u64, 900, 17_000, 1_000_000] {
            h.record(v);
        }
        r.histogram("empty.hist", &[]);
        let snap = r.snapshot();
        let parsed = Snapshot::from_json(&snap.to_json()).expect("round trip");
        assert_eq!(parsed, snap);
    }

    #[test]
    fn exporters_render_all_kinds() {
        let r = Registry::new();
        r.counter("a.count", &[]).inc();
        r.gauge("b.level", &[("x", "y")]).set(-2);
        r.histogram("c.lat_ns", &[]).record(640);
        let text = r.snapshot().to_text();
        assert!(text.contains("a.count"), "{text}");
        assert!(text.contains("b.level{x=\"y\"}"), "{text}");
        assert!(text.contains("-2 (peak 0)"), "{text}");
        assert!(text.contains("p99="), "{text}");
    }

    #[test]
    fn expect_hits_like_find_and_misses_typed() {
        let r = Registry::new();
        r.counter("serve.queries", &[]).inc();
        let snap = r.snapshot();
        assert_eq!(
            snap.expect("serve.queries", &[]).unwrap().value,
            MetricValue::Counter(1)
        );
        let miss = snap
            .expect("serve.shutdown_drain_ns", &[("shard", "3")])
            .unwrap_err();
        assert_eq!(miss.name, "serve.shutdown_drain_ns");
        assert_eq!(miss.labels, vec![("shard".to_string(), "3".to_string())]);
        assert!(miss.to_string().contains("not present"), "{miss}");
    }

    #[test]
    fn from_json_rejects_malformed_snapshots() {
        for bad in [
            "{}",
            r#"{"metrics": [{"name": "x"}]}"#,
            r#"{"metrics": [{"name": "x", "labels": {}, "kind": "nope"}]}"#,
            r#"{"metrics": [{"name": "x", "labels": {}, "kind": "counter", "value": -1}]}"#,
        ] {
            assert!(Snapshot::from_json(bad).is_err(), "{bad} accepted");
        }
    }
}
