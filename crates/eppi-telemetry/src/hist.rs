//! A mergeable log-linear histogram over the `u64` nanosecond domain.
//!
//! The bucket layout is HDR-style: values below [`GRID`] get one bucket
//! each (exact), and every power-of-two octave above that is divided
//! into [`GRID`] linear sub-buckets. A bucket therefore spans at most
//! `value / GRID` units, which bounds the relative error of any
//! reported quantile by `1 / GRID` (= 3.125%) — see
//! [`Histogram::value_at_quantile`]. 1,920 buckets cover the full
//! `u64` range, so a histogram is ~15 KiB and never saturates on
//! nanosecond timings.
//!
//! Two recording paths:
//!
//! * [`Histogram::record`] — relaxed atomic adds on the shared bucket
//!   array; fine for per-round or per-phase events.
//! * [`Recorder`] — a plain (non-atomic) thread-local copy that batches
//!   [`FLUSH_EVERY`] observations before merging into the shared
//!   histogram, so per-event cost on hot paths is an ordinary array
//!   increment with no shared-cacheline contention.
//!
//! Merging is exact: bucket counts are added, so merging N histograms
//! is indistinguishable from having recorded every observation into one
//! (property-tested in `tests/histogram_properties.rs`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Linear sub-buckets per octave (`2^SUB_BUCKET_BITS`).
pub const SUB_BUCKET_BITS: u32 = 5;

/// Sub-bucket count; also the bound below which recording is exact.
pub const GRID: u64 = 1 << SUB_BUCKET_BITS;

/// Octaves above the exact range (`msb ∈ SUB_BUCKET_BITS..=63`).
const OCTAVES: usize = 64 - SUB_BUCKET_BITS as usize;

/// Total bucket count of every histogram.
pub const BUCKETS: usize = GRID as usize + OCTAVES * GRID as usize;

/// Maximum relative error of a reported quantile (`1 / GRID`).
pub const MAX_RELATIVE_ERROR: f64 = 1.0 / GRID as f64;

/// Bucket index of a value.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v < GRID {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let octave = (msb - SUB_BUCKET_BITS) as usize;
        let sub = ((v >> (msb - SUB_BUCKET_BITS)) - GRID) as usize;
        GRID as usize + octave * GRID as usize + sub
    }
}

/// Representative (midpoint) value of a bucket.
fn representative(idx: usize) -> u64 {
    if idx < GRID as usize {
        idx as u64
    } else {
        let octave = (idx - GRID as usize) / GRID as usize;
        let sub = ((idx - GRID as usize) % GRID as usize) as u64;
        let low = (GRID + sub) << octave;
        low + (1u64 << octave) / 2
    }
}

/// A shared, concurrently updatable histogram (the *family* target that
/// per-thread [`Recorder`]s merge into).
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation directly on the shared buckets (atomic).
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Total observations recorded (including merged recorders).
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations (wrapping beyond `u64::MAX`).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest observation, exact (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        match self.min.load(Ordering::Relaxed) {
            u64::MAX => None,
            v => Some(v),
        }
    }

    /// Largest observation, exact (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        if self.count() == 0 {
            None
        } else {
            Some(self.max.load(Ordering::Relaxed))
        }
    }

    /// The value at quantile `q ∈ [0, 1]`, defined — like the exact
    /// sorted-vector rule — as the value whose rank is `⌈q·count⌉`
    /// (clamped to `1..=count`). The result is the midpoint of the
    /// bucket holding that rank, clamped to the exact observed
    /// `[min, max]`, so it deviates from the exact quantile by at most
    /// [`MAX_RELATIVE_ERROR`] relatively (and is exact below [`GRID`]).
    ///
    /// Returns `None` on an empty histogram.
    pub fn value_at_quantile(&self, q: f64) -> Option<u64> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (idx, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                let rep = representative(idx);
                return Some(
                    rep.clamp(self.min().unwrap_or(rep), self.max.load(Ordering::Relaxed)),
                );
            }
        }
        // A racing concurrent record can leave `count` momentarily ahead
        // of the bucket array; answer with the observed maximum.
        Some(self.max.load(Ordering::Relaxed))
    }

    /// Adds every observation of `other` into `self` (exact: bucket
    /// counts are summed).
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    fn merge_local(&self, local: &LocalHistogram) {
        if local.count == 0 {
            return;
        }
        for (idx, &n) in local.buckets.iter().enumerate() {
            if n > 0 {
                self.buckets[idx].fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(local.count, Ordering::Relaxed);
        self.sum.fetch_add(local.sum, Ordering::Relaxed);
        self.min.fetch_min(local.min, Ordering::Relaxed);
        self.max.fetch_max(local.max, Ordering::Relaxed);
    }

    /// A non-atomic copy of the bucket counts (tests, exporters).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Point-in-time summary used by the registry exporters.
    pub fn summary(&self) -> HistogramSummary {
        let count = self.count();
        let sum = self.sum();
        HistogramSummary {
            count,
            sum,
            mean: if count == 0 {
                0.0
            } else {
                sum as f64 / count as f64
            },
            min: self.min().unwrap_or(0),
            max: self.max().unwrap_or(0),
            p50: self.value_at_quantile(0.50).unwrap_or(0),
            p90: self.value_at_quantile(0.90).unwrap_or(0),
            p95: self.value_at_quantile(0.95).unwrap_or(0),
            p99: self.value_at_quantile(0.99).unwrap_or(0),
        }
    }
}

/// Point-in-time digest of one histogram (what the exporters emit).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HistogramSummary {
    /// Observations recorded.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Mean observation (0 when empty).
    pub mean: f64,
    /// Exact smallest observation (0 when empty).
    pub min: u64,
    /// Exact largest observation (0 when empty).
    pub max: u64,
    /// Median, within [`MAX_RELATIVE_ERROR`].
    pub p50: u64,
    /// 90th percentile, within [`MAX_RELATIVE_ERROR`].
    pub p90: u64,
    /// 95th percentile, within [`MAX_RELATIVE_ERROR`].
    pub p95: u64,
    /// 99th percentile, within [`MAX_RELATIVE_ERROR`].
    pub p99: u64,
}

/// Non-atomic histogram state owned by exactly one thread.
#[derive(Debug, Clone)]
struct LocalHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl LocalHistogram {
    fn new() -> Self {
        LocalHistogram {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    #[inline]
    fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    fn clear(&mut self) {
        self.buckets.fill(0);
        self.count = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }
}

/// Observations buffered in a [`Recorder`] before it merges into its
/// shared histogram.
pub const FLUSH_EVERY: u64 = 1024;

/// A per-thread recording handle for one shared [`Histogram`].
///
/// `record` is a plain array increment on thread-private memory; every
/// [`FLUSH_EVERY`] observations (and on drop) the buffered counts merge
/// into the shared histogram in one pass. Hot paths therefore never
/// touch a shared cache line per event, at the cost of a snapshot
/// lagging a recorder by at most `FLUSH_EVERY − 1` observations.
#[derive(Debug)]
pub struct Recorder {
    local: LocalHistogram,
    shared: Arc<Histogram>,
}

impl Recorder {
    /// Creates a recorder feeding `shared`.
    pub fn new(shared: Arc<Histogram>) -> Self {
        Recorder {
            local: LocalHistogram::new(),
            shared,
        }
    }

    /// Records one observation (auto-flushes every [`FLUSH_EVERY`]).
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.local.record(v);
        if self.local.count >= FLUSH_EVERY {
            self.flush();
        }
    }

    /// Merges all buffered observations into the shared histogram now.
    pub fn flush(&mut self) {
        self.shared.merge_local(&self.local);
        self.local.clear();
    }
}

impl Drop for Recorder {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in [0u64, 1, 5, 31] {
            h.record(v);
        }
        assert_eq!(h.value_at_quantile(0.0), Some(0));
        assert_eq!(h.value_at_quantile(0.5), Some(1));
        assert_eq!(h.value_at_quantile(1.0), Some(31));
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(31));
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 37);
    }

    #[test]
    fn bucket_layout_is_contiguous_and_monotone() {
        // Every bucket's lower edge maps back to the same bucket, and
        // boundaries ascend strictly.
        let mut last = None;
        for idx in 0..BUCKETS {
            let rep = representative(idx);
            assert_eq!(
                bucket_of(rep),
                idx,
                "representative {rep} escaped bucket {idx}"
            );
            if let Some(prev) = last {
                assert!(rep > prev, "bucket {idx} not monotone");
            }
            last = Some(rep);
        }
        // Extremes stay in range.
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantile_error_is_bounded() {
        let h = Histogram::new();
        for v in 1..=100_000u64 {
            h.record(v * 7 + 3);
        }
        for q in [0.5, 0.9, 0.99, 1.0] {
            let exact = {
                let rank = ((q * 100_000f64).ceil() as u64).clamp(1, 100_000);
                rank * 7 + 3
            };
            let got = h.value_at_quantile(q).unwrap() as f64;
            let rel = (got - exact as f64).abs() / exact as f64;
            assert!(rel <= MAX_RELATIVE_ERROR, "q={q}: {got} vs {exact} ({rel})");
        }
    }

    #[test]
    fn empty_histogram_answers_none() {
        let h = Histogram::new();
        assert_eq!(h.value_at_quantile(0.5), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.p99, 0);
    }

    #[test]
    fn recorder_flushes_on_threshold_and_drop() {
        let shared = Arc::new(Histogram::new());
        let mut r = Recorder::new(Arc::clone(&shared));
        for v in 0..FLUSH_EVERY {
            r.record(v);
        }
        // Threshold flush already happened.
        assert_eq!(shared.count(), FLUSH_EVERY);
        r.record(7);
        assert_eq!(shared.count(), FLUSH_EVERY);
        drop(r);
        assert_eq!(shared.count(), FLUSH_EVERY + 1);
    }

    #[test]
    fn merge_matches_single_histogram() {
        let a = Histogram::new();
        let b = Histogram::new();
        let one = Histogram::new();
        for v in 0..5_000u64 {
            let x = v * v % 100_003;
            if v % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
            one.record(x);
        }
        a.merge(&b);
        assert_eq!(a.bucket_counts(), one.bucket_counts());
        assert_eq!(a.summary(), one.summary());
    }
}
