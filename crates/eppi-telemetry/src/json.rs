//! A minimal JSON document model with writer and parser.
//!
//! The build environment has no crates.io access, so exporters in this
//! workspace hand-roll their JSON. This module centralizes that: a
//! small [`JsonValue`] tree, a compact/pretty writer with correct
//! string escaping, and a strict parser covering the subset the
//! exporters emit (objects, arrays, strings, integer and float numbers,
//! booleans, null). Integers are kept as `i64`/`u64` rather than
//! flattened to `f64`, so counter values round-trip exactly; floats are
//! written with Rust's shortest-round-trip `Display` and therefore
//! reparse bit-identically.

use std::fmt::Write as _;

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A negative integer (positive ones parse as [`JsonValue::UInt`]).
    Int(i64),
    /// A non-negative integer.
    UInt(u64),
    /// A number with a fraction or exponent.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a key in an object (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            JsonValue::UInt(v) => Some(v),
            JsonValue::Int(v) => u64::try_from(v).ok(),
            _ => None,
        }
    }

    /// The value as `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            JsonValue::Int(v) => Some(v),
            JsonValue::UInt(v) => i64::try_from(v).ok(),
            _ => None,
        }
    }

    /// The value as `f64`, if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            JsonValue::Int(v) => Some(v as f64),
            JsonValue::UInt(v) => Some(v as f64),
            JsonValue::Float(v) => Some(v),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a slice, if it is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with 2-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::Float(v) => {
                if v.is_finite() {
                    // `Display` prints the shortest string that reparses
                    // to the same f64; keep integral floats a float
                    // token so the round-trip preserves the variant.
                    let token = format!("{v}");
                    let integral = !token.contains(['.', 'e', 'E']);
                    out.push_str(&token);
                    if integral {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d);
                });
            }
            JsonValue::Object(entries) => {
                write_seq(out, indent, depth, '{', '}', entries.len(), |out, i, d| {
                    let (key, value) = &entries[i];
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, d);
                });
            }
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed).
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset of the first violation.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if len > 0 {
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * depth));
        }
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected character at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            entries.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(entries));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.hex4_after_u()?;
                            let c = match code {
                                // High surrogate: JSON encodes astral-plane
                                // characters as a \uXXXX\uXXXX pair (any
                                // exporter that ASCII-escapes does this for
                                // e.g. emoji); decode the pair.
                                0xD800..=0xDBFF => {
                                    if self.bytes.get(self.pos + 1..self.pos + 3)
                                        != Some(&b"\\u"[..])
                                    {
                                        return Err("unpaired high surrogate \\u escape".into());
                                    }
                                    self.pos += 2;
                                    let low = self.hex4_after_u()?;
                                    if !(0xDC00..=0xDFFF).contains(&low) {
                                        return Err("unpaired high surrogate \\u escape".into());
                                    }
                                    let scalar = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(scalar).ok_or("bad \\u surrogate pair")?
                                }
                                0xDC00..=0xDFFF => {
                                    return Err("unpaired low surrogate \\u escape".into())
                                }
                                _ => char::from_u32(code).ok_or("bad \\u escape")?,
                            };
                            out.push(c);
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 scalar (input is a &str, so
                    // continuation bytes are always well-formed).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Reads the 4 hex digits of a `\u` escape; `self.pos` must be at
    /// the `u` and ends on the last digit (the caller's shared
    /// post-escape advance steps past it).
    fn hex4_after_u(&mut self) -> Result<u32, String> {
        let hex = self
            .bytes
            .get(self.pos + 1..self.pos + 5)
            .ok_or("truncated \\u escape")?;
        let code = u32::from_str_radix(std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?, 16)
            .map_err(|_| "bad \\u escape")?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if float {
            token
                .parse::<f64>()
                .map(JsonValue::Float)
                .map_err(|_| format!("bad number at byte {start}"))
        } else if token.starts_with('-') {
            token
                .parse::<i64>()
                .map(JsonValue::Int)
                .map_err(|_| format!("bad number at byte {start}"))
        } else {
            token
                .parse::<u64>()
                .map(JsonValue::UInt)
                .map_err(|_| format!("bad number at byte {start}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact_and_pretty() {
        let doc = JsonValue::Object(vec![
            ("name".into(), JsonValue::Str("serve.queries".into())),
            ("count".into(), JsonValue::UInt(u64::MAX)),
            ("delta".into(), JsonValue::Int(-42)),
            ("mean".into(), JsonValue::Float(123.456_789_012_3)),
            ("whole".into(), JsonValue::Float(2.0)),
            ("on".into(), JsonValue::Bool(true)),
            ("gap".into(), JsonValue::Null),
            (
                "items".into(),
                JsonValue::Array(vec![
                    JsonValue::UInt(1),
                    JsonValue::Str("a\"b\\c\nd".into()),
                ]),
            ),
            ("empty".into(), JsonValue::Array(vec![])),
        ]);
        for text in [doc.to_compact(), doc.to_pretty()] {
            assert_eq!(JsonValue::parse(&text).unwrap(), doc, "{text}");
        }
    }

    #[test]
    fn integers_keep_full_precision() {
        let text = format!("[{}, {}]", u64::MAX, i64::MIN);
        let parsed = JsonValue::parse(&text).unwrap();
        assert_eq!(parsed.as_array().unwrap()[0].as_u64(), Some(u64::MAX));
        assert_eq!(parsed.as_array().unwrap()[1].as_i64(), Some(i64::MIN));
    }

    #[test]
    fn accessors_navigate_documents() {
        let doc = JsonValue::parse(r#"{"a": {"b": [1, 2.5, "x"]}}"#).unwrap();
        let inner = doc.get("a").unwrap().get("b").unwrap().as_array().unwrap();
        assert_eq!(inner[0].as_u64(), Some(1));
        assert_eq!(inner[1].as_f64(), Some(2.5));
        assert_eq!(inner[2].as_str(), Some("x"));
        assert!(doc.get("missing").is_none());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"\\q\""] {
            assert!(JsonValue::parse(bad).is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn hostile_strings_round_trip() {
        for s in [
            "quote\" backslash\\ slash/ tab\t newline\n",
            "\u{0}\u{1}\u{8}\u{b}\u{c}\u{1f}",
            "emoji \u{1F600} accents é combining e\u{301}",
            "label=\"a\\\"b\"",
            "",
        ] {
            let doc = JsonValue::Object(vec![(s.to_string(), JsonValue::Str(s.into()))]);
            for text in [doc.to_compact(), doc.to_pretty()] {
                assert_eq!(JsonValue::parse(&text).unwrap(), doc, "{text}");
            }
        }
    }

    #[test]
    fn decodes_surrogate_pair_escapes() {
        // ASCII-escaping exporters (e.g. Python's json.dumps) encode
        // astral-plane characters as UTF-16 surrogate pairs.
        let doc = JsonValue::parse(r#""\ud83d\ude00 and \u00e9""#).unwrap();
        assert_eq!(doc.as_str(), Some("\u{1F600} and é"));
    }

    #[test]
    fn rejects_lone_and_malformed_surrogates() {
        for bad in [
            r#""\ud800""#,
            r#""\ud800x""#,
            r#""\ud800\u0041""#,
            r#""\udc00""#,
            r#""\uZZZZ""#,
            r#""\ud8"#,
        ] {
            assert!(JsonValue::parse(bad).is_err(), "{bad:?} parsed");
        }
    }

    proptest::proptest! {
        /// Any string value — label values included — survives a
        /// write/parse round trip through both renderings. Drawn
        /// characters are biased hard toward the troublemakers:
        /// quotes, backslashes, and control characters.
        #[test]
        fn any_string_round_trips(seed in proptest::any::<u64>(), len in 0usize..32) {
            let mut x = seed | 1;
            let mut s = String::new();
            for _ in 0..len {
                // xorshift64 as a cheap deterministic stream.
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let c = match x % 4 {
                    0 => '"',
                    1 => '\\',
                    2 => char::from_u32((x >> 3) as u32 % 0x20).unwrap(),
                    // Anything in scalar-value space (surrogate
                    // candidates fall back to an astral-plane char).
                    _ => char::from_u32((x >> 3) as u32 % 0x11_0000).unwrap_or('\u{1F600}'),
                };
                s.push(c);
            }
            let doc = JsonValue::Object(vec![("v".to_string(), JsonValue::Str(s))]);
            for text in [doc.to_compact(), doc.to_pretty()] {
                proptest::prop_assert_eq!(&JsonValue::parse(&text).unwrap(), &doc, "{}", text);
            }
        }
    }
}
