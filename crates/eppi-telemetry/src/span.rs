//! RAII wall-clock scopes.
//!
//! A [`SpanTimer`] stamps `Instant::now()` on creation and records the
//! elapsed nanoseconds into its target [`Histogram`] when dropped (or
//! explicitly via [`stop`](SpanTimer::stop), which also returns the
//! duration). Intended for coarse phases — construction stages, GMW
//! rounds, drain windows — where one shared atomic record per span is
//! negligible; hot per-event paths should use a
//! [`Recorder`](crate::Recorder) instead.

use crate::hist::Histogram;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Times a scope and records its duration (in nanoseconds) into a
/// histogram on drop.
#[derive(Debug)]
pub struct SpanTimer {
    started: Instant,
    target: Option<Arc<Histogram>>,
}

impl SpanTimer {
    /// Starts a span recording into `target`.
    pub fn new(target: Arc<Histogram>) -> Self {
        SpanTimer {
            started: Instant::now(),
            target: Some(target),
        }
    }

    /// Elapsed time so far, without stopping the span.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Stops the span now, records it, and returns the elapsed time.
    pub fn stop(mut self) -> Duration {
        let elapsed = self.started.elapsed();
        if let Some(target) = self.target.take() {
            target.record(elapsed.as_nanos() as u64);
        }
        elapsed
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        if let Some(target) = self.target.take() {
            target.record(self.started.elapsed().as_nanos() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_records_exactly_once() {
        let h = Arc::new(Histogram::new());
        {
            let _span = SpanTimer::new(Arc::clone(&h));
        }
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn stop_records_and_reports() {
        let h = Arc::new(Histogram::new());
        let span = SpanTimer::new(Arc::clone(&h));
        std::thread::sleep(Duration::from_millis(2));
        let elapsed = span.stop();
        assert!(elapsed >= Duration::from_millis(2));
        assert_eq!(h.count(), 1);
        assert!(h.max().unwrap() >= 2_000_000);
    }
}
