//! The re-publication (intersection) attack — why ε-PPI is *static*.
//!
//! §III-C argues ε-PPI "is fully resistant to repeated attacks against
//! the same identity over time, because the ε-PPI is static; once
//! constructed … it stays the same." This module demonstrates the
//! contrapositive: if the index were re-randomized every epoch (fresh
//! false-positive coin flips per publication), an attacker who archives
//! the published versions could intersect an owner's rows — true
//! positives appear in *every* version (the truthful rule), while any
//! particular decoy survives `k` versions only with probability `β^k`.
//! Confidence then converges to certainty geometrically.

use eppi_core::model::{MembershipMatrix, OwnerId, ProviderId, PublishedIndex};

/// The attacker's archive of published index versions.
#[derive(Debug, Clone, Default)]
pub struct IndexArchive {
    versions: Vec<PublishedIndex>,
}

impl IndexArchive {
    /// Creates an empty archive.
    pub fn new() -> Self {
        IndexArchive::default()
    }

    /// Records one published version.
    pub fn record(&mut self, index: PublishedIndex) {
        self.versions.push(index);
    }

    /// Number of archived versions.
    pub fn len(&self) -> usize {
        self.versions.len()
    }

    /// Whether the archive is empty.
    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }

    /// Providers published for `owner` in *every* archived version — the
    /// intersection attack's candidate set. Empty archive yields an
    /// empty set, as does any version that does not cover the owner
    /// (the owner was not published then, so nothing survives).
    ///
    /// Runs directly on the bit-packed provider columns: one AND per
    /// 64 providers per version, instead of hashing provider ids.
    pub fn intersection(&self, owner: OwnerId) -> Vec<ProviderId> {
        let column = |v: &PublishedIndex| -> Option<Vec<u64>> {
            let m = v.matrix();
            (owner.index() < m.owners()).then(|| m.column_words(owner))
        };
        let mut iter = self.versions.iter();
        let mut acc = match iter.next().and_then(column) {
            Some(words) => words,
            None => return Vec::new(),
        };
        for version in iter {
            match column(version) {
                Some(words) => {
                    // Provider counts can differ between versions; bits
                    // beyond a shorter version intersect to zero.
                    for (i, w) in acc.iter_mut().enumerate() {
                        *w &= words.get(i).copied().unwrap_or(0);
                    }
                }
                None => return Vec::new(),
            }
        }
        let mut out = Vec::new();
        for (i, mut word) in acc.into_iter().enumerate() {
            while word != 0 {
                let bit = word.trailing_zeros() as usize;
                out.push(ProviderId((i * 64 + bit) as u32));
                word &= word - 1;
            }
        }
        out
    }

    /// The intersection attacker's confidence against `owner`: the
    /// true-positive fraction of the intersected candidate set (`None`
    /// if the set is empty).
    pub fn intersection_confidence(&self, truth: &MembershipMatrix, owner: OwnerId) -> Option<f64> {
        let candidates = self.intersection(owner);
        if candidates.is_empty() {
            return None;
        }
        let hits = candidates.iter().filter(|&&p| truth.get(p, owner)).count();
        Some(hits as f64 / candidates.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eppi_core::construct::{construct, ConstructionConfig};
    use eppi_core::model::Epsilon;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn network() -> (MembershipMatrix, Vec<Epsilon>) {
        let mut truth = MembershipMatrix::new(400, 1);
        for p in 0..8u32 {
            truth.set(ProviderId(p * 37 % 400), OwnerId(0), true);
        }
        (truth, vec![Epsilon::saturating(0.9)])
    }

    /// Re-randomizing each epoch lets the intersection converge to the
    /// true positives — the leak the static design prevents.
    #[test]
    fn rerandomized_epochs_leak_geometrically() {
        let (truth, eps) = network();
        let mut archive = IndexArchive::new();
        let mut confidences = Vec::new();
        for epoch in 0..6u64 {
            // FRESH seed per epoch = fresh coin flips (the broken design).
            let mut rng = StdRng::seed_from_u64(1000 + epoch);
            let built = construct(&truth, &eps, ConstructionConfig::default(), &mut rng)
                .expect("construction");
            archive.record(built.index);
            confidences.push(archive.intersection_confidence(&truth, OwnerId(0)).unwrap());
        }
        // Confidence is (weakly) monotone and ends at certainty.
        for w in confidences.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-12,
                "confidence must not drop: {confidences:?}"
            );
        }
        assert!(
            *confidences.last().unwrap() > 0.95,
            "six epochs should nearly expose the owner: {confidences:?}"
        );
        // The truthful rule keeps every true positive in the intersection.
        let survivors = archive.intersection(OwnerId(0));
        for p in truth.providers_of(OwnerId(0)) {
            assert!(survivors.contains(&p));
        }
    }

    /// The paper's static design: the same index re-served every epoch
    /// adds no information — the intersection equals any single version.
    #[test]
    fn static_index_gains_attacker_nothing() {
        let (truth, eps) = network();
        let mut rng = StdRng::seed_from_u64(7);
        let built =
            construct(&truth, &eps, ConstructionConfig::default(), &mut rng).expect("construction");
        let single = built.index.query(OwnerId(0));
        let mut archive = IndexArchive::new();
        for _ in 0..6 {
            archive.record(built.index.clone());
        }
        assert_eq!(archive.intersection(OwnerId(0)), {
            let mut s = single.clone();
            s.sort();
            s
        });
        let confidence = archive.intersection_confidence(&truth, OwnerId(0)).unwrap();
        assert!(
            confidence <= 1.0 - eps[0].value() + 0.05,
            "static archive keeps the ε bound: {confidence}"
        );
    }

    /// The epoch/delta lifecycle (`eppi-protocol::epoch`) keeps every
    /// untouched cell bit-identical across epochs, so archiving three
    /// consecutive delta refreshes gains the intersection attacker
    /// nothing on the owners that did not change.
    #[test]
    fn delta_epochs_do_not_reopen_the_intersection_attack() {
        use eppi_core::delta::{ColumnChange, DeltaEntry, IndexDelta};
        use eppi_protocol::construct::ProtocolConfig;
        use eppi_protocol::epoch::{construct_delta, construct_epoch};

        let owners = 6usize;
        let mut truth = MembershipMatrix::new(48, owners);
        for j in 0..owners as u32 {
            for p in 0..4u32 {
                truth.set(ProviderId((j * 11 + p * 13) % 48), OwnerId(j), true);
            }
        }
        let eps = vec![Epsilon::saturating(0.8); owners];
        let config = ProtocolConfig::default();

        let mut archive = IndexArchive::new();
        let mut epoch = construct_epoch(&truth, &eps, &config).expect("epoch 0");
        archive.record(epoch.index().clone());
        let single = archive.clone();

        // Three consecutive delta epochs, each churning only owner 0.
        for round in 0..3u32 {
            let mut delta = IndexDelta::new(owners);
            delta.record(DeltaEntry {
                owner: OwnerId(0),
                change: ColumnChange::Changed,
                epsilon: eps[0],
            });
            truth.set(ProviderId(20 + round), OwnerId(0), true);
            let built = construct_delta(&epoch, &truth, &delta).expect("delta epoch");
            epoch = built.epoch;
            archive.record(epoch.index().clone());
        }
        assert_eq!(archive.len(), 4);

        // Untouched owners: the four-version intersection equals the
        // single-version candidate set, and the attacker's confidence
        // never improves over what one version already gave.
        for j in 1..owners as u32 {
            let owner = OwnerId(j);
            assert_eq!(
                archive.intersection(owner),
                single.intersection(owner),
                "owner {j}: archived deltas shrank the candidate set"
            );
            assert_eq!(
                archive.intersection_confidence(&truth, owner),
                single.intersection_confidence(&truth, owner),
                "owner {j}: attacker confidence improved across delta epochs"
            );
        }
    }

    #[test]
    fn empty_archive_has_no_candidates() {
        let (truth, _) = network();
        let archive = IndexArchive::new();
        assert!(archive.is_empty());
        assert!(archive.intersection(OwnerId(0)).is_empty());
        assert_eq!(archive.intersection_confidence(&truth, OwnerId(0)), None);
    }
}
