//! The re-publication (intersection) attack — why ε-PPI is *static*.
//!
//! §III-C argues ε-PPI "is fully resistant to repeated attacks against
//! the same identity over time, because the ε-PPI is static; once
//! constructed … it stays the same." This module demonstrates the
//! contrapositive: if the index were re-randomized every epoch (fresh
//! false-positive coin flips per publication), an attacker who archives
//! the published versions could intersect an owner's rows — true
//! positives appear in *every* version (the truthful rule), while any
//! particular decoy survives `k` versions only with probability `β^k`.
//! Confidence then converges to certainty geometrically.

use eppi_core::model::{MembershipMatrix, OwnerId, ProviderId, PublishedIndex};
use std::collections::HashSet;

/// The attacker's archive of published index versions.
#[derive(Debug, Clone, Default)]
pub struct IndexArchive {
    versions: Vec<PublishedIndex>,
}

impl IndexArchive {
    /// Creates an empty archive.
    pub fn new() -> Self {
        IndexArchive::default()
    }

    /// Records one published version.
    pub fn record(&mut self, index: PublishedIndex) {
        self.versions.push(index);
    }

    /// Number of archived versions.
    pub fn len(&self) -> usize {
        self.versions.len()
    }

    /// Whether the archive is empty.
    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }

    /// Providers published for `owner` in *every* archived version — the
    /// intersection attack's candidate set. Empty archive yields an
    /// empty set.
    pub fn intersection(&self, owner: OwnerId) -> Vec<ProviderId> {
        let mut iter = self.versions.iter();
        let first = match iter.next() {
            Some(v) => v,
            None => return Vec::new(),
        };
        let mut set: HashSet<ProviderId> = first.query(owner).into_iter().collect();
        for version in iter {
            let next: HashSet<ProviderId> = version.query(owner).into_iter().collect();
            set.retain(|p| next.contains(p));
        }
        let mut out: Vec<ProviderId> = set.into_iter().collect();
        out.sort();
        out
    }

    /// The intersection attacker's confidence against `owner`: the
    /// true-positive fraction of the intersected candidate set (`None`
    /// if the set is empty).
    pub fn intersection_confidence(&self, truth: &MembershipMatrix, owner: OwnerId) -> Option<f64> {
        let candidates = self.intersection(owner);
        if candidates.is_empty() {
            return None;
        }
        let hits = candidates.iter().filter(|&&p| truth.get(p, owner)).count();
        Some(hits as f64 / candidates.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eppi_core::construct::{construct, ConstructionConfig};
    use eppi_core::model::Epsilon;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn network() -> (MembershipMatrix, Vec<Epsilon>) {
        let mut truth = MembershipMatrix::new(400, 1);
        for p in 0..8u32 {
            truth.set(ProviderId(p * 37 % 400), OwnerId(0), true);
        }
        (truth, vec![Epsilon::saturating(0.9)])
    }

    /// Re-randomizing each epoch lets the intersection converge to the
    /// true positives — the leak the static design prevents.
    #[test]
    fn rerandomized_epochs_leak_geometrically() {
        let (truth, eps) = network();
        let mut archive = IndexArchive::new();
        let mut confidences = Vec::new();
        for epoch in 0..6u64 {
            // FRESH seed per epoch = fresh coin flips (the broken design).
            let mut rng = StdRng::seed_from_u64(1000 + epoch);
            let built = construct(&truth, &eps, ConstructionConfig::default(), &mut rng)
                .expect("construction");
            archive.record(built.index);
            confidences.push(archive.intersection_confidence(&truth, OwnerId(0)).unwrap());
        }
        // Confidence is (weakly) monotone and ends at certainty.
        for w in confidences.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-12,
                "confidence must not drop: {confidences:?}"
            );
        }
        assert!(
            *confidences.last().unwrap() > 0.95,
            "six epochs should nearly expose the owner: {confidences:?}"
        );
        // The truthful rule keeps every true positive in the intersection.
        let survivors = archive.intersection(OwnerId(0));
        for p in truth.providers_of(OwnerId(0)) {
            assert!(survivors.contains(&p));
        }
    }

    /// The paper's static design: the same index re-served every epoch
    /// adds no information — the intersection equals any single version.
    #[test]
    fn static_index_gains_attacker_nothing() {
        let (truth, eps) = network();
        let mut rng = StdRng::seed_from_u64(7);
        let built =
            construct(&truth, &eps, ConstructionConfig::default(), &mut rng).expect("construction");
        let single = built.index.query(OwnerId(0));
        let mut archive = IndexArchive::new();
        for _ in 0..6 {
            archive.record(built.index.clone());
        }
        assert_eq!(archive.intersection(OwnerId(0)), {
            let mut s = single.clone();
            s.sort();
            s
        });
        let confidence = archive.intersection_confidence(&truth, OwnerId(0)).unwrap();
        assert!(
            confidence <= 1.0 - eps[0].value() + 0.05,
            "static archive keeps the ε bound: {confidence}"
        );
    }

    #[test]
    fn empty_archive_has_no_candidates() {
        let (truth, _) = network();
        let archive = IndexArchive::new();
        assert!(archive.is_empty());
        assert!(archive.intersection(OwnerId(0)).is_empty());
        assert_eq!(archive.intersection_confidence(&truth, OwnerId(0)), None);
    }
}
