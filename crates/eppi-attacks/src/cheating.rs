//! Cheating providers: the malicious-provider threat model the audit
//! layer must defeat (DESIGN.md §16).
//!
//! §II-B's attacks are all *reader-side*: an adversary mines the
//! published index. A malicious *provider* attacks from the other end —
//! it violates the publication rule itself, serving a column that
//! under-decoys its owners, and without verification nobody can tell.
//! This module implements the concrete strategies such a provider would
//! use and a trial harness that pits them against the `eppi-audit`
//! certificate check:
//!
//! * [`CheatStrategy::WrongBeta`] — run the flips under a private β′
//!   instead of the official per-owner β's (fewer decoys, honest-looking
//!   column). Caught by the decisions digest with probability 1.
//! * [`CheatStrategy::StaleColumn`] — replay the previous epoch's flip
//!   stream against this epoch's coins. Caught by the in-the-head
//!   circuit's output check with probability 1.
//! * [`CheatStrategy::SelectiveDeflip`] — publish the honest column
//!   with chosen decoys cleared, but prove honestly. Probability-1
//!   output mismatch.
//! * [`CheatStrategy::ForgedView`] — the strongest prover: deflip *and*
//!   tamper the unopened view so two of the three opening pairs
//!   reconstruct consistently. Escapes one repetition with probability
//!   2/3; survives `R` repetitions with probability `(2/3)^R`.

use eppi_audit::zkboo::prove_column;
use eppi_audit::{
    decision_words, mask_tail, prove_column_forged, AuditError, AuditParams, ColumnCommitment,
    ColumnProof, ColumnStatement,
};
use eppi_core::model::{MembershipMatrix, ProviderId};

/// How a malicious provider deviates from the publication rule.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CheatStrategy {
    /// Flip under a flat claimed β instead of the official per-owner
    /// β's, and commit/prove against the claimed value.
    WrongBeta {
        /// The β the provider actually uses (typically ≪ official).
        claimed: f64,
    },
    /// Serve a column whose decoys come from a stale coin stream (a
    /// previous epoch's flips), proving honestly against it.
    StaleColumn {
        /// The epoch seed the served flips were drawn under.
        stale_seed: u64,
    },
    /// Serve the honest column with the first `drop` decoy cells
    /// (decision 1, raw 0) cleared, proving honestly.
    SelectiveDeflip {
        /// How many decoys to clear.
        drop: usize,
    },
    /// [`SelectiveDeflip`](CheatStrategy::SelectiveDeflip) plus a
    /// forged proof: the unopened view is cooked so the deflip is only
    /// visible to one of the three opening pairs.
    ForgedView {
        /// How many decoys to clear.
        drop: usize,
    },
}

impl CheatStrategy {
    /// Stable label for telemetry and bench output.
    pub fn name(&self) -> &'static str {
        match self {
            CheatStrategy::WrongBeta { .. } => "wrong_beta",
            CheatStrategy::StaleColumn { .. } => "stale_column",
            CheatStrategy::SelectiveDeflip { .. } => "selective_deflip",
            CheatStrategy::ForgedView { .. } => "forged_view",
        }
    }
}

/// A provider and the strategy it plays.
#[derive(Debug, Clone, PartialEq)]
pub struct CheatingProvider {
    /// Which provider cheats.
    pub provider: ProviderId,
    /// How it cheats.
    pub strategy: CheatStrategy,
}

/// What one provider served and how the audit went.
#[derive(Debug, Clone, PartialEq)]
pub struct ProviderAuditOutcome {
    /// The audited provider.
    pub provider: ProviderId,
    /// `None` for an honest provider, the strategy label otherwise.
    pub cheated: Option<&'static str>,
    /// The auditor's verdict for this provider's certificate.
    pub error: Option<AuditError>,
    /// The column the provider actually served (what would enter the
    /// epoch if the auditor let it through).
    pub served: Vec<u64>,
}

impl ProviderAuditOutcome {
    /// True when the auditor rejected the certificate.
    pub fn detected(&self) -> bool {
        self.error.is_some()
    }

    /// True for a cheater that got through, or an honest provider that
    /// was rejected — the two failure modes of the audit layer.
    pub fn miscarriage(&self) -> bool {
        self.cheated.is_some() != self.detected()
    }
}

/// Clears the first `drop` decoy lanes (published 1, raw 0) of
/// `published`. Returns how many were actually cleared.
fn clear_decoys(published: &mut [u64], raw: &[u64], owners: usize, drop: usize) -> usize {
    let mut cleared = 0;
    for j in 0..owners {
        if cleared == drop {
            break;
        }
        let (w, b) = (j / 64, 1u64 << (j % 64));
        if published[w] & b != 0 && raw[w] & b == 0 {
            published[w] ^= b;
            cleared += 1;
        }
    }
    cleared
}

/// The honest column: raw ∨ official decisions, tail-masked.
fn honest_column(epoch_seed: u64, provider: ProviderId, betas: &[f64], raw: &[u64]) -> Vec<u64> {
    let mut column: Vec<u64> = decision_words(epoch_seed, provider, betas)
        .iter()
        .zip(raw)
        .map(|(d, r)| d | r)
        .collect();
    mask_tail(&mut column, betas.len());
    column
}

/// Produces the column a provider serves plus the certificate it hands
/// the auditor, honest or cheating. The certificate is always
/// *internally* consistent — the commitment covers the served column —
/// because an inconsistent one is trivially rejected; the cheat is in
/// how the column (or the proof) relates to the official rule.
pub fn serve_column(
    epoch_seed: u64,
    provider: ProviderId,
    betas: &[f64],
    raw: &[u64],
    strategy: Option<&CheatStrategy>,
    params: &AuditParams,
    prover_seed: u64,
) -> (Vec<u64>, ColumnCommitment, ColumnProof) {
    let owners = betas.len();
    match strategy {
        None => {
            let column = honest_column(epoch_seed, provider, betas, raw);
            let stmt = ColumnStatement {
                epoch_seed,
                provider,
                betas,
                published: &column,
            };
            let commitment = ColumnCommitment::compute(epoch_seed, provider, betas, &column);
            let proof = prove_column(&stmt, raw, params, prover_seed);
            (column, commitment, proof)
        }
        Some(CheatStrategy::WrongBeta { claimed }) => {
            // Everything is honest *relative to the claimed β*: the
            // cheat only exists against the official β's.
            let claimed_betas = vec![*claimed; owners];
            let column = honest_column(epoch_seed, provider, &claimed_betas, raw);
            let stmt = ColumnStatement {
                epoch_seed,
                provider,
                betas: &claimed_betas,
                published: &column,
            };
            let commitment =
                ColumnCommitment::compute(epoch_seed, provider, &claimed_betas, &column);
            let proof = prove_column(&stmt, raw, params, prover_seed);
            (column, commitment, proof)
        }
        Some(CheatStrategy::StaleColumn { stale_seed }) => {
            let column = honest_column(*stale_seed, provider, betas, raw);
            let stmt = ColumnStatement {
                epoch_seed,
                provider,
                betas,
                published: &column,
            };
            let commitment = ColumnCommitment::compute(epoch_seed, provider, betas, &column);
            let proof = prove_column(&stmt, raw, params, prover_seed);
            (column, commitment, proof)
        }
        Some(CheatStrategy::SelectiveDeflip { drop }) => {
            let mut column = honest_column(epoch_seed, provider, betas, raw);
            clear_decoys(&mut column, raw, owners, *drop);
            let stmt = ColumnStatement {
                epoch_seed,
                provider,
                betas,
                published: &column,
            };
            let commitment = ColumnCommitment::compute(epoch_seed, provider, betas, &column);
            let proof = prove_column(&stmt, raw, params, prover_seed);
            (column, commitment, proof)
        }
        Some(CheatStrategy::ForgedView { drop }) => {
            let honest = honest_column(epoch_seed, provider, betas, raw);
            let mut column = honest.clone();
            clear_decoys(&mut column, raw, owners, *drop);
            let delta: Vec<u64> = honest.iter().zip(&column).map(|(a, b)| a ^ b).collect();
            let stmt = ColumnStatement {
                epoch_seed,
                provider,
                betas,
                published: &column,
            };
            let commitment = ColumnCommitment::compute(epoch_seed, provider, betas, &column);
            let proof = prove_column_forged(&stmt, raw, params, prover_seed, &delta);
            (column, commitment, proof)
        }
    }
}

/// Runs one audit trial: every provider of `matrix` serves its column
/// (the listed cheaters playing their strategies, everyone else
/// honest), and the auditor verifies every certificate against the
/// served columns and the *official* β's.
pub fn run_cheating_trial(
    epoch_seed: u64,
    betas: &[f64],
    matrix: &MembershipMatrix,
    cheaters: &[CheatingProvider],
    params: &AuditParams,
    prover_seed: u64,
) -> Vec<ProviderAuditOutcome> {
    matrix
        .provider_ids()
        .map(|provider| {
            let strategy = cheaters
                .iter()
                .find(|c| c.provider == provider)
                .map(|c| &c.strategy);
            let (served, commitment, proof) = serve_column(
                epoch_seed,
                provider,
                betas,
                matrix.row_words(provider),
                strategy,
                params,
                prover_seed ^ u64::from(provider.0).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            );
            let stmt = ColumnStatement {
                epoch_seed,
                provider,
                betas,
                published: &served,
            };
            let error = eppi_audit::verify_column(&stmt, &commitment, &proof, params).err();
            ProviderAuditOutcome {
                provider,
                cheated: strategy.map(CheatStrategy::name),
                error,
                served,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eppi_core::model::OwnerId;

    fn dense_matrix(m: usize, n: usize) -> MembershipMatrix {
        let mut mat = MembershipMatrix::new(m, n);
        for j in 0..n as u32 {
            for p in 0..m as u32 {
                if (p + j) % 3 == 0 {
                    mat.set(ProviderId(p), OwnerId(j), true);
                }
            }
        }
        mat
    }

    #[test]
    fn honest_trial_has_no_rejections() {
        let mat = dense_matrix(6, 90);
        let betas = vec![0.4; 90];
        let out = run_cheating_trial(42, &betas, &mat, &[], &AuditParams { repetitions: 6 }, 1);
        assert_eq!(out.len(), 6);
        assert!(out.iter().all(|o| !o.detected() && !o.miscarriage()));
    }

    #[test]
    fn every_strategy_is_detected_and_nobody_else_is() {
        let mat = dense_matrix(8, 90);
        let betas = vec![0.5; 90];
        let cheaters = vec![
            CheatingProvider {
                provider: ProviderId(1),
                strategy: CheatStrategy::WrongBeta { claimed: 0.05 },
            },
            CheatingProvider {
                provider: ProviderId(3),
                strategy: CheatStrategy::StaleColumn { stale_seed: 41 },
            },
            CheatingProvider {
                provider: ProviderId(5),
                strategy: CheatStrategy::SelectiveDeflip { drop: 4 },
            },
            CheatingProvider {
                provider: ProviderId(6),
                strategy: CheatStrategy::ForgedView { drop: 2 },
            },
        ];
        let params = AuditParams { repetitions: 40 };
        let out = run_cheating_trial(42, &betas, &mat, &cheaters, &params, 7);
        for o in &out {
            assert!(!o.miscarriage(), "provider {:?}: {:?}", o.provider, o.error);
        }
        // The probability-1 strategies fail on the expected check.
        assert!(matches!(
            out[1].error,
            Some(AuditError::DecisionsDigest { .. })
        ));
        assert!(matches!(
            out[3].error,
            Some(AuditError::OutputMismatch { .. })
        ));
        assert!(matches!(
            out[5].error,
            Some(AuditError::OutputMismatch { .. })
        ));
    }

    #[test]
    fn deflip_actually_removes_decoys() {
        let mat = dense_matrix(4, 70);
        let betas = vec![0.6; 70];
        let raw = mat.row_words(ProviderId(0));
        let honest = honest_column(9, ProviderId(0), &betas, raw);
        let mut column = honest.clone();
        let cleared = clear_decoys(&mut column, raw, 70, 3);
        assert_eq!(cleared, 3);
        let diff: u32 = honest
            .iter()
            .zip(&column)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(diff, 3);
        // Raw members are never cleared.
        for (r, c) in raw.iter().zip(&column) {
            assert_eq!(r & !c, 0);
        }
    }

    #[test]
    fn forged_view_escape_rate_is_about_two_thirds_at_one_repetition() {
        let mat = dense_matrix(3, 80);
        let betas = vec![0.5; 80];
        let cheater = [CheatingProvider {
            provider: ProviderId(2),
            strategy: CheatStrategy::ForgedView { drop: 1 },
        }];
        let one = AuditParams { repetitions: 1 };
        let mut escapes = 0;
        for seed in 0..60 {
            let out = run_cheating_trial(11, &betas, &mat, &cheater, &one, seed);
            if !out[2].detected() {
                escapes += 1;
            }
        }
        // Binomial(60, 2/3): far outside [20, 60) is a broken prover
        // or a broken verifier.
        assert!(escapes > 20, "saw {escapes}/60 escapes, expected ≈40");
        assert!(escapes < 60, "the forgery must be catchable");
    }
}
