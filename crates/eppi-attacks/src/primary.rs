//! The primary attack (§II-B).
//!
//! The attacker learns the public PPI matrix `M'`, picks an owner `t_j`
//! and a provider `p_i` with `M'(i, j) = 1`, and claims "owner `t_j`
//! has delegated records to provider `p_i`". The attack succeeds when
//! the claim is a true positive; the attacker's expected confidence over
//! the published row is `1 − fp_j` — exactly the quantity ε-PPI bounds
//! by `1 − ε_j`.

use eppi_core::model::{MembershipMatrix, OwnerId, ProviderId, PublishedIndex};
use rand::seq::SliceRandom;
use rand::Rng;

/// One primary-attack claim and its verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrimaryClaim {
    /// The targeted owner.
    pub owner: OwnerId,
    /// The accused provider.
    pub provider: ProviderId,
    /// Whether the claim is a true positive (attack succeeded).
    pub succeeded: bool,
}

/// Launches one primary attack on `owner`: picks a uniformly random
/// provider from the published row. Returns `None` when the row is
/// empty (nothing to attack).
pub fn attack_owner<R: Rng + ?Sized>(
    truth: &MembershipMatrix,
    published: &PublishedIndex,
    owner: OwnerId,
    rng: &mut R,
) -> Option<PrimaryClaim> {
    let candidates = published.query(owner);
    let provider = *candidates.choose(rng)?;
    Some(PrimaryClaim {
        owner,
        provider,
        succeeded: truth.get(provider, owner),
    })
}

/// The attacker's *expected* confidence against `owner` — the success
/// probability of [`attack_owner`] over its random choice, i.e.
/// `1 − fp_j`. `None` when the published row is empty.
pub fn expected_confidence(
    truth: &MembershipMatrix,
    published: &PublishedIndex,
    owner: OwnerId,
) -> Option<f64> {
    eppi_core::privacy::owner_privacy(truth, published, owner).attacker_confidence()
}

/// Runs `trials` independent primary attacks against `owner` and
/// returns the empirical success rate (`None` for an empty row).
pub fn empirical_confidence<R: Rng + ?Sized>(
    truth: &MembershipMatrix,
    published: &PublishedIndex,
    owner: OwnerId,
    trials: usize,
    rng: &mut R,
) -> Option<f64> {
    let mut successes = 0usize;
    for _ in 0..trials {
        successes += usize::from(attack_owner(truth, published, owner, rng)?.succeeded);
    }
    Some(successes as f64 / trials as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (MembershipMatrix, PublishedIndex) {
        // Truth: p0 holds t0. Published: p0..p3 (3 false positives).
        let mut truth = MembershipMatrix::new(5, 1);
        truth.set(ProviderId(0), OwnerId(0), true);
        let mut pubm = truth.clone();
        for p in 1..4u32 {
            pubm.set(ProviderId(p), OwnerId(0), true);
        }
        (truth.clone(), PublishedIndex::new(pubm, vec![0.75]))
    }

    #[test]
    fn expected_confidence_is_one_minus_fp() {
        let (truth, published) = setup();
        let c = expected_confidence(&truth, &published, OwnerId(0)).unwrap();
        assert!((c - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empirical_matches_expected() {
        let (truth, published) = setup();
        let mut rng = StdRng::seed_from_u64(1);
        let emp = empirical_confidence(&truth, &published, OwnerId(0), 20_000, &mut rng).unwrap();
        assert!((emp - 0.25).abs() < 0.02, "empirical {emp}");
    }

    #[test]
    fn empty_row_gives_none() {
        let truth = MembershipMatrix::new(3, 1);
        let published = PublishedIndex::new(MembershipMatrix::new(3, 1), vec![0.0]);
        let mut rng = StdRng::seed_from_u64(2);
        assert!(attack_owner(&truth, &published, OwnerId(0), &mut rng).is_none());
        assert!(expected_confidence(&truth, &published, OwnerId(0)).is_none());
    }

    #[test]
    fn attack_only_picks_published_providers() {
        let (truth, published) = setup();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let claim = attack_owner(&truth, &published, OwnerId(0), &mut rng).unwrap();
            assert!(claim.provider.index() < 4, "picked unpublished provider");
            assert_eq!(claim.succeeded, claim.provider == ProviderId(0));
        }
    }
}
