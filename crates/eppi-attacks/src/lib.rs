//! # eppi-attacks — the PPI threat model
//!
//! Implements the attacks of §II-B of the paper and the evaluation
//! machinery behind the Table II privacy-degree comparison:
//!
//! * [`primary`] — the primary attack: accuse a `(owner, provider)` pair
//!   drawn from the public index; confidence is bounded by `1 − fp_j`.
//! * [`common_identity`] — the paper's new common-identity attack:
//!   target identities whose (apparent) frequency is near 100%, where
//!   false positives cannot help — defeated only by ε-PPI's identity
//!   mixing.
//! * [`mod@evaluate`] — runs both attacks against any published index and
//!   classifies the achieved privacy degree (ε-PRIVATE / NoGuarantee /
//!   NoProtect).
//! * [`cheating`] — the *provider-side* threat model: malicious
//!   providers that violate the publication rule (wrong β, stale
//!   columns, selective deflips, forged proof views), pitted against
//!   the `eppi-audit` certificate check (DESIGN.md §16).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cheating;
pub mod collusion;
pub mod common_identity;
pub mod evaluate;
pub mod primary;
pub mod refresh;

pub use cheating::{
    run_cheating_trial, serve_column, CheatStrategy, CheatingProvider, ProviderAuditOutcome,
};
pub use collusion::{
    attack_with_collusion, collusion_view, mean_effective_confidence, Coalition, CollusionView,
};
pub use common_identity::{
    attack as common_identity_attack, CommonAttackOutcome, FrequencyKnowledge,
};
pub use evaluate::{evaluate, AttackEvaluation};
pub use primary::{attack_owner, empirical_confidence, expected_confidence, PrimaryClaim};
pub use refresh::IndexArchive;
