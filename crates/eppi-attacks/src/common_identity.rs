//! The common-identity attack (§II-B) — the new attack the paper
//! introduces.
//!
//! The attacker targets identities that appear in (almost) all
//! providers: once such an identity is confirmed common, *any* provider
//! is a true positive, so the primary-attack obfuscation is useless.
//! The attacker's information source is the apparent frequency spectrum:
//!
//! * against a **generic PPI**, the published matrix `M'` reveals the
//!   (approximate) truthful frequencies — high published frequency ⇒
//!   probably a true common identity;
//! * against **SS-PPI**, the construction itself leaks exact
//!   frequencies, so the attacker needs no estimation at all;
//! * against **ε-PPI**, identity mixing publishes a ξ-fraction of
//!   decoys at full frequency, capping the attacker's precision at
//!   `1 − ξ`.

use eppi_core::model::{MembershipMatrix, OwnerId, PublishedIndex};

/// What the attacker can see about identity frequencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrequencyKnowledge<'a> {
    /// Only the public index (generic channel): published row weights.
    Published,
    /// Construction-time leak of exact frequencies (the SS-PPI channel).
    Leaked(&'a [usize]),
}

/// Outcome of one common-identity attack sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct CommonAttackOutcome {
    /// Identities the attacker flagged as common.
    pub targets: Vec<OwnerId>,
    /// How many flagged identities are truly common.
    pub true_commons: usize,
    /// The attacker's precision = true commons / flagged — their
    /// confidence that an arbitrary flagged identity is attackable.
    /// `None` when nothing was flagged.
    pub precision: Option<f64>,
}

/// Mounts the common-identity attack: flag every identity whose
/// *apparent* frequency is at least `flag_fraction · m`, then check the
/// flags against the ground truth, where "truly common" means a true
/// frequency of at least `common_fraction · m`.
///
/// # Panics
///
/// Panics if a leaked-frequency slice has the wrong length or either
/// fraction is outside `\[0, 1\]`.
pub fn attack(
    truth: &MembershipMatrix,
    published: &PublishedIndex,
    knowledge: FrequencyKnowledge<'_>,
    flag_fraction: f64,
    common_fraction: f64,
) -> CommonAttackOutcome {
    assert!(
        (0.0..=1.0).contains(&flag_fraction),
        "flag_fraction in [0, 1]"
    );
    assert!(
        (0.0..=1.0).contains(&common_fraction),
        "common_fraction in [0, 1]"
    );
    let m = truth.providers();
    let apparent: Vec<usize> = match knowledge {
        FrequencyKnowledge::Published => published.matrix().frequencies(),
        FrequencyKnowledge::Leaked(freqs) => {
            assert_eq!(freqs.len(), truth.owners(), "one frequency per owner");
            freqs.to_vec()
        }
    };
    let flag_at = (flag_fraction * m as f64).ceil() as usize;
    let common_at = (common_fraction * m as f64).ceil() as usize;
    let true_freqs = truth.frequencies();

    let targets: Vec<OwnerId> = apparent
        .iter()
        .enumerate()
        .filter(|&(_, &f)| f >= flag_at.max(1))
        .map(|(j, _)| OwnerId(j as u32))
        .collect();
    let true_commons = targets
        .iter()
        .filter(|t| true_freqs[t.index()] >= common_at.max(1))
        .count();
    let precision = if targets.is_empty() {
        None
    } else {
        Some(true_commons as f64 / targets.len() as f64)
    };
    CommonAttackOutcome {
        targets,
        true_commons,
        precision,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eppi_core::model::ProviderId;

    /// 10 providers; identity 0 common (10/10), identity 1 rare (1/10),
    /// identity 2 rare but published everywhere (a decoy).
    fn setup() -> (MembershipMatrix, PublishedIndex) {
        let mut truth = MembershipMatrix::new(10, 3);
        for p in 0..10u32 {
            truth.set(ProviderId(p), OwnerId(0), true);
        }
        truth.set(ProviderId(4), OwnerId(1), true);
        truth.set(ProviderId(6), OwnerId(2), true);

        let mut pubm = truth.clone();
        for p in 0..10u32 {
            pubm.set(ProviderId(p), OwnerId(2), true); // decoy at full freq
        }
        (
            truth.clone(),
            PublishedIndex::new(pubm, vec![1.0, 0.0, 1.0]),
        )
    }

    #[test]
    fn decoys_halve_precision() {
        let (truth, published) = setup();
        let out = attack(&truth, &published, FrequencyKnowledge::Published, 0.9, 0.9);
        assert_eq!(out.targets, vec![OwnerId(0), OwnerId(2)]);
        assert_eq!(out.true_commons, 1);
        assert!((out.precision.unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn leaked_frequencies_restore_certainty() {
        let (truth, published) = setup();
        let leaked = truth.frequencies();
        let out = attack(
            &truth,
            &published,
            FrequencyKnowledge::Leaked(&leaked),
            0.9,
            0.9,
        );
        assert_eq!(out.targets, vec![OwnerId(0)]);
        assert_eq!(out.precision, Some(1.0));
    }

    #[test]
    fn nothing_flagged_when_threshold_too_high() {
        let mut truth = MembershipMatrix::new(10, 1);
        truth.set(ProviderId(0), OwnerId(0), true);
        let published = PublishedIndex::new(truth.clone(), vec![0.0]);
        let out = attack(&truth, &published, FrequencyKnowledge::Published, 0.9, 0.9);
        assert!(out.targets.is_empty());
        assert_eq!(out.precision, None);
    }

    #[test]
    #[should_panic(expected = "one frequency per owner")]
    fn leak_length_validated() {
        let (truth, published) = setup();
        attack(
            &truth,
            &published,
            FrequencyKnowledge::Leaked(&[1]),
            0.9,
            0.9,
        );
    }
}
