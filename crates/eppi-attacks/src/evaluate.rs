//! End-to-end privacy evaluation of a published index against the full
//! threat model — the machinery behind the Table II comparison.

use crate::common_identity::{attack, CommonAttackOutcome, FrequencyKnowledge};
use crate::primary::expected_confidence;
use eppi_core::model::{Epsilon, MembershipMatrix, PublishedIndex};
use eppi_core::privacy::PrivacyDegree;

/// Aggregated result of evaluating one index under both attacks.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackEvaluation {
    /// Mean primary-attack confidence over attackable owners.
    pub primary_mean_confidence: f64,
    /// Fraction of owners whose primary-attack confidence exceeds their
    /// bound `1 − ε_j` (ε-PRIVATE violations).
    pub primary_violation_rate: f64,
    /// The worst (highest-confidence) primary-attack degree achieved
    /// across owners.
    pub primary_degree: PrivacyDegree,
    /// Common-identity attack outcome.
    pub common: CommonAttackOutcome,
    /// Privacy degree against the common-identity attack.
    pub common_degree: PrivacyDegree,
}

/// Evaluates `published` against ground truth under both attacks.
///
/// `leaked_frequencies` models a construction-time frequency leak (pass
/// the SS-PPI leak here; `None` for systems that only expose the public
/// index). `common_fraction` defines what counts as a truly common
/// identity (the paper's "appears in almost all providers"); the
/// attacker flags identities at the same apparent threshold.
///
/// `allowance` is the statistical slack of the ε-PRIVATE claim: the
/// paper's Chernoff policy guarantees `fp_j ≥ ε_j` only with success
/// ratio γ, so a fraction up to `1 − γ` of owners may fall short without
/// breaking the guarantee. Pass `1 − γ` (plus sampling slack) for
/// ε-PPI-style indexes, or `0` for a strict worst-case reading.
///
/// # Panics
///
/// Panics if dimensions disagree.
pub fn evaluate(
    truth: &MembershipMatrix,
    published: &PublishedIndex,
    epsilons: &[Epsilon],
    leaked_frequencies: Option<&[usize]>,
    common_fraction: f64,
    allowance: f64,
) -> AttackEvaluation {
    assert_eq!(truth.owners(), epsilons.len(), "one ε per owner required");

    // Primary-attack channel. Truly common identities are excluded
    // here: with (almost) no negative providers, no false-positive
    // obfuscation is possible, and the paper analyzes their protection
    // through the common-identity channel (identity mixing / ξ, §III-C)
    // reported below instead.
    let common_at = (common_fraction * truth.providers() as f64).ceil() as usize;
    let true_freqs = truth.frequencies();
    let mut confidences = Vec::new();
    let mut violations = 0usize;
    let mut certain_hits = 0usize;
    for owner in truth.owner_ids() {
        if true_freqs[owner.index()] >= common_at.max(1) {
            continue;
        }
        if let Some(c) = expected_confidence(truth, published, owner) {
            confidences.push(c);
            let eps = epsilons[owner.index()];
            if c > 1.0 - eps.value() + 1e-9 {
                violations += 1;
            }
            if c >= 1.0 - 1e-12 {
                certain_hits += 1;
            }
        }
    }
    let primary_mean_confidence = if confidences.is_empty() {
        0.0
    } else {
        confidences.iter().sum::<f64>() / confidences.len() as f64
    };
    let primary_violation_rate = if confidences.is_empty() {
        0.0
    } else {
        violations as f64 / confidences.len() as f64
    };
    // Statistical ε-PRIVATE reading: up to `allowance` of owners may
    // miss their ε without breaking a γ-style guarantee.
    let primary_degree = if confidences.is_empty() {
        PrivacyDegree::Unleaked
    } else if certain_hits == confidences.len() {
        PrivacyDegree::NoProtect
    } else if primary_violation_rate <= allowance + 1e-12 {
        PrivacyDegree::EpsPrivate
    } else {
        PrivacyDegree::NoGuarantee
    };

    let knowledge = match leaked_frequencies {
        Some(f) => FrequencyKnowledge::Leaked(f),
        None => FrequencyKnowledge::Published,
    };
    let common = attack(
        truth,
        published,
        knowledge,
        common_fraction,
        common_fraction,
    );
    // The attacker's confidence against the common-identity channel is
    // their flagging precision; bound it by the max ε of the truly
    // common identities (the ξ the mixing policy targets).
    let common_eps = true_freqs
        .iter()
        .zip(epsilons)
        .filter(|(&f, _)| f >= common_at.max(1))
        .map(|(_, e)| e.value())
        .fold(0.0f64, f64::max);
    // The decoy fraction is itself a random quantity (λ-coin flips), so
    // the same statistical allowance applies to the common channel.
    let common_degree = match common.precision {
        None => PrivacyDegree::Unleaked,
        Some(p) if p >= 1.0 - 1e-12 => PrivacyDegree::NoProtect,
        Some(p) if p <= (1.0 - common_eps) + allowance + 1e-12 => PrivacyDegree::EpsPrivate,
        Some(_) => PrivacyDegree::NoGuarantee,
    };

    AttackEvaluation {
        primary_mean_confidence,
        primary_violation_rate,
        primary_degree,
        common,
        common_degree,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eppi_core::model::{OwnerId, ProviderId};

    fn eps(v: f64) -> Epsilon {
        Epsilon::saturating(v)
    }

    #[test]
    fn clean_index_with_enough_noise_is_eps_private() {
        // Truth: 1 provider; published: 5 providers ⇒ fp = 0.8 ≥ ε = 0.8.
        let mut truth = MembershipMatrix::new(10, 1);
        truth.set(ProviderId(0), OwnerId(0), true);
        let mut pubm = truth.clone();
        for p in 1..5u32 {
            pubm.set(ProviderId(p), OwnerId(0), true);
        }
        let published = PublishedIndex::new(pubm, vec![0.8]);
        let ev = evaluate(&truth, &published, &[eps(0.8)], None, 0.9, 0.0);
        assert!((ev.primary_mean_confidence - 0.2).abs() < 1e-12);
        assert_eq!(ev.primary_violation_rate, 0.0);
        assert_eq!(ev.primary_degree, PrivacyDegree::EpsPrivate);
    }

    #[test]
    fn truthful_index_is_no_protect() {
        let mut truth = MembershipMatrix::new(4, 1);
        truth.set(ProviderId(2), OwnerId(0), true);
        let published = PublishedIndex::new(truth.clone(), vec![0.0]);
        let ev = evaluate(&truth, &published, &[eps(0.5)], None, 0.9, 0.0);
        assert_eq!(ev.primary_degree, PrivacyDegree::NoProtect);
        assert_eq!(ev.primary_violation_rate, 1.0);
    }

    #[test]
    fn leak_turns_common_attack_certain() {
        // Identity 0 common; identity 1 published-common decoy.
        let mut truth = MembershipMatrix::new(6, 2);
        for p in 0..6u32 {
            truth.set(ProviderId(p), OwnerId(0), true);
        }
        truth.set(ProviderId(0), OwnerId(1), true);
        let mut pubm = truth.clone();
        for p in 0..6u32 {
            pubm.set(ProviderId(p), OwnerId(1), true);
        }
        let published = PublishedIndex::new(pubm, vec![1.0, 1.0]);
        let e = [eps(0.5), eps(0.5)];

        // Public channel only: decoy halves precision ⇒ ε-private.
        let ev = evaluate(&truth, &published, &e, None, 0.9, 0.0);
        assert_eq!(ev.common.precision, Some(0.5));
        assert_eq!(ev.common_degree, PrivacyDegree::EpsPrivate);

        // With leaked frequencies: precision 1 ⇒ NoProtect.
        let leak = truth.frequencies();
        let ev = evaluate(&truth, &published, &e, Some(&leak), 0.9, 0.0);
        assert_eq!(ev.common.precision, Some(1.0));
        assert_eq!(ev.common_degree, PrivacyDegree::NoProtect);
    }

    #[test]
    fn no_commons_means_unleaked_common_channel() {
        let mut truth = MembershipMatrix::new(10, 1);
        truth.set(ProviderId(0), OwnerId(0), true);
        let published = PublishedIndex::new(truth.clone(), vec![0.0]);
        let ev = evaluate(&truth, &published, &[eps(0.2)], None, 0.9, 0.0);
        assert_eq!(ev.common_degree, PrivacyDegree::Unleaked);
    }
}
