//! The colluding-providers attack (§II-B; analyzed in the paper's
//! technical report \[21\]).
//!
//! Beyond the public index, an attacker may control a coalition of
//! providers. Colluders contribute their *true* membership vectors, which
//! sharpens the primary attack in two ways:
//!
//! 1. **Candidate elimination** — published positives at colluding
//!    providers are resolved exactly (true or false positive) and removed
//!    from the guessing pool;
//! 2. **Rate re-estimation** — the remaining pool's false-positive rate
//!    shrinks accordingly.
//!
//! For the *construction protocol*, collusion of up to `c − 1` providers
//! is handled by the secret sharing (Theorem 4.1). This module measures
//! the residual *index-level* exposure, which no PPI can fully avoid:
//! every colluder removed from the guessing pool shrinks the denominator
//! of the false-positive rate, so the attacker's confidence climbs from
//! `1 − ε_j` toward certainty as the coalition grows. ε-PPI's knob keeps
//! the *zero-collusion* baseline quantified; the sweep in the `collusion`
//! experiment binary shows how fast coalitions erode it.

use crate::primary::PrimaryClaim;
use eppi_core::model::{MembershipMatrix, OwnerId, ProviderId, PublishedIndex};
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashSet;

/// A coalition of colluding providers.
#[derive(Debug, Clone, Default)]
pub struct Coalition {
    members: HashSet<ProviderId>,
}

impl Coalition {
    /// Creates a coalition from explicit members.
    pub fn new(members: impl IntoIterator<Item = ProviderId>) -> Self {
        Coalition {
            members: members.into_iter().collect(),
        }
    }

    /// Samples a random coalition of `size` providers.
    ///
    /// # Panics
    ///
    /// Panics if `size` exceeds the provider count.
    pub fn random<R: Rng + ?Sized>(providers: usize, size: usize, rng: &mut R) -> Self {
        assert!(size <= providers, "coalition larger than the network");
        let picked = rand::seq::index::sample(rng, providers, size);
        Coalition {
            members: picked.iter().map(|i| ProviderId(i as u32)).collect(),
        }
    }

    /// Coalition size.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the coalition is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Whether `provider` colludes.
    pub fn contains(&self, provider: ProviderId) -> bool {
        self.members.contains(&provider)
    }
}

/// What the coalition-assisted attacker can conclude about one owner.
#[derive(Debug, Clone, PartialEq)]
pub struct CollusionView {
    /// Confirmed true positives (colluders that truly hold the owner).
    pub confirmed: Vec<ProviderId>,
    /// Published providers outside the coalition — the residual guessing
    /// pool.
    pub residual_pool: Vec<ProviderId>,
    /// True positives remaining in the residual pool (ground truth; the
    /// attacker cannot see this, the evaluator can).
    pub residual_true: usize,
}

impl CollusionView {
    /// The attacker's expected confidence when guessing uniformly from
    /// the residual pool; `None` if the pool is empty.
    ///
    /// Note: if `confirmed` is non-empty the attacker already *knows*
    /// memberships without guessing — callers should treat any confirmed
    /// hit as a full disclosure for those pairs (an unavoidable
    /// consequence of storing data at a malicious provider, outside any
    /// PPI's threat model).
    pub fn residual_confidence(&self) -> Option<f64> {
        if self.residual_pool.is_empty() {
            None
        } else {
            Some(self.residual_true as f64 / self.residual_pool.len() as f64)
        }
    }
}

/// Computes the coalition-assisted view of one owner's published row.
pub fn collusion_view(
    truth: &MembershipMatrix,
    published: &PublishedIndex,
    coalition: &Coalition,
    owner: OwnerId,
) -> CollusionView {
    let mut confirmed = Vec::new();
    let mut residual_pool = Vec::new();
    let mut residual_true = 0usize;
    for provider in published.query(owner) {
        if coalition.contains(provider) {
            if truth.get(provider, owner) {
                confirmed.push(provider);
            }
            // A colluder that does NOT hold the owner is eliminated from
            // the pool entirely: the attacker knows it is a decoy.
        } else {
            if truth.get(provider, owner) {
                residual_true += 1;
            }
            residual_pool.push(provider);
        }
    }
    CollusionView {
        confirmed,
        residual_pool,
        residual_true,
    }
}

/// Mounts one coalition-assisted primary attack on `owner`: guesses
/// uniformly from the residual pool. `None` when nothing remains to
/// guess.
pub fn attack_with_collusion<R: Rng + ?Sized>(
    truth: &MembershipMatrix,
    published: &PublishedIndex,
    coalition: &Coalition,
    owner: OwnerId,
    rng: &mut R,
) -> Option<PrimaryClaim> {
    let view = collusion_view(truth, published, coalition, owner);
    let provider = *view.residual_pool.choose(rng)?;
    Some(PrimaryClaim {
        owner,
        provider,
        succeeded: truth.get(provider, owner),
    })
}

impl CollusionView {
    /// The attacker's *effective* confidence in naming one provider that
    /// truly holds the owner: `1` when a colluder already confirmed a
    /// membership, otherwise the residual-pool guess rate (`None` when
    /// there is nothing to claim at all).
    pub fn effective_confidence(&self) -> Option<f64> {
        if !self.confirmed.is_empty() {
            Some(1.0)
        } else {
            self.residual_confidence()
        }
    }
}

/// Mean effective confidence across owners for a given coalition size,
/// averaged over `samples` random coalitions — the curve the collusion
/// experiment sweeps.
pub fn mean_effective_confidence<R: Rng + ?Sized>(
    truth: &MembershipMatrix,
    published: &PublishedIndex,
    coalition_size: usize,
    samples: usize,
    rng: &mut R,
) -> f64 {
    let mut total = 0.0;
    let mut count = 0usize;
    for _ in 0..samples {
        let coalition = Coalition::random(truth.providers(), coalition_size, rng);
        for owner in truth.owner_ids() {
            if let Some(c) =
                collusion_view(truth, published, &coalition, owner).effective_confidence()
            {
                total += c;
                count += 1;
            }
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Truth: p0 holds t0. Published: p0..p4.
    fn setup() -> (MembershipMatrix, PublishedIndex) {
        let mut truth = MembershipMatrix::new(6, 1);
        truth.set(ProviderId(0), OwnerId(0), true);
        let mut pubm = truth.clone();
        for p in 1..5u32 {
            pubm.set(ProviderId(p), OwnerId(0), true);
        }
        (truth.clone(), PublishedIndex::new(pubm, vec![0.8]))
    }

    #[test]
    fn colluding_decoys_shrink_the_pool() {
        let (truth, published) = setup();
        // Colluders p1, p2 are decoys: they get eliminated.
        let coalition = Coalition::new([ProviderId(1), ProviderId(2)]);
        let view = collusion_view(&truth, &published, &coalition, OwnerId(0));
        assert!(view.confirmed.is_empty());
        assert_eq!(view.residual_pool.len(), 3);
        assert_eq!(view.residual_true, 1);
        // Confidence rose from 1/5 to 1/3.
        assert!((view.residual_confidence().unwrap() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn colluding_true_positive_confirms_membership() {
        let (truth, published) = setup();
        let coalition = Coalition::new([ProviderId(0)]);
        let view = collusion_view(&truth, &published, &coalition, OwnerId(0));
        assert_eq!(view.confirmed, vec![ProviderId(0)]);
        assert_eq!(view.residual_true, 0);
        // Residual pool is all decoys: guessing there always fails.
        assert_eq!(view.residual_confidence(), Some(0.0));
    }

    #[test]
    fn empty_coalition_reduces_to_primary_attack() {
        let (truth, published) = setup();
        let coalition = Coalition::default();
        assert!(coalition.is_empty());
        let view = collusion_view(&truth, &published, &coalition, OwnerId(0));
        assert!((view.residual_confidence().unwrap() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn attack_picks_only_residual_providers() {
        let (truth, published) = setup();
        let coalition = Coalition::new([ProviderId(1), ProviderId(2)]);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let claim = attack_with_collusion(&truth, &published, &coalition, OwnerId(0), &mut rng)
                .unwrap();
            assert!(!coalition.contains(claim.provider));
        }
    }

    #[test]
    fn confidence_grows_with_coalition_size() {
        let (truth, published) = setup();
        let mut rng = StdRng::seed_from_u64(2);
        let small = mean_effective_confidence(&truth, &published, 0, 40, &mut rng);
        let mid = mean_effective_confidence(&truth, &published, 2, 40, &mut rng);
        let large = mean_effective_confidence(&truth, &published, 4, 40, &mut rng);
        assert!(
            small <= mid + 0.05 && mid <= large + 0.05,
            "collusion must not reduce confidence: {small} / {mid} / {large}"
        );
        assert!(
            large > small,
            "a 4-of-6 coalition must help: {small} vs {large}"
        );
    }

    #[test]
    fn effective_confidence_counts_confirmed_hits() {
        let (truth, published) = setup();
        let coalition = Coalition::new([ProviderId(0)]);
        let view = collusion_view(&truth, &published, &coalition, OwnerId(0));
        assert_eq!(view.effective_confidence(), Some(1.0));
    }

    #[test]
    fn full_coalition_leaves_nothing_to_guess() {
        let (truth, published) = setup();
        let coalition = Coalition::new((0..6).map(ProviderId));
        let view = collusion_view(&truth, &published, &coalition, OwnerId(0));
        assert_eq!(view.residual_confidence(), None);
        assert_eq!(view.confirmed.len(), 1);
    }

    #[test]
    #[should_panic(expected = "larger than the network")]
    fn oversized_random_coalition_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        Coalition::random(3, 4, &mut rng);
    }
}
