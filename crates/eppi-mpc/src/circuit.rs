//! Boolean circuit intermediate representation.
//!
//! The generic-MPC stage of the ε-PPI construction (CountBelow, Alg. 2)
//! is compiled to a Boolean circuit, as in the paper's FairplayMP
//! implementation. The circuit's *size* is the paper's scalability metric
//! (Fig. 6b): it "determines the execution time in real runs".
//!
//! Wires are numbered densely: wires `0..inputs` are circuit inputs; the
//! wire produced by gate `k` is `inputs + k`. Gates may only reference
//! lower-numbered wires, so the gate list is topologically ordered by
//! construction.

use std::fmt;

/// Identifier of a circuit wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WireId(pub u32);

impl WireId {
    /// The wire's dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for WireId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

/// A Boolean gate. `Xor`/`Not`/`Const` are "free" under GMW-style
/// secret-shared evaluation; `And` costs one multiplication triple and
/// one communication round (amortized per layer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gate {
    /// Exclusive-or of two wires.
    Xor(WireId, WireId),
    /// Conjunction of two wires (the expensive gate).
    And(WireId, WireId),
    /// Negation of a wire.
    Not(WireId),
    /// A constant bit.
    Const(bool),
}

/// Size and depth statistics of a circuit.
///
/// `total_gates` is the paper's *circuit size*; `and_depth` is the number
/// of sequential communication rounds a GMW-style evaluation needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CircuitStats {
    /// Number of input wires.
    pub inputs: usize,
    /// Number of output wires.
    pub outputs: usize,
    /// Total gate count (the paper's circuit-size metric).
    pub total_gates: usize,
    /// AND gates (each consumes a Beaver triple).
    pub and_gates: usize,
    /// XOR gates (free).
    pub xor_gates: usize,
    /// NOT gates (free).
    pub not_gates: usize,
    /// Constant gates (free).
    pub const_gates: usize,
    /// Longest path through the circuit, in gates.
    pub depth: usize,
    /// Longest path counting only AND gates (communication rounds).
    pub and_depth: usize,
}

/// An immutable Boolean circuit.
///
/// Build one with [`crate::builder::CircuitBuilder`]; evaluate it in
/// cleartext with [`eval`](Circuit::eval) (the testing reference) or
/// under MPC with [`crate::gmw::execute`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Circuit {
    inputs: usize,
    gates: Vec<Gate>,
    outputs: Vec<WireId>,
}

impl Circuit {
    /// Assembles a circuit.
    ///
    /// # Panics
    ///
    /// Panics if any gate or output references a wire that does not exist
    /// or (for gates) is not strictly lower-numbered.
    pub fn new(inputs: usize, gates: Vec<Gate>, outputs: Vec<WireId>) -> Self {
        for (k, gate) in gates.iter().enumerate() {
            let this = inputs + k;
            let check = |w: WireId| {
                assert!(
                    w.index() < this,
                    "gate {k} references wire {w} ≥ its own wire w{this}"
                );
            };
            match *gate {
                Gate::Xor(a, b) | Gate::And(a, b) => {
                    check(a);
                    check(b);
                }
                Gate::Not(a) => check(a),
                Gate::Const(_) => {}
            }
        }
        let total = inputs + gates.len();
        for &o in &outputs {
            assert!(o.index() < total, "output references missing wire {o}");
        }
        Circuit {
            inputs,
            gates,
            outputs,
        }
    }

    /// Number of input wires.
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// The gate list, in topological order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// The output wires.
    pub fn outputs(&self) -> &[WireId] {
        &self.outputs
    }

    /// Total number of wires (inputs + gates).
    pub fn wires(&self) -> usize {
        self.inputs + self.gates.len()
    }

    /// Evaluates the circuit in cleartext — the correctness reference for
    /// the MPC evaluator.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the circuit's input count.
    pub fn eval(&self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(inputs.len(), self.inputs, "wrong number of inputs");
        let mut values = Vec::with_capacity(self.wires());
        values.extend_from_slice(inputs);
        for gate in &self.gates {
            let v = match *gate {
                Gate::Xor(a, b) => values[a.index()] ^ values[b.index()],
                Gate::And(a, b) => values[a.index()] & values[b.index()],
                Gate::Not(a) => !values[a.index()],
                Gate::Const(c) => c,
            };
            values.push(v);
        }
        self.outputs.iter().map(|o| values[o.index()]).collect()
    }

    /// Computes size and depth statistics.
    pub fn stats(&self) -> CircuitStats {
        let mut stats = CircuitStats {
            inputs: self.inputs,
            outputs: self.outputs.len(),
            total_gates: self.gates.len(),
            ..CircuitStats::default()
        };
        // depth[w]: (total depth, and depth) of the wire.
        let mut depth = vec![(0usize, 0usize); self.wires()];
        for (k, gate) in self.gates.iter().enumerate() {
            let this = self.inputs + k;
            let (d, ad) = match *gate {
                Gate::Xor(a, b) => {
                    stats.xor_gates += 1;
                    let (da, aa) = depth[a.index()];
                    let (db, ab) = depth[b.index()];
                    (da.max(db) + 1, aa.max(ab))
                }
                Gate::And(a, b) => {
                    stats.and_gates += 1;
                    let (da, aa) = depth[a.index()];
                    let (db, ab) = depth[b.index()];
                    (da.max(db) + 1, aa.max(ab) + 1)
                }
                Gate::Not(a) => {
                    stats.not_gates += 1;
                    let (da, aa) = depth[a.index()];
                    (da + 1, aa)
                }
                Gate::Const(_) => {
                    stats.const_gates += 1;
                    (1, 0)
                }
            };
            depth[this] = (d, ad);
            stats.depth = stats.depth.max(d);
            stats.and_depth = stats.and_depth.max(ad);
        }
        stats
    }

    /// Groups AND gates by their AND-depth layer; gates in the same layer
    /// can share one communication round under GMW. Returns, per layer,
    /// the gate indices (not wire ids) of its AND gates.
    ///
    /// This is a view of the one true scheduler,
    /// [`crate::gmw_core::Schedule`].
    pub fn and_layers(&self) -> Vec<Vec<usize>> {
        crate::gmw_core::Schedule::new(self).and_layer_gates()
    }
}

/// Assignment of a circuit's input wires to protocol parties.
///
/// Party `i` owns a contiguous block of input wires; blocks are laid out
/// in party order. This is the MPC analogue of FairplayMP's per-party
/// input declarations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InputLayout {
    counts: Vec<usize>,
}

impl InputLayout {
    /// Creates a layout where party `i` owns `counts[i]` consecutive
    /// input wires.
    pub fn new(counts: Vec<usize>) -> Self {
        InputLayout { counts }
    }

    /// Number of parties.
    pub fn parties(&self) -> usize {
        self.counts.len()
    }

    /// Total number of input wires across all parties.
    pub fn total_inputs(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Number of input wires owned by `party`.
    pub fn inputs_of(&self, party: usize) -> usize {
        self.counts[party]
    }

    /// The input-wire range `[start, start + len)` owned by `party`.
    pub fn range_of(&self, party: usize) -> std::ops::Range<usize> {
        let start: usize = self.counts[..party].iter().sum();
        start..start + self.counts[party]
    }

    /// The party owning input wire `wire`.
    ///
    /// # Panics
    ///
    /// Panics if `wire` exceeds the total input count.
    pub fn party_of(&self, wire: usize) -> usize {
        let mut acc = 0;
        for (party, &c) in self.counts.iter().enumerate() {
            acc += c;
            if wire < acc {
                return party;
            }
        }
        panic!("input wire {wire} beyond layout total {acc}");
    }

    /// Flattens per-party input bit vectors into the circuit's global
    /// input order.
    ///
    /// # Panics
    ///
    /// Panics if the number of parties or any party's bit count
    /// disagrees with the layout.
    pub fn flatten(&self, per_party: &[Vec<bool>]) -> Vec<bool> {
        assert_eq!(per_party.len(), self.parties(), "party count mismatch");
        let mut flat = Vec::with_capacity(self.total_inputs());
        for (party, bits) in per_party.iter().enumerate() {
            assert_eq!(
                bits.len(),
                self.counts[party],
                "party {party} supplied wrong input count"
            );
            flat.extend_from_slice(bits);
        }
        flat
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// xor(and(i0, i1), not(i2))
    fn sample_circuit() -> Circuit {
        Circuit::new(
            3,
            vec![
                Gate::And(WireId(0), WireId(1)),
                Gate::Not(WireId(2)),
                Gate::Xor(WireId(3), WireId(4)),
            ],
            vec![WireId(5)],
        )
    }

    #[test]
    fn eval_truth_table() {
        let c = sample_circuit();
        for a in [false, true] {
            for b in [false, true] {
                for d in [false, true] {
                    let out = c.eval(&[a, b, d]);
                    assert_eq!(out, vec![(a & b) ^ !d]);
                }
            }
        }
    }

    #[test]
    fn stats_counts_gate_kinds() {
        let c = sample_circuit();
        let s = c.stats();
        assert_eq!(s.inputs, 3);
        assert_eq!(s.outputs, 1);
        assert_eq!(s.total_gates, 3);
        assert_eq!(s.and_gates, 1);
        assert_eq!(s.xor_gates, 1);
        assert_eq!(s.not_gates, 1);
        assert_eq!(s.depth, 2);
        assert_eq!(s.and_depth, 1);
    }

    #[test]
    fn and_layers_group_independent_ands() {
        // Two independent ANDs then a dependent one.
        let c = Circuit::new(
            4,
            vec![
                Gate::And(WireId(0), WireId(1)), // w4, layer 0
                Gate::And(WireId(2), WireId(3)), // w5, layer 0
                Gate::And(WireId(4), WireId(5)), // w6, layer 1
            ],
            vec![WireId(6)],
        );
        let layers = c.and_layers();
        assert_eq!(layers.len(), 2);
        assert_eq!(layers[0], vec![0, 1]);
        assert_eq!(layers[1], vec![2]);
    }

    #[test]
    fn const_gate_evaluates() {
        let c = Circuit::new(
            1,
            vec![Gate::Const(true), Gate::Xor(WireId(0), WireId(1))],
            vec![WireId(2)],
        );
        assert_eq!(c.eval(&[false]), vec![true]);
        assert_eq!(c.eval(&[true]), vec![false]);
        assert_eq!(c.stats().const_gates, 1);
    }

    #[test]
    #[should_panic(expected = "references wire")]
    fn forward_reference_rejected() {
        Circuit::new(1, vec![Gate::Not(WireId(5))], vec![]);
    }

    #[test]
    #[should_panic(expected = "missing wire")]
    fn dangling_output_rejected() {
        Circuit::new(1, vec![], vec![WireId(3)]);
    }

    #[test]
    #[should_panic(expected = "wrong number of inputs")]
    fn eval_input_arity_checked() {
        sample_circuit().eval(&[true]);
    }

    #[test]
    fn input_layout_ranges_and_ownership() {
        let l = InputLayout::new(vec![2, 0, 3]);
        assert_eq!(l.parties(), 3);
        assert_eq!(l.total_inputs(), 5);
        assert_eq!(l.range_of(0), 0..2);
        assert_eq!(l.range_of(1), 2..2);
        assert_eq!(l.range_of(2), 2..5);
        assert_eq!(l.party_of(0), 0);
        assert_eq!(l.party_of(1), 0);
        assert_eq!(l.party_of(2), 2);
        assert_eq!(l.party_of(4), 2);
    }

    #[test]
    fn input_layout_flatten() {
        let l = InputLayout::new(vec![1, 2]);
        let flat = l.flatten(&[vec![true], vec![false, true]]);
        assert_eq!(flat, vec![true, false, true]);
    }

    #[test]
    #[should_panic(expected = "wrong input count")]
    fn input_layout_flatten_checks_counts() {
        let l = InputLayout::new(vec![1, 2]);
        l.flatten(&[vec![true], vec![false]]);
    }

    #[test]
    #[should_panic(expected = "beyond layout")]
    fn input_layout_party_of_out_of_range() {
        InputLayout::new(vec![1]).party_of(1);
    }
}
