//! Word-level circuit construction combinators.
//!
//! [`CircuitBuilder`] plays the role of FairplayMP's SFDL compiler: the
//! CountBelow / mix-decision programs of the ε-PPI construction are
//! written against these combinators and compiled to a flat Boolean
//! [`Circuit`]. Words are little-endian bit vectors; arithmetic is
//! unsigned with power-of-two wraparound (the share group `Z_{2^w}`).

use crate::circuit::{Circuit, Gate, WireId};

/// A little-endian machine word made of circuit wires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Word(Vec<WireId>);

impl Word {
    /// The word's bits, least-significant first.
    pub fn bits(&self) -> &[WireId] {
        &self.0
    }

    /// The word width in bits.
    pub fn width(&self) -> usize {
        self.0.len()
    }

    /// Builds a word from raw wires (least-significant first).
    pub fn from_bits(bits: Vec<WireId>) -> Self {
        Word(bits)
    }
}

/// Incremental Boolean-circuit builder.
///
/// All inputs must be declared (via [`input`](Self::input) /
/// [`input_word`](Self::input_word)) before the first gate is emitted, so
/// input wires form a dense prefix as [`Circuit`] requires.
#[derive(Debug, Default)]
pub struct CircuitBuilder {
    inputs: usize,
    gates: Vec<Gate>,
}

impl CircuitBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        CircuitBuilder::default()
    }

    /// Declares one input wire.
    ///
    /// # Panics
    ///
    /// Panics if any gate has already been emitted.
    pub fn input(&mut self) -> WireId {
        assert!(
            self.gates.is_empty(),
            "all inputs must be declared before the first gate"
        );
        let w = WireId(self.inputs as u32);
        self.inputs += 1;
        w
    }

    /// Declares a `bits`-wide input word.
    pub fn input_word(&mut self, bits: usize) -> Word {
        Word((0..bits).map(|_| self.input()).collect())
    }

    fn push(&mut self, gate: Gate) -> WireId {
        let w = WireId((self.inputs + self.gates.len()) as u32);
        self.gates.push(gate);
        w
    }

    /// Emits a constant bit.
    pub fn constant(&mut self, value: bool) -> WireId {
        self.push(Gate::Const(value))
    }

    /// Emits `a XOR b`.
    pub fn xor(&mut self, a: WireId, b: WireId) -> WireId {
        self.push(Gate::Xor(a, b))
    }

    /// Emits `a AND b`.
    pub fn and(&mut self, a: WireId, b: WireId) -> WireId {
        self.push(Gate::And(a, b))
    }

    /// Emits `NOT a`.
    pub fn not(&mut self, a: WireId) -> WireId {
        self.push(Gate::Not(a))
    }

    /// Emits `a OR b` (costs one AND: `a⊕b⊕(a∧b)`).
    pub fn or(&mut self, a: WireId, b: WireId) -> WireId {
        let x = self.xor(a, b);
        let n = self.and(a, b);
        self.xor(x, n)
    }

    /// OR of many wires via a balanced tree; `false` constant if empty.
    pub fn or_many(&mut self, wires: &[WireId]) -> WireId {
        match wires.len() {
            0 => self.constant(false),
            1 => wires[0],
            _ => {
                let mut layer = wires.to_vec();
                while layer.len() > 1 {
                    let mut next = Vec::with_capacity(layer.len().div_ceil(2));
                    for pair in layer.chunks(2) {
                        next.push(if pair.len() == 2 {
                            self.or(pair[0], pair[1])
                        } else {
                            pair[0]
                        });
                    }
                    layer = next;
                }
                layer[0]
            }
        }
    }

    /// AND of many wires via a balanced tree; `true` constant if empty.
    pub fn and_many(&mut self, wires: &[WireId]) -> WireId {
        match wires.len() {
            0 => self.constant(true),
            1 => wires[0],
            _ => {
                let mut layer = wires.to_vec();
                while layer.len() > 1 {
                    let mut next = Vec::with_capacity(layer.len().div_ceil(2));
                    for pair in layer.chunks(2) {
                        next.push(if pair.len() == 2 {
                            self.and(pair[0], pair[1])
                        } else {
                            pair[0]
                        });
                    }
                    layer = next;
                }
                layer[0]
            }
        }
    }

    /// Emits a constant word.
    pub fn const_word(&mut self, value: u64, bits: usize) -> Word {
        Word(
            (0..bits)
                .map(|i| self.constant(value >> i & 1 == 1))
                .collect(),
        )
    }

    /// Zero-extends (or truncates) a word to `bits`.
    pub fn resize_word(&mut self, a: &Word, bits: usize) -> Word {
        let mut out = a.0.clone();
        if out.len() > bits {
            out.truncate(bits);
        } else {
            while out.len() < bits {
                out.push(self.constant(false));
            }
        }
        Word(out)
    }

    /// Ripple-carry addition with the carry dropped: `(a + b) mod 2^w`.
    ///
    /// This is exactly the share-group reduction for a power-of-two
    /// modulus, which is why CountBelow needs no explicit mod-q circuit.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn add_words(&mut self, a: &Word, b: &Word) -> Word {
        self.add_inner(a, b, false)
    }

    /// Ripple-carry addition widened by one bit: exact `a + b`.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn add_words_expand(&mut self, a: &Word, b: &Word) -> Word {
        self.add_inner(a, b, true)
    }

    fn add_inner(&mut self, a: &Word, b: &Word, keep_carry: bool) -> Word {
        assert_eq!(a.width(), b.width(), "adder operands must match width");
        let mut out = Vec::with_capacity(a.width() + 1);
        let mut carry: Option<WireId> = None;
        for (&x, &y) in a.0.iter().zip(&b.0) {
            let xy = self.xor(x, y);
            match carry {
                None => {
                    out.push(xy);
                    carry = Some(self.and(x, y));
                }
                Some(c) => {
                    let s = self.xor(xy, c);
                    out.push(s);
                    // carry' = (x∧y) ⊕ (c∧(x⊕y)) — the two terms are
                    // mutually exclusive, so XOR implements OR.
                    let t1 = self.and(x, y);
                    let t2 = self.and(c, xy);
                    carry = Some(self.xor(t1, t2));
                }
            }
        }
        if keep_carry {
            out.push(carry.expect("non-empty words"));
        }
        Word(out)
    }

    /// Unsigned subtraction `(a − b) mod 2^w` via the borrow chain.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn sub_words(&mut self, a: &Word, b: &Word) -> Word {
        assert_eq!(a.width(), b.width(), "subtractor operands must match width");
        let mut out = Vec::with_capacity(a.width());
        let mut borrow = self.constant(false);
        for (&x, &y) in a.0.iter().zip(&b.0) {
            let xy = self.xor(x, y);
            let d = self.xor(xy, borrow);
            out.push(d);
            // borrow' = (!x ∧ y) ⊕ (borrow ∧ !(x⊕y)) — mutually
            // exclusive terms, XOR implements OR.
            let nx = self.not(x);
            let t1 = self.and(nx, y);
            let nxy = self.not(xy);
            let t2 = self.and(borrow, nxy);
            borrow = self.xor(t1, t2);
        }
        Word(out)
    }

    /// Left shift by a constant amount, widening: `a · 2^k`.
    pub fn shl_words(&mut self, a: &Word, k: usize) -> Word {
        let mut out = Vec::with_capacity(a.width() + k);
        for _ in 0..k {
            out.push(self.constant(false));
        }
        out.extend_from_slice(&a.0);
        Word(out)
    }

    /// Schoolbook multiplication: exact product of width
    /// `a.width() + b.width()` (O(w²) gates — this is why the paper
    /// pushes arithmetic out of the secure computation).
    pub fn mul_words(&mut self, a: &Word, b: &Word) -> Word {
        let total = a.width() + b.width();
        let mut acc = self.const_word(0, total);
        for (i, &bit) in b.0.iter().enumerate() {
            // Partial product: (a AND b_i) << i, zero-extended.
            let mut partial = Vec::with_capacity(total);
            for _ in 0..i {
                partial.push(self.constant(false));
            }
            for &abit in &a.0 {
                partial.push(self.and(abit, bit));
            }
            while partial.len() < total {
                partial.push(self.constant(false));
            }
            partial.truncate(total);
            acc = self.add_words(&acc, &Word(partial));
        }
        acc
    }

    /// Restoring integer division: `(a / b, a % b)`, both of `a`'s
    /// width. Division by zero yields all-ones quotient and `a` as
    /// remainder (hardware convention; callers guard `b ≠ 0`).
    pub fn div_words(&mut self, a: &Word, b: &Word) -> (Word, Word) {
        let w = a.width();
        let bw = b.width();
        // Remainder register one bit wider than the divisor so the
        // trial subtraction cannot wrap.
        let rw = bw + 1;
        let b_ext = self.resize_word(b, rw);
        let mut rem = self.const_word(0, rw);
        let mut quot = vec![self.constant(false); w];
        for i in (0..w).rev() {
            // rem = (rem << 1) | a_i
            let mut shifted = Vec::with_capacity(rw);
            shifted.push(a.0[i]);
            shifted.extend_from_slice(&rem.0[..rw - 1]);
            rem = Word(shifted);
            // If rem ≥ b: rem -= b, q_i = 1.
            let ge = self.ge_words(&rem, &b_ext);
            let diff = self.sub_words(&rem, &b_ext);
            rem = self.mux_word(ge, &diff, &rem);
            quot[i] = ge;
        }
        let rem = self.resize_word(&rem, w.min(rw));
        (Word(quot), self.resize_word(&rem, w))
    }

    /// Bit-by-bit integer square root: `⌊sqrt(a)⌋` of width
    /// `⌈a.width()/2⌉` (digit-recurrence; O(w²) gates).
    pub fn sqrt_word(&mut self, a: &Word) -> Word {
        // Work at even width.
        let w = a.width().div_ceil(2) * 2;
        let a = self.resize_word(a, w);
        let half = w / 2;
        // Invariant per iteration (classic non-restoring-free variant):
        // rem holds the current remainder, root the partial root.
        // Trial value = (root << 2) | 01 at the current digit position.
        let rw = w + 2;
        let mut rem = self.const_word(0, rw);
        let mut root = self.const_word(0, rw);
        for i in (0..half).rev() {
            // rem = (rem << 2) | next two bits of a.
            let mut shifted = Vec::with_capacity(rw);
            shifted.push(a.0[2 * i]);
            shifted.push(a.0[2 * i + 1]);
            shifted.extend_from_slice(&rem.0[..rw - 2]);
            rem = Word(shifted);
            // trial = (root << 2) | 1 — the digit-recurrence test value
            // 4·root + 1.
            let one = self.constant(true);
            let zero = self.constant(false);
            let mut trial = Vec::with_capacity(rw);
            trial.push(one);
            trial.push(zero);
            trial.extend_from_slice(&root.0[..rw - 2]);
            let trial = Word(trial);
            let ge = self.ge_words(&rem, &trial);
            let diff = self.sub_words(&rem, &trial);
            rem = self.mux_word(ge, &diff, &rem);
            // root = (root << 1) | ge
            let mut newroot = Vec::with_capacity(rw);
            newroot.push(ge);
            newroot.extend_from_slice(&root.0[..rw - 1]);
            root = Word(newroot);
        }
        self.resize_word(&root, half)
    }

    /// Unsigned comparison `a < b` via the borrow chain of `a − b`.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn lt_words(&mut self, a: &Word, b: &Word) -> WireId {
        assert_eq!(a.width(), b.width(), "comparator operands must match width");
        let mut borrow = self.constant(false);
        for (&x, &y) in a.0.iter().zip(&b.0) {
            // borrow' = (!x ∧ y) ⊕ (borrow ∧ !(x⊕y)) — mutually exclusive
            // terms, XOR implements OR.
            let nx = self.not(x);
            let t1 = self.and(nx, y);
            let xy = self.xor(x, y);
            let nxy = self.not(xy);
            let t2 = self.and(borrow, nxy);
            borrow = self.xor(t1, t2);
        }
        borrow
    }

    /// Unsigned comparison `a ≥ b`.
    pub fn ge_words(&mut self, a: &Word, b: &Word) -> WireId {
        let lt = self.lt_words(a, b);
        self.not(lt)
    }

    /// Word equality.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn eq_words(&mut self, a: &Word, b: &Word) -> WireId {
        assert_eq!(a.width(), b.width(), "equality operands must match width");
        let same: Vec<WireId> =
            a.0.iter()
                .zip(&b.0)
                .map(|(&x, &y)| {
                    let d = self.xor(x, y);
                    self.not(d)
                })
                .collect();
        self.and_many(&same)
    }

    /// Bitwise XOR of two words.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn xor_words(&mut self, a: &Word, b: &Word) -> Word {
        assert_eq!(a.width(), b.width(), "xor operands must match width");
        Word(
            a.0.iter()
                .zip(&b.0)
                .map(|(&x, &y)| self.xor(x, y))
                .collect(),
        )
    }

    /// Two-way multiplexer: `sel ? a : b`, bit-wise
    /// (`b ⊕ (sel ∧ (a⊕b))`).
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn mux_word(&mut self, sel: WireId, a: &Word, b: &Word) -> Word {
        assert_eq!(a.width(), b.width(), "mux operands must match width");
        Word(
            a.0.iter()
                .zip(&b.0)
                .map(|(&x, &y)| {
                    let d = self.xor(x, y);
                    let g = self.and(sel, d);
                    self.xor(y, g)
                })
                .collect(),
        )
    }

    /// Population count: the number of set bits, as a word of width
    /// `⌈log₂(n+1)⌉`, built as a balanced adder tree.
    pub fn popcount(&mut self, bits: &[WireId]) -> Word {
        if bits.is_empty() {
            return self.const_word(0, 1);
        }
        let mut words: Vec<Word> = bits.iter().map(|&b| Word(vec![b])).collect();
        while words.len() > 1 {
            let mut next = Vec::with_capacity(words.len().div_ceil(2));
            let mut it = words.into_iter();
            while let Some(a) = it.next() {
                match it.next() {
                    Some(b) => {
                        let w = a.width().max(b.width());
                        let a = self.resize_word(&a, w);
                        let b = self.resize_word(&b, w);
                        next.push(self.add_words_expand(&a, &b));
                    }
                    None => next.push(a),
                }
            }
            words = next;
        }
        words.pop().expect("non-empty")
    }

    /// Number of input wires declared so far.
    pub fn input_count(&self) -> usize {
        self.inputs
    }

    /// Seals the builder into a [`Circuit`] with the given output wires.
    pub fn finish(self, outputs: Vec<WireId>) -> Circuit {
        Circuit::new(self.inputs, self.gates, outputs)
    }

    /// Seals the builder with a word output (least-significant bit
    /// first).
    pub fn finish_word(self, output: Word) -> Circuit {
        Circuit::new(self.inputs, self.gates, output.0)
    }
}

/// Decodes circuit output bits as a little-endian unsigned integer.
pub fn word_value(bits: &[bool]) -> u64 {
    bits.iter()
        .enumerate()
        .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i))
}

/// Encodes an unsigned integer as `bits` little-endian booleans.
pub fn to_bits(value: u64, bits: usize) -> Vec<bool> {
    (0..bits).map(|i| value >> i & 1 == 1).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval_binop(
        f: impl Fn(&mut CircuitBuilder, &Word, &Word) -> Word,
        a: u64,
        b: u64,
        w: usize,
    ) -> u64 {
        let mut cb = CircuitBuilder::new();
        let wa = cb.input_word(w);
        let wb = cb.input_word(w);
        let out = f(&mut cb, &wa, &wb);
        let c = cb.finish_word(out);
        let mut inputs = to_bits(a, w);
        inputs.extend(to_bits(b, w));
        word_value(&c.eval(&inputs))
    }

    fn eval_cmp(
        f: impl Fn(&mut CircuitBuilder, &Word, &Word) -> WireId,
        a: u64,
        b: u64,
        w: usize,
    ) -> bool {
        let mut cb = CircuitBuilder::new();
        let wa = cb.input_word(w);
        let wb = cb.input_word(w);
        let out = f(&mut cb, &wa, &wb);
        let c = cb.finish(vec![out]);
        let mut inputs = to_bits(a, w);
        inputs.extend(to_bits(b, w));
        c.eval(&inputs)[0]
    }

    #[test]
    fn adder_matches_u64_semantics() {
        for (a, b) in [
            (0u64, 0u64),
            (1, 1),
            (5, 11),
            (255, 1),
            (200, 100),
            (254, 255),
        ] {
            let got = eval_binop(|cb, x, y| cb.add_words(x, y), a, b, 8);
            assert_eq!(got, (a + b) & 0xff, "{a}+{b} mod 256");
            let exact = eval_binop(|cb, x, y| cb.add_words_expand(x, y), a, b, 8);
            assert_eq!(exact, a + b, "{a}+{b} exact");
        }
    }

    #[test]
    fn comparators_match_u64_semantics() {
        for (a, b) in [
            (0u64, 0u64),
            (1, 2),
            (2, 1),
            (100, 100),
            (255, 0),
            (0, 255),
            (37, 38),
        ] {
            assert_eq!(
                eval_cmp(|cb, x, y| cb.lt_words(x, y), a, b, 8),
                a < b,
                "{a}<{b}"
            );
            assert_eq!(
                eval_cmp(|cb, x, y| cb.ge_words(x, y), a, b, 8),
                a >= b,
                "{a}>={b}"
            );
            assert_eq!(
                eval_cmp(|cb, x, y| cb.eq_words(x, y), a, b, 8),
                a == b,
                "{a}=={b}"
            );
        }
    }

    #[test]
    fn xor_words_matches() {
        let got = eval_binop(|cb, x, y| cb.xor_words(x, y), 0b1010, 0b0110, 4);
        assert_eq!(got, 0b1100);
    }

    #[test]
    fn mux_selects() {
        let mut cb = CircuitBuilder::new();
        let sel = cb.input();
        let a = cb.input_word(4);
        let b = cb.input_word(4);
        let out = cb.mux_word(sel, &a, &b);
        let c = cb.finish_word(out);
        let mut inputs = vec![true];
        inputs.extend(to_bits(9, 4));
        inputs.extend(to_bits(3, 4));
        assert_eq!(word_value(&c.eval(&inputs)), 9);
        inputs[0] = false;
        assert_eq!(word_value(&c.eval(&inputs)), 3);
    }

    #[test]
    fn popcount_matches() {
        for n in [1usize, 2, 3, 7, 8, 13] {
            for pattern in 0..(1u64 << n.min(10)) {
                let mut cb = CircuitBuilder::new();
                let w = cb.input_word(n);
                let bits: Vec<WireId> = w.bits().to_vec();
                let out = cb.popcount(&bits);
                let c = cb.finish_word(out);
                let got = word_value(&c.eval(&to_bits(pattern, n)));
                assert_eq!(
                    got,
                    pattern.count_ones() as u64,
                    "n={n} pattern={pattern:b}"
                );
            }
        }
    }

    #[test]
    fn popcount_empty_is_zero() {
        let mut cb = CircuitBuilder::new();
        let out = cb.popcount(&[]);
        let c = cb.finish_word(out);
        assert_eq!(word_value(&c.eval(&[])), 0);
    }

    #[test]
    fn or_and_many_trees() {
        for n in 0..6usize {
            for pattern in 0..(1u64 << n) {
                let mut cb = CircuitBuilder::new();
                let w = cb.input_word(n);
                let bits = w.bits().to_vec();
                let o = cb.or_many(&bits);
                let a = cb.and_many(&bits);
                let c = cb.finish(vec![o, a]);
                let out = c.eval(&to_bits(pattern, n));
                assert_eq!(out[0], pattern != 0 && n > 0, "or n={n} p={pattern:b}");
                assert_eq!(
                    out[1],
                    pattern.count_ones() as usize == n,
                    "and n={n} p={pattern:b}"
                );
            }
        }
    }

    #[test]
    fn const_word_roundtrip() {
        let mut cb = CircuitBuilder::new();
        let w = cb.const_word(0b1011, 6);
        let c = cb.finish_word(w);
        assert_eq!(word_value(&c.eval(&[])), 0b1011);
    }

    #[test]
    fn resize_zero_extends_and_truncates() {
        let mut cb = CircuitBuilder::new();
        let w = cb.input_word(4);
        let wide = cb.resize_word(&w, 8);
        let narrow = cb.resize_word(&w, 2);
        let mut outs = wide.bits().to_vec();
        outs.extend_from_slice(narrow.bits());
        let c = cb.finish(outs);
        let out = c.eval(&to_bits(0b1101, 4));
        assert_eq!(word_value(&out[..8]), 0b1101);
        assert_eq!(word_value(&out[8..]), 0b01);
    }

    #[test]
    #[should_panic(expected = "before the first gate")]
    fn late_inputs_rejected() {
        let mut cb = CircuitBuilder::new();
        let a = cb.input();
        cb.not(a);
        cb.input();
    }

    #[test]
    fn word_value_and_to_bits_roundtrip() {
        for v in [0u64, 1, 37, 255, 12345] {
            assert_eq!(word_value(&to_bits(v, 16)), v & 0xffff);
        }
    }

    #[test]
    fn subtractor_matches_wrapping_sub() {
        for (a, b) in [(0u64, 0u64), (5, 3), (3, 5), (255, 1), (0, 255), (200, 200)] {
            let got = eval_binop(|cb, x, y| cb.sub_words(x, y), a, b, 8);
            assert_eq!(got, a.wrapping_sub(b) & 0xff, "{a}-{b}");
        }
    }

    #[test]
    fn multiplier_matches_u64() {
        for (a, b) in [(0u64, 0u64), (1, 1), (3, 5), (15, 15), (12, 9), (7, 13)] {
            let mut cb = CircuitBuilder::new();
            let wa = cb.input_word(4);
            let wb = cb.input_word(4);
            let p = cb.mul_words(&wa, &wb);
            assert_eq!(p.width(), 8);
            let c = cb.finish_word(p);
            let mut inputs = to_bits(a, 4);
            inputs.extend(to_bits(b, 4));
            assert_eq!(word_value(&c.eval(&inputs)), a * b, "{a}*{b}");
        }
    }

    #[test]
    fn divider_matches_u64() {
        for (a, b) in [
            (0u64, 1u64),
            (7, 3),
            (100, 10),
            (255, 2),
            (13, 13),
            (5, 255),
            (254, 7),
        ] {
            let mut cb = CircuitBuilder::new();
            let wa = cb.input_word(8);
            let wb = cb.input_word(8);
            let (q, r) = cb.div_words(&wa, &wb);
            let mut outs = q.bits().to_vec();
            outs.extend_from_slice(r.bits());
            let c = cb.finish(outs);
            let mut inputs = to_bits(a, 8);
            inputs.extend(to_bits(b, 8));
            let out = c.eval(&inputs);
            assert_eq!(word_value(&out[..8]), a / b, "{a}/{b}");
            assert_eq!(word_value(&out[8..]), a % b, "{a}%{b}");
        }
    }

    #[test]
    fn divider_exhaustive_small() {
        let mut cb = CircuitBuilder::new();
        let wa = cb.input_word(5);
        let wb = cb.input_word(5);
        let (q, _) = cb.div_words(&wa, &wb);
        let c = cb.finish_word(q);
        for a in 0u64..32 {
            for b in 1u64..32 {
                let mut inputs = to_bits(a, 5);
                inputs.extend(to_bits(b, 5));
                assert_eq!(word_value(&c.eval(&inputs)), a / b, "{a}/{b}");
            }
        }
    }

    #[test]
    fn sqrt_matches_isqrt() {
        let mut cb = CircuitBuilder::new();
        let wa = cb.input_word(10);
        let r = cb.sqrt_word(&wa);
        let c = cb.finish_word(r);
        for v in 0u64..1024 {
            let got = word_value(&c.eval(&to_bits(v, 10)));
            let want = (v as f64).sqrt().floor() as u64;
            assert_eq!(got, want, "sqrt({v})");
        }
    }

    #[test]
    fn shl_widens() {
        let mut cb = CircuitBuilder::new();
        let wa = cb.input_word(4);
        let s = cb.shl_words(&wa, 3);
        assert_eq!(s.width(), 7);
        let c = cb.finish_word(s);
        assert_eq!(word_value(&c.eval(&to_bits(0b1011, 4))), 0b1011000);
    }
}
