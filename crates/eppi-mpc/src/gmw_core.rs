//! The one bit-packed GMW core shared by every execution backend.
//!
//! Historically the workspace carried three complete copies of the GMW
//! protocol — the in-process executor here, plus round-simulated and
//! one-thread-per-party variants in `eppi-protocol` — each with its own
//! AND-layer scheduler and Beaver-triple logic, all shuffling shares as
//! `Vec<bool>`. This module is the single remaining implementation:
//!
//! * [`Schedule`] — the one true level scheduler (free gates per level,
//!   AND gates opened together per level, dense triple numbering).
//! * [`deal_packed_triples`] / [`PartyTriples`] — Beaver triples dealt
//!   as packed words, one triple bit per AND gate, 64 per `u64`.
//! * [`PartyCore`] — a sans-io state machine holding one party's packed
//!   wire shares. It produces and consumes
//!   [`PackedBatch`]es; *how* those batches move is the
//!   [`Transport`]'s business (`eppi_net::transport`).
//! * [`run_party`] — the straight-line protocol for one party over a
//!   blocking transport (what each thread of the threaded backend
//!   runs); [`run_lockstep`] — the single-threaded driver running all
//!   parties over lockstep transports (in-process and simulator
//!   backends).
//! * [`mod@reference`] — the frozen pre-refactor `Vec<bool>` executor, kept
//!   as the equivalence-test oracle and the baseline of the
//!   packed-vs-unpacked speedup benchmark (`results/BENCH_mpc.json`).
//!
//! Per AND layer the packed protocol opens `d = x ⊕ a`, `e = y ⊕ b` for
//! all gates of the layer in one word-aligned batch (`d` words then `e`
//! words), XOR-combines the peers' batches word-wise, and completes the
//! Beaver identity `z = c ⊕ (d ∧ b) ⊕ (e ∧ a) ⊕ [party 0](d ∧ e)` with
//! whole-word operations — 64 gates per instruction.

use crate::circuit::{Circuit, Gate, InputLayout};
use crate::packed::{mask_tail, words_for, PackedBits};
use crate::triples::TripleBatch;
use eppi_net::transport::{PackedBatch, Transport};
use rand::Rng;
use std::time::{Duration, Instant};

/// One level of the schedule: the free gates evaluated locally, then
/// the AND gates opened together in one communication round.
#[derive(Debug, Clone, Default)]
pub struct Layer {
    /// Gate indices of the level's XOR/NOT/Const gates.
    pub free: Vec<usize>,
    /// Gate indices of the level's AND gates.
    pub ands: Vec<usize>,
}

/// The level-synchronized evaluation schedule of a circuit — the single
/// scheduler behind every backend and [`Circuit::and_layers`].
#[derive(Debug, Clone)]
pub struct Schedule {
    levels: Vec<Layer>,
    /// AND gate index → dense triple index (gate-list order).
    triple_index: Vec<usize>,
    and_gates: usize,
}

impl Schedule {
    /// Computes the schedule of `circuit`.
    pub fn new(circuit: &Circuit) -> Schedule {
        let inputs = circuit.inputs();
        let mut wire_level = vec![0usize; circuit.wires()];
        let mut levels: Vec<Layer> = Vec::new();
        let mut triple_index = vec![usize::MAX; circuit.gates().len()];
        let mut next_triple = 0usize;
        for (k, gate) in circuit.gates().iter().enumerate() {
            let this = inputs + k;
            let (level, is_and) = match *gate {
                Gate::Xor(a, b) => (wire_level[a.index()].max(wire_level[b.index()]), false),
                Gate::Not(a) => (wire_level[a.index()], false),
                Gate::Const(_) => (0, false),
                Gate::And(a, b) => (wire_level[a.index()].max(wire_level[b.index()]), true),
            };
            if levels.len() <= level {
                levels.resize_with(level + 1, Layer::default);
            }
            if is_and {
                levels[level].ands.push(k);
                wire_level[this] = level + 1;
                triple_index[k] = next_triple;
                next_triple += 1;
            } else {
                levels[level].free.push(k);
                wire_level[this] = level;
            }
        }
        Schedule {
            levels,
            triple_index,
            and_gates: next_triple,
        }
    }

    /// The levels, in evaluation order.
    pub fn levels(&self) -> &[Layer] {
        &self.levels
    }

    /// Number of AND gates (= Beaver triples consumed).
    pub fn and_gates(&self) -> usize {
        self.and_gates
    }

    /// Number of communication rounds the AND gates need (levels with at
    /// least one AND gate — the circuit's AND-depth).
    pub fn and_rounds(&self) -> usize {
        self.levels.iter().filter(|l| !l.ands.is_empty()).count()
    }

    /// The dense triple index of AND gate `gate` (gate-list order, the
    /// order [`TripleBatch`] is consumed in).
    ///
    /// # Panics
    ///
    /// Panics if `gate` is not an AND gate.
    pub fn triple_index(&self, gate: usize) -> usize {
        let t = self.triple_index[gate];
        assert_ne!(t, usize::MAX, "gate {gate} is not an AND gate");
        t
    }

    /// The first level at or after `from` that contains AND gates, or
    /// `None` if only free levels remain. The streaming triple feed of
    /// the pipelined runtime uses this to know how many levels of
    /// triples a lane must hold before its next exchange.
    pub fn next_and_level(&self, from: usize) -> Option<usize> {
        self.levels[from.min(self.levels.len())..]
            .iter()
            .position(|l| !l.ands.is_empty())
            .map(|i| from + i)
    }

    /// Per level, the gate indices of its AND gates — the layering
    /// [`Circuit::and_layers`] exposes. Only levels containing AND gates
    /// appear (a level without them needs no round).
    pub fn and_layer_gates(&self) -> Vec<Vec<usize>> {
        self.levels
            .iter()
            .filter(|l| !l.ands.is_empty())
            .map(|l| l.ands.clone())
            .collect()
    }
}

/// One level's Beaver-triple shares of one party, packed bit `i` ↔ the
/// level's `i`-th AND gate.
#[derive(Debug, Clone, Default)]
pub struct LayerTriples {
    /// Packed `a` share bits.
    pub a: Vec<u64>,
    /// Packed `b` share bits.
    pub b: Vec<u64>,
    /// Packed `c` share bits.
    pub c: Vec<u64>,
}

/// One party's packed Beaver-triple shares, aligned with a
/// [`Schedule`]'s levels.
#[derive(Debug, Clone, Default)]
pub struct PartyTriples {
    layers: Vec<LayerTriples>,
}

impl PartyTriples {
    /// This party's shares of `batch` (per-gate [`crate::triples`]
    /// shares, e.g. from the OT-based offline phase), repacked into the
    /// schedule's per-level word layout.
    ///
    /// # Panics
    ///
    /// Panics if the batch holds fewer triples than the schedule's AND
    /// gates or `party` is out of range.
    pub fn from_batch(sched: &Schedule, batch: &TripleBatch, party: usize) -> PartyTriples {
        let shares = batch.party(party);
        assert!(
            shares.len() >= sched.and_gates(),
            "batch has {} triples but the schedule needs {}",
            shares.len(),
            sched.and_gates()
        );
        let layers = sched
            .levels()
            .iter()
            .map(|layer| {
                let words = words_for(layer.ands.len());
                let mut t = LayerTriples {
                    a: vec![0; words],
                    b: vec![0; words],
                    c: vec![0; words],
                };
                for (i, &k) in layer.ands.iter().enumerate() {
                    let s = shares[sched.triple_index(k)];
                    let mask = 1u64 << (i % 64);
                    if s.a {
                        t.a[i / 64] |= mask;
                    }
                    if s.b {
                        t.b[i / 64] |= mask;
                    }
                    if s.c {
                        t.c[i / 64] |= mask;
                    }
                }
                t
            })
            .collect();
        PartyTriples { layers }
    }

    /// Number of schedule levels these triples cover.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// The per-level shares, in schedule order — what a pre-dealt batch
    /// feeds into the streaming pipeline one layer at a time.
    pub fn into_layers(self) -> Vec<LayerTriples> {
        self.layers
    }
}

fn random_words<R: Rng + ?Sized>(bits: usize, rng: &mut R) -> Vec<u64> {
    let mut words: Vec<u64> = (0..words_for(bits)).map(|_| rng.gen()).collect();
    mask_tail(&mut words, bits);
    words
}

/// Deals the XOR-shared Beaver triples of one schedule level with
/// `and_gates` AND gates: one [`LayerTriples`] share per party. This is
/// the per-layer unit both [`deal_packed_triples`] and the streaming
/// dealer of the pipelined runtime (`eppi_protocol`) are built from, so
/// the two consume the dealer RNG draw-for-draw identically — the
/// foundation of the cross-driver bit-identity property.
///
/// # Panics
///
/// Panics if `parties == 0`.
pub fn deal_layer_triples<R: Rng + ?Sized>(
    parties: usize,
    and_gates: usize,
    rng: &mut R,
) -> Vec<LayerTriples> {
    assert!(parties >= 1, "at least one party required");
    let a = random_words(and_gates, rng);
    let b = random_words(and_gates, rng);
    let c: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| x & y).collect();
    let mut rem = LayerTriples { a, b, c };
    let mut out = Vec::with_capacity(parties);
    for _ in 0..parties - 1 {
        let share = LayerTriples {
            a: random_words(and_gates, rng),
            b: random_words(and_gates, rng),
            c: random_words(and_gates, rng),
        };
        for w in 0..rem.a.len() {
            rem.a[w] ^= share.a[w];
            rem.b[w] ^= share.b[w];
            rem.c[w] ^= share.c[w];
        }
        out.push(share);
    }
    out.push(rem);
    out
}

/// Deals XOR-shared Beaver triples for every AND gate of `sched`, as
/// the trusted dealer of the offline phase — but word-at-a-time: one
/// RNG draw covers 64 gates.
///
/// # Panics
///
/// Panics if `parties == 0`.
pub fn deal_packed_triples<R: Rng + ?Sized>(
    parties: usize,
    sched: &Schedule,
    rng: &mut R,
) -> Vec<PartyTriples> {
    assert!(parties >= 1, "at least one party required");
    let mut out = vec![
        PartyTriples {
            layers: Vec::with_capacity(sched.levels().len()),
        };
        parties
    ];
    for layer in sched.levels() {
        let shares = deal_layer_triples(parties, layer.ands.len(), rng);
        for (party, share) in out.iter_mut().zip(shares) {
            party.layers.push(share);
        }
    }
    out
}

/// One party's sans-io GMW state machine over packed shares.
///
/// The core never touches a socket, channel or simulator: it emits
/// [`PackedBatch`]es and absorbs the peers' batches, and the caller
/// decides how they travel (see [`run_party`] / [`run_lockstep`]).
#[derive(Debug)]
pub struct PartyCore<'c> {
    circuit: &'c Circuit,
    layout: &'c InputLayout,
    sched: &'c Schedule,
    me: usize,
    triples: PartyTriples,
    /// One packed share bit per circuit wire.
    shares: PackedBits,
    /// Next schedule level to process.
    level: usize,
    /// My own d/e batch of the pending AND layer.
    my_de: Option<PackedBatch>,
}

impl<'c> PartyCore<'c> {
    /// Creates the state machine for party `me`.
    ///
    /// # Panics
    ///
    /// Panics if the layout does not cover the circuit inputs, `me` is
    /// out of range, or `triples` is not aligned with `sched`.
    pub fn new(
        circuit: &'c Circuit,
        layout: &'c InputLayout,
        sched: &'c Schedule,
        me: usize,
        triples: PartyTriples,
    ) -> PartyCore<'c> {
        assert_eq!(
            layout.total_inputs(),
            circuit.inputs(),
            "layout does not cover the circuit inputs"
        );
        assert!(me < layout.parties(), "party {me} out of range");
        assert_eq!(
            triples.layers.len(),
            sched.levels().len(),
            "triples not aligned with the schedule"
        );
        PartyCore {
            circuit,
            layout,
            sched,
            me,
            triples,
            shares: PackedBits::zeros(circuit.wires()),
            level: 0,
            my_de: None,
        }
    }

    /// Creates the state machine for party `me` with *no* triples yet:
    /// the caller streams them in level-by-level through
    /// [`feed_layer_triples`](Self::feed_layer_triples) ahead of
    /// consumption (the pipelined runtime's dealer does this from its
    /// own thread). Every level — including AND-free ones, whose share
    /// is empty — must be fed, in schedule order.
    ///
    /// # Panics
    ///
    /// Panics if the layout does not cover the circuit inputs or `me`
    /// is out of range.
    pub fn new_streaming(
        circuit: &'c Circuit,
        layout: &'c InputLayout,
        sched: &'c Schedule,
        me: usize,
    ) -> PartyCore<'c> {
        assert_eq!(
            layout.total_inputs(),
            circuit.inputs(),
            "layout does not cover the circuit inputs"
        );
        assert!(me < layout.parties(), "party {me} out of range");
        PartyCore {
            circuit,
            layout,
            sched,
            me,
            triples: PartyTriples::default(),
            shares: PackedBits::zeros(circuit.wires()),
            level: 0,
            my_de: None,
        }
    }

    /// Appends the next level's triple share (streaming mode). The
    /// schedule level it belongs to is implied by the feed order.
    ///
    /// # Panics
    ///
    /// Panics if more levels are fed than the schedule has.
    pub fn feed_layer_triples(&mut self, share: LayerTriples) {
        assert!(
            self.triples.layers.len() < self.sched.levels().len(),
            "fed more triple layers than the schedule has levels"
        );
        self.triples.layers.push(share);
    }

    /// Number of triple levels fed (or pre-dealt) so far.
    pub fn fed_layers(&self) -> usize {
        self.triples.layers.len()
    }

    /// The next schedule level to process.
    pub fn level(&self) -> usize {
        self.level
    }

    /// This party's id.
    pub fn me(&self) -> usize {
        self.me
    }

    /// Number of parties.
    pub fn parties(&self) -> usize {
        self.layout.parties()
    }

    /// The circuit under evaluation.
    pub fn circuit(&self) -> &Circuit {
        self.circuit
    }

    /// The input layout.
    pub fn layout(&self) -> &InputLayout {
        self.layout
    }

    /// Splits this party's private input bits into XOR shares: returns
    /// one dense input-share batch per destination party (the own slot
    /// stays empty) and installs the own correction share.
    ///
    /// # Panics
    ///
    /// Panics if `my_bits` disagrees with the layout.
    pub fn share_inputs<R: Rng + ?Sized>(
        &mut self,
        my_bits: &[bool],
        rng: &mut R,
    ) -> Vec<PackedBatch> {
        let range = self.layout.range_of(self.me);
        assert_eq!(
            my_bits.len(),
            range.len(),
            "party {} supplied wrong input count",
            self.me
        );
        let parties = self.parties();
        let mut acc = PackedBits::from_bits(my_bits);
        let mut batches = vec![PackedBatch::empty(); parties];
        for (p, batch) in batches.iter_mut().enumerate() {
            if p == self.me {
                continue;
            }
            let share = PackedBits::random(my_bits.len(), rng);
            acc.xor_assign(&share);
            *batch = PackedBatch {
                bits: share.len(),
                words: share.into_words(),
            };
        }
        self.shares
            .copy_bits_from(range.start, acc.words(), my_bits.len());
        batches
    }

    /// Installs a peer's input-share batch (dense layout over the
    /// peer's input-wire range).
    ///
    /// # Panics
    ///
    /// Panics if the batch size disagrees with `from`'s layout range.
    pub fn absorb_inputs(&mut self, from: usize, batch: &PackedBatch) {
        let range = self.layout.range_of(from);
        assert_eq!(batch.bits, range.len(), "input batch size from {from}");
        self.shares
            .copy_bits_from(range.start, &batch.words, batch.bits);
    }

    /// Advances through free gates and, when an AND level is reached,
    /// returns this party's `d`/`e` opening batch for it (`d` words then
    /// `e` words, each half word-aligned). Returns `None` once every
    /// gate is evaluated.
    pub fn next_layer_batch(&mut self) -> Option<PackedBatch> {
        assert!(self.my_de.is_none(), "pending layer not finished");
        let n_inputs = self.circuit.inputs();
        // Branchless word-level bit access: the free-gate sweep runs
        // once per party over the whole circuit, so data-dependent
        // branches here dominate the entire evaluation.
        let me0 = (self.me == 0) as u64;
        while self.level < self.sched.levels().len() {
            let layer = &self.sched.levels()[self.level];
            for &k in &layer.free {
                let v = match self.circuit.gates()[k] {
                    Gate::Xor(a, b) => {
                        self.shares.bit_word(a.index()) ^ self.shares.bit_word(b.index())
                    }
                    // Party 0 flips its share.
                    Gate::Not(a) => me0 ^ self.shares.bit_word(a.index()),
                    Gate::Const(v) => me0 & v as u64,
                    Gate::And(..) => unreachable!("AND scheduled as free gate"),
                };
                self.shares.store_bit(n_inputs + k, v);
            }
            if layer.ands.is_empty() {
                self.level += 1;
                continue;
            }
            let g = layer.ands.len();
            let words = words_for(g);
            let mut de = vec![0u64; 2 * words];
            for (i, &k) in layer.ands.iter().enumerate() {
                let (a, b) = match self.circuit.gates()[k] {
                    Gate::And(a, b) => (a, b),
                    _ => unreachable!("non-AND in ands"),
                };
                de[i / 64] |= self.shares.bit_word(a.index()) << (i % 64);
                de[words + i / 64] |= self.shares.bit_word(b.index()) << (i % 64);
            }
            // d = x ⊕ a, e = y ⊕ b — masked word-wise.
            assert!(
                self.level < self.triples.layers.len(),
                "triples for level {} not fed yet",
                self.level
            );
            let t = &self.triples.layers[self.level];
            for w in 0..words {
                de[w] ^= t.a[w];
                de[words + w] ^= t.b[w];
            }
            let batch = PackedBatch {
                words: de,
                bits: 2 * g,
            };
            self.my_de = Some(batch.clone());
            return Some(batch);
        }
        None
    }

    /// Completes the pending AND level: XOR-combines the peers' batches
    /// with the own one into the opened `d`/`e` words and applies the
    /// Beaver identity `z = c ⊕ (d ∧ b) ⊕ (e ∧ a) ⊕ [party 0](d ∧ e)`
    /// word-wise.
    ///
    /// # Panics
    ///
    /// Panics if no layer is pending or a batch has the wrong size.
    pub fn finish_layer(&mut self, peers: &[(usize, PackedBatch)]) {
        let mine = self.my_de.take().expect("no pending AND layer");
        let layer = &self.sched.levels()[self.level];
        let g = layer.ands.len();
        let words = words_for(g);
        let mut opened = mine.words;
        for (from, batch) in peers {
            assert_eq!(
                batch.words.len(),
                opened.len(),
                "layer batch size from {from}"
            );
            for (w, o) in opened.iter_mut().zip(&batch.words) {
                *w ^= o;
            }
        }
        let t = &self.triples.layers[self.level];
        let mut z = vec![0u64; words];
        for w in 0..words {
            let d = opened[w];
            let e = opened[words + w];
            z[w] = t.c[w] ^ (d & t.b[w]) ^ (e & t.a[w]);
            if self.me == 0 {
                z[w] ^= d & e;
            }
        }
        let n_inputs = self.circuit.inputs();
        for (i, &k) in layer.ands.iter().enumerate() {
            self.shares
                .store_bit(n_inputs + k, (z[i / 64] >> (i % 64)) & 1);
        }
        self.level += 1;
    }

    /// This party's output shares as a dense batch.
    pub fn output_batch(&self) -> PackedBatch {
        let outs = self.circuit.outputs();
        let mut p = PackedBits::zeros(outs.len());
        for (i, o) in outs.iter().enumerate() {
            p.set(i, self.shares.get(o.index()));
        }
        PackedBatch {
            bits: p.len(),
            words: p.into_words(),
        }
    }

    /// Opens the circuit outputs from the peers' output batches.
    ///
    /// # Panics
    ///
    /// Panics if a batch has the wrong size.
    pub fn open_outputs(&self, peers: &[(usize, PackedBatch)]) -> Vec<bool> {
        let mut opened = self.output_batch();
        for (from, batch) in peers {
            assert_eq!(
                batch.words.len(),
                opened.words.len(),
                "output batch size from {from}"
            );
            for (w, o) in opened.words.iter_mut().zip(&batch.words) {
                *w ^= o;
            }
        }
        (0..opened.bits).map(|i| opened.bit(i)).collect()
    }
}

/// Total logical payload bits a `parties`-party evaluation of `circuit`
/// exchanges: `(parties − 1)` per input wire (the owner's shares), then
/// `2 · parties · (parties − 1)` per AND gate (every party broadcasts
/// its `d` and `e` bits) and `parties · (parties − 1)` per output wire.
/// Deterministic in the circuit structure, so every backend reports the
/// identical figure.
pub fn logical_bits(circuit: &Circuit, layout: &InputLayout) -> u64 {
    let p = layout.parties() as u64;
    if p <= 1 {
        return 0;
    }
    let stats = circuit.stats();
    let inputs = layout.total_inputs() as u64 * (p - 1);
    let ands = 2 * stats.and_gates as u64 * p * (p - 1);
    let outputs = stats.outputs as u64 * p * (p - 1);
    inputs + ands + outputs
}

/// Protocol rounds of an evaluation: one input-sharing round (if the
/// circuit has inputs and more than one party), one per AND level, and
/// one output-opening round (if it has outputs and more than one
/// party). Shared by every backend's report.
pub fn protocol_rounds(circuit: &Circuit, layout: &InputLayout, sched: &Schedule) -> usize {
    let mut rounds = sched.and_rounds();
    if layout.parties() > 1 {
        if circuit.inputs() > 0 {
            rounds += 1;
        }
        if !circuit.outputs().is_empty() {
            rounds += 1;
        }
    }
    rounds
}

/// Runs the straight-line protocol for one party over a blocking
/// transport — what each thread of the threaded backend executes.
/// `on_round(level_round, elapsed)` fires after each completed AND
/// round with its wall time (for the `gmw.round_ns` telemetry).
///
/// # Panics
///
/// Panics if `my_bits` disagrees with the layout or the transport
/// violates the protocol.
pub fn run_party<T, R, F>(
    core: &mut PartyCore<'_>,
    my_bits: &[bool],
    rng: &mut R,
    transport: &mut T,
    mut on_round: F,
) -> Vec<bool>
where
    T: Transport,
    R: Rng + ?Sized,
    F: FnMut(usize, Duration),
{
    let parties = core.parties();
    let batches = core.share_inputs(my_bits, rng);
    if parties > 1 && core.layout().total_inputs() > 0 {
        transport.scatter(batches);
        for (from, batch) in transport.collect() {
            core.absorb_inputs(from, &batch);
        }
    }
    let mut round = 0usize;
    while let Some(batch) = core.next_layer_batch() {
        let started = Instant::now();
        if parties > 1 {
            transport.broadcast(batch);
            let peers = transport.collect();
            core.finish_layer(&peers);
        } else {
            core.finish_layer(&[]);
        }
        on_round(round, started.elapsed());
        round += 1;
    }
    if parties > 1 && !core.circuit().outputs().is_empty() {
        transport.broadcast(core.output_batch());
        let peers = transport.collect();
        core.open_outputs(&peers)
    } else {
        core.open_outputs(&[])
    }
}

/// Drives all parties in lockstep on the current thread over per-party
/// transports (in-process or simulator hubs): every exchange first lets
/// each party deposit, then lets each party collect. `share(p, core)`
/// produces party `p`'s input batches (so callers choose the per-party
/// RNG discipline). All parties must open identical outputs; the opened
/// bits are returned.
///
/// # Panics
///
/// Panics if `cores` and `transports` disagree in length or party
/// order, or if the parties open different outputs (a protocol bug).
pub fn run_lockstep<T, F>(
    cores: &mut [PartyCore<'_>],
    transports: &mut [T],
    mut share: F,
) -> Vec<bool>
where
    T: Transport,
    F: FnMut(usize, &mut PartyCore<'_>) -> Vec<PackedBatch>,
{
    let parties = cores.len();
    assert_eq!(transports.len(), parties, "one transport per party");
    assert!(parties >= 1, "at least one party required");
    let has_inputs = cores[0].layout().total_inputs() > 0;

    // Input-sharing exchange.
    for (p, core) in cores.iter_mut().enumerate() {
        let batches = share(p, core);
        if parties > 1 && has_inputs {
            transports[p].scatter(batches);
        }
    }
    if parties > 1 && has_inputs {
        for (p, core) in cores.iter_mut().enumerate() {
            for (from, batch) in transports[p].collect() {
                core.absorb_inputs(from, &batch);
            }
        }
    }

    // AND levels, one exchange per level.
    loop {
        let mut batches: Vec<Option<PackedBatch>> =
            cores.iter_mut().map(PartyCore::next_layer_batch).collect();
        let pending = batches[0].is_some();
        assert!(
            batches.iter().all(|b| b.is_some() == pending),
            "parties disagree on the schedule"
        );
        if !pending {
            break;
        }
        if parties == 1 {
            cores[0].finish_layer(&[]);
            continue;
        }
        for (p, batch) in batches.iter_mut().enumerate() {
            transports[p].broadcast(batch.take().expect("checked above"));
        }
        for (p, core) in cores.iter_mut().enumerate() {
            let peers = transports[p].collect();
            core.finish_layer(&peers);
        }
    }

    // Output opening.
    if parties > 1 && !cores[0].circuit().outputs().is_empty() {
        for (p, core) in cores.iter().enumerate() {
            transports[p].broadcast(core.output_batch());
        }
        let mut result: Option<Vec<bool>> = None;
        for (p, core) in cores.iter().enumerate() {
            let opened = core.open_outputs(&transports[p].collect());
            match &result {
                None => result = Some(opened),
                Some(first) => {
                    assert_eq!(&opened, first, "party {p} disagrees on the opened outputs")
                }
            }
        }
        result.expect("at least one party")
    } else {
        cores[0].open_outputs(&[])
    }
}

pub mod reference {
    //! The frozen pre-refactor `Vec<bool>` executor.
    //!
    //! This is the original single-threaded GMW evaluator, byte-for-byte
    //! in behaviour: one heap bool per wire per party, per-bit triple
    //! dealing, per-gate Beaver opening. It exists for two reasons and
    //! must not be "improved":
    //!
    //! 1. It is the oracle of the cross-backend equivalence property
    //!    test (packed vs. unpacked outputs must be bit-identical).
    //! 2. It is the baseline of the packed-core speedup benchmark
    //!    (`results/BENCH_mpc.json`).

    use crate::circuit::{Circuit, Gate, InputLayout};
    use crate::gmw::GmwStats;
    use rand::Rng;

    struct SharedTriple {
        a: Vec<bool>,
        b: Vec<bool>,
        c: Vec<bool>,
    }

    fn share_bit<R: Rng + ?Sized>(parties: usize, secret: bool, rng: &mut R) -> Vec<bool> {
        let mut shares: Vec<bool> = (0..parties - 1).map(|_| rng.gen()).collect();
        let xor_rest = shares.iter().fold(false, |acc, &s| acc ^ s);
        shares.push(secret ^ xor_rest);
        shares
    }

    /// Evaluates `circuit` with the unpacked reference path. Outputs
    /// equal `circuit.eval` on the flattened inputs; the stats follow
    /// the same accounting as [`crate::gmw::execute`] (`bytes` is the
    /// logical bits rounded up, since this path predates the packed
    /// wire framing).
    ///
    /// # Panics
    ///
    /// Panics if the layout does not cover the circuit inputs or
    /// `inputs` disagrees with the layout.
    pub fn execute_unpacked<R: Rng + ?Sized>(
        circuit: &Circuit,
        layout: &InputLayout,
        inputs: &[Vec<bool>],
        rng: &mut R,
    ) -> (Vec<bool>, GmwStats) {
        assert_eq!(
            layout.total_inputs(),
            circuit.inputs(),
            "layout does not cover the circuit inputs"
        );
        let parties = layout.parties();
        let mut stats = GmwStats {
            parties,
            ..GmwStats::default()
        };

        // wire_shares[w][p] = party p's XOR share of wire w.
        let mut wire_shares: Vec<Vec<bool>> = Vec::with_capacity(circuit.wires());

        let flat = layout.flatten(inputs);
        for (w, &bit) in flat.iter().enumerate() {
            let owner = layout.party_of(w);
            let mut shares: Vec<bool> = (0..parties).map(|_| rng.gen()).collect();
            let xor_others = shares
                .iter()
                .enumerate()
                .filter(|&(p, _)| p != owner)
                .fold(false, |acc, (_, &s)| acc ^ s);
            shares[owner] = bit ^ xor_others;
            wire_shares.push(shares);
            stats.bits_sent += (parties - 1) as u64;
            stats.messages += (parties - 1) as u64;
        }
        if parties > 1 && circuit.inputs() > 0 {
            stats.rounds += 1;
        }

        stats.rounds += circuit.and_layers().len();

        for gate in circuit.gates() {
            let shares = match *gate {
                Gate::Xor(a, b) => {
                    let (sa, sb) = (&wire_shares[a.index()], &wire_shares[b.index()]);
                    sa.iter().zip(sb).map(|(&x, &y)| x ^ y).collect()
                }
                Gate::Not(a) => {
                    let sa = &wire_shares[a.index()];
                    sa.iter()
                        .enumerate()
                        .map(|(p, &x)| if p == 0 { !x } else { x })
                        .collect()
                }
                Gate::Const(v) => (0..parties).map(|p| p == 0 && v).collect(),
                Gate::And(a, b) => {
                    let sec_a: bool = rng.gen();
                    let sec_b: bool = rng.gen();
                    let triple = SharedTriple {
                        a: share_bit(parties, sec_a, rng),
                        b: share_bit(parties, sec_b, rng),
                        c: share_bit(parties, sec_a & sec_b, rng),
                    };
                    let sa = &wire_shares[a.index()];
                    let sb = &wire_shares[b.index()];
                    let d = sa
                        .iter()
                        .zip(&triple.a)
                        .fold(false, |acc, (&x, &ta)| acc ^ x ^ ta);
                    let e = sb
                        .iter()
                        .zip(&triple.b)
                        .fold(false, |acc, (&y, &tb)| acc ^ y ^ tb);
                    stats.bits_sent += 2 * (parties * (parties - 1)) as u64;
                    stats.messages += (parties * (parties - 1)) as u64;
                    stats.triples_used += 1;
                    (0..parties)
                        .map(|p| {
                            let mut z = triple.c[p] ^ (d & triple.b[p]) ^ (e & triple.a[p]);
                            if p == 0 {
                                z ^= d & e;
                            }
                            z
                        })
                        .collect()
                }
            };
            wire_shares.push(shares);
        }

        let outputs: Vec<bool> = circuit
            .outputs()
            .iter()
            .map(|o| wire_shares[o.index()].iter().fold(false, |acc, &s| acc ^ s))
            .collect();
        if !outputs.is_empty() && parties > 1 {
            stats.rounds += 1;
            stats.bits_sent += (outputs.len() * parties * (parties - 1)) as u64;
            stats.messages += (parties * (parties - 1)) as u64;
        }
        stats.bytes = stats.bits_sent.div_ceil(8);

        (outputs, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{to_bits, word_value, CircuitBuilder};
    use eppi_net::transport::InProcessTransport;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn adder() -> (Circuit, InputLayout) {
        let mut cb = CircuitBuilder::new();
        let a = cb.input_word(6);
        let b = cb.input_word(6);
        let sum = cb.add_words_expand(&a, &b);
        (cb.finish_word(sum), InputLayout::new(vec![6, 6]))
    }

    fn run_packed(
        circuit: &Circuit,
        layout: &InputLayout,
        inputs: &[Vec<bool>],
        seed: u64,
    ) -> Vec<bool> {
        let sched = Schedule::new(circuit);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut triples = deal_packed_triples(layout.parties(), &sched, &mut rng);
        let mut cores: Vec<PartyCore<'_>> = (0..layout.parties())
            .map(|p| PartyCore::new(circuit, layout, &sched, p, std::mem::take(&mut triples[p])))
            .collect();
        let mut hub = InProcessTransport::hub(layout.parties());
        run_lockstep(&mut cores, &mut hub, |p, core| {
            core.share_inputs(&inputs[p], &mut rng)
        })
    }

    #[test]
    fn schedule_matches_legacy_and_layers() {
        let (circuit, _) = adder();
        let sched = Schedule::new(&circuit);
        assert_eq!(sched.and_layer_gates(), circuit.and_layers());
        assert_eq!(sched.and_gates(), circuit.stats().and_gates);
        assert_eq!(sched.and_rounds(), circuit.stats().and_depth);
        // Every gate appears in exactly one level.
        let scheduled: usize = sched
            .levels()
            .iter()
            .map(|l| l.free.len() + l.ands.len())
            .sum();
        assert_eq!(scheduled, circuit.gates().len());
    }

    #[test]
    fn lockstep_core_matches_cleartext() {
        let (circuit, layout) = adder();
        for (x, y, seed) in [(0u64, 0u64, 1), (17, 42, 2), (63, 63, 3)] {
            let inputs = vec![to_bits(x, 6), to_bits(y, 6)];
            let out = run_packed(&circuit, &layout, &inputs, seed);
            assert_eq!(word_value(&out), x + y, "x={x} y={y}");
        }
    }

    #[test]
    fn single_party_runs_without_exchanges() {
        let mut cb = CircuitBuilder::new();
        let a = cb.input_word(5);
        let b = cb.const_word(11, 5);
        let lt = cb.lt_words(&a, &b);
        let circuit = cb.finish(vec![lt]);
        let layout = InputLayout::new(vec![5]);
        let out = run_packed(&circuit, &layout, &[to_bits(7, 5)], 9);
        assert_eq!(out, vec![true]);
    }

    #[test]
    fn packed_agrees_with_reference_unpacked() {
        let (circuit, layout) = adder();
        let mut rng = StdRng::seed_from_u64(5);
        for seed in 0..8u64 {
            let inputs = vec![
                to_bits(rng.gen_range(0..64), 6),
                to_bits(rng.gen_range(0..64), 6),
            ];
            let packed = run_packed(&circuit, &layout, &inputs, seed);
            let mut ref_rng = StdRng::seed_from_u64(seed ^ 0xabc);
            let (unpacked, stats) =
                reference::execute_unpacked(&circuit, &layout, &inputs, &mut ref_rng);
            assert_eq!(packed, unpacked, "seed {seed}");
            assert_eq!(stats.bits_sent, logical_bits(&circuit, &layout));
            let sched = Schedule::new(&circuit);
            assert_eq!(stats.rounds, protocol_rounds(&circuit, &layout, &sched));
        }
    }

    #[test]
    fn run_party_over_threaded_transport_agrees() {
        use eppi_net::threaded::run_parties;
        use eppi_net::transport::{PackedBatch, ThreadedTransport};

        let (circuit, layout) = adder();
        let inputs = [to_bits(33, 6), to_bits(20, 6)];
        let sched = Schedule::new(&circuit);
        let mut dealer = StdRng::seed_from_u64(44);
        let triples = deal_packed_triples(2, &sched, &mut dealer);
        let (results, _) = run_parties::<PackedBatch, Vec<bool>, _>(2, |h| {
            let me = h.me().index();
            let mut transport = ThreadedTransport::new(h);
            let mut core = PartyCore::new(&circuit, &layout, &sched, me, triples[me].clone());
            let mut rng = StdRng::seed_from_u64(900 + me as u64);
            run_party(&mut core, &inputs[me], &mut rng, &mut transport, |_, _| {})
        });
        assert_eq!(word_value(&results[0]), 53);
        assert_eq!(results[0], results[1]);
    }

    #[test]
    fn pregenerated_triples_repack_correctly() {
        let (circuit, layout) = adder();
        let sched = Schedule::new(&circuit);
        let mut rng = StdRng::seed_from_u64(7);
        let batch = crate::triples::generate_triples(2, sched.and_gates(), &mut rng);
        let mut cores: Vec<PartyCore<'_>> = (0..2)
            .map(|p| {
                let t = PartyTriples::from_batch(&sched, &batch, p);
                PartyCore::new(&circuit, &layout, &sched, p, t)
            })
            .collect();
        let inputs = [to_bits(12, 6), to_bits(30, 6)];
        let mut hub = InProcessTransport::hub(2);
        let out = run_lockstep(&mut cores, &mut hub, |p, core| {
            core.share_inputs(&inputs[p], &mut rng)
        });
        assert_eq!(word_value(&out), 42);
    }

    #[test]
    fn logical_bits_formula() {
        let (circuit, layout) = adder();
        let s = circuit.stats();
        let expect = (s.inputs + 2 * 2 * s.and_gates + 2 * s.outputs) as u64;
        assert_eq!(logical_bits(&circuit, &layout), expect);
        assert_eq!(logical_bits(&circuit, &InputLayout::new(vec![12])), 0);
    }
}
