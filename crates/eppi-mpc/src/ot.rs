//! 1-of-2 oblivious transfer (semi-honest, Bellare–Micali style).
//!
//! The GMW engine consumes Beaver triples. The paper's platforms
//! (FairplayMP and friends) produce such correlated randomness in an
//! *offline phase* built on oblivious transfer; [`crate::gmw`] defaults
//! to a trusted dealer for speed, and this module provides the
//! dealer-free offline phase (used by [`crate::triples`]) so the whole
//! stack runs without any trusted party — matching the paper's headline
//! claim for the construction protocol.
//!
//! The protocol is the classic DH-based OT: the receiver proves it can
//! know the secret key of at most one of two public keys (the other is
//! pinned by a sender-chosen constant `C = PK_0 · PK_1`), and the sender
//! encrypts each message under the corresponding key.
//!
//! **Security caveat (by design):** the group is `Z_p^*` with the 61-bit
//! Mersenne prime `p = 2^61 − 1` and the key-derivation "hash" is a
//! SplitMix64 mixer. These parameters reproduce the *structure and cost
//! model* of the offline phase; they are far too small for real
//! deployments, which would swap in a standard curve and hash (the
//! allowed dependency set contains no cryptography crates, per
//! DESIGN.md).

use rand::Rng;

/// The 61-bit Mersenne prime `2^61 − 1`.
pub const P: u64 = (1 << 61) - 1;
/// A generator of a large subgroup of `Z_p^*`.
pub const G: u64 = 3;

/// Modular exponentiation `base^exp mod P`.
pub fn pow_mod(base: u64, mut exp: u64) -> u64 {
    let mut result = 1u128;
    let mut b = base as u128 % P as u128;
    while exp > 0 {
        if exp & 1 == 1 {
            result = result * b % P as u128;
        }
        b = b * b % P as u128;
        exp >>= 1;
    }
    result as u64
}

/// Modular inverse via Fermat (P is prime).
pub fn inv_mod(a: u64) -> u64 {
    pow_mod(a, P - 2)
}

/// The toy key-derivation function (SplitMix64 mixer).
fn kdf(key: u64, tweak: u64) -> u64 {
    let mut z = key ^ tweak.wrapping_mul(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Sender → receiver: the pinned constant `C`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OtSetup {
    /// The sender's random group element pinning `PK_0 · PK_1 = C`.
    pub c: u64,
}

/// Receiver → sender: the receiver's chosen public key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OtRequest {
    /// `PK_0` (the sender derives `PK_1 = C / PK_0`).
    pub pk0: u64,
}

/// Sender → receiver: the two encrypted messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OtResponse {
    /// `g^r` for the shared-secret derivation.
    pub gr: u64,
    /// `m_0 ⊕ KDF(PK_0^r)`.
    pub e0: u64,
    /// `m_1 ⊕ KDF(PK_1^r)`.
    pub e1: u64,
}

/// Sender state across the two rounds.
#[derive(Debug)]
pub struct OtSender {
    c: u64,
}

impl OtSender {
    /// Starts a transfer: samples the pinning constant.
    pub fn start<R: Rng + ?Sized>(rng: &mut R) -> (Self, OtSetup) {
        let c = pow_mod(G, rng.gen_range(1..P - 1));
        (OtSender { c }, OtSetup { c })
    }

    /// Answers the receiver's request with both messages encrypted.
    pub fn respond<R: Rng + ?Sized>(
        &self,
        request: OtRequest,
        m0: u64,
        m1: u64,
        rng: &mut R,
    ) -> OtResponse {
        let r = rng.gen_range(1..P - 1);
        let gr = pow_mod(G, r);
        let pk1 = (self.c as u128 * inv_mod(request.pk0) as u128 % P as u128) as u64;
        let k0 = kdf(pow_mod(request.pk0, r), 0);
        let k1 = kdf(pow_mod(pk1, r), 1);
        OtResponse {
            gr,
            e0: m0 ^ k0,
            e1: m1 ^ k1,
        }
    }
}

/// Receiver state across the two rounds.
#[derive(Debug)]
pub struct OtReceiver {
    choice: bool,
    secret: u64,
}

impl OtReceiver {
    /// Builds the request for choice bit `choice`: the receiver knows
    /// the discrete log of `PK_choice` only.
    pub fn request<R: Rng + ?Sized>(
        setup: OtSetup,
        choice: bool,
        rng: &mut R,
    ) -> (Self, OtRequest) {
        let secret = rng.gen_range(1..P - 1);
        let pk_choice = pow_mod(G, secret);
        let pk0 = if choice {
            // PK_1 = g^k ⇒ PK_0 = C / PK_1.
            (setup.c as u128 * inv_mod(pk_choice) as u128 % P as u128) as u64
        } else {
            pk_choice
        };
        (OtReceiver { choice, secret }, OtRequest { pk0 })
    }

    /// Decrypts the chosen message; the other stays hidden (the receiver
    /// cannot know the other key's discrete log).
    pub fn receive(&self, response: OtResponse) -> u64 {
        let shared = pow_mod(response.gr, self.secret);
        if self.choice {
            response.e1 ^ kdf(shared, 1)
        } else {
            response.e0 ^ kdf(shared, 0)
        }
    }
}

/// Runs one complete 1-of-2 OT in-process (both roles), returning the
/// message selected by `choice`. Useful for tests and the triple
/// generator; a distributed deployment would ship the three structs over
/// the wire (24 bytes total payload).
pub fn transfer<R: Rng + ?Sized>(m0: u64, m1: u64, choice: bool, rng: &mut R) -> u64 {
    let (sender, setup) = OtSender::start(rng);
    let (receiver, request) = OtReceiver::request(setup, choice, rng);
    let response = sender.respond(request, m0, m1, rng);
    receiver.receive(response)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pow_mod_basics() {
        assert_eq!(pow_mod(3, 0), 1);
        assert_eq!(pow_mod(3, 1), 3);
        assert_eq!(pow_mod(3, 2), 9);
        assert_eq!(pow_mod(2, 61), (1u64 << 61) % P); // 2^61 mod (2^61−1) = 1... checked below
        assert_eq!(pow_mod(2, 61), 1, "2^61 ≡ 1 (mod 2^61 − 1)");
    }

    #[test]
    fn inverse_is_correct() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let a = rng.gen_range(1..P);
            let inv = inv_mod(a);
            assert_eq!((a as u128 * inv as u128 % P as u128) as u64, 1, "a={a}");
        }
    }

    #[test]
    fn receiver_gets_exactly_the_chosen_message() {
        let mut rng = StdRng::seed_from_u64(2);
        for trial in 0..50 {
            let m0 = rng.gen::<u64>();
            let m1 = rng.gen::<u64>();
            assert_eq!(transfer(m0, m1, false, &mut rng), m0, "trial {trial}");
            assert_eq!(transfer(m0, m1, true, &mut rng), m1, "trial {trial}");
        }
    }

    #[test]
    fn request_hides_the_choice_bit() {
        // The sender's view (PK_0) is a uniform-looking group element in
        // both cases; sanity-check that the two distributions overlap
        // (both sides produce elements spanning the group, not e.g.
        // fixed values).
        let mut rng = StdRng::seed_from_u64(3);
        let (_, setup) = OtSender::start(&mut rng);
        let mut seen0 = std::collections::HashSet::new();
        let mut seen1 = std::collections::HashSet::new();
        for _ in 0..50 {
            let (_, r0) = OtReceiver::request(setup, false, &mut rng);
            let (_, r1) = OtReceiver::request(setup, true, &mut rng);
            seen0.insert(r0.pk0);
            seen1.insert(r1.pk0);
        }
        assert_eq!(seen0.len(), 50, "requests must be randomized");
        assert_eq!(seen1.len(), 50, "requests must be randomized");
    }

    #[test]
    fn unchosen_message_stays_hidden_from_honest_receiver() {
        // Decrypting the other slot with the receiver's key yields
        // garbage, not the message.
        let mut rng = StdRng::seed_from_u64(4);
        let (sender, setup) = OtSender::start(&mut rng);
        let (receiver, request) = OtReceiver::request(setup, false, &mut rng);
        let m0 = 0xAAAA_BBBB_CCCC_DDDD;
        let m1 = 0x1111_2222_3333_4444;
        let response = sender.respond(request, m0, m1, &mut rng);
        let shared = pow_mod(response.gr, receiver.secret);
        let wrong = response.e1 ^ kdf(shared, 1);
        assert_ne!(wrong, m1, "receiver must not decrypt the unchosen slot");
        assert_eq!(receiver.receive(response), m0);
    }
}
