//! (c, c) additive secret sharing with additive homomorphism
//! (§IV-B.1, Theorem 4.1).
//!
//! A secret `v ∈ Z_q` is split into `c` shares whose sum is `v mod q`;
//! the first `c − 1` shares are uniform random, the last is chosen
//! deterministically. The scheme has:
//!
//! * **Recoverability** — the sum of all `c` shares reconstructs `v`;
//! * **Secrecy** — any `c − 1` or fewer shares reveal nothing: the
//!   conditional distribution of `v` given them equals the prior;
//! * **Additive homomorphism** — share-wise addition of two sharings is a
//!   sharing of the sum, which is what makes the parallel secure-sum
//!   (SecSumShare) possible.

use crate::field::Modulus;
use rand::Rng;

/// An additive sharing of one secret: exactly `c` share values in `Z_q`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Shares {
    modulus: Modulus,
    values: Vec<u64>,
}

impl Shares {
    /// The share group modulus.
    pub fn modulus(&self) -> Modulus {
        self.modulus
    }

    /// The individual share values (length `c`).
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    /// Number of shares `c`.
    pub fn count(&self) -> usize {
        self.values.len()
    }
}

/// Splits `value` into `c` additive shares over `q`.
///
/// # Panics
///
/// Panics if `c == 0`.
///
/// ```
/// use eppi_mpc::field::Modulus;
/// use eppi_mpc::share::{recombine, split};
/// use rand::SeedableRng;
/// let q = Modulus::new(5);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let shares = split(1, 3, q, &mut rng);
/// assert_eq!(recombine(&shares), 1);
/// ```
pub fn split<R: Rng + ?Sized>(value: u64, c: usize, modulus: Modulus, rng: &mut R) -> Shares {
    assert!(c >= 1, "at least one share required");
    let v = modulus.reduce(value);
    let mut values = Vec::with_capacity(c);
    let mut acc = 0u64;
    for _ in 0..c - 1 {
        let s = modulus.random(rng);
        acc = modulus.add(acc, s);
        values.push(s);
    }
    values.push(modulus.sub(v, acc));
    Shares { modulus, values }
}

/// Reconstructs the secret from all `c` shares (Theorem 4.1,
/// recoverability).
pub fn recombine(shares: &Shares) -> u64 {
    let q = shares.modulus;
    shares.values.iter().fold(0u64, |acc, &s| q.add(acc, s))
}

/// Reconstructs a secret from raw share values over `q`.
pub fn recombine_raw(values: &[u64], modulus: Modulus) -> u64 {
    values
        .iter()
        .fold(0u64, |acc, &s| modulus.add(acc, modulus.reduce(s)))
}

/// Share-wise addition: a sharing of `a + b mod q` (additive
/// homomorphism).
///
/// # Panics
///
/// Panics if the share counts or moduli differ.
pub fn add_shares(a: &Shares, b: &Shares) -> Shares {
    assert_eq!(a.modulus, b.modulus, "moduli must match");
    assert_eq!(a.count(), b.count(), "share counts must match");
    let q = a.modulus;
    let values = a
        .values
        .iter()
        .zip(&b.values)
        .map(|(&x, &y)| q.add(x, y))
        .collect();
    Shares { modulus: q, values }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn recoverability_over_many_values() {
        let q = Modulus::new(5);
        let mut rng = StdRng::seed_from_u64(1);
        for v in 0..5u64 {
            for c in 1..=6usize {
                let s = split(v, c, q, &mut rng);
                assert_eq!(s.count(), c);
                assert_eq!(recombine(&s), v, "v={v} c={c}");
            }
        }
    }

    #[test]
    fn values_exceeding_modulus_are_reduced() {
        let q = Modulus::new(7);
        let mut rng = StdRng::seed_from_u64(2);
        let s = split(23, 3, q, &mut rng);
        assert_eq!(recombine(&s), 23 % 7);
    }

    #[test]
    fn homomorphic_addition() {
        let q = Modulus::pow2(16);
        let mut rng = StdRng::seed_from_u64(3);
        let a = split(1000, 3, q, &mut rng);
        let b = split(64_000, 3, q, &mut rng);
        let sum = add_shares(&a, &b);
        assert_eq!(recombine(&sum), (1000 + 64_000));
    }

    #[test]
    fn secrecy_partial_shares_leak_nothing() {
        // Empirical check of Theorem 4.1: fixing the first c−1 shares,
        // every secret remains equally likely — equivalently, the first
        // c−1 shares of a fixed secret are uniform. χ²-style sanity test.
        let q = Modulus::new(5);
        let mut rng = StdRng::seed_from_u64(4);
        let mut histogram = [[0usize; 5]; 2];
        let trials = 20_000;
        for _ in 0..trials {
            let s = split(3, 3, q, &mut rng);
            histogram[0][s.values()[0] as usize] += 1;
            histogram[1][s.values()[1] as usize] += 1;
        }
        let expected = trials as f64 / 5.0;
        for row in &histogram {
            for &count in row {
                let dev = (count as f64 - expected).abs() / expected;
                assert!(dev < 0.08, "share distribution skewed: {row:?}");
            }
        }
    }

    #[test]
    fn single_share_is_the_secret() {
        let q = Modulus::new(100);
        let mut rng = StdRng::seed_from_u64(5);
        let s = split(42, 1, q, &mut rng);
        assert_eq!(s.values(), &[42]);
    }

    #[test]
    fn recombine_raw_reduces_inputs() {
        let q = Modulus::new(5);
        assert_eq!(recombine_raw(&[7, 8], q), (7 + 8) % 5);
    }

    #[test]
    #[should_panic(expected = "at least one share")]
    fn zero_shares_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        split(1, 0, Modulus::new(5), &mut rng);
    }

    #[test]
    #[should_panic(expected = "moduli must match")]
    fn mismatched_moduli_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        let a = split(1, 2, Modulus::new(5), &mut rng);
        let b = split(1, 2, Modulus::new(7), &mut rng);
        add_shares(&a, &b);
    }
}
