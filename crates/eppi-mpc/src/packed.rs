//! Bit-packed share vectors: 64 Boolean wires per `u64` word.
//!
//! The GMW engine's working set is Boolean — one XOR share per wire per
//! party, one `d`/`e` bit per AND gate per opening. Storing those as
//! `Vec<bool>` costs one heap byte per bit and forces bit-at-a-time
//! combining; [`PackedBits`] packs 64 of them per word (bitslicing, the
//! standard trick in Boolean-MPC engines) so dealing, opening and the
//! Beaver combine all run as whole-word `XOR`/`AND` operations.
//!
//! Invariant: bits at positions `>= len` (the tail of the last word) are
//! always zero, so word-wise equality, XOR and popcount agree with the
//! logical bit vector.

use rand::Rng;

/// Number of `u64` words needed to hold `bits` bits.
pub fn words_for(bits: usize) -> usize {
    bits.div_ceil(64)
}

/// A fixed-length bit vector packed 64 bits per `u64` word.
///
/// Bit `i` lives at bit `i % 64` of word `i / 64`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PackedBits {
    words: Vec<u64>,
    len: usize,
}

impl PackedBits {
    /// An all-zero vector of `len` bits.
    pub fn zeros(len: usize) -> Self {
        PackedBits {
            words: vec![0; words_for(len)],
            len,
        }
    }

    /// Packs a bool slice.
    pub fn from_bits(bits: &[bool]) -> Self {
        let mut packed = PackedBits::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b {
                packed.words[i / 64] |= 1u64 << (i % 64);
            }
        }
        packed
    }

    /// A uniformly random vector of `len` bits, drawn word-at-a-time
    /// (64× fewer RNG calls than per-bit sampling).
    pub fn random<R: Rng + ?Sized>(len: usize, rng: &mut R) -> Self {
        let mut words: Vec<u64> = (0..words_for(len)).map(|_| rng.gen()).collect();
        mask_tail(&mut words, len);
        PackedBits { words, len }
    }

    /// Number of logical bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector has zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The backing words (tail bits beyond [`len`](Self::len) are zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Consumes the vector, returning the backing words.
    pub fn into_words(self) -> Vec<u64> {
        self.words
    }

    /// Rebuilds a vector from backing words.
    ///
    /// # Panics
    ///
    /// Panics if `words` is not exactly [`words_for`]`(len)` long or a
    /// tail bit beyond `len` is set.
    pub fn from_words(words: Vec<u64>, len: usize) -> Self {
        assert_eq!(words.len(), words_for(len), "word count for {len} bits");
        if !len.is_multiple_of(64) {
            if let Some(&last) = words.last() {
                assert_eq!(last & !((1u64 << (len % 64)) - 1), 0, "tail bits set");
            }
        }
        PackedBits { words, len }
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range ({})", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn set(&mut self, i: usize, v: bool) {
        assert!(i < self.len, "bit {i} out of range ({})", self.len);
        self.store_bit(i, v as u64);
    }

    /// Reads bit `i` as `0`/`1` without a range assert — the branchless
    /// accessor of the GMW hot loops (the word index is still
    /// bounds-checked by the slice).
    #[inline(always)]
    pub(crate) fn bit_word(&self, i: usize) -> u64 {
        (self.words[i >> 6] >> (i & 63)) & 1
    }

    /// Writes bit `i` from a `0`/`1` word, branchlessly.
    #[inline(always)]
    pub(crate) fn store_bit(&mut self, i: usize, v: u64) {
        debug_assert!(v <= 1);
        let w = &mut self.words[i >> 6];
        *w = (*w & !(1u64 << (i & 63))) | (v << (i & 63));
    }

    /// Overwrites bits `start..start + len` with the low `len` bits of
    /// `src` (packed 64 per word), word-at-a-time. Bits of `src` at
    /// positions `>= len` are ignored.
    ///
    /// # Panics
    ///
    /// Panics if the destination range exceeds the vector or `src` is
    /// shorter than [`words_for`]`(len)`.
    pub fn copy_bits_from(&mut self, start: usize, src: &[u64], len: usize) {
        assert!(
            start + len <= self.len,
            "range {start}..{} out of bounds ({})",
            start + len,
            self.len
        );
        assert!(src.len() >= words_for(len), "source too short");
        let mut j = 0usize;
        while j < len {
            let d = start + j;
            let off = d & 63;
            let take = (64 - off).min(len - j);
            let mut bits = src[j >> 6] >> (j & 63);
            if (j & 63) + take > 64 {
                bits |= src[(j >> 6) + 1] << (64 - (j & 63));
            }
            let mask = if take == 64 { !0 } else { (1u64 << take) - 1 };
            let w = &mut self.words[d >> 6];
            *w = (*w & !(mask << off)) | ((bits & mask) << off);
            j += take;
        }
    }

    /// XORs `other` into `self`, word-wise.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn xor_assign(&mut self, other: &PackedBits) {
        assert_eq!(self.len, other.len, "length mismatch");
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w ^= o;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u64 {
        self.words.iter().map(|w| w.count_ones() as u64).sum()
    }

    /// Unpacks into a bool vector.
    pub fn to_bits(&self) -> Vec<bool> {
        (0..self.len).map(|i| self.get(i)).collect()
    }
}

/// Zeroes the bits at positions `>= len` in the last word.
pub(crate) fn mask_tail(words: &mut [u64], len: usize) {
    if !len.is_multiple_of(64) {
        if let Some(last) = words.last_mut() {
            *last &= (1u64 << (len % 64)) - 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pack_roundtrip() {
        let bits: Vec<bool> = (0..130).map(|i| i % 3 == 0).collect();
        let packed = PackedBits::from_bits(&bits);
        assert_eq!(packed.len(), 130);
        assert_eq!(packed.words().len(), 3);
        assert_eq!(packed.to_bits(), bits);
        for (i, &b) in bits.iter().enumerate() {
            assert_eq!(packed.get(i), b, "bit {i}");
        }
    }

    #[test]
    fn set_and_count() {
        let mut p = PackedBits::zeros(70);
        p.set(0, true);
        p.set(69, true);
        p.set(69, false);
        p.set(64, true);
        assert_eq!(p.count_ones(), 2);
        assert!(p.get(0) && p.get(64) && !p.get(69));
    }

    #[test]
    fn xor_matches_per_bit() {
        let a: Vec<bool> = (0..100).map(|i| i % 2 == 0).collect();
        let b: Vec<bool> = (0..100).map(|i| i % 3 == 0).collect();
        let mut pa = PackedBits::from_bits(&a);
        let pb = PackedBits::from_bits(&b);
        pa.xor_assign(&pb);
        let expect: Vec<bool> = a.iter().zip(&b).map(|(&x, &y)| x ^ y).collect();
        assert_eq!(pa.to_bits(), expect);
    }

    #[test]
    fn random_tail_is_masked() {
        let mut rng = StdRng::seed_from_u64(1);
        for len in [1usize, 63, 64, 65, 127, 200] {
            let p = PackedBits::random(len, &mut rng);
            assert_eq!(p.len(), len);
            let w = p.words().to_vec();
            // Round-tripping through from_words checks the tail invariant.
            let q = PackedBits::from_words(w, len);
            assert_eq!(p, q);
        }
    }

    #[test]
    fn copy_bits_matches_per_bit_install() {
        let mut rng = StdRng::seed_from_u64(9);
        for (start, len, total) in [
            (0usize, 64usize, 64usize),
            (0, 130, 200),
            (5, 63, 100),
            (64, 64, 200),
            (61, 70, 200),
            (3, 1, 10),
            (7, 0, 10),
        ] {
            let src = PackedBits::random(len, &mut rng);
            let mut blit = PackedBits::random(total, &mut rng);
            let mut naive = blit.clone();
            blit.copy_bits_from(start, src.words(), len);
            for i in 0..len {
                naive.set(start + i, src.get(i));
            }
            assert_eq!(blit, naive, "start={start} len={len} total={total}");
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn copy_bits_bounds_checked() {
        PackedBits::zeros(10).copy_bits_from(5, &[0], 6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_bounds_checked() {
        PackedBits::zeros(8).get(8);
    }

    #[test]
    #[should_panic(expected = "tail bits set")]
    fn from_words_rejects_dirty_tail() {
        PackedBits::from_words(vec![u64::MAX], 60);
    }
}
