//! Yao-style garbled circuits (two-party, semi-honest).
//!
//! FairplayMP — the paper's MPC platform — descends from Fairplay \[15\],
//! which evaluates Boolean circuits by *garbling*: the garbler assigns
//! two random labels per wire (one meaning 0, one meaning 1), encrypts
//! each gate's truth table under its input labels, and the evaluator —
//! holding exactly one label per wire — decrypts exactly one row per
//! gate. With the point-and-permute optimization, each garbled gate is a
//! 4-row table indexed by the labels' select bits, so evaluation is
//! constant-time per gate and needs no trial decryption.
//!
//! This gives the workspace the *garbled* flavour of generic MPC next to
//! the GMW flavour ([`crate::gmw`]): the two cover both classic
//! approaches the related-work section contrasts ("the garbled functions
//! used for Boolean circuits and the homomorphic encryption used for
//! arithmetic"). The evaluator's input labels would be fetched via
//! oblivious transfer ([`crate::ot`]) in a deployment; the in-process
//! runner wires them directly, which preserves the cost structure
//! (table bytes, per-gate work) that matters for comparisons.
//!
//! **Security caveat:** labels are 64-bit and the "encryption" is the
//! same SplitMix64 toy PRF as [`crate::ot`] — structural reproduction,
//! not production crypto (see DESIGN.md).

use crate::circuit::{Circuit, Gate};
use rand::Rng;

/// A wire label (the toy scheme uses 64-bit labels; the low bit is the
/// point-and-permute select bit).
pub type Label = u64;

fn prf(a: Label, b: Label, gate: u64, row: u64) -> u64 {
    let mut z = a ^ b.rotate_left(32) ^ gate.wrapping_mul(0x9e3779b97f4a7c15) ^ (row << 60);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// One garbled binary gate: four ciphertext rows indexed by the input
/// labels' select bits.
#[derive(Debug, Clone, Copy)]
struct GarbledGate {
    rows: [u64; 4],
}

/// The garbler's full output: the tables plus the output-wire decoding
/// bits.
#[derive(Debug, Clone)]
pub struct GarbledCircuit {
    /// Binary-gate tables in gate order (`None` for free gates).
    tables: Vec<Option<GarbledGate>>,
    /// Select bit of each output wire's 0-label (for decoding).
    output_decode: Vec<bool>,
    /// Constant-gate and NOT handling needs the evaluator to receive
    /// labels for constants.
    const_labels: Vec<Option<Label>>,
}

impl GarbledCircuit {
    /// Size of the garbled tables in bytes — the garbled-world analogue
    /// of the circuit-size metric.
    pub fn table_bytes(&self) -> usize {
        self.tables.iter().flatten().count() * 32
    }
}

/// Labels the garbler keeps: both labels of every input wire, for
/// encoding the two parties' inputs.
#[derive(Debug, Clone)]
pub struct InputLabels {
    pairs: Vec<(Label, Label)>,
}

impl InputLabels {
    /// Encodes an input bit of wire `w` into the label the evaluator
    /// receives (via OT for the evaluator's own inputs).
    ///
    /// # Panics
    ///
    /// Panics if `w` is out of range.
    pub fn encode(&self, w: usize, bit: bool) -> Label {
        let (l0, l1) = self.pairs[w];
        if bit {
            l1
        } else {
            l0
        }
    }

    /// Number of input wires.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether there are no input wires.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

/// Garbles `circuit`: produces the tables and the input-label encoder.
///
/// XOR gates are garbled with the free-XOR technique (labels of an XOR
/// output are the XOR of input labels under a global offset Δ), NOT
/// gates swap label meaning for free, constants are direct labels.
pub fn garble<R: Rng + ?Sized>(circuit: &Circuit, rng: &mut R) -> (GarbledCircuit, InputLabels) {
    // Global free-XOR offset with select bit forced to 1 so the select
    // bits of a pair always differ.
    let delta: u64 = rng.gen::<u64>() | 1;
    let fresh = |rng: &mut R| -> (Label, Label) {
        let l0: u64 = rng.gen();
        (l0, l0 ^ delta)
    };

    let mut wire_labels: Vec<(Label, Label)> = Vec::with_capacity(circuit.wires());
    let mut input_pairs = Vec::with_capacity(circuit.inputs());
    for _ in 0..circuit.inputs() {
        let pair = fresh(rng);
        wire_labels.push(pair);
        input_pairs.push(pair);
    }

    let mut tables = Vec::with_capacity(circuit.gates().len());
    let mut const_labels = Vec::with_capacity(circuit.gates().len());
    for (k, gate) in circuit.gates().iter().enumerate() {
        match *gate {
            Gate::Xor(a, b) => {
                let (a0, _) = wire_labels[a.index()];
                let (b0, _) = wire_labels[b.index()];
                // Free XOR: out0 = a0 ⊕ b0, out1 = out0 ⊕ Δ.
                let o0 = a0 ^ b0;
                wire_labels.push((o0, o0 ^ delta));
                tables.push(None);
                const_labels.push(None);
            }
            Gate::Not(a) => {
                // Free NOT: swap meanings.
                let (a0, a1) = wire_labels[a.index()];
                wire_labels.push((a1, a0));
                tables.push(None);
                const_labels.push(None);
            }
            Gate::Const(v) => {
                let pair = fresh(rng);
                wire_labels.push(pair);
                tables.push(None);
                // Hand the evaluator the label of the constant's value.
                const_labels.push(Some(if v { pair.1 } else { pair.0 }));
            }
            Gate::And(a, b) => {
                let (a0, a1) = wire_labels[a.index()];
                let (b0, b1) = wire_labels[b.index()];
                let out = fresh(rng);
                wire_labels.push(out);
                let mut rows = [0u64; 4];
                for (va, la) in [(false, a0), (true, a1)] {
                    for (vb, lb) in [(false, b0), (true, b1)] {
                        let out_label = if va && vb { out.1 } else { out.0 };
                        let idx = ((la & 1) << 1 | (lb & 1)) as usize;
                        rows[idx] = out_label ^ prf(la, lb, k as u64, idx as u64);
                    }
                }
                tables.push(Some(GarbledGate { rows }));
                const_labels.push(None);
            }
        }
    }

    let output_decode = circuit
        .outputs()
        .iter()
        .map(|o| wire_labels[o.index()].0 & 1 == 1)
        .collect();

    (
        GarbledCircuit {
            tables,
            output_decode,
            const_labels,
        },
        InputLabels { pairs: input_pairs },
    )
}

/// Evaluates a garbled circuit given one label per input wire. Returns
/// the decoded output bits.
///
/// # Panics
///
/// Panics if `input_labels.len()` differs from the circuit's input
/// count.
pub fn evaluate(circuit: &Circuit, garbled: &GarbledCircuit, input_labels: &[Label]) -> Vec<bool> {
    assert_eq!(
        input_labels.len(),
        circuit.inputs(),
        "one label per input wire required"
    );
    let mut labels: Vec<Label> = Vec::with_capacity(circuit.wires());
    labels.extend_from_slice(input_labels);
    for (k, gate) in circuit.gates().iter().enumerate() {
        let label = match *gate {
            Gate::Xor(a, b) => labels[a.index()] ^ labels[b.index()],
            Gate::Not(a) => labels[a.index()],
            Gate::Const(_) => garbled.const_labels[k].expect("const label present"),
            Gate::And(a, b) => {
                let la = labels[a.index()];
                let lb = labels[b.index()];
                let idx = ((la & 1) << 1 | (lb & 1)) as usize;
                let table = garbled.tables[k].expect("AND gate has a table");
                table.rows[idx] ^ prf(la, lb, k as u64, idx as u64)
            }
        };
        labels.push(label);
    }
    circuit
        .outputs()
        .iter()
        .zip(&garbled.output_decode)
        .map(|(o, &zero_select)| (labels[o.index()] & 1 == 1) != zero_select)
        .collect()
}

/// Runs the full two-party protocol in-process: the garbler holds
/// `garbler_bits` (the first input wires), the evaluator holds
/// `evaluator_bits` (the rest, whose labels a deployment would fetch via
/// OT). Returns the output bits both parties learn.
///
/// # Panics
///
/// Panics if the bit counts don't sum to the circuit's input count.
pub fn two_party_run<R: Rng + ?Sized>(
    circuit: &Circuit,
    garbler_bits: &[bool],
    evaluator_bits: &[bool],
    rng: &mut R,
) -> Vec<bool> {
    assert_eq!(
        garbler_bits.len() + evaluator_bits.len(),
        circuit.inputs(),
        "inputs must cover the circuit"
    );
    let (garbled, labels) = garble(circuit, rng);
    let encoded: Vec<Label> = garbler_bits
        .iter()
        .chain(evaluator_bits)
        .enumerate()
        .map(|(w, &bit)| labels.encode(w, bit))
        .collect();
    evaluate(circuit, &garbled, &encoded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{to_bits, word_value, CircuitBuilder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn free_not_on_free_xor_wire_is_consistent() {
        // not(xor(a, b)) through the free-gate paths.
        let mut cb = CircuitBuilder::new();
        let a = cb.input();
        let b = cb.input();
        let x = cb.xor(a, b);
        let nx = cb.not(x);
        let circuit = cb.finish(vec![x, nx]);
        let mut rng = StdRng::seed_from_u64(1);
        for (va, vb) in [(false, false), (false, true), (true, false), (true, true)] {
            let out = two_party_run(&circuit, &[va], &[vb], &mut rng);
            assert_eq!(out, vec![va ^ vb, !(va ^ vb)], "a={va} b={vb}");
        }
    }

    #[test]
    fn matches_cleartext_on_arithmetic() {
        let mut cb = CircuitBuilder::new();
        let a = cb.input_word(6);
        let b = cb.input_word(6);
        let sum = cb.add_words_expand(&a, &b);
        let lt = cb.lt_words(&a, &b);
        let mut outs = sum.bits().to_vec();
        outs.push(lt);
        let circuit = cb.finish(outs);
        let mut rng = StdRng::seed_from_u64(2);
        for (x, y) in [(0u64, 0u64), (5, 58), (63, 63), (17, 4)] {
            let out = two_party_run(&circuit, &to_bits(x, 6), &to_bits(y, 6), &mut rng);
            assert_eq!(word_value(&out[..7]), x + y, "{x}+{y}");
            assert_eq!(out[7], x < y, "{x}<{y}");
        }
    }

    #[test]
    fn constants_evaluate_correctly() {
        let mut cb = CircuitBuilder::new();
        let a = cb.input();
        let t = cb.constant(true);
        let f = cb.constant(false);
        let at = cb.and(a, t);
        let af = cb.and(a, f);
        let circuit = cb.finish(vec![at, af]);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(
            two_party_run(&circuit, &[true], &[], &mut rng),
            vec![true, false]
        );
        assert_eq!(
            two_party_run(&circuit, &[false], &[], &mut rng),
            vec![false, false]
        );
    }

    #[test]
    fn wrong_labels_decode_to_garbage() {
        // An evaluator without the right label cannot learn the output:
        // evaluating with a random label yields an unrelated result with
        // overwhelming probability (here: just check it doesn't silently
        // equal the honest run for all inputs).
        let mut cb = CircuitBuilder::new();
        let a = cb.input();
        let b = cb.input();
        let ab = cb.and(a, b);
        let circuit = cb.finish(vec![ab]);
        let mut rng = StdRng::seed_from_u64(4);
        let (garbled, labels) = garble(&circuit, &mut rng);
        let honest = evaluate(
            &circuit,
            &garbled,
            &[labels.encode(0, true), labels.encode(1, true)],
        );
        assert_eq!(honest, vec![true]);
        // Forged label: result is decoded from a junk label (any value
        // possible, but the junk label itself differs from both valid
        // output labels — checked indirectly via repeated forgeries).
        let mut differs = false;
        for forgery in 0..8u64 {
            let forged = evaluate(
                &circuit,
                &garbled,
                &[0xdead_beef ^ forgery, labels.encode(1, true)],
            );
            if forged != honest {
                differs = true;
            }
        }
        assert!(
            differs,
            "forged labels must not consistently evaluate correctly"
        );
    }

    #[test]
    fn table_size_counts_only_and_gates() {
        let mut cb = CircuitBuilder::new();
        let a = cb.input_word(8);
        let b = cb.input_word(8);
        let x = cb.xor_words(&a, &b); // free
        let bits = x.bits().to_vec();
        let any = cb.or_many(&bits); // ORs cost ANDs
        let circuit = cb.finish(vec![any]);
        let mut rng = StdRng::seed_from_u64(5);
        let (garbled, _) = garble(&circuit, &mut rng);
        let ands = circuit.stats().and_gates;
        assert_eq!(garbled.table_bytes(), ands * 32);
        assert!(ands > 0);
    }

    #[test]
    fn garbled_count_below_matches_gmw() {
        // The ε-PPI CountBelow circuit runs identically under both MPC
        // flavours.
        use crate::circuits::CountBelowCircuit;
        use crate::field::Modulus;
        use crate::share::split;
        let thresholds = [30u64, 5];
        let cc = CountBelowCircuit::build(2, &thresholds, 8);
        let q = Modulus::pow2(8);
        let mut rng = StdRng::seed_from_u64(6);
        let freqs = [40u64, 3];
        let mut per = vec![vec![0u64; 2]; 2];
        for (j, &f) in freqs.iter().enumerate() {
            let s = split(f, 2, q, &mut rng);
            for (k, &v) in s.values().iter().enumerate() {
                per[k][j] = v;
            }
        }
        let inputs: Vec<Vec<bool>> = per.iter().map(|s| cc.encode_party_input(s)).collect();
        let (gmw_out, _) = crate::gmw::execute(cc.circuit(), cc.layout(), &inputs, &mut rng);
        let garbled_out = two_party_run(cc.circuit(), &inputs[0], &inputs[1], &mut rng);
        assert_eq!(gmw_out, garbled_out);
        assert_eq!(cc.decode_count(&garbled_out), 1); // only 40 ≥ 30.
    }
}
