//! # eppi-mpc — the secure-computation substrate of the ε-PPI reproduction
//!
//! The ε-PPI construction protocol (ICDCS 2014) relies on two secure
//! building blocks, both implemented here from scratch:
//!
//! * **(c, c) additive secret sharing** over `Z_q` with additive
//!   homomorphism ([`share`], [`field`]) — the cheap primitive that lets
//!   the SecSumShare protocol reduce an `m`-party secure sum to `c`
//!   coordinator shares (Theorem 4.1).
//! * **A generic Boolean-circuit MPC engine** ([`circuit`], [`builder`],
//!   [`gmw`]) — the stand-in for FairplayMP: circuits are built with
//!   word-level combinators and evaluated under a GMW-style
//!   XOR-secret-shared protocol with Beaver AND-triples, with full
//!   communication accounting (rounds, bits, messages). The protocol
//!   itself lives in one place, [`gmw_core`]: a bit-packed ([`packed`],
//!   64 wires per `u64` word) sans-io party state machine that every
//!   execution backend — in-process ([`gmw`]), round-simulated and
//!   threaded (`eppi-protocol`) — drives through a transport
//!   (`eppi_net::transport::Transport`).
//!
//! The ε-PPI domain circuits (CountBelow of Algorithm 2, the
//! mix-decision pass, and the whole-construction *pure MPC* baseline)
//! are compiled in [`circuits`].
//!
//! ## Example: a secure two-party comparison
//!
//! ```
//! use eppi_mpc::builder::{to_bits, CircuitBuilder};
//! use eppi_mpc::circuit::InputLayout;
//! use eppi_mpc::gmw::execute;
//! use rand::SeedableRng;
//!
//! let mut cb = CircuitBuilder::new();
//! let a = cb.input_word(8);
//! let b = cb.input_word(8);
//! let lt = cb.lt_words(&a, &b);
//! let circuit = cb.finish(vec![lt]);
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let layout = InputLayout::new(vec![8, 8]);
//! let (out, stats) = execute(&circuit, &layout, &[to_bits(3, 8), to_bits(9, 8)], &mut rng);
//! assert!(out[0]); // 3 < 9, revealed; the operands were never exchanged.
//! assert!(stats.bits_sent > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arith;
pub mod builder;
pub mod circuit;
pub mod circuits;
pub mod field;
pub mod garble;
pub mod gmw;
pub mod gmw_core;
pub mod ot;
pub mod packed;
pub mod share;
pub mod stage;
pub mod triples;

pub use circuit::{Circuit, CircuitStats, Gate, InputLayout, WireId};
pub use circuits::{
    CountBelowCircuit, FixedPoint, MixDecisionCircuit, NaiveConstructionCircuit,
    PureConstructionCircuit,
};
pub use field::Modulus;
pub use gmw::{execute, GmwStats};
pub use gmw_core::{PartyCore, Schedule};
pub use packed::PackedBits;
pub use share::{add_shares, recombine, split, Shares};
pub use stage::{GmwStages, PartyStages, StageOutput, TripleFeed};
pub use triples::{generate_triples, TripleBatch, TripleShare};
