//! The ε-PPI domain circuits compiled for the generic-MPC stage.
//!
//! Three programs are compiled (the SFDL programs of the paper's
//! prototype, §IV-B.2):
//!
//! * [`CountBelowCircuit`] — Algorithm 2: reconstruct each identity's
//!   hidden frequency from the coordinators' additive shares and output
//!   **only** the number of common identities (`Σ_{σ ≥ σ'} 1`), never the
//!   per-identity frequencies. (The paper names the algorithm
//!   *CountBelow* although Alg. 1 line 3 consumes the count of identities
//!   at-or-above the threshold; we follow the usage, not the name.)
//! * [`MixDecisionCircuit`] — the second secure pass: per identity,
//!   output the single bit `common_j ∨ coin_j(λ)` (Eq. 6). Identities
//!   with an output of `1` publish with `β = 1`; only for the rest is the
//!   frequency later reconstructed in cleartext to evaluate β* — the
//!   computation-reordering optimization of Formula 9.
//! * [`PureConstructionCircuit`] — the paper's *pure MPC* baseline: the
//!   same computation but with all `m` providers feeding their private
//!   membership bits straight into one big circuit (no SecSumShare
//!   reduction to `c` coordinators).
//!
//! All circuits work over the power-of-two share group `Z_{2^w}`: the
//! ripple-carry adders drop the carry, which *is* the mod-`2^w`
//! reduction.

use crate::builder::{to_bits, word_value, CircuitBuilder, Word};
use crate::circuit::{Circuit, InputLayout};

/// Number of random bits per identity used to realize the Bernoulli(λ)
/// mixing coin inside the circuit.
pub const DEFAULT_COIN_BITS: usize = 16;

/// Converts a probability into the integer threshold `⌊λ·2^k⌋` compared
/// against a uniform `k`-bit value inside the circuit.
pub fn lambda_threshold(lambda: f64, coin_bits: usize) -> u64 {
    let max = 1u64 << coin_bits;
    ((lambda.clamp(0.0, 1.0) * max as f64).floor() as u64).min(max)
}

fn encode_share_words(values: &[u64], width: usize) -> Vec<bool> {
    let mut bits = Vec::with_capacity(values.len() * width);
    for &v in values {
        bits.extend(to_bits(v, width));
    }
    bits
}

/// The CountBelow circuit (Algorithm 2) among the `c` coordinators.
#[derive(Debug, Clone)]
pub struct CountBelowCircuit {
    circuit: Circuit,
    layout: InputLayout,
    identities: usize,
    width: usize,
}

impl CountBelowCircuit {
    /// Compiles the circuit for `parties` coordinators, per-identity
    /// public thresholds `t_j = σ'_j · m` and a `width`-bit share group
    /// `Z_{2^width}`.
    ///
    /// # Panics
    ///
    /// Panics if `parties == 0`, `thresholds` is empty, or `width` is 0
    /// or exceeds 63.
    pub fn build(parties: usize, thresholds: &[u64], width: usize) -> Self {
        assert!(parties >= 1, "at least one coordinator required");
        assert!(!thresholds.is_empty(), "at least one identity required");
        assert!((1..=63).contains(&width), "share width must be in 1..=63");
        let n = thresholds.len();

        let mut cb = CircuitBuilder::new();
        // Input order: party-major — party i supplies its share vector
        // s(i, ·) as n words of `width` bits.
        let mut party_words: Vec<Vec<Word>> = Vec::with_capacity(parties);
        for _ in 0..parties {
            party_words.push((0..n).map(|_| cb.input_word(width)).collect());
        }

        let common_bits: Vec<_> = (0..n)
            .map(|j| {
                // S[j] = Σ_i s(i, j) mod 2^width.
                let mut sum = party_words[0][j].clone();
                for words in party_words.iter().skip(1) {
                    sum = cb.add_words(&sum, &words[j]);
                }
                let t = cb.const_word(thresholds[j].min((1 << width) - 1), width);
                cb.ge_words(&sum, &t)
            })
            .collect();
        let count = cb.popcount(&common_bits);
        let circuit = cb.finish_word(count);

        CountBelowCircuit {
            circuit,
            layout: InputLayout::new(vec![n * width; parties]),
            identities: n,
            width,
        }
    }

    /// The compiled circuit.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The per-party input layout.
    pub fn layout(&self) -> &InputLayout {
        &self.layout
    }

    /// Number of identities the circuit processes.
    pub fn identities(&self) -> usize {
        self.identities
    }

    /// Encodes a coordinator's share vector `s(i, ·)` into its input
    /// bits.
    ///
    /// # Panics
    ///
    /// Panics if `shares.len()` differs from the identity count.
    pub fn encode_party_input(&self, shares: &[u64]) -> Vec<bool> {
        assert_eq!(shares.len(), self.identities, "one share per identity");
        encode_share_words(shares, self.width)
    }

    /// Decodes the opened output into the common-identity count.
    pub fn decode_count(&self, outputs: &[bool]) -> u64 {
        word_value(outputs)
    }
}

/// The mix-decision circuit: per identity, `common_j ∨ coin_j(λ)`.
#[derive(Debug, Clone)]
pub struct MixDecisionCircuit {
    circuit: Circuit,
    layout: InputLayout,
    identities: usize,
    width: usize,
    coin_bits: usize,
}

impl MixDecisionCircuit {
    /// Compiles the circuit for `parties` coordinators.
    ///
    /// `lambda_threshold` is `⌊λ·2^coin_bits⌋` (see
    /// [`lambda_threshold`]); each party additionally contributes
    /// `coin_bits` uniform bits per identity, whose XOR forms the shared
    /// coin — uniform as long as at least one party is honest.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`CountBelowCircuit::build`],
    /// or if `coin_bits` is 0 or exceeds 32.
    pub fn build(
        parties: usize,
        thresholds: &[u64],
        width: usize,
        coin_bits: usize,
        lambda_threshold: u64,
    ) -> Self {
        assert!(parties >= 1, "at least one coordinator required");
        assert!(!thresholds.is_empty(), "at least one identity required");
        assert!((1..=63).contains(&width), "share width must be in 1..=63");
        assert!((1..=32).contains(&coin_bits), "coin bits must be in 1..=32");
        let n = thresholds.len();

        let mut cb = CircuitBuilder::new();
        // Party i supplies: n share words, then n coin words.
        let mut share_words: Vec<Vec<Word>> = Vec::with_capacity(parties);
        let mut coin_words: Vec<Vec<Word>> = Vec::with_capacity(parties);
        for _ in 0..parties {
            share_words.push((0..n).map(|_| cb.input_word(width)).collect());
            coin_words.push((0..n).map(|_| cb.input_word(coin_bits)).collect());
        }

        let lambda_word_value = lambda_threshold.min(1 << coin_bits);
        let outputs: Vec<_> = (0..n)
            .map(|j| {
                let mut sum = share_words[0][j].clone();
                for words in share_words.iter().skip(1) {
                    sum = cb.add_words(&sum, &words[j]);
                }
                let t = cb.const_word(thresholds[j].min((1 << width) - 1), width);
                let common = cb.ge_words(&sum, &t);

                let mut coin_u = coin_words[0][j].clone();
                for words in coin_words.iter().skip(1) {
                    coin_u = cb.xor_words(&coin_u, &words[j]);
                }
                // coin = (u < ⌊λ·2^k⌋), i.e. Bernoulli(λ). Widen by one
                // bit so a threshold of 2^k (λ = 1) is representable.
                let coin_u = cb.resize_word(&coin_u, coin_bits + 1);
                let l = cb.const_word(lambda_word_value, coin_bits + 1);
                let coin = cb.lt_words(&coin_u, &l);
                cb.or(common, coin)
            })
            .collect();
        let circuit = cb.finish(outputs);

        MixDecisionCircuit {
            circuit,
            layout: InputLayout::new(vec![n * (width + coin_bits); parties]),
            identities: n,
            width,
            coin_bits,
        }
    }

    /// The compiled circuit.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The per-party input layout.
    pub fn layout(&self) -> &InputLayout {
        &self.layout
    }

    /// Number of identities the circuit processes.
    pub fn identities(&self) -> usize {
        self.identities
    }

    /// Encodes a coordinator's share vector and its per-identity coin
    /// randomness into input bits.
    ///
    /// # Panics
    ///
    /// Panics if either slice length differs from the identity count.
    pub fn encode_party_input(&self, shares: &[u64], coins: &[u64]) -> Vec<bool> {
        assert_eq!(shares.len(), self.identities, "one share per identity");
        assert_eq!(coins.len(), self.identities, "one coin word per identity");
        let mut bits = encode_share_words(shares, self.width);
        bits.extend(encode_share_words(coins, self.coin_bits));
        bits
    }

    /// Decodes the opened output into per-identity publish-as-common
    /// bits.
    pub fn decode_decisions(&self, outputs: &[bool]) -> Vec<bool> {
        outputs.to_vec()
    }
}

/// The *pure MPC* baseline circuit: the whole β computation with all `m`
/// providers as circuit parties (no SecSumShare reduction).
///
/// Outputs, in order: the common count, the per-identity mix decisions,
/// and per-identity *masked frequencies* — the frequency when the mix
/// decision is `0` (the identity will publish with `β = β*(σ)`, so its
/// frequency must be revealed to evaluate the policy in cleartext), or
/// `0` when the decision is `1` (common or mixed identities keep their
/// frequency hidden; they publish with `β = 1` regardless).
#[derive(Debug, Clone)]
pub struct PureConstructionCircuit {
    circuit: Circuit,
    layout: InputLayout,
    identities: usize,
    providers: usize,
    coin_bits: usize,
    count_width: usize,
    freq_width: usize,
}

impl PureConstructionCircuit {
    /// Compiles the circuit for `providers` parties, each contributing
    /// one private membership bit per identity (plus coin randomness).
    /// Outputs the common count followed by the per-identity mix
    /// decisions.
    ///
    /// # Panics
    ///
    /// Panics if `providers == 0`, `thresholds` is empty, or `coin_bits`
    /// is 0 or exceeds 32.
    pub fn build(
        providers: usize,
        thresholds: &[u64],
        coin_bits: usize,
        lambda_threshold: u64,
    ) -> Self {
        assert!(providers >= 1, "at least one provider required");
        assert!(!thresholds.is_empty(), "at least one identity required");
        assert!((1..=32).contains(&coin_bits), "coin bits must be in 1..=32");
        let n = thresholds.len();
        let freq_width = usize::BITS as usize - providers.leading_zeros() as usize + 1;

        let mut cb = CircuitBuilder::new();
        let mut member_bits: Vec<Vec<crate::circuit::WireId>> = Vec::with_capacity(providers);
        let mut coin_words: Vec<Vec<Word>> = Vec::with_capacity(providers);
        for _ in 0..providers {
            member_bits.push((0..n).map(|_| cb.input()).collect());
            coin_words.push((0..n).map(|_| cb.input_word(coin_bits)).collect());
        }

        let mut decision_bits = Vec::with_capacity(n);
        let mut common_bits = Vec::with_capacity(n);
        let mut masked_freq_bits = Vec::with_capacity(n * freq_width);
        for j in 0..n {
            let column: Vec<_> = member_bits.iter().map(|row| row[j]).collect();
            let freq = cb.popcount(&column);
            let freq = cb.resize_word(&freq, freq_width);
            let t = cb.const_word(thresholds[j].min((1u64 << freq_width) - 1), freq_width);
            let common = cb.ge_words(&freq, &t);
            common_bits.push(common);

            let mut coin_u = coin_words[0][j].clone();
            for words in coin_words.iter().skip(1) {
                coin_u = cb.xor_words(&coin_u, &words[j]);
            }
            let coin_u = cb.resize_word(&coin_u, coin_bits + 1);
            let l = cb.const_word(lambda_threshold.min(1 << coin_bits), coin_bits + 1);
            let coin = cb.lt_words(&coin_u, &l);
            let decision = cb.or(common, coin);
            decision_bits.push(decision);

            // Reveal the frequency only when the identity publishes with
            // β = β*(σ) (decision = 0).
            let zero = cb.const_word(0, freq_width);
            let masked = cb.mux_word(decision, &zero, &freq);
            masked_freq_bits.extend_from_slice(masked.bits());
        }
        let count = cb.popcount(&common_bits);
        let mut outputs: Vec<_> = count.bits().to_vec();
        let count_width = outputs.len();
        outputs.extend(decision_bits);
        outputs.extend(masked_freq_bits);
        let circuit = cb.finish(outputs);

        PureConstructionCircuit {
            circuit,
            layout: InputLayout::new(vec![n * (1 + coin_bits); providers]),
            identities: n,
            providers,
            coin_bits,
            count_width,
            freq_width,
        }
    }

    /// The compiled circuit.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The per-party input layout.
    pub fn layout(&self) -> &InputLayout {
        &self.layout
    }

    /// Number of identities the circuit processes.
    pub fn identities(&self) -> usize {
        self.identities
    }

    /// Number of provider parties.
    pub fn providers(&self) -> usize {
        self.providers
    }

    /// Encodes one provider's membership bits and coin randomness.
    ///
    /// # Panics
    ///
    /// Panics if either slice length differs from the identity count.
    pub fn encode_party_input(&self, membership: &[bool], coins: &[u64]) -> Vec<bool> {
        assert_eq!(membership.len(), self.identities, "one bit per identity");
        assert_eq!(coins.len(), self.identities, "one coin word per identity");
        let mut bits = membership.to_vec();
        bits.extend(encode_share_words(coins, self.coin_bits));
        bits
    }

    /// Decodes the opened output into `(common count, per-identity mix
    /// decisions, per-identity masked frequencies)`.
    ///
    /// A masked frequency is the true frequency for identities with a
    /// `false` decision and `0` otherwise.
    pub fn decode(&self, outputs: &[bool]) -> (u64, Vec<bool>, Vec<u64>) {
        let count = word_value(&outputs[..self.count_width]);
        let decisions = outputs[self.count_width..self.count_width + self.identities].to_vec();
        let freq_bits = &outputs[self.count_width + self.identities..];
        let freqs = freq_bits.chunks(self.freq_width).map(word_value).collect();
        (count, decisions, freqs)
    }
}

/// Fixed-point parameters of the naive in-circuit β computation.
///
/// The β formulas operate on real numbers; inside a Boolean circuit they
/// run in unsigned fixed point with `frac_bits` fractional bits:
/// `FP(x) = ⌊x · 2^frac_bits⌋`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedPoint {
    /// Fractional bits `k`.
    pub frac_bits: usize,
}

impl FixedPoint {
    /// Encodes a non-negative real into fixed point.
    pub fn encode(self, x: f64) -> u64 {
        (x.max(0.0) * (1u64 << self.frac_bits) as f64).floor() as u64
    }

    /// Decodes a fixed-point value back to a real.
    pub fn decode(self, v: u64) -> f64 {
        v as f64 / (1u64 << self.frac_bits) as f64
    }
}

/// The **naive** pure-MPC construction circuit: the entire β computation
/// of Eq. 3/5 — division, multiplication, *square root* — evaluated
/// inside the secure circuit, identity by identity.
///
/// This is the comparator the paper argues against (§IV-A: "even for a
/// single identity it involves fairly complex computation (e.g., square
/// root and logarithm as in Equation 5)"): ε-PPI's Formula-9 reordering
/// pushes all of this float math outside the MPC, keeping only a
/// threshold comparison inside. The cost difference between this circuit
/// and [`CountBelowCircuit`]/[`MixDecisionCircuit`] *is* the paper's
/// Fig. 6 performance story.
///
/// Per identity `j`, with `f` = private frequency (popcount of the
/// providers' input bits), all in fixed point (`k = frac_bits`):
///
/// ```text
/// β_b = f / ((m − f) · A_j)          A_j = FP(ε_j⁻¹ − 1)  (public)
/// G   = L / (m − f)                  L   = FP(ln 1/(1−γ)) (public)
/// β_c = β_b + G + sqrt(G² + 2·β_b·G)                      (Eq. 5)
/// common_j = β_c ≥ FP(1)
/// ```
///
/// Outputs match [`PureConstructionCircuit::decode`]: common count, mix
/// decisions (`common ∨ coin(λ)`), masked frequencies.
#[derive(Debug, Clone)]
pub struct NaiveConstructionCircuit {
    circuit: Circuit,
    layout: InputLayout,
    identities: usize,
    providers: usize,
    coin_bits: usize,
    count_width: usize,
    freq_width: usize,
}

impl NaiveConstructionCircuit {
    /// Compiles the naive circuit for `providers` parties.
    ///
    /// `a_fps[j] = FP(ε_j⁻¹ − 1)` per identity and `l_fp = FP(ln 1/(1−γ))`
    /// (pass `0` for the expectation-based policy, which drops the
    /// Chernoff terms).
    ///
    /// A zero `a_fps[j]` (ε = 1) makes the in-circuit division divide by
    /// zero, which by the divider's convention yields an all-ones β —
    /// i.e. the identity is always common, exactly the ε = 1 semantics.
    ///
    /// # Panics
    ///
    /// Panics if `providers == 0`, `a_fps` is empty, or
    /// `coin_bits`/`frac_bits` are out of `1..=32` / `1..=16`.
    #[allow(clippy::too_many_arguments)]
    pub fn build(
        providers: usize,
        a_fps: &[u64],
        l_fp: u64,
        fp: FixedPoint,
        coin_bits: usize,
        lambda_threshold: u64,
    ) -> Self {
        assert!(providers >= 1, "at least one provider required");
        assert!(!a_fps.is_empty(), "at least one identity required");
        assert!((1..=32).contains(&coin_bits), "coin bits must be in 1..=32");
        assert!(
            (1..=16).contains(&fp.frac_bits),
            "frac bits must be in 1..=16"
        );
        let n = a_fps.len();
        let k = fp.frac_bits;
        let freq_width = usize::BITS as usize - providers.leading_zeros() as usize + 1;
        // Working width: β_b ≤ f·2^2k when the denominator bottoms out.
        let ww = freq_width + 2 * k + 2;

        let mut cb = CircuitBuilder::new();
        let mut member_bits: Vec<Vec<crate::circuit::WireId>> = Vec::with_capacity(providers);
        let mut coin_words: Vec<Vec<Word>> = Vec::with_capacity(providers);
        for _ in 0..providers {
            member_bits.push((0..n).map(|_| cb.input()).collect());
            coin_words.push((0..n).map(|_| cb.input_word(coin_bits)).collect());
        }

        let mut decision_bits = Vec::with_capacity(n);
        let mut common_bits = Vec::with_capacity(n);
        let mut masked_freq_bits = Vec::with_capacity(n * freq_width);
        for j in 0..n {
            let column: Vec<_> = member_bits.iter().map(|row| row[j]).collect();
            let freq = cb.popcount(&column);
            let freq = cb.resize_word(&freq, freq_width);

            // --- the expensive in-circuit β computation -----------------
            let f_w = cb.resize_word(&freq, ww);
            let m_w = cb.const_word(providers as u64, ww);
            let mf = cb.sub_words(&m_w, &f_w); // m − f ≥ 0

            // β_b = (f << 2k) / (mf · A)
            let a_word = cb.const_word(a_fps[j], ww);
            let denom_full = cb.mul_words(&mf, &a_word); // value · 2^k
            let denom = cb.resize_word(&denom_full, ww);
            let num = cb.shl_words(&f_w, 2 * k);
            let num = cb.resize_word(&num, 2 * ww);
            let denom2 = cb.resize_word(&denom, 2 * ww);
            let (bb_raw, _) = cb.div_words(&num, &denom2); // FP(β_b)·2^k / 2^k
            let bb = cb.resize_word(&bb_raw, ww);

            // G = L / mf, computed as (L << k) / mf then >> k for
            // precision.
            let l_word = cb.const_word(l_fp << k, ww);
            let mf_div = cb.resize_word(&mf, ww);
            let (g_raw, _) = cb.div_words(&l_word, &mf_div);
            let g = Word::from_bits(g_raw.bits()[k..].to_vec()); // >> k
            let g = cb.resize_word(&g, ww);

            // sqrt(G² + 2·β_b·G)
            let g2_full = cb.mul_words(&g, &g);
            let g2 = Word::from_bits(g2_full.bits()[k..].to_vec());
            let g2 = cb.resize_word(&g2, ww);
            let bbg_full = cb.mul_words(&bb, &g);
            let bbg = Word::from_bits(bbg_full.bits()[k..].to_vec());
            let bbg = cb.resize_word(&bbg, ww);
            let bbg2 = cb.shl_words(&bbg, 1);
            let bbg2 = cb.resize_word(&bbg2, ww);
            let inner = cb.add_words(&g2, &bbg2);
            let inner_scaled = cb.shl_words(&inner, k); // · 2^k so sqrt stays FP
            let s = cb.sqrt_word(&inner_scaled);
            let s = cb.resize_word(&s, ww);

            // β_c = β_b + G + sqrt(…) ; common ⇔ β_c ≥ FP(1)
            let bc = cb.add_words(&bb, &g);
            let bc = cb.add_words(&bc, &s);
            let one_fp = cb.const_word(1u64 << k, ww);
            let common = cb.ge_words(&bc, &one_fp);
            common_bits.push(common);
            // ------------------------------------------------------------

            let mut coin_u = coin_words[0][j].clone();
            for words in coin_words.iter().skip(1) {
                coin_u = cb.xor_words(&coin_u, &words[j]);
            }
            let coin_u = cb.resize_word(&coin_u, coin_bits + 1);
            let l = cb.const_word(lambda_threshold.min(1 << coin_bits), coin_bits + 1);
            let coin = cb.lt_words(&coin_u, &l);
            let decision = cb.or(common, coin);
            decision_bits.push(decision);

            let zero = cb.const_word(0, freq_width);
            let masked = cb.mux_word(decision, &zero, &freq);
            masked_freq_bits.extend_from_slice(masked.bits());
        }
        let count = cb.popcount(&common_bits);
        let mut outputs: Vec<_> = count.bits().to_vec();
        let count_width = outputs.len();
        outputs.extend(decision_bits);
        outputs.extend(masked_freq_bits);
        let circuit = cb.finish(outputs);

        NaiveConstructionCircuit {
            circuit,
            layout: InputLayout::new(vec![n * (1 + coin_bits); providers]),
            identities: n,
            providers,
            coin_bits,
            count_width,
            freq_width,
        }
    }

    /// The compiled circuit.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The per-party input layout.
    pub fn layout(&self) -> &InputLayout {
        &self.layout
    }

    /// Number of identities the circuit processes.
    pub fn identities(&self) -> usize {
        self.identities
    }

    /// Number of provider parties.
    pub fn providers(&self) -> usize {
        self.providers
    }

    /// Encodes one provider's membership bits and coin randomness (same
    /// wire format as [`PureConstructionCircuit::encode_party_input`]).
    ///
    /// # Panics
    ///
    /// Panics if either slice length differs from the identity count.
    pub fn encode_party_input(&self, membership: &[bool], coins: &[u64]) -> Vec<bool> {
        assert_eq!(membership.len(), self.identities, "one bit per identity");
        assert_eq!(coins.len(), self.identities, "one coin word per identity");
        let mut bits = membership.to_vec();
        bits.extend(encode_share_words(coins, self.coin_bits));
        bits
    }

    /// Decodes the opened output into `(common count, mix decisions,
    /// masked frequencies)`.
    pub fn decode(&self, outputs: &[bool]) -> (u64, Vec<bool>, Vec<u64>) {
        let count = word_value(&outputs[..self.count_width]);
        let decisions = outputs[self.count_width..self.count_width + self.identities].to_vec();
        let freqs = outputs[self.count_width + self.identities..]
            .chunks(self.freq_width)
            .map(word_value)
            .collect();
        (count, decisions, freqs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::Modulus;
    use crate::gmw::execute;
    use crate::share::split;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Splits each frequency into `c` additive shares over 2^width and
    /// returns the per-party share vectors.
    fn share_frequencies(freqs: &[u64], c: usize, width: usize, rng: &mut StdRng) -> Vec<Vec<u64>> {
        let q = Modulus::pow2(width as u32);
        let mut per_party = vec![vec![0u64; freqs.len()]; c];
        for (j, &f) in freqs.iter().enumerate() {
            let shares = split(f, c, q, rng);
            for (i, &s) in shares.values().iter().enumerate() {
                per_party[i][j] = s;
            }
        }
        per_party
    }

    #[test]
    fn count_below_counts_commons() {
        let mut rng = StdRng::seed_from_u64(1);
        let freqs = [95u64, 5, 50, 80, 0];
        let thresholds = [60u64, 60, 60, 60, 60];
        let cc = CountBelowCircuit::build(3, &thresholds, 12);
        let shares = share_frequencies(&freqs, 3, 12, &mut rng);
        let inputs: Vec<Vec<bool>> = shares.iter().map(|s| cc.encode_party_input(s)).collect();
        let (out, stats) = execute(cc.circuit(), cc.layout(), &inputs, &mut rng);
        assert_eq!(cc.decode_count(&out), 2); // 95 and 80 are ≥ 60.
        assert_eq!(stats.parties, 3);
    }

    #[test]
    fn count_below_per_identity_thresholds() {
        let mut rng = StdRng::seed_from_u64(2);
        let freqs = [30u64, 30, 30];
        let thresholds = [10u64, 30, 31];
        let cc = CountBelowCircuit::build(2, &thresholds, 8);
        let shares = share_frequencies(&freqs, 2, 8, &mut rng);
        let inputs: Vec<Vec<bool>> = shares.iter().map(|s| cc.encode_party_input(s)).collect();
        let (out, _) = execute(cc.circuit(), cc.layout(), &inputs, &mut rng);
        // 30 ≥ 10 ✓, 30 ≥ 30 ✓, 30 ≥ 31 ✗.
        assert_eq!(cc.decode_count(&out), 2);
    }

    #[test]
    fn count_below_matches_cleartext_eval() {
        let mut rng = StdRng::seed_from_u64(3);
        let freqs: Vec<u64> = (0..8).map(|_| rng.gen_range(0..200)).collect();
        let thresholds: Vec<u64> = (0..8).map(|_| rng.gen_range(0..200)).collect();
        let cc = CountBelowCircuit::build(3, &thresholds, 9);
        let shares = share_frequencies(&freqs, 3, 9, &mut rng);
        let inputs: Vec<Vec<bool>> = shares.iter().map(|s| cc.encode_party_input(s)).collect();
        let flat = cc.layout().flatten(&inputs);
        let clear = cc.decode_count(&cc.circuit().eval(&flat));
        let (out, _) = execute(cc.circuit(), cc.layout(), &inputs, &mut rng);
        let expected = freqs
            .iter()
            .zip(&thresholds)
            .filter(|(f, t)| f >= t)
            .count() as u64;
        assert_eq!(clear, expected);
        assert_eq!(cc.decode_count(&out), expected);
    }

    #[test]
    fn mix_decision_lambda_zero_flags_only_commons() {
        let mut rng = StdRng::seed_from_u64(4);
        let freqs = [90u64, 10, 70];
        let thresholds = [50u64, 50, 50];
        let mc = MixDecisionCircuit::build(3, &thresholds, 10, 8, 0);
        let shares = share_frequencies(&freqs, 3, 10, &mut rng);
        let inputs: Vec<Vec<bool>> = shares
            .iter()
            .map(|s| {
                let coins: Vec<u64> = (0..3).map(|_| rng.gen_range(0..256)).collect();
                mc.encode_party_input(s, &coins)
            })
            .collect();
        let (out, _) = execute(mc.circuit(), mc.layout(), &inputs, &mut rng);
        assert_eq!(mc.decode_decisions(&out), vec![true, false, true]);
    }

    #[test]
    fn mix_decision_lambda_one_flags_everything() {
        let mut rng = StdRng::seed_from_u64(5);
        let freqs = [1u64, 2];
        let thresholds = [50u64, 50];
        let k = 8usize;
        let mc = MixDecisionCircuit::build(2, &thresholds, 10, k, lambda_threshold(1.0, k));
        let shares = share_frequencies(&freqs, 2, 10, &mut rng);
        let inputs: Vec<Vec<bool>> = shares
            .iter()
            .map(|s| {
                let coins: Vec<u64> = (0..2).map(|_| rng.gen_range(0..256)).collect();
                mc.encode_party_input(s, &coins)
            })
            .collect();
        let (out, _) = execute(mc.circuit(), mc.layout(), &inputs, &mut rng);
        assert_eq!(mc.decode_decisions(&out), vec![true, true]);
    }

    #[test]
    fn mix_decision_coin_rate_tracks_lambda() {
        let mut rng = StdRng::seed_from_u64(6);
        let n = 400usize;
        let freqs = vec![1u64; n];
        let thresholds = vec![1000u64; n]; // nothing common
        let k = 10usize;
        let lambda = 0.25;
        let mc = MixDecisionCircuit::build(2, &thresholds, 11, k, lambda_threshold(lambda, k));
        let shares = share_frequencies(&freqs, 2, 11, &mut rng);
        let inputs: Vec<Vec<bool>> = shares
            .iter()
            .map(|s| {
                let coins: Vec<u64> = (0..n).map(|_| rng.gen_range(0..(1 << k))).collect();
                mc.encode_party_input(s, &coins)
            })
            .collect();
        let flat = mc.layout().flatten(&inputs);
        let out = mc.circuit().eval(&flat);
        let rate = out.iter().filter(|&&b| b).count() as f64 / n as f64;
        assert!(
            (rate - lambda).abs() < 0.08,
            "coin rate {rate} vs λ {lambda}"
        );
    }

    #[test]
    fn pure_construction_counts_and_decides() {
        let mut rng = StdRng::seed_from_u64(7);
        let providers = 6usize;
        // Identity 0 in all providers; identity 1 in one.
        let membership: Vec<Vec<bool>> = (0..providers).map(|p| vec![true, p == 0]).collect();
        let thresholds = [5u64, 5];
        let pc = PureConstructionCircuit::build(providers, &thresholds, 8, 0);
        let inputs: Vec<Vec<bool>> = membership
            .iter()
            .map(|m| {
                let coins: Vec<u64> = (0..2).map(|_| rng.gen_range(0..256)).collect();
                pc.encode_party_input(m, &coins)
            })
            .collect();
        let (out, stats) = execute(pc.circuit(), pc.layout(), &inputs, &mut rng);
        let (count, decisions, freqs) = pc.decode(&out);
        assert_eq!(count, 1);
        assert_eq!(decisions, vec![true, false]);
        // Identity 0 decided common ⇒ frequency hidden; identity 1
        // publishes with β* ⇒ frequency (1) revealed.
        assert_eq!(freqs, vec![0, 1]);
        assert_eq!(stats.parties, providers);
    }

    #[test]
    fn pure_circuit_grows_with_providers_while_count_below_does_not() {
        let thresholds = [10u64];
        let small = PureConstructionCircuit::build(4, &thresholds, 4, 0)
            .circuit()
            .stats()
            .total_gates;
        let large = PureConstructionCircuit::build(32, &thresholds, 4, 0)
            .circuit()
            .stats()
            .total_gates;
        assert!(
            large > 3 * small,
            "pure circuit should grow with m: {small} vs {large}"
        );

        let c_small = CountBelowCircuit::build(3, &thresholds, 16)
            .circuit()
            .stats()
            .total_gates;
        // CountBelow depends on c, not m — identical for any network size.
        assert_eq!(
            c_small,
            CountBelowCircuit::build(3, &thresholds, 16)
                .circuit()
                .stats()
                .total_gates
        );
    }

    /// Cleartext fixed-point reference of the in-circuit β_c (mirrors
    /// the circuit's arithmetic exactly).
    fn naive_beta_fp(f: u64, m: u64, a_fp: u64, l_fp: u64, k: usize) -> u64 {
        let mf = m - f;
        let denom = mf * a_fp;
        let bb = (f << (2 * k)).checked_div(denom).unwrap_or(u64::MAX);
        let g = (l_fp << k).checked_div(mf).unwrap_or(u64::MAX) >> k;
        let inner = (g * g) >> k;
        let bbg2 = ((bb * g) >> k) << 1;
        let s = (((inner + bbg2) << k) as f64).sqrt().floor() as u64;
        bb + g + s
    }

    #[test]
    fn naive_circuit_matches_fixed_point_reference() {
        let fp = FixedPoint { frac_bits: 8 };
        let providers = 12usize;
        // ε = 0.5 ⇒ A = 1; γ = 0.9 ⇒ L = ln 10 ≈ 2.3026.
        let a_fp = fp.encode(1.0);
        let l_fp = fp.encode((1.0f64 / 0.1).ln());
        let nc = NaiveConstructionCircuit::build(providers, &[a_fp, a_fp, a_fp], l_fp, fp, 4, 0);

        // Frequencies 2 (rare), 6 (σ = 0.5 — exactly at the β_b = 1
        // boundary for ε = 0.5, so Chernoff pushes it over), 11 (common).
        let freqs = [2usize, 6, 11];
        let membership: Vec<Vec<bool>> = (0..providers)
            .map(|p| freqs.iter().map(|&f| p < f).collect())
            .collect();
        let mut rng = StdRng::seed_from_u64(1);
        let inputs: Vec<Vec<bool>> = membership
            .iter()
            .map(|m| {
                let coins: Vec<u64> = (0..3).map(|_| rng.gen_range(0..16)).collect();
                nc.encode_party_input(m, &coins)
            })
            .collect();
        let out = nc.circuit().eval(&nc.layout().flatten(&inputs));
        let (count, decisions, masked) = nc.decode(&out);

        let one_fp = 1u64 << fp.frac_bits;
        let expected: Vec<bool> = freqs
            .iter()
            .map(|&f| naive_beta_fp(f as u64, providers as u64, a_fp, l_fp, fp.frac_bits) >= one_fp)
            .collect();
        assert_eq!(decisions, expected, "β_c threshold decisions");
        assert_eq!(count, expected.iter().filter(|&&b| b).count() as u64);
        // Frequencies of flagged identities stay hidden.
        for (j, (&d, &f)) in expected.iter().zip(&freqs).enumerate() {
            assert_eq!(masked[j], if d { 0 } else { f as u64 }, "identity {j}");
        }
        // Sanity on the shape: rare is not common, full-frequency is.
        assert!(!expected[0]);
        assert!(expected[2]);
    }

    #[test]
    fn naive_circuit_runs_under_gmw() {
        let fp = FixedPoint { frac_bits: 6 };
        let providers = 5usize;
        let a_fp = fp.encode(1.0);
        let nc = NaiveConstructionCircuit::build(providers, &[a_fp], fp.encode(2.3), fp, 4, 0);
        let mut rng = StdRng::seed_from_u64(2);
        let inputs: Vec<Vec<bool>> = (0..providers)
            .map(|p| nc.encode_party_input(&[p < 4], &[rng.gen_range(0..16)]))
            .collect();
        let clear = nc.circuit().eval(&nc.layout().flatten(&inputs));
        let (secure, stats) = execute(nc.circuit(), nc.layout(), &inputs, &mut rng);
        assert_eq!(clear, secure);
        assert_eq!(stats.parties, providers);
    }

    #[test]
    fn naive_circuit_dwarfs_threshold_only_circuits() {
        let fp = FixedPoint { frac_bits: 8 };
        let a_fp = fp.encode(1.0);
        let naive = NaiveConstructionCircuit::build(9, &[a_fp], fp.encode(2.3), fp, 8, 0)
            .circuit()
            .stats()
            .total_gates;
        let compare_only = PureConstructionCircuit::build(9, &[5], 8, 0)
            .circuit()
            .stats()
            .total_gates;
        assert!(
            naive > 10 * compare_only,
            "in-circuit β ({naive} gates) must dwarf the compare-only circuit ({compare_only})"
        );
    }

    #[test]
    fn fixed_point_roundtrip() {
        let fp = FixedPoint { frac_bits: 8 };
        assert_eq!(fp.encode(1.0), 256);
        assert_eq!(fp.encode(0.5), 128);
        assert!((fp.decode(fp.encode(2.302)) - 2.302).abs() < 1.0 / 256.0);
        assert_eq!(fp.encode(-1.0), 0);
    }

    #[test]
    fn lambda_threshold_conversion() {
        assert_eq!(lambda_threshold(0.0, 8), 0);
        assert_eq!(lambda_threshold(1.0, 8), 256);
        assert_eq!(lambda_threshold(0.5, 8), 128);
        assert_eq!(lambda_threshold(2.0, 8), 256); // clamped
        assert_eq!(lambda_threshold(-1.0, 8), 0); // clamped
    }
}
