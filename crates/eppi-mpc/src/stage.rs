//! Stage decomposition of the per-party GMW loop.
//!
//! [`run_party`](crate::gmw_core::run_party) is a straight line: share
//! inputs, then for every AND level *compute → exchange → finish*, then
//! open outputs — with the transport call baked into the middle of the
//! loop. The pipelined runtime (`eppi-protocol`) needs that loop turned
//! inside out, so a worker can park a lane at its exchange point while
//! the coalescing sender and the triple dealer run on their own
//! threads. This module is that inversion:
//!
//! * [`PartyStages`] — the backend-agnostic lane state machine: call
//!   [`advance`](PartyStages::advance) until it yields an exchange
//!   ([`StageOutput::Scatter`] / [`StageOutput::Broadcast`]), deliver
//!   the peers' batches through [`absorb`](PartyStages::absorb), repeat
//!   until [`StageOutput::Done`]. Any secret-sharing backend whose
//!   protocol is a sequence of local-compute/exchange steps (the GMW
//!   core today, the honest-majority 3PC fast path next) can implement
//!   it and inherit the whole pipeline.
//! * [`GmwStages`] — the [`PartyCore`] implementation, driving the
//!   identical call sequence as `run_party` (the equivalence proptests
//!   in `eppi-protocol/tests/mpc_backends.rs` hold it to that).
//! * [`TripleFeed`] — where a lane's Beaver triples come from:
//!   [`PreloadedTriples`] (dealt up front, as the classic drivers do)
//!   or [`ChannelTriples`] (streamed level-by-level from a dealer
//!   thread over a bounded channel, with stall accounting). Both feed
//!   [`PartyCore::feed_layer_triples`] in schedule order, and the
//!   streaming dealer reuses
//!   [`deal_layer_triples`](crate::gmw_core::deal_layer_triples), so
//!   triple *values* are bit-identical however they arrive.

use crate::circuit::{Circuit, InputLayout};
use crate::gmw_core::{protocol_rounds, LayerTriples, PartyCore, PartyTriples, Schedule};
use crossbeam::channel::Receiver;
use eppi_net::transport::PackedBatch;
use rand::Rng;
use std::collections::VecDeque;
use std::fmt;
use std::time::Instant;

/// What a lane asks of the network next.
#[derive(Debug, Clone)]
pub enum StageOutput {
    /// Personalized input-share batches, one slot per party (the own
    /// slot stays empty) — the input-sharing exchange.
    Scatter(Vec<PackedBatch>),
    /// The common batch of this exchange step (an AND layer's `d`/`e`
    /// opening or the output shares), to be sent to every peer.
    Broadcast(PackedBatch),
    /// The lane is finished; these are the opened outputs.
    Done(Vec<bool>),
}

/// A backend-agnostic per-party lane state machine.
///
/// The contract mirrors one party's view of the protocol: `advance`
/// runs local computation until the lane either needs the network
/// (returning the outgoing batches) or completes; after an exchange the
/// driver hands the peers' batches to `absorb` exactly once before the
/// next `advance`. The exchange sequence is deterministic in the
/// circuit structure — never in share values — which is what keeps the
/// pipeline schedule oblivious (DESIGN.md §15).
pub trait PartyStages {
    /// This party's id.
    fn me(&self) -> usize;
    /// Number of parties.
    fn parties(&self) -> usize;
    /// Runs local computation up to the next exchange (or completion).
    fn advance(&mut self) -> StageOutput;
    /// Completes the pending exchange with the peers' batches, in any
    /// peer order.
    fn absorb(&mut self, peers: &[(usize, PackedBatch)]);
    /// Total exchange steps this lane performs — equal to
    /// [`protocol_rounds`] for multi-party runs, `0` for a lone party
    /// (which never exchanges anything).
    fn total_steps(&self) -> usize;
}

/// Source of a lane's per-level Beaver-triple shares.
pub trait TripleFeed {
    /// The next schedule level's share, in feed order — blocking until
    /// the dealer has produced it, if streamed.
    fn next_layer(&mut self) -> LayerTriples;
    /// Levels currently buffered ahead of consumption (0 when unknown).
    fn buffered(&self) -> usize {
        0
    }
    /// Nanoseconds this feed has spent blocked waiting on the dealer.
    fn stall_ns(&self) -> u64 {
        0
    }
}

/// A feed over triples dealt up front ([`crate::gmw_core::deal_packed_triples`]
/// or the OT-based batch) — the classic offline phase.
#[derive(Debug, Default)]
pub struct PreloadedTriples {
    layers: VecDeque<LayerTriples>,
}

impl PreloadedTriples {
    /// Wraps one party's pre-dealt triples.
    pub fn new(triples: PartyTriples) -> Self {
        PreloadedTriples {
            layers: triples.into_layers().into(),
        }
    }
}

impl TripleFeed for PreloadedTriples {
    fn next_layer(&mut self) -> LayerTriples {
        self.layers
            .pop_front()
            .expect("preloaded triples exhausted")
    }

    fn buffered(&self) -> usize {
        self.layers.len()
    }
}

/// A feed streaming triples from a dealer thread over a bounded
/// channel, measuring how long the lane stalls when the dealer falls
/// behind (the `mpc.pipeline.triple_stall_ns` telemetry).
#[derive(Debug)]
pub struct ChannelTriples {
    rx: Receiver<LayerTriples>,
    stall_ns: u64,
}

impl ChannelTriples {
    /// Wraps the consuming end of a dealer channel.
    pub fn new(rx: Receiver<LayerTriples>) -> Self {
        ChannelTriples { rx, stall_ns: 0 }
    }
}

impl TripleFeed for ChannelTriples {
    fn next_layer(&mut self) -> LayerTriples {
        if let Ok(share) = self.rx.try_recv() {
            return share;
        }
        let started = Instant::now();
        let share = self.rx.recv().expect("triple dealer hung up");
        self.stall_ns += started.elapsed().as_nanos() as u64;
        share
    }

    fn buffered(&self) -> usize {
        self.rx.len()
    }

    fn stall_ns(&self) -> u64 {
        self.stall_ns
    }
}

/// Triple-supply accounting of one finished lane.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageStats {
    /// Nanoseconds the lane spent blocked on the triple dealer.
    pub triple_stall_ns: u64,
    /// Levels pulled from the feed.
    pub triple_pulls: u64,
    /// Sum of the feed's buffered depth sampled at each pull (divide by
    /// `triple_pulls` for the mean `mpc.pipeline.triple_buffer` depth).
    pub triple_buffered_sum: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Share,
    Layers,
    Open,
    Finished,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pending {
    None,
    Inputs,
    Layer,
    Outputs,
}

/// The GMW implementation of [`PartyStages`]: a [`PartyCore`] plus a
/// [`TripleFeed`] and this party's input RNG, advancing through the
/// exact call sequence of [`run_party`](crate::gmw_core::run_party).
pub struct GmwStages<'c, F, R> {
    core: PartyCore<'c>,
    sched: &'c Schedule,
    feed: F,
    rng: R,
    my_bits: Vec<bool>,
    phase: Phase,
    pending: Pending,
    steps: usize,
    outputs: Option<Vec<bool>>,
    triple_pulls: u64,
    triple_buffered_sum: u64,
}

impl<F, R> fmt::Debug for GmwStages<'_, F, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GmwStages")
            .field("me", &self.core.me())
            .field("phase", &self.phase)
            .field("pending", &self.pending)
            .field("level", &self.core.level())
            .finish_non_exhaustive()
    }
}

impl<'c, F: TripleFeed, R: Rng> GmwStages<'c, F, R> {
    /// Creates the lane for party `me` with its private input bits.
    ///
    /// # Panics
    ///
    /// Panics if the layout does not cover the circuit inputs, `me` is
    /// out of range, or `my_bits` disagrees with the layout.
    pub fn new(
        circuit: &'c Circuit,
        layout: &'c InputLayout,
        sched: &'c Schedule,
        me: usize,
        my_bits: Vec<bool>,
        feed: F,
        rng: R,
    ) -> Self {
        assert_eq!(
            my_bits.len(),
            layout.range_of(me).len(),
            "party {me} supplied wrong input count"
        );
        GmwStages {
            core: PartyCore::new_streaming(circuit, layout, sched, me),
            sched,
            feed,
            rng,
            my_bits,
            phase: Phase::Share,
            pending: Pending::None,
            steps: if layout.parties() > 1 {
                protocol_rounds(circuit, layout, sched)
            } else {
                0
            },
            outputs: None,
            triple_pulls: 0,
            triple_buffered_sum: 0,
        }
    }

    /// Triple-supply accounting (valid any time; final once `Done`).
    pub fn stats(&self) -> StageStats {
        StageStats {
            triple_stall_ns: self.feed.stall_ns(),
            triple_pulls: self.triple_pulls,
            triple_buffered_sum: self.triple_buffered_sum,
        }
    }

    /// Pulls triple levels through the next AND level (or to the end of
    /// the schedule when only free levels remain): one `advance` may
    /// cross several free levels, and [`PartyCore`] indexes its triples
    /// by absolute level, so AND-free levels are fed too (their shares
    /// are empty and consume no dealer randomness). Pulling to the very
    /// end keeps the feed balanced with a dealer that streams every
    /// level.
    fn ensure_triples(&mut self) {
        let until = self
            .sched
            .next_and_level(self.core.level())
            .map_or(self.sched.levels().len(), |l| l + 1);
        while self.core.fed_layers() < until {
            self.triple_pulls += 1;
            self.triple_buffered_sum += self.feed.buffered() as u64;
            let share = self.feed.next_layer();
            self.core.feed_layer_triples(share);
        }
    }
}

impl<F: TripleFeed, R: Rng> PartyStages for GmwStages<'_, F, R> {
    fn me(&self) -> usize {
        self.core.me()
    }

    fn parties(&self) -> usize {
        self.core.parties()
    }

    fn advance(&mut self) -> StageOutput {
        assert_eq!(self.pending, Pending::None, "pending exchange not absorbed");
        loop {
            match self.phase {
                Phase::Share => {
                    let bits = std::mem::take(&mut self.my_bits);
                    let batches = self.core.share_inputs(&bits, &mut self.rng);
                    self.phase = Phase::Layers;
                    if self.core.parties() > 1 && self.core.layout().total_inputs() > 0 {
                        self.pending = Pending::Inputs;
                        return StageOutput::Scatter(batches);
                    }
                }
                Phase::Layers => {
                    self.ensure_triples();
                    match self.core.next_layer_batch() {
                        Some(batch) => {
                            if self.core.parties() > 1 {
                                self.pending = Pending::Layer;
                                return StageOutput::Broadcast(batch);
                            }
                            self.core.finish_layer(&[]);
                        }
                        None => self.phase = Phase::Open,
                    }
                }
                Phase::Open => {
                    self.phase = Phase::Finished;
                    if self.core.parties() > 1 && !self.core.circuit().outputs().is_empty() {
                        self.pending = Pending::Outputs;
                        return StageOutput::Broadcast(self.core.output_batch());
                    }
                    self.outputs = Some(self.core.open_outputs(&[]));
                }
                Phase::Finished => {
                    let outputs = self.outputs.clone().expect("finished without outputs");
                    return StageOutput::Done(outputs);
                }
            }
        }
    }

    fn absorb(&mut self, peers: &[(usize, PackedBatch)]) {
        match std::mem::replace(&mut self.pending, Pending::None) {
            Pending::None => panic!("no pending exchange to absorb"),
            Pending::Inputs => {
                for (from, batch) in peers {
                    self.core.absorb_inputs(*from, batch);
                }
            }
            Pending::Layer => self.core.finish_layer(peers),
            Pending::Outputs => self.outputs = Some(self.core.open_outputs(peers)),
        }
    }

    fn total_steps(&self) -> usize {
        self.steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{to_bits, word_value, CircuitBuilder};
    use crate::gmw_core::{deal_layer_triples, deal_packed_triples};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn adder() -> (Circuit, InputLayout) {
        let mut cb = CircuitBuilder::new();
        let a = cb.input_word(6);
        let b = cb.input_word(6);
        let sum = cb.add_words_expand(&a, &b);
        (cb.finish_word(sum), InputLayout::new(vec![6, 6]))
    }

    /// Drives all parties' stage machines in lockstep on this thread,
    /// routing every exchange by hand — the minimal driver, used to
    /// prove the state machine itself before any pipeline is involved.
    fn run_stages<S: PartyStages>(stages: &mut [S]) -> Vec<Vec<bool>> {
        let parties = stages.len();
        let mut done: Vec<Option<Vec<bool>>> = vec![None; parties];
        while done.iter().any(Option::is_none) {
            let mut sent: Vec<Vec<Option<PackedBatch>>> = vec![vec![None; parties]; parties];
            let mut exchanged = false;
            for (p, stage) in stages.iter_mut().enumerate() {
                if done[p].is_some() {
                    continue;
                }
                match stage.advance() {
                    StageOutput::Scatter(batches) => {
                        for (q, batch) in batches.into_iter().enumerate() {
                            if q != p {
                                sent[q][p] = Some(batch);
                            }
                        }
                        exchanged = true;
                    }
                    StageOutput::Broadcast(batch) => {
                        for (q, inbox) in sent.iter_mut().enumerate().take(parties) {
                            if q != p {
                                inbox[p] = Some(batch.clone());
                            }
                        }
                        exchanged = true;
                    }
                    StageOutput::Done(out) => done[p] = Some(out),
                }
            }
            if exchanged {
                for (p, stage) in stages.iter_mut().enumerate() {
                    if done[p].is_some() {
                        continue;
                    }
                    let peers: Vec<(usize, PackedBatch)> = sent[p]
                        .iter_mut()
                        .enumerate()
                        .filter_map(|(q, b)| b.take().map(|b| (q, b)))
                        .collect();
                    stage.absorb(&peers);
                }
            }
        }
        done.into_iter().map(|o| o.expect("all done")).collect()
    }

    #[test]
    fn stages_match_lockstep_driver_with_preloaded_triples() {
        let (circuit, layout) = adder();
        let sched = Schedule::new(&circuit);
        let mut dealer = StdRng::seed_from_u64(7);
        let mut triples = deal_packed_triples(2, &sched, &mut dealer);
        let inputs = [to_bits(23, 6), to_bits(40, 6)];
        let stages: Vec<_> = (0..2)
            .map(|p| {
                GmwStages::new(
                    &circuit,
                    &layout,
                    &sched,
                    p,
                    inputs[p].clone(),
                    PreloadedTriples::new(std::mem::take(&mut triples[p])),
                    StdRng::seed_from_u64(100 + p as u64),
                )
            })
            .collect();
        let mut stages = stages;
        let outs = run_stages(&mut stages);
        assert_eq!(outs[0], outs[1]);
        assert_eq!(word_value(&outs[0]), 63);
        // Every lane pulled exactly one triple level per schedule level.
        for stage in &stages {
            assert_eq!(stage.stats().triple_pulls, sched.levels().len() as u64);
        }
    }

    #[test]
    fn channel_fed_triples_match_preloaded_bit_for_bit() {
        let (circuit, layout) = adder();
        let sched = Schedule::new(&circuit);
        let inputs = [to_bits(9, 6), to_bits(33, 6)];

        // Stream: a dealer draws layer-by-layer from the same seed the
        // up-front dealer would use, feeding bounded channels.
        let depth = sched.levels().len();
        let (txs, rxs): (Vec<_>, Vec<_>) =
            (0..2).map(|_| crossbeam::channel::bounded(depth)).unzip();
        let mut dealer = StdRng::seed_from_u64(7);
        for layer in sched.levels() {
            let shares = deal_layer_triples(2, layer.ands.len(), &mut dealer);
            for (tx, share) in txs.iter().zip(shares) {
                tx.send(share).unwrap();
            }
        }
        drop(txs);
        let mut rxs = rxs.into_iter();
        let stages: Vec<_> = (0..2)
            .map(|p| {
                GmwStages::new(
                    &circuit,
                    &layout,
                    &sched,
                    p,
                    inputs[p].clone(),
                    ChannelTriples::new(rxs.next().unwrap()),
                    StdRng::seed_from_u64(100 + p as u64),
                )
            })
            .collect();
        let mut stages = stages;
        let streamed = run_stages(&mut stages);

        // Preloaded path from the identical dealer seed.
        let mut dealer = StdRng::seed_from_u64(7);
        let mut triples = deal_packed_triples(2, &sched, &mut dealer);
        let preloaded: Vec<_> = (0..2)
            .map(|p| {
                GmwStages::new(
                    &circuit,
                    &layout,
                    &sched,
                    p,
                    inputs[p].clone(),
                    PreloadedTriples::new(std::mem::take(&mut triples[p])),
                    StdRng::seed_from_u64(100 + p as u64),
                )
            })
            .collect();
        let mut preloaded = preloaded;
        assert_eq!(streamed, run_stages(&mut preloaded));
        assert_eq!(word_value(&streamed[0]), 42);
    }

    #[test]
    fn single_party_lane_completes_without_exchanges() {
        let mut cb = CircuitBuilder::new();
        let a = cb.input_word(5);
        let b = cb.const_word(11, 5);
        let lt = cb.lt_words(&a, &b);
        let circuit = cb.finish(vec![lt]);
        let layout = InputLayout::new(vec![5]);
        let sched = Schedule::new(&circuit);
        let mut dealer = StdRng::seed_from_u64(3);
        let mut triples = deal_packed_triples(1, &sched, &mut dealer);
        let mut stage = GmwStages::new(
            &circuit,
            &layout,
            &sched,
            0,
            to_bits(7, 5),
            PreloadedTriples::new(std::mem::take(&mut triples[0])),
            StdRng::seed_from_u64(1),
        );
        assert_eq!(stage.total_steps(), 0);
        match stage.advance() {
            StageOutput::Done(out) => assert_eq!(out, vec![true]),
            other => panic!("expected Done, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "pending exchange not absorbed")]
    fn advancing_past_a_pending_exchange_panics() {
        let (circuit, layout) = adder();
        let sched = Schedule::new(&circuit);
        let mut dealer = StdRng::seed_from_u64(7);
        let mut triples = deal_packed_triples(2, &sched, &mut dealer);
        let mut stage = GmwStages::new(
            &circuit,
            &layout,
            &sched,
            0,
            to_bits(1, 6),
            PreloadedTriples::new(std::mem::take(&mut triples[0])),
            StdRng::seed_from_u64(0),
        );
        let _ = stage.advance();
        let _ = stage.advance();
    }
}
