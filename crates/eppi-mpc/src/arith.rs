//! Arithmetic-circuit MPC over additive shares (VIFF-style).
//!
//! The paper's related work splits generic MPC into two families: "the
//! garbled functions used for Boolean circuits and the homomorphic
//! encryption used for arithmetic calculation" (VIFF \[18\] being the
//! arithmetic runtime it cites). This module implements the arithmetic
//! family over the same additive sharing the SecSumShare protocol uses:
//! additions and public-scalar operations are local (free), secret
//! multiplications consume one arithmetic Beaver triple and one opening.
//!
//! Why ε-PPI still compiles CountBelow to a *Boolean* circuit: the
//! protocol's core secure operation is a threshold **comparison**, which
//! has no efficient arithmetic-circuit form — while its secure **sum** is
//! exactly what additive shares give for free. The engine here makes
//! that trade-off measurable: `secure_sum` costs zero openings, and the
//! comparison simply does not exist in this model without bit
//! decomposition (which lands back at Boolean circuits).

use crate::field::Modulus;
use rand::Rng;

/// An arithmetic circuit over `Z_q`, built incrementally like the
/// Boolean [`crate::builder::CircuitBuilder`].
#[derive(Debug, Clone)]
pub struct ArithCircuit {
    modulus: Modulus,
    inputs: usize,
    gates: Vec<ArithGate>,
    outputs: Vec<usize>,
}

/// Arithmetic gates. `Add`/`AddConst`/`MulConst` are local under
/// additive sharing; `Mul` is the expensive gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithGate {
    /// Secret + secret (free).
    Add(usize, usize),
    /// Secret − secret (free).
    Sub(usize, usize),
    /// Secret + public constant (free).
    AddConst(usize, u64),
    /// Secret × public constant (free).
    MulConst(usize, u64),
    /// Secret × secret (one Beaver triple + one opening).
    Mul(usize, usize),
    /// A public constant wire.
    Const(u64),
}

/// Builder for [`ArithCircuit`].
#[derive(Debug)]
pub struct ArithBuilder {
    modulus: Modulus,
    inputs: usize,
    gates: Vec<ArithGate>,
}

impl ArithBuilder {
    /// Starts a circuit over `Z_q`.
    pub fn new(modulus: Modulus) -> Self {
        ArithBuilder {
            modulus,
            inputs: 0,
            gates: Vec::new(),
        }
    }

    /// Declares an input wire (all inputs before any gate).
    ///
    /// # Panics
    ///
    /// Panics if a gate was already emitted.
    pub fn input(&mut self) -> usize {
        assert!(self.gates.is_empty(), "inputs must precede gates");
        self.inputs += 1;
        self.inputs - 1
    }

    fn push(&mut self, gate: ArithGate) -> usize {
        self.gates.push(gate);
        self.inputs + self.gates.len() - 1
    }

    /// Emits `a + b`.
    pub fn add(&mut self, a: usize, b: usize) -> usize {
        self.push(ArithGate::Add(a, b))
    }

    /// Emits `a − b`.
    pub fn sub(&mut self, a: usize, b: usize) -> usize {
        self.push(ArithGate::Sub(a, b))
    }

    /// Emits `a + k` for public `k`.
    pub fn add_const(&mut self, a: usize, k: u64) -> usize {
        self.push(ArithGate::AddConst(a, k))
    }

    /// Emits `a · k` for public `k`.
    pub fn mul_const(&mut self, a: usize, k: u64) -> usize {
        self.push(ArithGate::MulConst(a, k))
    }

    /// Emits the expensive secret product `a · b`.
    pub fn mul(&mut self, a: usize, b: usize) -> usize {
        self.push(ArithGate::Mul(a, b))
    }

    /// Emits a public constant.
    pub fn constant(&mut self, k: u64) -> usize {
        self.push(ArithGate::Const(k))
    }

    /// Sums many wires with a balanced tree of free additions.
    pub fn sum(&mut self, wires: &[usize]) -> usize {
        match wires.len() {
            0 => self.constant(0),
            1 => wires[0],
            _ => {
                let mut layer = wires.to_vec();
                while layer.len() > 1 {
                    let mut next = Vec::with_capacity(layer.len().div_ceil(2));
                    for pair in layer.chunks(2) {
                        next.push(if pair.len() == 2 {
                            self.add(pair[0], pair[1])
                        } else {
                            pair[0]
                        });
                    }
                    layer = next;
                }
                layer[0]
            }
        }
    }

    /// Seals the circuit.
    pub fn finish(self, outputs: Vec<usize>) -> ArithCircuit {
        let total = self.inputs + self.gates.len();
        for &o in &outputs {
            assert!(o < total, "output references missing wire {o}");
        }
        ArithCircuit {
            modulus: self.modulus,
            inputs: self.inputs,
            gates: self.gates,
            outputs,
        }
    }
}

impl ArithCircuit {
    /// Number of input wires.
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Number of secret multiplications (the cost metric of the
    /// arithmetic model).
    pub fn multiplications(&self) -> usize {
        self.gates
            .iter()
            .filter(|g| matches!(g, ArithGate::Mul(..)))
            .count()
    }

    /// Cleartext reference evaluation.
    ///
    /// # Panics
    ///
    /// Panics on input arity mismatch.
    pub fn eval(&self, inputs: &[u64]) -> Vec<u64> {
        assert_eq!(inputs.len(), self.inputs, "wrong number of inputs");
        let q = self.modulus;
        let mut values: Vec<u64> = inputs.iter().map(|&v| q.reduce(v)).collect();
        for gate in &self.gates {
            let v = match *gate {
                ArithGate::Add(a, b) => q.add(values[a], values[b]),
                ArithGate::Sub(a, b) => q.sub(values[a], values[b]),
                ArithGate::AddConst(a, k) => q.add(values[a], q.reduce(k)),
                ArithGate::MulConst(a, k) => q.mul(values[a], q.reduce(k)),
                ArithGate::Mul(a, b) => q.mul(values[a], values[b]),
                ArithGate::Const(k) => q.reduce(k),
            };
            values.push(v);
        }
        self.outputs.iter().map(|&o| values[o]).collect()
    }
}

/// Communication statistics of one secure arithmetic evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ArithStats {
    /// Parties participating.
    pub parties: usize,
    /// Beaver triples consumed (= secret multiplications).
    pub triples_used: usize,
    /// Field elements broadcast during openings.
    pub elements_sent: u64,
}

/// Securely evaluates an arithmetic circuit among `parties` parties with
/// additively shared inputs.
///
/// `input_shares[p][w]` is party `p`'s additive share of input wire `w`.
/// Outputs are opened (public). Multiplications use arithmetic Beaver
/// triples from an inline dealer (the OT-based offline phase
/// generalizes to `Z_q`, cf. [`crate::triples`] for the Boolean case).
///
/// # Panics
///
/// Panics if the share matrix is ragged or mismatched with the circuit.
pub fn execute_arith<R: Rng + ?Sized>(
    circuit: &ArithCircuit,
    input_shares: &[Vec<u64>],
    rng: &mut R,
) -> (Vec<u64>, ArithStats) {
    let parties = input_shares.len();
    assert!(parties >= 1, "at least one party required");
    assert!(
        input_shares.iter().all(|s| s.len() == circuit.inputs),
        "every party needs one share per input wire"
    );
    let q = circuit.modulus;
    let mut stats = ArithStats {
        parties,
        ..ArithStats::default()
    };

    // shares[w][p] = party p's share of wire w.
    let mut shares: Vec<Vec<u64>> = Vec::with_capacity(circuit.inputs + circuit.gates.len());
    for w in 0..circuit.inputs {
        shares.push(input_shares.iter().map(|s| q.reduce(s[w])).collect());
    }

    let deal = |rng: &mut R, secret: u64| -> Vec<u64> {
        let s = crate::share::split(secret, parties, q, rng);
        s.values().to_vec()
    };

    for gate in &circuit.gates {
        let row = match *gate {
            ArithGate::Add(a, b) => (0..parties)
                .map(|p| q.add(shares[a][p], shares[b][p]))
                .collect(),
            ArithGate::Sub(a, b) => (0..parties)
                .map(|p| q.sub(shares[a][p], shares[b][p]))
                .collect(),
            ArithGate::AddConst(a, k) => (0..parties)
                .map(|p| {
                    if p == 0 {
                        q.add(shares[a][p], q.reduce(k))
                    } else {
                        shares[a][p]
                    }
                })
                .collect(),
            ArithGate::MulConst(a, k) => (0..parties)
                .map(|p| q.mul(shares[a][p], q.reduce(k)))
                .collect(),
            ArithGate::Const(k) => (0..parties)
                .map(|p| if p == 0 { q.reduce(k) } else { 0 })
                .collect(),
            ArithGate::Mul(a, b) => {
                // Beaver: z = c + d·b + e·a + d·e with d = x−a*, e = y−b*.
                let ta = q.random(rng);
                let tb = q.random(rng);
                let tc = q.mul(ta, tb);
                let sa = deal(rng, ta);
                let sb = deal(rng, tb);
                let sc = deal(rng, tc);
                let d = (0..parties).fold(0u64, |acc, p| q.add(acc, q.sub(shares[a][p], sa[p])));
                let e = (0..parties).fold(0u64, |acc, p| q.add(acc, q.sub(shares[b][p], sb[p])));
                stats.triples_used += 1;
                stats.elements_sent += 2 * (parties * (parties - 1)) as u64;
                (0..parties)
                    .map(|p| {
                        let mut z = sc[p];
                        z = q.add(z, q.mul(d, sb[p]));
                        z = q.add(z, q.mul(e, sa[p]));
                        if p == 0 {
                            z = q.add(z, q.mul(d, e));
                        }
                        z
                    })
                    .collect()
            }
        };
        shares.push(row);
    }

    let outputs: Vec<u64> = circuit
        .outputs
        .iter()
        .map(|&o| (0..parties).fold(0u64, |acc, p| q.add(acc, shares[o][p])))
        .collect();
    if !outputs.is_empty() && parties > 1 {
        stats.elements_sent += (outputs.len() * parties * (parties - 1)) as u64;
    }
    (outputs, stats)
}

/// The free secure sum: shares in, per-identity totals out, **zero**
/// openings — the arithmetic-model view of why SecSumShare is cheap.
pub fn secure_sum(modulus: Modulus, per_party_values: &[Vec<u64>]) -> Vec<u64> {
    let n = per_party_values.first().map_or(0, Vec::len);
    (0..n)
        .map(|j| {
            per_party_values
                .iter()
                .fold(0u64, |acc, v| modulus.add(acc, modulus.reduce(v[j])))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn share_inputs<R: Rng>(
        values: &[u64],
        parties: usize,
        q: Modulus,
        rng: &mut R,
    ) -> Vec<Vec<u64>> {
        let mut per = vec![vec![0u64; values.len()]; parties];
        for (w, &v) in values.iter().enumerate() {
            let s = crate::share::split(v, parties, q, rng);
            for (p, &sv) in s.values().iter().enumerate() {
                per[p][w] = sv;
            }
        }
        per
    }

    #[test]
    fn polynomial_matches_cleartext() {
        // f(x, y) = 3x² + xy − y + 7 over Z_p.
        let q = Modulus::new(1_000_003);
        let mut ab = ArithBuilder::new(q);
        let x = ab.input();
        let y = ab.input();
        let x2 = ab.mul(x, x);
        let t1 = ab.mul_const(x2, 3);
        let xy = ab.mul(x, y);
        let s = ab.add(t1, xy);
        let s = ab.sub(s, y);
        let out = ab.add_const(s, 7);
        let circuit = ab.finish(vec![out]);
        assert_eq!(circuit.multiplications(), 2);

        let mut rng = StdRng::seed_from_u64(1);
        for (xv, yv) in [(0u64, 0u64), (5, 11), (999_999, 2), (123, 456)] {
            let expect = circuit.eval(&[xv, yv]);
            for parties in [1usize, 2, 4] {
                let shares = share_inputs(&[xv, yv], parties, q, &mut rng);
                let (got, stats) = execute_arith(&circuit, &shares, &mut rng);
                assert_eq!(got, expect, "x={xv} y={yv} P={parties}");
                assert_eq!(stats.triples_used, 2);
            }
        }
    }

    #[test]
    fn additions_cost_no_openings() {
        let q = Modulus::pow2(32);
        let mut ab = ArithBuilder::new(q);
        let ins: Vec<usize> = (0..16).map(|_| ab.input()).collect();
        let total = ab.sum(&ins);
        let circuit = ab.finish(vec![total]);
        assert_eq!(circuit.multiplications(), 0);

        let mut rng = StdRng::seed_from_u64(2);
        let values: Vec<u64> = (0..16).map(|i| i * 100).collect();
        let shares = share_inputs(&values, 3, q, &mut rng);
        let (got, stats) = execute_arith(&circuit, &shares, &mut rng);
        assert_eq!(got, vec![values.iter().sum::<u64>()]);
        assert_eq!(stats.triples_used, 0);
        // Only the output opening communicates.
        assert_eq!(stats.elements_sent, (3 * 2) as u64);
    }

    #[test]
    fn secure_sum_matches_secsum_semantics() {
        let q = Modulus::new(5);
        // The Fig. 3 example: coordinator shares 1, 4, 2 sum to 2.
        let totals = secure_sum(q, &[vec![1], vec![4], vec![2]]);
        assert_eq!(totals, vec![2]);
    }

    #[test]
    fn constants_and_scalars_are_exact() {
        let q = Modulus::new(97);
        let mut ab = ArithBuilder::new(q);
        let x = ab.input();
        let k = ab.constant(50);
        let kx = ab.mul(k, x);
        let out = ab.add_const(kx, 96);
        let circuit = ab.finish(vec![out]);
        let mut rng = StdRng::seed_from_u64(3);
        let shares = share_inputs(&[3], 2, q, &mut rng);
        let (got, _) = execute_arith(&circuit, &shares, &mut rng);
        assert_eq!(got, vec![(50 * 3 + 96) % 97]);
    }

    #[test]
    #[should_panic(expected = "inputs must precede gates")]
    fn late_inputs_rejected() {
        let mut ab = ArithBuilder::new(Modulus::new(7));
        let x = ab.input();
        ab.add_const(x, 1);
        ab.input();
    }
}
