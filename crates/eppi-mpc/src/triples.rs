//! Dealer-free Beaver triple generation from pairwise OT (Gilboa-style,
//! specialized to bits).
//!
//! A Beaver triple over GF(2) is a random `(a, b, c)` with `c = a ∧ b`,
//! XOR-shared among the parties. Each party `i` samples its shares
//! `a_i, b_i` locally; expanding `c = (⊕a_i)(⊕b_j)` gives the diagonal
//! terms `a_i b_i` (local) plus cross terms `a_i b_j` for `i ≠ j`, each
//! of which two parties compute as XOR shares through **one 1-of-2 OT**:
//! the sender (holding `a_i`) offers `(r, r ⊕ a_i)` and the receiver
//! (holding `b_j`) picks with choice bit `b_j`, learning `r ⊕ a_i b_j`
//! while the sender keeps `r`. Per triple this costs `P(P−1)` OTs.
//!
//! This module is the trusted-dealer replacement for the GMW offline
//! phase; correctness is verified against the dealer semantics and the
//! triples plug into [`crate::gmw`]-style evaluation through
//! [`TripleBatch::into_per_party`].

use crate::ot;
use rand::Rng;

/// One party's share of one Beaver triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TripleShare {
    /// Share of the random `a`.
    pub a: bool,
    /// Share of the random `b`.
    pub b: bool,
    /// Share of the product `c = a ∧ b`.
    pub c: bool,
}

/// A batch of triples, indexed `[party][triple]`.
#[derive(Debug, Clone)]
pub struct TripleBatch {
    per_party: Vec<Vec<TripleShare>>,
    ots_performed: u64,
}

impl TripleBatch {
    /// Number of parties.
    pub fn parties(&self) -> usize {
        self.per_party.len()
    }

    /// Number of triples per party.
    pub fn len(&self) -> usize {
        self.per_party.first().map_or(0, Vec::len)
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// One party's shares.
    pub fn party(&self, party: usize) -> &[TripleShare] {
        &self.per_party[party]
    }

    /// Total 1-of-2 OTs executed to build the batch.
    pub fn ots_performed(&self) -> u64 {
        self.ots_performed
    }

    /// Consumes the batch into `[party][triple]` share vectors.
    pub fn into_per_party(self) -> Vec<Vec<TripleShare>> {
        self.per_party
    }
}

/// Generates `count` Beaver triples among `parties` parties using
/// pairwise OT (no dealer).
///
/// # Panics
///
/// Panics if `parties == 0`.
pub fn generate_triples<R: Rng + ?Sized>(parties: usize, count: usize, rng: &mut R) -> TripleBatch {
    assert!(parties >= 1, "at least one party required");
    let mut per_party: Vec<Vec<TripleShare>> = vec![Vec::with_capacity(count); parties];
    let mut ots = 0u64;
    for _ in 0..count {
        // Local sampling.
        let a: Vec<bool> = (0..parties).map(|_| rng.gen()).collect();
        let b: Vec<bool> = (0..parties).map(|_| rng.gen()).collect();
        // c_i starts from the diagonal term.
        let mut c: Vec<bool> = (0..parties).map(|i| a[i] & b[i]).collect();
        // Cross terms via OT: for each ordered pair (sender i, receiver j).
        for i in 0..parties {
            for j in 0..parties {
                if i == j {
                    continue;
                }
                // Sender i offers (r, r ⊕ a_i); receiver j chooses with
                // b_j and learns r ⊕ (a_i ∧ b_j).
                let r: bool = rng.gen();
                let m0 = u64::from(r);
                let m1 = u64::from(r ^ a[i]);
                let received = ot::transfer(m0, m1, b[j], rng) == 1;
                ots += 1;
                c[i] ^= r;
                c[j] ^= received;
            }
        }
        for (p, shares) in per_party.iter_mut().enumerate() {
            shares.push(TripleShare {
                a: a[p],
                b: b[p],
                c: c[p],
            });
        }
    }
    TripleBatch {
        per_party,
        ots_performed: ots,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn xor_all(batch: &TripleBatch, t: usize) -> (bool, bool, bool) {
        let mut acc = (false, false, false);
        for p in 0..batch.parties() {
            let s = batch.party(p)[t];
            acc = (acc.0 ^ s.a, acc.1 ^ s.b, acc.2 ^ s.c);
        }
        acc
    }

    #[test]
    fn triples_satisfy_beaver_relation() {
        let mut rng = StdRng::seed_from_u64(1);
        for parties in [1usize, 2, 3, 5] {
            let batch = generate_triples(parties, 32, &mut rng);
            assert_eq!(batch.parties(), parties);
            assert_eq!(batch.len(), 32);
            for t in 0..32 {
                let (a, b, c) = xor_all(&batch, t);
                assert_eq!(c, a & b, "parties={parties} triple={t}");
            }
        }
    }

    #[test]
    fn triple_values_are_random() {
        let mut rng = StdRng::seed_from_u64(2);
        let batch = generate_triples(3, 400, &mut rng);
        let ones = (0..400).filter(|&t| xor_all(&batch, t).0).count();
        assert!(
            (120..280).contains(&ones),
            "reconstructed a-bits should be ~uniform, got {ones}/400"
        );
    }

    #[test]
    fn ot_count_is_pairwise() {
        let mut rng = StdRng::seed_from_u64(3);
        let batch = generate_triples(4, 10, &mut rng);
        assert_eq!(batch.ots_performed(), 10 * 4 * 3);
        let single = generate_triples(1, 10, &mut rng);
        assert_eq!(single.ots_performed(), 0, "one party needs no OT");
    }

    #[test]
    fn generated_triples_drive_a_beaver_multiplication() {
        // Multiply secret bits x ∧ y using a generated triple, exactly
        // as the GMW AND gate does.
        let mut rng = StdRng::seed_from_u64(4);
        let parties = 3usize;
        for (x, y) in [(false, false), (false, true), (true, false), (true, true)] {
            let batch = generate_triples(parties, 1, &mut rng);
            // XOR-share the inputs.
            let mut xs: Vec<bool> = (0..parties - 1).map(|_| rng.gen()).collect();
            xs.push(x ^ xs.iter().fold(false, |a, &s| a ^ s));
            let mut ys: Vec<bool> = (0..parties - 1).map(|_| rng.gen()).collect();
            ys.push(y ^ ys.iter().fold(false, |a, &s| a ^ s));
            // Open d = x ⊕ a, e = y ⊕ b.
            let d = (0..parties).fold(false, |acc, p| acc ^ xs[p] ^ batch.party(p)[0].a);
            let e = (0..parties).fold(false, |acc, p| acc ^ ys[p] ^ batch.party(p)[0].b);
            // z_p = c_p ⊕ (d ∧ b_p) ⊕ (e ∧ a_p) ⊕ [p = 0](d ∧ e)
            let z = (0..parties).fold(false, |acc, p| {
                let t = batch.party(p)[0];
                acc ^ t.c ^ (d & t.b) ^ (e & t.a) ^ (p == 0 && d && e)
            });
            assert_eq!(z, x & y, "x={x} y={y}");
        }
    }
}
