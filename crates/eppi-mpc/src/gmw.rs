//! GMW-style secure evaluation of Boolean circuits — in-process backend.
//!
//! This is the generic-MPC engine standing in for FairplayMP (see
//! DESIGN.md §4 for the substitution rationale). Wire values are
//! XOR-secret-shared among the parties; XOR/NOT/Const gates are local,
//! while each AND gate consumes one **Beaver multiplication triple** and
//! one opening round (amortized across all AND gates at the same depth).
//!
//! Since the core refactor this module is a thin adapter: the protocol
//! itself lives in [`crate::gmw_core`] (one bit-packed [`PartyCore`] per
//! party, 64 wires per word) and the message flow in an
//! [`InProcessTransport`] hub driven in lockstep. The engine runs all
//! parties in-process under the semi-honest model the paper assumes
//! (§IV-C) and accounts the communication a real deployment would
//! perform: every AND layer is a batched all-to-all broadcast carrying
//! two logical bits per gate per ordered party pair, so per-AND-gate
//! traffic still grows quadratically with the party count — the
//! structural reason the paper's *pure MPC* baseline scales
//! super-linearly while ε-PPI pins the circuit to `c` coordinators.

use crate::circuit::{Circuit, InputLayout};
use crate::gmw_core::{
    deal_packed_triples, logical_bits, protocol_rounds, run_lockstep, PartyCore, PartyTriples,
    Schedule,
};
use eppi_net::transport::InProcessTransport;
use rand::Rng;

/// Communication/round statistics of one secure evaluation.
///
/// Traffic follows the workspace-wide two-unit convention documented in
/// `eppi-net`'s crate docs: [`bits_sent`](GmwStats::bits_sent) counts
/// logical payload bits (the paper's cost model) and
/// [`bytes`](GmwStats::bytes) the packed wire encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GmwStats {
    /// Number of participating parties.
    pub parties: usize,
    /// AND gates evaluated (Beaver triples consumed).
    pub triples_used: usize,
    /// Communication rounds: input sharing + one per AND layer + output
    /// opening.
    pub rounds: usize,
    /// Total logical payload bits sent across all parties.
    pub bits_sent: u64,
    /// Total point-to-point messages sent. Openings are batched per AND
    /// layer (one message per ordered party pair per round), not per
    /// gate.
    pub messages: u64,
    /// Total on-the-wire bytes of the packed batch encoding.
    pub bytes: u64,
}

/// Securely evaluates `circuit` among `layout.parties()` parties.
///
/// `inputs[p]` holds party `p`'s private input bits in layout order. The
/// returned output bits are the opened (public) circuit outputs, exactly
/// equal to `circuit.eval(flattened inputs)`; the [`GmwStats`] describe
/// the communication a distributed run would have performed.
///
/// # Panics
///
/// Panics if the layout's total input count differs from the circuit's,
/// or if `inputs` disagrees with the layout.
///
/// ```
/// use eppi_mpc::builder::{to_bits, word_value, CircuitBuilder};
/// use eppi_mpc::circuit::InputLayout;
/// use eppi_mpc::gmw::execute;
/// use rand::SeedableRng;
///
/// // Two parties each contribute a 4-bit word; compute their sum.
/// let mut cb = CircuitBuilder::new();
/// let a = cb.input_word(4);
/// let b = cb.input_word(4);
/// let sum = cb.add_words_expand(&a, &b);
/// let circuit = cb.finish_word(sum);
/// let layout = InputLayout::new(vec![4, 4]);
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let (out, stats) = execute(&circuit, &layout, &[to_bits(9, 4), to_bits(5, 4)], &mut rng);
/// assert_eq!(word_value(&out), 14);
/// assert_eq!(stats.parties, 2);
/// ```
pub fn execute<R: Rng + ?Sized>(
    circuit: &Circuit,
    layout: &InputLayout,
    inputs: &[Vec<bool>],
    rng: &mut R,
) -> (Vec<bool>, GmwStats) {
    execute_inner(circuit, layout, inputs, rng, None)
}

/// Like [`execute`], but consuming pre-generated Beaver triples (e.g.
/// from the dealer-free OT-based offline phase,
/// [`crate::triples::generate_triples`]) instead of the trusted dealer.
///
/// # Panics
///
/// Panics if the batch has the wrong party count or fewer triples than
/// the circuit has AND gates, in addition to [`execute`]'s conditions.
pub fn execute_with_triples<R: Rng + ?Sized>(
    circuit: &Circuit,
    layout: &InputLayout,
    inputs: &[Vec<bool>],
    batch: &crate::triples::TripleBatch,
    rng: &mut R,
) -> (Vec<bool>, GmwStats) {
    assert_eq!(
        batch.parties(),
        layout.parties(),
        "triple batch party count"
    );
    assert!(
        batch.len() >= circuit.stats().and_gates,
        "batch has {} triples but the circuit needs {}",
        batch.len(),
        circuit.stats().and_gates
    );
    execute_inner(circuit, layout, inputs, rng, Some(batch))
}

fn execute_inner<R: Rng + ?Sized>(
    circuit: &Circuit,
    layout: &InputLayout,
    inputs: &[Vec<bool>],
    rng: &mut R,
    pregenerated: Option<&crate::triples::TripleBatch>,
) -> (Vec<bool>, GmwStats) {
    assert_eq!(
        layout.total_inputs(),
        circuit.inputs(),
        "layout does not cover the circuit inputs"
    );
    let parties = layout.parties();
    let sched = Schedule::new(circuit);
    let mut triples: Vec<PartyTriples> = match pregenerated {
        Some(batch) => (0..parties)
            .map(|p| PartyTriples::from_batch(&sched, batch, p))
            .collect(),
        None => deal_packed_triples(parties, &sched, rng),
    };
    let mut cores: Vec<PartyCore<'_>> = (0..parties)
        .map(|p| PartyCore::new(circuit, layout, &sched, p, std::mem::take(&mut triples[p])))
        .collect();
    let mut hub = InProcessTransport::hub(parties);
    let outputs = run_lockstep(&mut cores, &mut hub, |p, core| {
        core.share_inputs(&inputs[p], rng)
    });
    let report = hub[0].report();
    debug_assert_eq!(report.bits, logical_bits(circuit, layout));
    let stats = GmwStats {
        parties,
        triples_used: sched.and_gates(),
        rounds: protocol_rounds(circuit, layout, &sched),
        bits_sent: report.bits,
        messages: report.messages,
        bytes: report.bytes,
    };
    (outputs, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{to_bits, word_value, CircuitBuilder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matches_cleartext_on_random_circuits() {
        let mut rng = StdRng::seed_from_u64(7);
        // Random arithmetic circuit: (a + b) ≥ c with random inputs.
        for trial in 0..20 {
            let mut cb = CircuitBuilder::new();
            let a = cb.input_word(6);
            let b = cb.input_word(6);
            let c = cb.input_word(7);
            let sum = cb.add_words_expand(&a, &b);
            let ge = cb.ge_words(&sum, &c);
            let circuit = cb.finish(vec![ge]);
            let layout = InputLayout::new(vec![6, 6, 7]);

            let (av, bv, cv) = (
                rng.gen_range(0u64..64),
                rng.gen_range(0u64..64),
                rng.gen_range(0u64..128),
            );
            let inputs = vec![to_bits(av, 6), to_bits(bv, 6), to_bits(cv, 7)];
            let flat = layout.flatten(&inputs);
            let expect = circuit.eval(&flat);
            let (got, stats) = execute(&circuit, &layout, &inputs, &mut rng);
            assert_eq!(got, expect, "trial {trial}: a={av} b={bv} c={cv}");
            assert_eq!(stats.parties, 3);
            assert!(stats.triples_used > 0);
        }
    }

    #[test]
    fn works_with_many_parties() {
        // 8 parties each supply one bit; compute the popcount.
        let parties = 8usize;
        let mut cb = CircuitBuilder::new();
        let bits: Vec<_> = (0..parties).map(|_| cb.input()).collect();
        let count = cb.popcount(&bits);
        let circuit = cb.finish_word(count);
        let layout = InputLayout::new(vec![1; parties]);
        let mut rng = StdRng::seed_from_u64(3);
        for pattern in [0u64, 1, 0b10110101, 0xff] {
            let inputs: Vec<Vec<bool>> =
                (0..parties).map(|p| vec![pattern >> p & 1 == 1]).collect();
            let (out, _) = execute(&circuit, &layout, &inputs, &mut rng);
            assert_eq!(word_value(&out), (pattern & 0xff).count_ones() as u64);
        }
    }

    #[test]
    fn single_party_degenerates_to_cleartext() {
        let mut cb = CircuitBuilder::new();
        let a = cb.input_word(4);
        let b = cb.const_word(5, 4);
        let lt = cb.lt_words(&a, &b);
        let circuit = cb.finish(vec![lt]);
        let layout = InputLayout::new(vec![4]);
        let mut rng = StdRng::seed_from_u64(1);
        let (out, stats) = execute(&circuit, &layout, &[to_bits(3, 4)], &mut rng);
        assert_eq!(out, vec![true]);
        assert_eq!(stats.bits_sent, 0, "single party sends nothing");
        assert_eq!(stats.bytes, 0, "single party sends nothing");
    }

    #[test]
    fn communication_grows_quadratically_with_parties() {
        // Same circuit, increasing party counts: bits per AND gate is
        // 2·P·(P−1).
        let build = |parties: usize| {
            let mut cb = CircuitBuilder::new();
            let bits: Vec<_> = (0..parties).map(|_| cb.input()).collect();
            let all = cb.and_many(&bits);
            (cb.finish(vec![all]), InputLayout::new(vec![1; parties]))
        };
        let mut rng = StdRng::seed_from_u64(5);
        let mut per_and: Vec<f64> = Vec::new();
        for parties in [2usize, 4, 8] {
            let (circuit, layout) = build(parties);
            let inputs = vec![vec![true]; parties];
            let (_, stats) = execute(&circuit, &layout, &inputs, &mut rng);
            per_and.push(stats.bits_sent as f64 / stats.triples_used as f64);
        }
        assert!(per_and[1] > 2.5 * per_and[0], "4 vs 2 parties: {per_and:?}");
        assert!(per_and[2] > 2.5 * per_and[1], "8 vs 4 parties: {per_and:?}");
    }

    #[test]
    fn rounds_follow_and_depth() {
        let mut cb = CircuitBuilder::new();
        let a = cb.input();
        let b = cb.input();
        let c = cb.input();
        let ab = cb.and(a, b);
        let abc = cb.and(ab, c);
        let circuit = cb.finish(vec![abc]);
        let layout = InputLayout::new(vec![1, 1, 1]);
        let mut rng = StdRng::seed_from_u64(2);
        let (_, stats) = execute(
            &circuit,
            &layout,
            &[vec![true], vec![true], vec![false]],
            &mut rng,
        );
        // input round + 2 AND layers + output round.
        assert_eq!(stats.rounds, 4);
    }

    #[test]
    fn bits_follow_cost_model_and_bytes_the_packed_framing() {
        let mut cb = CircuitBuilder::new();
        let a = cb.input_word(8);
        let b = cb.input_word(8);
        let lt = cb.lt_words(&a, &b);
        let circuit = cb.finish(vec![lt]);
        let layout = InputLayout::new(vec![8, 8]);
        let mut rng = StdRng::seed_from_u64(8);
        let (_, stats) = execute(
            &circuit,
            &layout,
            &[to_bits(3, 8), to_bits(200, 8)],
            &mut rng,
        );
        let s = circuit.stats();
        // bits: inputs·(P−1) + 2·ands·P·(P−1) + outputs·P·(P−1), P = 2.
        let expect = (s.inputs + 4 * s.and_gates + 2 * s.outputs) as u64;
        assert_eq!(stats.bits_sent, expect);
        // bytes: packed framing is a 4-byte header + 8 bytes per word;
        // input/output batches here are one word, AND-layer batches two
        // (word-aligned d then e halves).
        let layers = circuit.and_layers();
        let mut expect_bytes = 2 * 12u64; // input scatter, one 8-bit batch each way
        for layer in &layers {
            let words = 2 * layer.len().div_ceil(64);
            expect_bytes += 2 * (4 + 8 * words) as u64;
        }
        expect_bytes += 2 * 12; // output opening, one 1-bit batch each way
        assert_eq!(stats.bytes, expect_bytes);
        assert_eq!(stats.messages, 2 + 2 * layers.len() as u64 + 2);
    }

    #[test]
    fn ot_generated_triples_evaluate_correctly() {
        // The dealer-free offline phase feeds the same online phase.
        let mut cb = CircuitBuilder::new();
        let a = cb.input_word(4);
        let b = cb.input_word(4);
        let sum = cb.add_words_expand(&a, &b);
        let circuit = cb.finish_word(sum);
        let layout = InputLayout::new(vec![4, 4]);
        let mut rng = StdRng::seed_from_u64(99);
        let and_gates = circuit.stats().and_gates;
        let batch = crate::triples::generate_triples(2, and_gates, &mut rng);
        let inputs = vec![to_bits(11, 4), to_bits(6, 4)];
        let (out, stats) = execute_with_triples(&circuit, &layout, &inputs, &batch, &mut rng);
        assert_eq!(word_value(&out), 17);
        assert_eq!(stats.triples_used, and_gates);
    }

    #[test]
    #[should_panic(expected = "triples but the circuit needs")]
    fn insufficient_triples_rejected() {
        let mut cb = CircuitBuilder::new();
        let a = cb.input();
        let b = cb.input();
        let ab = cb.and(a, b);
        let circuit = cb.finish(vec![ab]);
        let layout = InputLayout::new(vec![1, 1]);
        let mut rng = StdRng::seed_from_u64(0);
        let batch = crate::triples::generate_triples(2, 0, &mut rng);
        execute_with_triples(
            &circuit,
            &layout,
            &[vec![true], vec![true]],
            &batch,
            &mut rng,
        );
    }

    #[test]
    #[should_panic(expected = "does not cover")]
    fn layout_arity_checked() {
        let mut cb = CircuitBuilder::new();
        cb.input();
        let circuit = cb.finish(vec![]);
        let layout = InputLayout::new(vec![2]);
        let mut rng = StdRng::seed_from_u64(0);
        execute(&circuit, &layout, &[vec![true, false]], &mut rng);
    }
}
