//! GMW-style secure evaluation of Boolean circuits.
//!
//! This is the generic-MPC engine standing in for FairplayMP (see
//! DESIGN.md §4 for the substitution rationale). Wire values are
//! XOR-secret-shared among the parties; XOR/NOT/Const gates are local,
//! while each AND gate consumes one **Beaver multiplication triple** and
//! one opening round (amortized across all AND gates at the same depth).
//!
//! The engine runs all parties in-process under the semi-honest model the
//! paper assumes (§IV-C) and accounts the communication a real deployment
//! would perform: every opening is a broadcast of one bit from each party
//! to each other party, so per-AND-gate traffic grows quadratically with
//! the party count — the structural reason the paper's *pure MPC*
//! baseline scales super-linearly while ε-PPI pins the circuit to `c`
//! coordinators.

use crate::circuit::{Circuit, Gate, InputLayout};
use rand::Rng;

/// Communication/round statistics of one secure evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GmwStats {
    /// Number of participating parties.
    pub parties: usize,
    /// AND gates evaluated (Beaver triples consumed).
    pub triples_used: usize,
    /// Communication rounds: input sharing + one per AND layer + output
    /// opening.
    pub rounds: usize,
    /// Total bits sent across all parties.
    pub bits_sent: u64,
    /// Total point-to-point messages sent.
    pub messages: u64,
}

/// One Beaver triple, XOR-shared among the parties.
#[derive(Debug, Clone)]
struct SharedTriple {
    a: Vec<bool>,
    b: Vec<bool>,
    c: Vec<bool>,
}

/// The trusted dealer producing Beaver triples.
///
/// A real deployment would replace this with an offline OT-based triple
/// generation phase; the dealer abstraction keeps the online phase —
/// the part the paper measures — identical.
#[derive(Debug)]
pub struct TripleDealer<'r, R: Rng + ?Sized> {
    rng: &'r mut R,
    parties: usize,
}

impl<'r, R: Rng + ?Sized> TripleDealer<'r, R> {
    /// Creates a dealer for `parties` parties.
    ///
    /// # Panics
    ///
    /// Panics if `parties == 0`.
    pub fn new(parties: usize, rng: &'r mut R) -> Self {
        assert!(parties >= 1, "at least one party required");
        TripleDealer { rng, parties }
    }

    fn share_bit(&mut self, secret: bool) -> Vec<bool> {
        let mut shares: Vec<bool> = (0..self.parties - 1).map(|_| self.rng.gen()).collect();
        let xor_rest = shares.iter().fold(false, |acc, &s| acc ^ s);
        shares.push(secret ^ xor_rest);
        shares
    }

    fn triple(&mut self) -> SharedTriple {
        let a: bool = self.rng.gen();
        let b: bool = self.rng.gen();
        let c = a & b;
        SharedTriple {
            a: self.share_bit(a),
            b: self.share_bit(b),
            c: self.share_bit(c),
        }
    }
}

/// Securely evaluates `circuit` among `layout.parties()` parties.
///
/// `inputs[p]` holds party `p`'s private input bits in layout order. The
/// returned output bits are the opened (public) circuit outputs, exactly
/// equal to `circuit.eval(flattened inputs)`; the [`GmwStats`] describe
/// the communication a distributed run would have performed.
///
/// # Panics
///
/// Panics if the layout's total input count differs from the circuit's,
/// or if `inputs` disagrees with the layout.
///
/// ```
/// use eppi_mpc::builder::{to_bits, word_value, CircuitBuilder};
/// use eppi_mpc::circuit::InputLayout;
/// use eppi_mpc::gmw::execute;
/// use rand::SeedableRng;
///
/// // Two parties each contribute a 4-bit word; compute their sum.
/// let mut cb = CircuitBuilder::new();
/// let a = cb.input_word(4);
/// let b = cb.input_word(4);
/// let sum = cb.add_words_expand(&a, &b);
/// let circuit = cb.finish_word(sum);
/// let layout = InputLayout::new(vec![4, 4]);
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let (out, stats) = execute(&circuit, &layout, &[to_bits(9, 4), to_bits(5, 4)], &mut rng);
/// assert_eq!(word_value(&out), 14);
/// assert_eq!(stats.parties, 2);
/// ```
pub fn execute<R: Rng + ?Sized>(
    circuit: &Circuit,
    layout: &InputLayout,
    inputs: &[Vec<bool>],
    rng: &mut R,
) -> (Vec<bool>, GmwStats) {
    execute_inner(circuit, layout, inputs, rng, None)
}

/// Like [`execute`], but consuming pre-generated Beaver triples (e.g.
/// from the dealer-free OT-based offline phase,
/// [`crate::triples::generate_triples`]) instead of the trusted dealer.
///
/// # Panics
///
/// Panics if the batch has the wrong party count or fewer triples than
/// the circuit has AND gates, in addition to [`execute`]'s conditions.
pub fn execute_with_triples<R: Rng + ?Sized>(
    circuit: &Circuit,
    layout: &InputLayout,
    inputs: &[Vec<bool>],
    batch: &crate::triples::TripleBatch,
    rng: &mut R,
) -> (Vec<bool>, GmwStats) {
    assert_eq!(
        batch.parties(),
        layout.parties(),
        "triple batch party count"
    );
    assert!(
        batch.len() >= circuit.stats().and_gates,
        "batch has {} triples but the circuit needs {}",
        batch.len(),
        circuit.stats().and_gates
    );
    execute_inner(circuit, layout, inputs, rng, Some(batch))
}

fn execute_inner<R: Rng + ?Sized>(
    circuit: &Circuit,
    layout: &InputLayout,
    inputs: &[Vec<bool>],
    rng: &mut R,
    pregenerated: Option<&crate::triples::TripleBatch>,
) -> (Vec<bool>, GmwStats) {
    assert_eq!(
        layout.total_inputs(),
        circuit.inputs(),
        "layout does not cover the circuit inputs"
    );
    let parties = layout.parties();
    let mut next_triple = 0usize;
    let mut dealer = TripleDealer::new(parties, rng);

    let mut stats = GmwStats {
        parties,
        ..GmwStats::default()
    };

    // wire_shares[w][p] = party p's XOR share of wire w.
    let mut wire_shares: Vec<Vec<bool>> = Vec::with_capacity(circuit.wires());

    // Input sharing round: each owner splits its bit to all parties.
    let flat = layout.flatten(inputs);
    for (w, &bit) in flat.iter().enumerate() {
        let owner = layout.party_of(w);
        let mut shares: Vec<bool> = (0..parties).map(|_| dealer.rng.gen()).collect();
        let xor_others = shares
            .iter()
            .enumerate()
            .filter(|&(p, _)| p != owner)
            .fold(false, |acc, (_, &s)| acc ^ s);
        shares[owner] = bit ^ xor_others;
        wire_shares.push(shares);
        // The owner sends one share to each other party.
        stats.bits_sent += (parties - 1) as u64;
        stats.messages += (parties - 1) as u64;
    }
    if parties > 1 && circuit.inputs() > 0 {
        stats.rounds += 1;
    }

    // Pre-compute AND layering for round accounting.
    let and_layers = circuit.and_layers();
    stats.rounds += and_layers.len();

    for gate in circuit.gates() {
        let shares = match *gate {
            Gate::Xor(a, b) => {
                let (sa, sb) = (&wire_shares[a.index()], &wire_shares[b.index()]);
                sa.iter().zip(sb).map(|(&x, &y)| x ^ y).collect()
            }
            Gate::Not(a) => {
                // Party 0 flips its share.
                let sa = &wire_shares[a.index()];
                sa.iter()
                    .enumerate()
                    .map(|(p, &x)| if p == 0 { !x } else { x })
                    .collect()
            }
            Gate::Const(v) => (0..parties).map(|p| p == 0 && v).collect(),
            Gate::And(a, b) => {
                let triple = match pregenerated {
                    Some(batch) => {
                        let t = next_triple;
                        next_triple += 1;
                        SharedTriple {
                            a: (0..parties).map(|p| batch.party(p)[t].a).collect(),
                            b: (0..parties).map(|p| batch.party(p)[t].b).collect(),
                            c: (0..parties).map(|p| batch.party(p)[t].c).collect(),
                        }
                    }
                    None => dealer.triple(),
                };
                let sa = &wire_shares[a.index()];
                let sb = &wire_shares[b.index()];
                // d = x ⊕ a, e = y ⊕ b — opened by all parties.
                let d_shares: Vec<bool> =
                    sa.iter().zip(&triple.a).map(|(&x, &ta)| x ^ ta).collect();
                let e_shares: Vec<bool> =
                    sb.iter().zip(&triple.b).map(|(&y, &tb)| y ^ tb).collect();
                let d = d_shares.iter().fold(false, |acc, &s| acc ^ s);
                let e = e_shares.iter().fold(false, |acc, &s| acc ^ s);
                // Opening: every party broadcasts its d and e shares.
                stats.bits_sent += 2 * (parties * (parties - 1)) as u64;
                stats.messages += (parties * (parties - 1)) as u64;
                stats.triples_used += 1;
                // z_p = c_p ⊕ (d ∧ b_p) ⊕ (e ∧ a_p) ⊕ [p = 0](d ∧ e)
                (0..parties)
                    .map(|p| {
                        let mut z = triple.c[p] ^ (d & triple.b[p]) ^ (e & triple.a[p]);
                        if p == 0 {
                            z ^= d & e;
                        }
                        z
                    })
                    .collect()
            }
        };
        wire_shares.push(shares);
    }

    // Output opening: every party broadcasts its output shares.
    let outputs: Vec<bool> = circuit
        .outputs()
        .iter()
        .map(|o| wire_shares[o.index()].iter().fold(false, |acc, &s| acc ^ s))
        .collect();
    if !outputs.is_empty() && parties > 1 {
        stats.rounds += 1;
        stats.bits_sent += (outputs.len() * parties * (parties - 1)) as u64;
        stats.messages += (parties * (parties - 1)) as u64;
    }

    (outputs, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{to_bits, word_value, CircuitBuilder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matches_cleartext_on_random_circuits() {
        let mut rng = StdRng::seed_from_u64(7);
        // Random arithmetic circuit: (a + b) ≥ c with random inputs.
        for trial in 0..20 {
            let mut cb = CircuitBuilder::new();
            let a = cb.input_word(6);
            let b = cb.input_word(6);
            let c = cb.input_word(7);
            let sum = cb.add_words_expand(&a, &b);
            let ge = cb.ge_words(&sum, &c);
            let circuit = cb.finish(vec![ge]);
            let layout = InputLayout::new(vec![6, 6, 7]);

            let (av, bv, cv) = (
                rng.gen_range(0u64..64),
                rng.gen_range(0u64..64),
                rng.gen_range(0u64..128),
            );
            let inputs = vec![to_bits(av, 6), to_bits(bv, 6), to_bits(cv, 7)];
            let flat = layout.flatten(&inputs);
            let expect = circuit.eval(&flat);
            let (got, stats) = execute(&circuit, &layout, &inputs, &mut rng);
            assert_eq!(got, expect, "trial {trial}: a={av} b={bv} c={cv}");
            assert_eq!(stats.parties, 3);
            assert!(stats.triples_used > 0);
        }
    }

    #[test]
    fn works_with_many_parties() {
        // 8 parties each supply one bit; compute the popcount.
        let parties = 8usize;
        let mut cb = CircuitBuilder::new();
        let bits: Vec<_> = (0..parties).map(|_| cb.input()).collect();
        let count = cb.popcount(&bits);
        let circuit = cb.finish_word(count);
        let layout = InputLayout::new(vec![1; parties]);
        let mut rng = StdRng::seed_from_u64(3);
        for pattern in [0u64, 1, 0b10110101, 0xff] {
            let inputs: Vec<Vec<bool>> =
                (0..parties).map(|p| vec![pattern >> p & 1 == 1]).collect();
            let (out, _) = execute(&circuit, &layout, &inputs, &mut rng);
            assert_eq!(word_value(&out), (pattern & 0xff).count_ones() as u64);
        }
    }

    #[test]
    fn single_party_degenerates_to_cleartext() {
        let mut cb = CircuitBuilder::new();
        let a = cb.input_word(4);
        let b = cb.const_word(5, 4);
        let lt = cb.lt_words(&a, &b);
        let circuit = cb.finish(vec![lt]);
        let layout = InputLayout::new(vec![4]);
        let mut rng = StdRng::seed_from_u64(1);
        let (out, stats) = execute(&circuit, &layout, &[to_bits(3, 4)], &mut rng);
        assert_eq!(out, vec![true]);
        assert_eq!(stats.bits_sent, 0, "single party sends nothing");
    }

    #[test]
    fn communication_grows_quadratically_with_parties() {
        // Same circuit, increasing party counts: bits per AND gate is
        // 2·P·(P−1).
        let build = |parties: usize| {
            let mut cb = CircuitBuilder::new();
            let bits: Vec<_> = (0..parties).map(|_| cb.input()).collect();
            let all = cb.and_many(&bits);
            (cb.finish(vec![all]), InputLayout::new(vec![1; parties]))
        };
        let mut rng = StdRng::seed_from_u64(5);
        let mut per_and: Vec<f64> = Vec::new();
        for parties in [2usize, 4, 8] {
            let (circuit, layout) = build(parties);
            let inputs = vec![vec![true]; parties];
            let (_, stats) = execute(&circuit, &layout, &inputs, &mut rng);
            per_and.push(stats.bits_sent as f64 / stats.triples_used as f64);
        }
        assert!(per_and[1] > 2.5 * per_and[0], "4 vs 2 parties: {per_and:?}");
        assert!(per_and[2] > 2.5 * per_and[1], "8 vs 4 parties: {per_and:?}");
    }

    #[test]
    fn rounds_follow_and_depth() {
        let mut cb = CircuitBuilder::new();
        let a = cb.input();
        let b = cb.input();
        let c = cb.input();
        let ab = cb.and(a, b);
        let abc = cb.and(ab, c);
        let circuit = cb.finish(vec![abc]);
        let layout = InputLayout::new(vec![1, 1, 1]);
        let mut rng = StdRng::seed_from_u64(2);
        let (_, stats) = execute(
            &circuit,
            &layout,
            &[vec![true], vec![true], vec![false]],
            &mut rng,
        );
        // input round + 2 AND layers + output round.
        assert_eq!(stats.rounds, 4);
    }

    #[test]
    fn ot_generated_triples_evaluate_correctly() {
        // The dealer-free offline phase feeds the same online phase.
        let mut cb = CircuitBuilder::new();
        let a = cb.input_word(4);
        let b = cb.input_word(4);
        let sum = cb.add_words_expand(&a, &b);
        let circuit = cb.finish_word(sum);
        let layout = InputLayout::new(vec![4, 4]);
        let mut rng = StdRng::seed_from_u64(99);
        let and_gates = circuit.stats().and_gates;
        let batch = crate::triples::generate_triples(2, and_gates, &mut rng);
        let inputs = vec![to_bits(11, 4), to_bits(6, 4)];
        let (out, stats) = execute_with_triples(&circuit, &layout, &inputs, &batch, &mut rng);
        assert_eq!(word_value(&out), 17);
        assert_eq!(stats.triples_used, and_gates);
    }

    #[test]
    #[should_panic(expected = "triples but the circuit needs")]
    fn insufficient_triples_rejected() {
        let mut cb = CircuitBuilder::new();
        let a = cb.input();
        let b = cb.input();
        let ab = cb.and(a, b);
        let circuit = cb.finish(vec![ab]);
        let layout = InputLayout::new(vec![1, 1]);
        let mut rng = StdRng::seed_from_u64(0);
        let batch = crate::triples::generate_triples(2, 0, &mut rng);
        execute_with_triples(
            &circuit,
            &layout,
            &[vec![true], vec![true]],
            &batch,
            &mut rng,
        );
    }

    #[test]
    #[should_panic(expected = "does not cover")]
    fn layout_arity_checked() {
        let mut cb = CircuitBuilder::new();
        cb.input();
        let circuit = cb.finish(vec![]);
        let layout = InputLayout::new(vec![2]);
        let mut rng = StdRng::seed_from_u64(0);
        execute(&circuit, &layout, &[vec![true, false]], &mut rng);
    }
}
