//! Modular arithmetic over the share group `Z_q`.
//!
//! Additive secret sharing (§IV-B.1 of the paper) works over any cyclic
//! group `Z_q`; the paper's running example uses `q = 5`. Two choices
//! matter in practice:
//!
//! * a **power-of-two modulus** `q = 2^w` lets the Boolean-circuit stage
//!   (CountBelow) reduce sums for free by dropping the carry, and
//! * a **prime modulus** is required if shares are later multiplied
//!   (not needed by ε-PPI, but supported for completeness).
//!
//! The modulus only needs to exceed the largest possible secret (the
//! identity frequency `σ_j · m ≤ m`).

use rand::Rng;
use std::fmt;

/// A share-group modulus `q ≥ 2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Modulus(u64);

impl Modulus {
    /// The default protocol modulus `2^32`: wrap-free for any network of
    /// fewer than 4·10⁹ providers and circuit-friendly (32-bit words).
    pub const DEFAULT: Modulus = Modulus(1 << 32);

    /// Creates a modulus.
    ///
    /// # Panics
    ///
    /// Panics if `q < 2`.
    pub fn new(q: u64) -> Self {
        assert!(q >= 2, "modulus must be at least 2, got {q}");
        Modulus(q)
    }

    /// Creates the power-of-two modulus `2^bits`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ bits ≤ 63`.
    pub fn pow2(bits: u32) -> Self {
        assert!(
            (1..=63).contains(&bits),
            "bits must be in 1..=63, got {bits}"
        );
        Modulus(1u64 << bits)
    }

    /// The raw modulus value `q`.
    pub fn value(self) -> u64 {
        self.0
    }

    /// Number of bits needed to represent an element (`⌈log₂ q⌉`).
    pub fn bits(self) -> u32 {
        if self.0.is_power_of_two() {
            self.0.trailing_zeros()
        } else {
            64 - (self.0 - 1).leading_zeros()
        }
    }

    /// Whether `q` is a power of two (circuit-friendly reduction).
    pub fn is_pow2(self) -> bool {
        self.0.is_power_of_two()
    }

    /// Reduces an arbitrary value into `[0, q)`.
    #[inline]
    pub fn reduce(self, v: u64) -> u64 {
        v % self.0
    }

    /// Modular addition.
    #[inline]
    pub fn add(self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.0 && b < self.0);
        let s = (a as u128 + b as u128) % self.0 as u128;
        s as u64
    }

    /// Modular subtraction.
    #[inline]
    pub fn sub(self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.0 && b < self.0);
        if a >= b {
            a - b
        } else {
            a + (self.0 - b)
        }
    }

    /// Modular negation.
    #[inline]
    pub fn neg(self, a: u64) -> u64 {
        debug_assert!(a < self.0);
        if a == 0 {
            0
        } else {
            self.0 - a
        }
    }

    /// Modular multiplication (via 128-bit intermediate).
    #[inline]
    pub fn mul(self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.0 && b < self.0);
        ((a as u128 * b as u128) % self.0 as u128) as u64
    }

    /// Samples a uniform element of `Z_q`.
    pub fn random<R: Rng + ?Sized>(self, rng: &mut R) -> u64 {
        rng.gen_range(0..self.0)
    }
}

impl Default for Modulus {
    fn default() -> Self {
        Modulus::DEFAULT
    }
}

impl fmt::Display for Modulus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Z_{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn add_sub_neg_roundtrip() {
        let q = Modulus::new(97);
        for a in [0u64, 1, 50, 96] {
            for b in [0u64, 1, 47, 96] {
                let s = q.add(a, b);
                assert!(s < 97);
                assert_eq!(q.sub(s, b), a, "a={a} b={b}");
            }
            assert_eq!(q.add(a, q.neg(a)), 0);
        }
    }

    #[test]
    fn paper_example_modulus_five() {
        // The worked example in Fig. 3: (2 + 3 + 0) mod 5 = 0.
        let q = Modulus::new(5);
        assert_eq!(q.add(q.add(2, 3), 0), 0);
        // (4 + 2) mod 5 = 1 (coordinator super-share sum).
        assert_eq!(q.add(4, 2), 1);
        // (1 + 4 + 2) mod 5 = 2 (total appearances of t0).
        assert_eq!(q.add(q.add(1, 4), 2), 2);
    }

    #[test]
    fn mul_matches_bigint() {
        let q = Modulus::new((1 << 61) - 1);
        let a = 0xdeadbeefdeadbeu64 % q.value();
        let b = 0x1234567890abcdu64 % q.value();
        let expect = ((a as u128 * b as u128) % q.value() as u128) as u64;
        assert_eq!(q.mul(a, b), expect);
    }

    #[test]
    fn pow2_properties() {
        let q = Modulus::pow2(32);
        assert!(q.is_pow2());
        assert_eq!(q.bits(), 32);
        assert_eq!(q.value(), 1 << 32);
        let q5 = Modulus::new(5);
        assert!(!q5.is_pow2());
        assert_eq!(q5.bits(), 3);
    }

    #[test]
    fn random_is_in_range() {
        let q = Modulus::new(7);
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 7];
        for _ in 0..200 {
            let v = q.random(&mut rng);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn modulus_one_rejected() {
        Modulus::new(1);
    }

    #[test]
    fn display() {
        assert_eq!(Modulus::new(5).to_string(), "Z_5");
    }
}
