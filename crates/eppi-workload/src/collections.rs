//! Synthetic information-network workloads.
//!
//! Stand-in for the paper's evaluation dataset (DESIGN.md §4): a
//! "collection table" mapping owner identities to the providers holding
//! their records, with Zipf-skewed identity frequencies, plus
//! frequency-pinned cohorts for the sweeps of Fig. 5 and the ε
//! assignments of §V-A ("we randomly generate the privacy degree ε in
//! the domain \[0, 1\]").

use crate::zipf::Zipf;
use eppi_core::model::{Epsilon, MembershipMatrix, OwnerId, ProviderId};
use rand::seq::index::sample;
use rand::Rng;

/// Builder for a Zipf-skewed collection table.
///
/// ```
/// use eppi_workload::collections::CollectionTable;
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let matrix = CollectionTable::new(500, 200)
///     .zipf_exponent(1.0)
///     .max_frequency(50)
///     .build(&mut rng);
/// assert_eq!(matrix.providers(), 500);
/// assert_eq!(matrix.owners(), 200);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CollectionTable {
    providers: usize,
    owners: usize,
    zipf_exponent: f64,
    min_frequency: usize,
    max_frequency: usize,
}

impl CollectionTable {
    /// Starts a builder for `providers × owners` with the paper-like
    /// defaults: Zipf exponent 1.0, frequencies from 1 up to 5% of the
    /// network.
    ///
    /// # Panics
    ///
    /// Panics if `providers == 0` or `owners == 0`.
    pub fn new(providers: usize, owners: usize) -> Self {
        assert!(providers >= 1, "at least one provider required");
        assert!(owners >= 1, "at least one owner required");
        CollectionTable {
            providers,
            owners,
            zipf_exponent: 1.0,
            min_frequency: 1,
            max_frequency: (providers / 20).max(1),
        }
    }

    /// Sets the Zipf skew of identity frequencies (0 = uniform).
    pub fn zipf_exponent(&mut self, s: f64) -> &mut Self {
        self.zipf_exponent = s;
        self
    }

    /// Sets the smallest identity frequency (default 1).
    pub fn min_frequency(&mut self, f: usize) -> &mut Self {
        self.min_frequency = f.max(1);
        self
    }

    /// Sets the largest identity frequency (clamped to the provider
    /// count).
    pub fn max_frequency(&mut self, f: usize) -> &mut Self {
        self.max_frequency = f.clamp(1, self.providers);
        self
    }

    /// Generates the membership matrix: each owner's frequency is drawn
    /// from the Zipf law over `[min_frequency, max_frequency]` (rank 1
    /// maps to the *minimum* — most identities are rare, as in the TREC
    /// data) and assigned to that many distinct random providers.
    pub fn build<R: Rng + ?Sized>(&self, rng: &mut R) -> MembershipMatrix {
        let lo = self.min_frequency.min(self.providers);
        let hi = self.max_frequency.clamp(lo, self.providers);
        let span = hi - lo + 1;
        let zipf = Zipf::new(span, self.zipf_exponent);
        let mut matrix = MembershipMatrix::new(self.providers, self.owners);
        for owner in 0..self.owners {
            let f = lo + zipf.sample(rng) - 1;
            for p in sample(rng, self.providers, f) {
                matrix.set(ProviderId(p as u32), OwnerId(owner as u32), true);
            }
        }
        matrix
    }
}

/// A cohort of identities pinned to an exact frequency — the x-axis of
/// the Fig. 4a / Fig. 5a sweeps ("varying identity frequency").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cohort {
    /// Number of identities in the cohort.
    pub owners: usize,
    /// The exact per-identity frequency (providers holding each
    /// identity).
    pub frequency: usize,
}

/// Builds a matrix from frequency-pinned cohorts: each owner of cohort
/// `k` appears in exactly `cohorts[k].frequency` distinct random
/// providers.
///
/// # Panics
///
/// Panics if any cohort frequency exceeds the provider count, or if
/// `providers == 0`.
pub fn pinned_cohorts<R: Rng + ?Sized>(
    providers: usize,
    cohorts: &[Cohort],
    rng: &mut R,
) -> MembershipMatrix {
    assert!(providers >= 1, "at least one provider required");
    let owners: usize = cohorts.iter().map(|c| c.owners).sum();
    let mut matrix = MembershipMatrix::new(providers, owners);
    let mut next = 0u32;
    for cohort in cohorts {
        assert!(
            cohort.frequency <= providers,
            "cohort frequency {} exceeds provider count {providers}",
            cohort.frequency
        );
        for _ in 0..cohort.owners {
            for p in sample(rng, providers, cohort.frequency) {
                matrix.set(ProviderId(p as u32), OwnerId(next), true);
            }
            next += 1;
        }
    }
    matrix
}

/// Draws each owner's ε uniformly from `\[0, 1\]` — the paper's default
/// experimental assignment (§V-A).
pub fn uniform_epsilons<R: Rng + ?Sized>(owners: usize, rng: &mut R) -> Vec<Epsilon> {
    (0..owners)
        .map(|_| Epsilon::saturating(rng.gen::<f64>()))
        .collect()
}

/// Assigns the same ε to every owner (used when a figure fixes ε, e.g.
/// Fig. 4a at ε = 0.8).
pub fn fixed_epsilons(owners: usize, eps: Epsilon) -> Vec<Epsilon> {
    vec![eps; owners]
}

/// A two-tier "VIP" assignment: a fraction of owners (celebrities in the
/// paper's motivating example) demand `vip`, the rest `regular`.
///
/// # Panics
///
/// Panics if `vip_fraction` is not in `\[0, 1\]`.
pub fn tiered_epsilons<R: Rng + ?Sized>(
    owners: usize,
    vip_fraction: f64,
    vip: Epsilon,
    regular: Epsilon,
    rng: &mut R,
) -> Vec<Epsilon> {
    assert!(
        (0.0..=1.0).contains(&vip_fraction),
        "vip_fraction must be in [0, 1]"
    );
    (0..owners)
        .map(|_| {
            if rng.gen::<f64>() < vip_fraction {
                vip
            } else {
                regular
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn builder_respects_dimensions_and_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = CollectionTable::new(200, 100)
            .zipf_exponent(1.2)
            .min_frequency(2)
            .max_frequency(30)
            .build(&mut rng);
        assert_eq!(m.providers(), 200);
        assert_eq!(m.owners(), 100);
        for f in m.frequencies() {
            assert!((2..=30).contains(&f), "frequency {f} out of bounds");
        }
    }

    #[test]
    fn zipf_skew_makes_low_frequencies_common() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = CollectionTable::new(1000, 500)
            .zipf_exponent(1.5)
            .min_frequency(1)
            .max_frequency(500)
            .build(&mut rng);
        let freqs = m.frequencies();
        let low = freqs.iter().filter(|&&f| f <= 50).count();
        assert!(
            low > 300,
            "expected mostly rare identities, got {low}/500 low"
        );
    }

    #[test]
    fn pinned_cohorts_exact_frequencies() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = pinned_cohorts(
            100,
            &[
                Cohort {
                    owners: 5,
                    frequency: 10,
                },
                Cohort {
                    owners: 3,
                    frequency: 90,
                },
            ],
            &mut rng,
        );
        assert_eq!(m.owners(), 8);
        let freqs = m.frequencies();
        assert!(freqs[..5].iter().all(|&f| f == 10));
        assert!(freqs[5..].iter().all(|&f| f == 90));
    }

    #[test]
    #[should_panic(expected = "exceeds provider count")]
    fn cohort_frequency_validated() {
        let mut rng = StdRng::seed_from_u64(0);
        pinned_cohorts(
            10,
            &[Cohort {
                owners: 1,
                frequency: 11,
            }],
            &mut rng,
        );
    }

    #[test]
    fn uniform_epsilons_cover_the_range() {
        let mut rng = StdRng::seed_from_u64(4);
        let eps = uniform_epsilons(2000, &mut rng);
        assert_eq!(eps.len(), 2000);
        let mean: f64 = eps.iter().map(|e| e.value()).sum::<f64>() / 2000.0;
        assert!((mean - 0.5).abs() < 0.05, "mean ε {mean} should be ~0.5");
        assert!(eps.iter().any(|e| e.value() < 0.1));
        assert!(eps.iter().any(|e| e.value() > 0.9));
    }

    #[test]
    fn fixed_and_tiered_assignments() {
        let e8 = Epsilon::saturating(0.8);
        let e2 = Epsilon::saturating(0.2);
        assert!(fixed_epsilons(5, e8).iter().all(|&e| e == e8));

        let mut rng = StdRng::seed_from_u64(5);
        let tiered = tiered_epsilons(10_000, 0.1, e8, e2, &mut rng);
        let vips = tiered.iter().filter(|&&e| e == e8).count();
        assert!((800..1200).contains(&vips), "vip count {vips} far from 10%");
    }
}
