//! Paper-scale dataset presets.
//!
//! The paper's dataset \[23\] spans 2,500–25,000 "collections" (providers)
//! derived from TREC-WT10g, with source URLs as identities and a default
//! cap of 10,000 providers in the experiments. These presets bundle the
//! corresponding generator configurations so experiments and examples
//! can say `Preset::Default.build(rng)` instead of repeating magic
//! numbers.

use crate::collections::{uniform_epsilons, CollectionTable};
use eppi_core::model::{Epsilon, MembershipMatrix};
use rand::Rng;

/// Named network scales mirroring §V-A's setup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preset {
    /// The dataset's smallest configuration: 2,500 providers.
    Small,
    /// The experiments' default: 10,000 providers ("if not otherwise
    /// specified, we use no more than 10,000 providers").
    Default,
    /// The dataset's largest configuration: 25,000 providers.
    Large,
    /// A miniature for tests and doc examples: 250 providers.
    Mini,
}

impl Preset {
    /// Number of providers `m`.
    pub fn providers(self) -> usize {
        match self {
            Preset::Small => 2_500,
            Preset::Default => 10_000,
            Preset::Large => 25_000,
            Preset::Mini => 250,
        }
    }

    /// Number of owner identities `n` (the paper indexes many more
    /// identities than providers; we scale at 2× for tractable sweeps).
    pub fn owners(self) -> usize {
        self.providers() * 2
    }

    /// Builds the membership matrix with TREC-like skew: Zipf(1.0)
    /// frequencies from 1 up to 5% of the network.
    pub fn build<R: Rng + ?Sized>(self, rng: &mut R) -> MembershipMatrix {
        CollectionTable::new(self.providers(), self.owners())
            .zipf_exponent(1.0)
            .min_frequency(1)
            .max_frequency(self.providers() / 20)
            .build(rng)
    }

    /// Builds the matrix together with the paper's default ε assignment
    /// (uniform in `\[0, 1\]`, §V-A).
    pub fn build_with_epsilons<R: Rng + ?Sized>(
        self,
        rng: &mut R,
    ) -> (MembershipMatrix, Vec<Epsilon>) {
        let matrix = self.build(rng);
        let eps = uniform_epsilons(matrix.owners(), rng);
        (matrix, eps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn preset_scales_match_the_paper() {
        assert_eq!(Preset::Small.providers(), 2_500);
        assert_eq!(Preset::Default.providers(), 10_000);
        assert_eq!(Preset::Large.providers(), 25_000);
    }

    #[test]
    fn mini_preset_builds_quickly_and_consistently() {
        let mut rng = StdRng::seed_from_u64(1);
        let (matrix, eps) = Preset::Mini.build_with_epsilons(&mut rng);
        assert_eq!(matrix.providers(), 250);
        assert_eq!(matrix.owners(), 500);
        assert_eq!(eps.len(), 500);
        let freqs = matrix.frequencies();
        assert!(freqs.iter().all(|&f| (1..=12).contains(&f)));
    }
}
