//! # eppi-workload — synthetic information-network workloads
//!
//! The paper's evaluation uses a distributed document dataset derived
//! from TREC-WT10g (2,500–25,000 digital-library "collections" standing
//! in for providers, document source URLs standing in for owner
//! identities). That dataset is not redistributable, so this crate
//! synthesizes workloads with the same structure (DESIGN.md §4): a
//! collection table with Zipf-skewed identity frequencies, exact
//! frequency-pinned cohorts for the figure sweeps, and the paper's ε
//! assignments (uniform in `\[0, 1\]` by default).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod collections;
pub mod presets;
pub mod queries;
pub mod zipf;

pub use collections::{
    fixed_epsilons, pinned_cohorts, tiered_epsilons, uniform_epsilons, Cohort, CollectionTable,
};
pub use presets::Preset;
pub use queries::QueryWorkload;
pub use zipf::Zipf;
