//! Searcher query workloads.
//!
//! The service-time half of the system (QueryPPI/AuthSearch) sees a
//! stream of lookups whose *popularity* is as skewed as the data itself:
//! a few owners (recently admitted patients, celebrities in the news)
//! draw most queries. This module synthesizes such streams for the
//! query-path benchmarks and throughput experiments.

use crate::zipf::Zipf;
use eppi_core::model::OwnerId;
use rand::Rng;

/// A query-stream generator over `n` owners with Zipf-skewed popularity.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryWorkload {
    zipf: Zipf,
    /// Owner lookup order: rank 1 maps to `permutation[0]`, etc.
    permutation: Vec<OwnerId>,
}

impl QueryWorkload {
    /// Creates a workload over `owners` identities with popularity skew
    /// `s` (0 = uniform); the rank-to-owner mapping is a random
    /// permutation so popularity is uncorrelated with owner ids.
    ///
    /// # Panics
    ///
    /// Panics if `owners == 0`.
    pub fn new<R: Rng + ?Sized>(owners: usize, s: f64, rng: &mut R) -> Self {
        assert!(owners >= 1, "at least one owner required");
        let mut permutation: Vec<OwnerId> = (0..owners as u32).map(OwnerId).collect();
        for i in (1..owners).rev() {
            let j = rng.gen_range(0..=i);
            permutation.swap(i, j);
        }
        QueryWorkload {
            zipf: Zipf::new(owners, s),
            permutation,
        }
    }

    /// Draws the next queried owner.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> OwnerId {
        self.permutation[self.zipf.sample(rng) - 1]
    }

    /// Draws a batch of `count` queries.
    pub fn batch<R: Rng + ?Sized>(&self, count: usize, rng: &mut R) -> Vec<OwnerId> {
        (0..count).map(|_| self.sample(rng)).collect()
    }

    /// The most popular owner (rank 1).
    pub fn hottest(&self) -> OwnerId {
        self.permutation[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_range_and_skew_holds() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = QueryWorkload::new(50, 1.2, &mut rng);
        let mut counts = vec![0usize; 50];
        for _ in 0..20_000 {
            let o = w.sample(&mut rng);
            counts[o.index()] += 1;
        }
        // Every sample valid; the hottest owner dominates.
        let hottest = w.hottest().index();
        let max = *counts.iter().max().unwrap();
        assert_eq!(
            counts[hottest], max,
            "rank-1 owner must be the most queried"
        );
        assert!(
            max > 20_000 / 50 * 3,
            "skew must concentrate queries: {max}"
        );
    }

    #[test]
    fn uniform_skew_spreads_queries() {
        let mut rng = StdRng::seed_from_u64(2);
        let w = QueryWorkload::new(10, 0.0, &mut rng);
        let batch = w.batch(10_000, &mut rng);
        let mut counts = vec![0usize; 10];
        for o in batch {
            counts[o.index()] += 1;
        }
        for &c in &counts {
            assert!(
                (700..1300).contains(&c),
                "uniform workload skewed: {counts:?}"
            );
        }
    }

    #[test]
    fn permutation_decorrelates_rank_from_id() {
        // With different seeds, the hottest owner differs.
        let mut rng = StdRng::seed_from_u64(3);
        let a = QueryWorkload::new(100, 1.0, &mut rng).hottest();
        let b = QueryWorkload::new(100, 1.0, &mut rng).hottest();
        // (Probabilistically distinct; fixed seeds make this stable.)
        assert_ne!(a, b);
    }
}
