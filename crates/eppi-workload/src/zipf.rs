//! Zipf-distributed sampling.
//!
//! The paper's effectiveness experiments run on a distributed document
//! dataset derived from TREC-WT10g, whose identity (source-URL)
//! frequencies are heavily skewed. The synthetic workload generator uses
//! a Zipf law over frequency ranks to reproduce that skew (DESIGN.md §4).
//! Implemented exactly via a precomputed CDF and binary search — no
//! external dependency and no rejection loops.

use rand::Rng;

/// A Zipf distribution over ranks `1..=n` with exponent `s ≥ 0`
/// (`s = 0` degenerates to uniform).
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates the distribution.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative or non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n >= 1, "support must be non-empty");
        assert!(
            s.is_finite() && s >= 0.0,
            "exponent must be finite and non-negative"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += (k as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Size of the support.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Samples a rank in `1..=n` (rank 1 is the most likely).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("finite"))
        {
            Ok(i) | Err(i) => (i + 1).min(self.cdf.len()),
        }
    }

    /// The probability mass of rank `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is outside `1..=n`.
    pub fn pmf(&self, k: usize) -> f64 {
        assert!((1..=self.cdf.len()).contains(&k), "rank out of range");
        if k == 1 {
            self.cdf[0]
        } else {
            self.cdf[k - 1] - self.cdf[k - 2]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(100, 1.0);
        let total: f64 = (1..=100).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rank_one_dominates() {
        let z = Zipf::new(10, 1.2);
        assert!(z.pmf(1) > z.pmf(2));
        assert!(z.pmf(2) > z.pmf(10));
    }

    #[test]
    fn uniform_when_s_is_zero() {
        let z = Zipf::new(5, 0.0);
        for k in 1..=5 {
            assert!((z.pmf(k) - 0.2).abs() < 1e-12);
        }
    }

    #[test]
    fn samples_match_pmf() {
        let z = Zipf::new(20, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let trials = 100_000;
        let mut counts = [0usize; 21];
        for _ in 0..trials {
            let k = z.sample(&mut rng);
            assert!((1..=20).contains(&k));
            counts[k] += 1;
        }
        for k in [1usize, 2, 5, 20] {
            let emp = counts[k] as f64 / trials as f64;
            let exp = z.pmf(k);
            assert!((emp - exp).abs() < 0.01, "rank {k}: emp {emp} vs pmf {exp}");
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_support_rejected() {
        Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "rank out of range")]
    fn pmf_out_of_range() {
        Zipf::new(3, 1.0).pmf(4);
    }
}
