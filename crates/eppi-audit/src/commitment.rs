//! Per-provider column commitments.
//!
//! A [`ColumnCommitment`] is what a provider signs off on when its
//! column enters an epoch, and what the durability layer persists next
//! to the epoch so recovery replays stay audit-checked: the digest of
//! the packed published column and the digest of the per-owner
//! publication decisions under the *official* β's. Both digests are
//! recomputable by the auditor from public epoch state — no prover
//! randomness is needed to re-check them after a crash. The binding of
//! the provider's *private* raw column lives in the proof's view
//! commitments ([`crate::ColumnProof`]), which is where zero-knowledge
//! is required; persisting it would add nothing recovery can verify.

use crate::error::AuditError;
use crate::flip::{decision_words, tail_mask};
use eppi_core::commit::{Digest256, Hasher256};
use eppi_core::model::ProviderId;
use eppi_mpc::packed::words_for;

/// Domain of the published-column digest.
const PUBLISHED_DOMAIN: &str = "eppi.audit.published.v1";
/// Domain of the decision digest.
const DECISIONS_DOMAIN: &str = "eppi.audit.decisions.v1";

/// One provider's publication commitment for one epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColumnCommitment {
    /// The committing provider.
    pub provider: ProviderId,
    /// Owner count the digests cover.
    pub owners: u32,
    /// Digest of the packed published column (tail lanes masked).
    pub published: Digest256,
    /// Digest of the packed per-owner decision bits under the official
    /// β's.
    pub decisions: Digest256,
}

/// Digests a packed published column.
pub fn published_digest(provider: ProviderId, owners: usize, words: &[u64]) -> Digest256 {
    column_digest(PUBLISHED_DOMAIN, provider, owners, words)
}

/// Digests packed decision bits.
pub fn decisions_digest(provider: ProviderId, owners: usize, words: &[u64]) -> Digest256 {
    column_digest(DECISIONS_DOMAIN, provider, owners, words)
}

fn column_digest(domain: &str, provider: ProviderId, owners: usize, words: &[u64]) -> Digest256 {
    assert_eq!(words.len(), words_for(owners), "packed width mismatch");
    let mut h = Hasher256::new(domain);
    h.absorb_u64(u64::from(provider.0));
    h.absorb_u64(owners as u64);
    // Mask the tail so physically different storage of the same column
    // commits identically.
    let mask = tail_mask(owners);
    for (i, &w) in words.iter().enumerate() {
        h.absorb_u64(if i + 1 == words.len() { w & mask } else { w });
    }
    h.finalize()
}

impl ColumnCommitment {
    /// Computes the honest commitment for one provider column:
    /// `published` is the packed column entering the epoch, `betas` the
    /// official per-owner publishing probabilities.
    pub fn compute(
        epoch_seed: u64,
        provider: ProviderId,
        betas: &[f64],
        published: &[u64],
    ) -> ColumnCommitment {
        let owners = betas.len();
        ColumnCommitment {
            provider,
            owners: owners as u32,
            published: published_digest(provider, owners, published),
            decisions: decisions_digest(
                provider,
                owners,
                &decision_words(epoch_seed, provider, betas),
            ),
        }
    }

    /// Auditor-side re-check against public epoch state: the installed
    /// column must match the committed digest, and the committed
    /// decisions must be the ones the official β's dictate.
    ///
    /// # Errors
    ///
    /// [`AuditError::Malformed`] on shape mismatch,
    /// [`AuditError::PublishedDigest`] /
    /// [`AuditError::DecisionsDigest`] on a digest mismatch.
    pub fn verify(
        &self,
        epoch_seed: u64,
        betas: &[f64],
        published: &[u64],
    ) -> Result<(), AuditError> {
        let owners = betas.len();
        if self.owners as usize != owners {
            return Err(AuditError::Malformed {
                provider: self.provider.0,
                reason: "commitment owner count",
            });
        }
        if published.len() != words_for(owners) {
            return Err(AuditError::Malformed {
                provider: self.provider.0,
                reason: "published column width",
            });
        }
        if published_digest(self.provider, owners, published) != self.published {
            return Err(AuditError::PublishedDigest {
                provider: self.provider.0,
            });
        }
        let official = decision_words(epoch_seed, self.provider, betas);
        if decisions_digest(self.provider, owners, &official) != self.decisions {
            return Err(AuditError::DecisionsDigest {
                provider: self.provider.0,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_commitment_verifies() {
        let betas = vec![0.4; 90];
        let published: Vec<u64> = vec![0xaaaa, 0x1fff];
        let c = ColumnCommitment::compute(3, ProviderId(1), &betas, &published);
        c.verify(3, &betas, &published).unwrap();
    }

    #[test]
    fn wrong_beta_commitment_is_caught() {
        let official = vec![0.4; 90];
        let cheat = vec![0.0; 90];
        let published: Vec<u64> = vec![0, 0];
        let c = ColumnCommitment::compute(3, ProviderId(1), &cheat, &published);
        assert!(matches!(
            c.verify(3, &official, &published),
            Err(AuditError::DecisionsDigest { provider: 1 })
        ));
    }

    #[test]
    fn column_tamper_is_caught() {
        let betas = vec![0.4; 90];
        let published: Vec<u64> = vec![0xaaaa, 0x1fff];
        let c = ColumnCommitment::compute(3, ProviderId(1), &betas, &published);
        let mut tampered = published.clone();
        tampered[0] ^= 1 << 17;
        assert!(matches!(
            c.verify(3, &betas, &tampered),
            Err(AuditError::PublishedDigest { provider: 1 })
        ));
        // Tail-lane noise beyond the owner count is *not* a tamper.
        let mut padded = published;
        padded[1] |= 1 << 63;
        c.verify(3, &betas, &padded).unwrap();
    }
}
