//! # eppi-audit — verifiable publication against malicious providers
//!
//! e-PPI's Phase 2 trusts every provider to run the randomized
//! publication rule (Eq. 2) honestly. A malicious provider can publish
//! a β-violating column — silently dropping the decoys that hide its
//! owners — and nothing in the semi-honest protocol would notice. This
//! crate closes that gap with a ZKBoo-style MPC-in-the-head proof
//! system (DESIGN.md §16):
//!
//! * every provider *commits* to the column it publishes and to the
//!   per-owner publication decisions the official β's dictate
//!   ([`ColumnCommitment`], built on the shared
//!   [`eppi_core::commit::Hasher256`]);
//! * it then proves, in zero knowledge, that the published column is
//!   the flip circuit's output on its private raw column — `decision =
//!   coin < T(β)`, `published = raw ∨ decision` — under a 2-out-of-3
//!   XOR decomposition evaluated by three virtual parties, with
//!   Fiat–Shamir-chosen view openings ([`prove_column`] /
//!   [`verify_column`]);
//! * an auditor checks the certificate against *public data only* —
//!   the epoch seed, the official β's, and the column entering the
//!   epoch — and rejects with a typed [`AuditError`] naming the
//!   provider and the failing check.
//!
//! The prover's circuit core is `eppi-mpc`'s own machinery: the flip
//! circuit is built with the [`CircuitBuilder`], wire shares are
//! word-level (64 owner-cells per word, [`PackedBits`] packing), and
//! tape words are indexed by the GMW [`Schedule`]'s dense AND-slot
//! order — MPC-in-the-head is literally our MPC, run in the prover's
//! head.
//!
//! What the proof does and does not hide: the *published* column and
//! the β's are public (they are the index); the *raw* column stays
//! hidden — each opened pair of views reveals two of the three XOR
//! shares, and the third is never opened. Soundness is `(2/3)^R`
//! (R = [`DEFAULT_REPETITIONS`] = 40 by default). The construction
//! assumes the auditor knows the lineage seed, so it can re-derive the
//! deterministic coins; the privacy-relevant cheat it catches is
//! *under-decoying* — publishing 0 where the committed decision says 1.
//!
//! [`CircuitBuilder`]: eppi_mpc::builder::CircuitBuilder
//! [`PackedBits`]: eppi_mpc::packed::PackedBits
//! [`Schedule`]: eppi_mpc::gmw_core::Schedule

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod commitment;
pub mod error;
pub mod flip;
pub mod zkboo;

pub use commitment::{decisions_digest, published_digest, ColumnCommitment};
pub use error::AuditError;
pub use flip::{decision_words, flip_circuit, mask_tail, tail_mask};
pub use zkboo::{
    prove_column, prove_column_forged, prove_column_traced, prove_column_with_registry,
    verify_column, verify_column_traced, verify_column_with_registry, AuditParams, ColumnProof,
    ColumnStatement, RepetitionProof, DEFAULT_REPETITIONS,
};
