//! Typed audit rejections.

use std::error::Error;
use std::fmt;

/// Why an audit certificate was rejected. Every variant names the
/// provider whose certificate failed, so the operator knows *who*
/// cheated (or whose state was tampered with), not just that something
/// did.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AuditError {
    /// The certificate is structurally unusable (wrong repetition
    /// count, truncated word vectors, zero owners, …).
    Malformed {
        /// Provider whose certificate is malformed.
        provider: u32,
        /// What shape constraint was violated.
        reason: &'static str,
    },
    /// The committed published-column digest does not match the column
    /// actually being installed.
    PublishedDigest {
        /// Provider whose column digest mismatched.
        provider: u32,
    },
    /// The committed decision digest does not match the decisions the
    /// official per-owner β's dictate — the wrong-β cheat.
    DecisionsDigest {
        /// Provider whose decision digest mismatched.
        provider: u32,
    },
    /// A re-computed view does not hash to its commitment — a forged
    /// or inconsistent view opening.
    ViewDigest {
        /// Provider whose proof failed.
        provider: u32,
        /// Repetition index of the failing view.
        rep: usize,
        /// Virtual party whose view failed (0–2).
        party: usize,
    },
    /// An opened party's claimed output share disagrees with its
    /// re-computed view.
    OutputShare {
        /// Provider whose proof failed.
        provider: u32,
        /// Repetition index.
        rep: usize,
        /// Virtual party (0–2).
        party: usize,
    },
    /// The three output shares do not reconstruct the published
    /// column — the proven circuit output is not what was published.
    OutputMismatch {
        /// Provider whose proof failed.
        provider: u32,
        /// Repetition index.
        rep: usize,
    },
    /// An epoch-level certificate set does not cover every provider
    /// exactly once, in provider order.
    CertificateSet {
        /// Providers the epoch has.
        expected: usize,
        /// Certificates presented.
        actual: usize,
    },
}

impl AuditError {
    /// Short stable label for the rejection class — the
    /// `audit.rejects{kind=…}` telemetry key.
    pub fn kind(&self) -> &'static str {
        match self {
            AuditError::Malformed { .. } => "malformed",
            AuditError::PublishedDigest { .. } => "published_digest",
            AuditError::DecisionsDigest { .. } => "decisions_digest",
            AuditError::ViewDigest { .. } => "view_digest",
            AuditError::OutputShare { .. } => "output_share",
            AuditError::OutputMismatch { .. } => "output_mismatch",
            AuditError::CertificateSet { .. } => "certificate_set",
        }
    }
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditError::Malformed { provider, reason } => {
                write!(f, "provider {provider}: malformed certificate ({reason})")
            }
            AuditError::PublishedDigest { provider } => write!(
                f,
                "provider {provider}: committed published-column digest does not match the \
                 installed column"
            ),
            AuditError::DecisionsDigest { provider } => write!(
                f,
                "provider {provider}: committed decisions differ from the official per-owner β \
                 decisions"
            ),
            AuditError::ViewDigest {
                provider,
                rep,
                party,
            } => write!(
                f,
                "provider {provider}: repetition {rep} party {party} view does not match its \
                 commitment"
            ),
            AuditError::OutputShare {
                provider,
                rep,
                party,
            } => write!(
                f,
                "provider {provider}: repetition {rep} party {party} output share disagrees with \
                 its view"
            ),
            AuditError::OutputMismatch { provider, rep } => write!(
                f,
                "provider {provider}: repetition {rep} output shares do not reconstruct the \
                 published column"
            ),
            AuditError::CertificateSet { expected, actual } => write!(
                f,
                "certificate set covers {actual} providers, epoch has {expected}"
            ),
        }
    }
}

impl Error for AuditError {}
