//! The flip circuit: the publication rule as a Boolean relation.
//!
//! One circuit instance decides one cell. The witness is the
//! provider's raw membership bit; the public inputs are the cell's
//! deterministic coin bits and the β-derived decision threshold; the
//! output is the published bit:
//!
//! ```text
//! decision  = coin_bits < threshold        (54-bit borrow-chain compare)
//! published = raw ∨ decision               (the truthful-OR of Eq. 2)
//! ```
//!
//! The comparison is the *exact* integer form of `coin < β`
//! ([`eppi_core::publish::publication_threshold`]), so the circuit
//! output agrees bit-for-bit with [`eppi_core::publish::publish_cell`]
//! for every cell — pinned by `circuit_matches_publish_cell`.
//!
//! The prover evaluates the circuit bitsliced: every wire carries one
//! 64-bit word per owner block, i.e. 64 cell instances per word
//! (`PackedBits` packing), which is the same trick the GMW core uses.

use eppi_core::model::{OwnerId, ProviderId};
use eppi_core::publish::{publication_coin_bits, publication_threshold, publish_cell};
use eppi_mpc::builder::CircuitBuilder;
use eppi_mpc::circuit::Circuit;
use eppi_mpc::packed::words_for;

/// Width of the coin input: the 53 mantissa bits of the publication
/// coin.
pub const COIN_BITS: usize = 53;

/// Width of the threshold input: β = 1 needs `T = 2^53`, one bit more
/// than any coin.
pub const THRESHOLD_BITS: usize = 54;

/// Input-wire count of the flip circuit: raw bit + coin + threshold.
pub const FLIP_INPUTS: usize = 1 + COIN_BITS + THRESHOLD_BITS;

/// Builds the flip circuit. Input order: wire 0 is the secret raw bit;
/// wires `1..=53` the coin bits (LSB first); wires `54..=107` the
/// threshold bits (LSB first). One output wire: the published bit.
pub fn flip_circuit() -> Circuit {
    let mut b = CircuitBuilder::new();
    let raw = b.input();
    let coin = b.input_word(COIN_BITS);
    let threshold = b.input_word(THRESHOLD_BITS);
    let coin = b.resize_word(&coin, THRESHOLD_BITS);
    let decision = b.lt_words(&coin, &threshold);
    let published = b.or(raw, decision);
    b.finish(vec![published])
}

/// The all-valid-lanes mask for the last word of an `owners`-bit packed
/// vector: bits past the owner count never count.
pub fn tail_mask(owners: usize) -> u64 {
    match owners % 64 {
        0 => !0,
        r => (1u64 << r) - 1,
    }
}

/// Masks the tail lanes of a packed `owners`-bit vector in place.
pub fn mask_tail(words: &mut [u64], owners: usize) {
    if let Some(last) = words.last_mut() {
        *last &= tail_mask(owners);
    }
}

/// The bitsliced public input words of one provider column: for each
/// non-witness input wire (coin and threshold bits), one word per owner
/// block whose lane `j % 64` is that bit for owner `j`.
///
/// Both prover and verifier derive these from public data only — the
/// epoch seed, the provider id, and the *official* per-owner β's — so a
/// prover that ran the flip with any other β or coin stream is proving
/// a different circuit than the verifier checks.
pub fn public_input_words(epoch_seed: u64, provider: ProviderId, betas: &[f64]) -> Vec<Vec<u64>> {
    let owners = betas.len();
    let nw = words_for(owners);
    let mut words = vec![vec![0u64; nw]; COIN_BITS + THRESHOLD_BITS];
    for (j, &beta) in betas.iter().enumerate() {
        let coin = publication_coin_bits(epoch_seed, provider, OwnerId(j as u32));
        let threshold = publication_threshold(beta);
        let (block, lane) = (j / 64, j % 64);
        for (b, w) in words.iter_mut().enumerate() {
            let bit = if b < COIN_BITS {
                coin >> b & 1
            } else {
                threshold >> (b - COIN_BITS) & 1
            };
            w[block] |= bit << lane;
        }
    }
    words
}

/// The packed per-owner publication *decision* bits of one provider
/// column under the official β's: lane `j` is `coin_j < T(β_j)` — what
/// the provider's committed decisions must equal.
pub fn decision_words(epoch_seed: u64, provider: ProviderId, betas: &[f64]) -> Vec<u64> {
    let mut words = vec![0u64; words_for(betas.len())];
    for (j, &beta) in betas.iter().enumerate() {
        // A decision is a decoy on a non-member cell; publish_cell with
        // member = false is exactly the decision bit.
        if publish_cell(epoch_seed, provider, OwnerId(j as u32), false, beta) {
            words[j / 64] |= 1u64 << (j % 64);
        }
    }
    words
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn circuit_shape() {
        let c = flip_circuit();
        assert_eq!(c.inputs(), FLIP_INPUTS);
        assert_eq!(c.outputs().len(), 1);
        let stats = c.stats();
        // 2 ANDs per comparator bit + 1 for the OR.
        assert_eq!(stats.and_gates, 2 * THRESHOLD_BITS + 1);
    }

    #[test]
    fn circuit_matches_publish_cell() {
        let circuit = flip_circuit();
        for seed in [0u64, 7, 0xdead_beef] {
            for p in 0..6u32 {
                for o in 0..6u32 {
                    for beta in [0.0, 0.2, 0.5, 0.93, 1.0] {
                        for member in [false, true] {
                            let coin = publication_coin_bits(seed, ProviderId(p), OwnerId(o));
                            let threshold = publication_threshold(beta);
                            let mut inputs = vec![member];
                            inputs.extend((0..COIN_BITS).map(|b| coin >> b & 1 == 1));
                            inputs.extend((0..THRESHOLD_BITS).map(|b| threshold >> b & 1 == 1));
                            let out = circuit.eval(&inputs);
                            let expect =
                                publish_cell(seed, ProviderId(p), OwnerId(o), member, beta);
                            assert_eq!(
                                out,
                                [expect],
                                "seed {seed} cell ({p},{o}) β {beta} member {member}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn public_words_slice_per_lane() {
        let betas = vec![0.3; 70];
        let words = public_input_words(5, ProviderId(2), &betas);
        assert_eq!(words.len(), COIN_BITS + THRESHOLD_BITS);
        assert_eq!(words[0].len(), 2);
        // Lane 65 of each input word is owner 65's bit.
        let coin = publication_coin_bits(5, ProviderId(2), OwnerId(65));
        for (b, w) in words.iter().take(COIN_BITS).enumerate() {
            assert_eq!(w[1] >> 1 & 1, coin >> b & 1, "coin bit {b}");
        }
    }

    #[test]
    fn decisions_match_cellwise_rule() {
        let betas: Vec<f64> = (0..130).map(|j| (j % 11) as f64 / 10.0).collect();
        let words = decision_words(9, ProviderId(4), &betas);
        for (j, &beta) in betas.iter().enumerate() {
            let expect = publish_cell(9, ProviderId(4), OwnerId(j as u32), false, beta);
            assert_eq!(words[j / 64] >> (j % 64) & 1 == 1, expect, "owner {j}");
        }
    }

    #[test]
    fn tail_masks() {
        assert_eq!(tail_mask(64), !0);
        assert_eq!(tail_mask(1), 1);
        assert_eq!(tail_mask(65), 1);
        let mut words = vec![!0u64, !0];
        mask_tail(&mut words, 70);
        assert_eq!(words, vec![!0, 0x3f]);
    }
}
