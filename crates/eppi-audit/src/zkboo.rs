//! The MPC-in-the-head prover and verifier (ZKBoo over GF(2)).
//!
//! The prover runs the flip circuit ([`crate::flip`]) under a
//! 2-out-of-3 XOR decomposition: the raw column is split into three
//! additive shares, each "virtual party" evaluates the circuit on its
//! share, and AND gates consume one correlated tape word per party —
//! the (2,3)-decomposition of \[ZKBoo, GMO16\]:
//!
//! ```text
//! z_i = a_i·b_i ⊕ a_{i+1}·b_i ⊕ a_i·b_{i+1} ⊕ r_i ⊕ r_{i+1}     (indices mod 3)
//! ```
//!
//! Summing the three `z_i` telescopes to `(Σa)(Σb)`: the tape words
//! cancel and every cross term appears exactly once, so the three
//! shares always reconstruct the plain circuit value. Crucially, party
//! `i`'s view depends only on its own state and party `i+1`'s wires —
//! so opening *two* adjacent views lets a verifier recompute one of
//! them completely while the third share keeps the witness hidden.
//!
//! Everything is word-level: a wire's share is one 64-bit word per
//! owner block (64 circuit instances per word — [`PackedBits`]
//! packing), and tape words are indexed by the dense AND-slot order of
//! the GMW [`Schedule`], the same machinery the MPC runtime uses.
//!
//! The challenge is Fiat–Shamir: all 3·R view commitments and 3·R
//! output share vectors are hashed together with the statement and the
//! column commitment, and the resulting digest picks which adjacent
//! pair `(e, e+1)` opens in each repetition. A cheating prover must
//! corrupt at least one party's view, which survives only when the
//! challenge avoids recomputing that view — probability 2/3 per
//! repetition, `(2/3)^R` overall (≈ 9·10⁻⁸ at the default R = 40).
//!
//! [`PackedBits`]: eppi_mpc::packed::PackedBits
//! [`Schedule`]: eppi_mpc::gmw_core::Schedule

use crate::commitment::ColumnCommitment;
use crate::error::AuditError;
use crate::flip::{flip_circuit, public_input_words, tail_mask, FLIP_INPUTS};
use eppi_core::commit::{Digest256, Hasher256};
use eppi_core::model::ProviderId;
use eppi_mpc::circuit::{Circuit, Gate};
use eppi_mpc::gmw_core::Schedule;
use eppi_mpc::packed::words_for;
use eppi_telemetry::Registry;
use eppi_trace::{SpanCtx, Tracer};
use std::time::Instant;

/// Default repetition count: soundness error `(2/3)^40 ≈ 9·10⁻⁸`.
pub const DEFAULT_REPETITIONS: usize = 40;

const GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;
/// PRG domain of the AND-gate tape stream.
const TAPE_DOMAIN: u64 = 0xA1;
/// PRG domain of the witness-share stream.
const WITNESS_DOMAIN: u64 = 0xA2;

#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Audit proof-system parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuditParams {
    /// Number of independent repetitions; each adds a 2/3 factor to
    /// the soundness error.
    pub repetitions: usize,
}

impl Default for AuditParams {
    fn default() -> Self {
        AuditParams {
            repetitions: DEFAULT_REPETITIONS,
        }
    }
}

/// The public statement one column proof speaks about.
#[derive(Debug, Clone, Copy)]
pub struct ColumnStatement<'a> {
    /// The lineage seed driving the deterministic publication coins.
    pub epoch_seed: u64,
    /// The proving provider.
    pub provider: ProviderId,
    /// The official per-owner publishing probabilities.
    pub betas: &'a [f64],
    /// The packed published column entering the epoch.
    pub published: &'a [u64],
}

impl ColumnStatement<'_> {
    /// Owner count of the column.
    pub fn owners(&self) -> usize {
        self.betas.len()
    }

    /// Packed word count per wire.
    pub fn words(&self) -> usize {
        words_for(self.owners())
    }
}

/// One Fiat–Shamir repetition: the three committed views, all three
/// output share vectors, and the opening of the challenged pair.
#[derive(Debug, Clone, PartialEq)]
pub struct RepetitionProof {
    /// View commitments of the three virtual parties.
    pub commits: [Digest256; 3],
    /// Output share words of the three parties (their XOR is the
    /// claimed published column).
    pub outputs: [Vec<u64>; 3],
    /// PRG seeds of the opened parties `e` and `e+1`.
    pub seeds: [u64; 2],
    /// AND-gate output words of party `e+1`, AND-slot-major — the
    /// wires party `e`'s recomputation needs.
    pub partner_ands: Vec<u64>,
    /// Party 2's explicit witness-share words, present iff party 2 is
    /// in the opened pair (parties 0 and 1 derive theirs from their
    /// seeds).
    pub witness_share: Vec<u64>,
}

/// A full MPC-in-the-head proof for one provider column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnProof {
    /// One entry per repetition.
    pub reps: Vec<RepetitionProof>,
}

impl ColumnProof {
    /// Serialized size of the proof in bytes (digests + words + seeds).
    pub fn size_bytes(&self) -> usize {
        self.reps
            .iter()
            .map(|r| {
                3 * 32
                    + r.outputs.iter().map(|y| y.len() * 8).sum::<usize>()
                    + 2 * 8
                    + r.partner_ands.len() * 8
                    + r.witness_share.len() * 8
            })
            .sum()
    }
}

/// Counter-mode PRG word `index` of stream `(seed, domain)` — the
/// splitmix64 construction over a domain-twisted seed.
#[inline]
fn prg_word(seed: u64, domain: u64, index: u64) -> u64 {
    mix64(
        seed ^ mix64(domain.wrapping_mul(GAMMA))
            ^ (index.wrapping_add(1)).wrapping_mul(0x2545_f491_4f6c_dd1d),
    )
}

fn prg_words(seed: u64, domain: u64, count: usize) -> Vec<u64> {
    (0..count as u64)
        .map(|i| prg_word(seed, domain, i))
        .collect()
}

/// The per-(repetition, party) PRG seed of one proving session.
fn rep_seed(prover_seed: u64, stmt: &ColumnStatement<'_>, rep: usize, party: usize) -> u64 {
    let mut h = Hasher256::new("eppi.audit.seed.v1");
    h.absorb_u64(prover_seed);
    h.absorb_u64(stmt.epoch_seed);
    h.absorb_u64(u64::from(stmt.provider.0));
    h.absorb_u64(rep as u64);
    h.absorb_u64(party as u64);
    h.finalize().0[0]
}

/// Commits one party's view: its seed, its explicit witness share
/// (party 2 only — parties 0/1 re-derive theirs from the seed), and
/// its AND-gate output words. Bound to the statement coordinates so a
/// view cannot be replayed across cells, repetitions, or parties.
fn commit_view(
    stmt: &ColumnStatement<'_>,
    rep: usize,
    party: usize,
    seed: u64,
    witness: &[u64],
    ands: &[u64],
) -> Digest256 {
    let mut h = Hasher256::new("eppi.audit.view.v1");
    h.absorb_u64(stmt.epoch_seed);
    h.absorb_u64(u64::from(stmt.provider.0));
    h.absorb_u64(stmt.owners() as u64);
    h.absorb_u64(rep as u64);
    h.absorb_u64(party as u64);
    h.absorb_u64(seed);
    h.absorb_words(witness);
    h.absorb_words(ands);
    h.finalize()
}

/// The Fiat–Shamir transcript digest: statement, column commitment,
/// then every repetition's view commitments and output shares.
fn challenge_root(
    stmt: &ColumnStatement<'_>,
    commitment: &ColumnCommitment,
    reps: &[([Digest256; 3], [Vec<u64>; 3])],
) -> Digest256 {
    let mut h = Hasher256::new("eppi.audit.challenge.v1");
    h.absorb_u64(stmt.epoch_seed);
    h.absorb_u64(u64::from(stmt.provider.0));
    h.absorb_u64(stmt.owners() as u64);
    h.absorb_words(stmt.published);
    for lane in commitment
        .published
        .0
        .into_iter()
        .chain(commitment.decisions.0)
    {
        h.absorb_u64(lane);
    }
    h.absorb_u64(reps.len() as u64);
    for (commits, outputs) in reps {
        for c in commits {
            for lane in c.0 {
                h.absorb_u64(lane);
            }
        }
        for y in outputs {
            h.absorb_words(y);
        }
    }
    h.finalize()
}

/// The challenged party `e` of repetition `rep` (the pair `(e, e+1)`
/// opens).
fn challenge_for(root: Digest256, rep: usize) -> usize {
    (mix64(root.0[0] ^ (rep as u64 + 1).wrapping_mul(GAMMA)) % 3) as usize
}

/// Input share words of one party: wire 0 is its witness share, the
/// public coin/threshold wires follow the public-input rule — party 0
/// carries the public word, parties 1 and 2 carry zero, so the XOR of
/// the three shares is the public value and the verifier can derive
/// every opened party's public wires without any proof data.
fn input_share_words(
    party: usize,
    nw: usize,
    witness: &[u64],
    public: &[Vec<u64>],
) -> Vec<Vec<u64>> {
    let mut shares = Vec::with_capacity(FLIP_INPUTS);
    shares.push(witness.to_vec());
    for word in public {
        shares.push(if party == 0 {
            word.clone()
        } else {
            vec![0u64; nw]
        });
    }
    shares
}

/// Word-level evaluation of all three virtual parties at once (prover
/// side).
struct Evaluated {
    /// Per party: AND outputs, slot-major (`slot * nw + word`).
    and_words: [Vec<u64>; 3],
    /// Per party: output-wire share words.
    outputs: [Vec<u64>; 3],
}

fn evaluate_all(
    circuit: &Circuit,
    schedule: &Schedule,
    nw: usize,
    inputs: &[Vec<Vec<u64>>; 3],
    tapes: &[Vec<u64>; 3],
) -> Evaluated {
    let wires = circuit.wires();
    let mut vals: [Vec<u64>; 3] = std::array::from_fn(|_| vec![0u64; wires * nw]);
    for (party, shares) in inputs.iter().enumerate() {
        for (i, words) in shares.iter().enumerate() {
            vals[party][i * nw..(i + 1) * nw].copy_from_slice(words);
        }
    }
    let mut and_words: [Vec<u64>; 3] =
        std::array::from_fn(|_| vec![0u64; schedule.and_gates() * nw]);
    for (g, gate) in circuit.gates().iter().enumerate() {
        let out = (circuit.inputs() + g) * nw;
        match *gate {
            Gate::Xor(a, b) => {
                let (a, b) = (a.index() * nw, b.index() * nw);
                for val in vals.iter_mut() {
                    for w in 0..nw {
                        val[out + w] = val[a + w] ^ val[b + w];
                    }
                }
            }
            Gate::Not(a) => {
                // Flipping is a public affine offset: party 0 alone
                // absorbs it so the share XOR flips exactly once.
                let a = a.index() * nw;
                for (party, val) in vals.iter_mut().enumerate() {
                    let flip = if party == 0 { !0u64 } else { 0 };
                    for w in 0..nw {
                        val[out + w] = val[a + w] ^ flip;
                    }
                }
            }
            Gate::Const(v) => {
                let value = if v { !0u64 } else { 0 };
                for (party, val) in vals.iter_mut().enumerate() {
                    let word = if party == 0 { value } else { 0 };
                    val[out..out + nw].fill(word);
                }
            }
            Gate::And(a, b) => {
                let slot = schedule.triple_index(g) * nw;
                let (a, b) = (a.index() * nw, b.index() * nw);
                for party in 0..3 {
                    let next = (party + 1) % 3;
                    for w in 0..nw {
                        let (ai, bi) = (vals[party][a + w], vals[party][b + w]);
                        let (an, bn) = (vals[next][a + w], vals[next][b + w]);
                        let z = (ai & bi)
                            ^ (an & bi)
                            ^ (ai & bn)
                            ^ tapes[party][slot + w]
                            ^ tapes[next][slot + w];
                        and_words[party][slot + w] = z;
                    }
                }
                for party in 0..3 {
                    for w in 0..nw {
                        vals[party][out + w] = and_words[party][slot + w];
                    }
                }
            }
        }
    }
    let o = circuit.outputs()[0].index() * nw;
    Evaluated {
        outputs: std::array::from_fn(|party| vals[party][o..o + nw].to_vec()),
        and_words,
    }
}

/// Verifier-side recomputation of the opened pair `(e, e+1)`: party
/// `e+1`'s AND wires come from the proof, party `e`'s are recomputed
/// from both tapes and both parties' wires. Returns party `e`'s AND
/// words and both parties' output share words.
#[allow(clippy::too_many_arguments)]
fn recompute_pair(
    circuit: &Circuit,
    schedule: &Schedule,
    nw: usize,
    e: usize,
    inputs_e: &[Vec<u64>],
    inputs_e1: &[Vec<u64>],
    tape_e: &[u64],
    tape_e1: &[u64],
    partner_ands: &[u64],
) -> (Vec<u64>, Vec<u64>, Vec<u64>) {
    let wires = circuit.wires();
    let mut val_e = vec![0u64; wires * nw];
    let mut val_e1 = vec![0u64; wires * nw];
    for (i, words) in inputs_e.iter().enumerate() {
        val_e[i * nw..(i + 1) * nw].copy_from_slice(words);
    }
    for (i, words) in inputs_e1.iter().enumerate() {
        val_e1[i * nw..(i + 1) * nw].copy_from_slice(words);
    }
    let e1 = (e + 1) % 3;
    let mut and_e = vec![0u64; schedule.and_gates() * nw];
    for (g, gate) in circuit.gates().iter().enumerate() {
        let out = (circuit.inputs() + g) * nw;
        match *gate {
            Gate::Xor(a, b) => {
                let (a, b) = (a.index() * nw, b.index() * nw);
                for w in 0..nw {
                    val_e[out + w] = val_e[a + w] ^ val_e[b + w];
                    val_e1[out + w] = val_e1[a + w] ^ val_e1[b + w];
                }
            }
            Gate::Not(a) => {
                let a = a.index() * nw;
                let (flip_e, flip_e1) = (
                    if e == 0 { !0u64 } else { 0 },
                    if e1 == 0 { !0u64 } else { 0 },
                );
                for w in 0..nw {
                    val_e[out + w] = val_e[a + w] ^ flip_e;
                    val_e1[out + w] = val_e1[a + w] ^ flip_e1;
                }
            }
            Gate::Const(v) => {
                let value = if v { !0u64 } else { 0 };
                val_e[out..out + nw].fill(if e == 0 { value } else { 0 });
                val_e1[out..out + nw].fill(if e1 == 0 { value } else { 0 });
            }
            Gate::And(a, b) => {
                let slot = schedule.triple_index(g) * nw;
                let (a, b) = (a.index() * nw, b.index() * nw);
                for w in 0..nw {
                    let (ai, bi) = (val_e[a + w], val_e[b + w]);
                    let (an, bn) = (val_e1[a + w], val_e1[b + w]);
                    let z =
                        (ai & bi) ^ (an & bi) ^ (ai & bn) ^ tape_e[slot + w] ^ tape_e1[slot + w];
                    and_e[slot + w] = z;
                    val_e[out + w] = z;
                    val_e1[out + w] = partner_ands[slot + w];
                }
            }
        }
    }
    let o = circuit.outputs()[0].index() * nw;
    (and_e, val_e[o..o + nw].to_vec(), val_e1[o..o + nw].to_vec())
}

/// Produces the honest proof that `stmt.published` is the flip-circuit
/// output on the raw column `raw` under the statement's official β's.
///
/// `prover_seed` drives all proving randomness (views, tapes); honest
/// proofs verify for *every* seed, and distinct seeds yield
/// independent transcripts.
///
/// # Panics
///
/// Panics when `raw` or `stmt.published` is not `words_for(owners)`
/// words, or the column is empty.
pub fn prove_column(
    stmt: &ColumnStatement<'_>,
    raw: &[u64],
    params: &AuditParams,
    prover_seed: u64,
) -> ColumnProof {
    prove_inner(stmt, raw, params, prover_seed, None)
}

/// [`prove_column`] reporting telemetry: `audit.proofs`,
/// `audit.proof_bytes`, and the `audit.prove_ns` histogram.
pub fn prove_column_with_registry(
    stmt: &ColumnStatement<'_>,
    raw: &[u64],
    params: &AuditParams,
    prover_seed: u64,
    registry: &Registry,
) -> ColumnProof {
    let started = Instant::now();
    let proof = prove_column(stmt, raw, params, prover_seed);
    registry.counter("audit.proofs", &[]).add(1);
    registry
        .counter("audit.proof_bytes", &[])
        .add(proof.size_bytes() as u64);
    registry
        .histogram("audit.prove_ns", &[])
        .record(started.elapsed().as_nanos() as u64);
    proof
}

/// [`prove_column_with_registry`] under an `audit.prove` trace span
/// (payload: provider id).
pub fn prove_column_traced(
    stmt: &ColumnStatement<'_>,
    raw: &[u64],
    params: &AuditParams,
    prover_seed: u64,
    registry: &Registry,
    tracer: &Tracer,
    parent: SpanCtx,
) -> ColumnProof {
    let mut span = tracer.child(parent, "audit.prove");
    span.set_payload(u64::from(stmt.provider.0));
    prove_column_with_registry(stmt, raw, params, prover_seed, registry)
}

/// A *cheating* prover (the `eppi-attacks` forged-view model): proves
/// honestly on `raw`, then rewrites virtual party 2's view so the
/// reconstructed output is the honest circuit output XOR `deflip` —
/// covering a β-violating published column. The forgery is internally
/// consistent for challenge pairs (0,1) and (1,2) and is exposed only
/// when the challenge recomputes party 2 (pair (2,0)): detection
/// probability exactly 1/3 per repetition.
///
/// # Panics
///
/// Same shape contract as [`prove_column`]; `deflip` must be
/// `words_for(owners)` words.
pub fn prove_column_forged(
    stmt: &ColumnStatement<'_>,
    raw: &[u64],
    params: &AuditParams,
    prover_seed: u64,
    deflip: &[u64],
) -> ColumnProof {
    assert_eq!(deflip.len(), stmt.words(), "deflip width mismatch");
    prove_inner(stmt, raw, params, prover_seed, Some(deflip))
}

fn prove_inner(
    stmt: &ColumnStatement<'_>,
    raw: &[u64],
    params: &AuditParams,
    prover_seed: u64,
    tamper: Option<&[u64]>,
) -> ColumnProof {
    let owners = stmt.owners();
    let nw = stmt.words();
    assert!(owners > 0, "empty column");
    assert_eq!(raw.len(), nw, "raw column width mismatch");
    assert_eq!(stmt.published.len(), nw, "published column width mismatch");

    let circuit = flip_circuit();
    let schedule = Schedule::new(&circuit);
    let slots = schedule.and_gates();
    let public = public_input_words(stmt.epoch_seed, stmt.provider, stmt.betas);
    // The forged-view tamper lands on the final AND (the output OR's
    // AND term): flipping its z-word flips the party's output share.
    let last_and_slot = circuit
        .gates()
        .iter()
        .enumerate()
        .rev()
        .find_map(|(g, gate)| matches!(gate, Gate::And(..)).then(|| schedule.triple_index(g)))
        .expect("flip circuit has AND gates");

    let mut masked_raw = raw.to_vec();
    crate::flip::mask_tail(&mut masked_raw, owners);

    let commitment =
        ColumnCommitment::compute(stmt.epoch_seed, stmt.provider, stmt.betas, stmt.published);

    struct RepState {
        seeds: [u64; 3],
        witness2: Vec<u64>,
        and_words: [Vec<u64>; 3],
        commits: [Digest256; 3],
        outputs: [Vec<u64>; 3],
    }

    let mut states = Vec::with_capacity(params.repetitions);
    for rep in 0..params.repetitions {
        let seeds: [u64; 3] = std::array::from_fn(|party| rep_seed(prover_seed, stmt, rep, party));
        let tapes: [Vec<u64>; 3] =
            std::array::from_fn(|party| prg_words(seeds[party], TAPE_DOMAIN, slots * nw));
        let w0 = prg_words(seeds[0], WITNESS_DOMAIN, nw);
        let w1 = prg_words(seeds[1], WITNESS_DOMAIN, nw);
        let witness2: Vec<u64> = (0..nw).map(|w| masked_raw[w] ^ w0[w] ^ w1[w]).collect();
        let inputs: [Vec<Vec<u64>>; 3] = [
            input_share_words(0, nw, &w0, &public),
            input_share_words(1, nw, &w1, &public),
            input_share_words(2, nw, &witness2, &public),
        ];
        let mut eval = evaluate_all(&circuit, &schedule, nw, &inputs, &tapes);
        if let Some(delta) = tamper {
            for (w, &d) in delta.iter().enumerate().take(nw) {
                eval.and_words[2][last_and_slot * nw + w] ^= d;
                eval.outputs[2][w] ^= d;
            }
        }
        let commits: [Digest256; 3] = std::array::from_fn(|party| {
            let witness: &[u64] = if party == 2 { &witness2 } else { &[] };
            commit_view(
                stmt,
                rep,
                party,
                seeds[party],
                witness,
                &eval.and_words[party],
            )
        });
        states.push(RepState {
            seeds,
            witness2,
            and_words: eval.and_words,
            commits,
            outputs: eval.outputs,
        });
    }

    let transcript: Vec<([Digest256; 3], [Vec<u64>; 3])> = states
        .iter()
        .map(|s| (s.commits, s.outputs.clone()))
        .collect();
    let root = challenge_root(stmt, &commitment, &transcript);

    let reps = states
        .into_iter()
        .enumerate()
        .map(|(rep, state)| {
            let e = challenge_for(root, rep);
            let e1 = (e + 1) % 3;
            RepetitionProof {
                commits: state.commits,
                outputs: state.outputs,
                seeds: [state.seeds[e], state.seeds[e1]],
                partner_ands: state.and_words[e1].clone(),
                witness_share: if e == 0 { Vec::new() } else { state.witness2 },
            }
        })
        .collect();
    ColumnProof { reps }
}

/// Verifies one column certificate against public data only: the
/// statement (official β's + the column entering the epoch), the
/// provider's [`ColumnCommitment`], and its [`ColumnProof`].
///
/// # Errors
///
/// A typed [`AuditError`] naming the provider, the failing repetition,
/// and the failing check — see the variants for the cheat each one
/// catches.
pub fn verify_column(
    stmt: &ColumnStatement<'_>,
    commitment: &ColumnCommitment,
    proof: &ColumnProof,
    params: &AuditParams,
) -> Result<(), AuditError> {
    let provider = stmt.provider.0;
    let owners = stmt.owners();
    let nw = stmt.words();
    if owners == 0 {
        return Err(AuditError::Malformed {
            provider,
            reason: "empty column",
        });
    }
    if stmt.published.len() != nw {
        return Err(AuditError::Malformed {
            provider,
            reason: "published column width",
        });
    }
    if commitment.provider != stmt.provider {
        return Err(AuditError::Malformed {
            provider,
            reason: "commitment provider",
        });
    }
    commitment.verify(stmt.epoch_seed, stmt.betas, stmt.published)?;
    if proof.reps.len() != params.repetitions {
        return Err(AuditError::Malformed {
            provider,
            reason: "repetition count",
        });
    }

    let circuit = flip_circuit();
    let schedule = Schedule::new(&circuit);
    let slots = schedule.and_gates();
    let public = public_input_words(stmt.epoch_seed, stmt.provider, stmt.betas);

    let transcript: Vec<([Digest256; 3], [Vec<u64>; 3])> = proof
        .reps
        .iter()
        .map(|r| (r.commits, r.outputs.clone()))
        .collect();
    let root = challenge_root(stmt, commitment, &transcript);

    let mask = tail_mask(owners);
    for (rep, r) in proof.reps.iter().enumerate() {
        let e = challenge_for(root, rep);
        let e1 = (e + 1) % 3;
        if r.outputs.iter().any(|y| y.len() != nw) {
            return Err(AuditError::Malformed {
                provider,
                reason: "output share width",
            });
        }
        if r.partner_ands.len() != slots * nw {
            return Err(AuditError::Malformed {
                provider,
                reason: "partner AND words",
            });
        }
        let needs_witness = e != 0;
        if r.witness_share.len() != if needs_witness { nw } else { 0 } {
            return Err(AuditError::Malformed {
                provider,
                reason: "witness share width",
            });
        }

        let tape_e = prg_words(r.seeds[0], TAPE_DOMAIN, slots * nw);
        let tape_e1 = prg_words(r.seeds[1], TAPE_DOMAIN, slots * nw);
        // Witness shares of the opened parties: parties 0/1 expand
        // their seed, party 2's explicit words come from the proof.
        let wit_e: Vec<u64> = if e == 2 {
            r.witness_share.clone()
        } else {
            prg_words(r.seeds[0], WITNESS_DOMAIN, nw)
        };
        let wit_e1: Vec<u64> = if e1 == 2 {
            r.witness_share.clone()
        } else {
            prg_words(r.seeds[1], WITNESS_DOMAIN, nw)
        };
        let inputs_e = input_share_words(e, nw, &wit_e, &public);
        let inputs_e1 = input_share_words(e1, nw, &wit_e1, &public);
        let (and_e, out_e, out_e1) = recompute_pair(
            &circuit,
            &schedule,
            nw,
            e,
            &inputs_e,
            &inputs_e1,
            &tape_e,
            &tape_e1,
            &r.partner_ands,
        );

        let wit_commit_e: &[u64] = if e == 2 { &wit_e } else { &[] };
        if commit_view(stmt, rep, e, r.seeds[0], wit_commit_e, &and_e) != r.commits[e] {
            return Err(AuditError::ViewDigest {
                provider,
                rep,
                party: e,
            });
        }
        let wit_commit_e1: &[u64] = if e1 == 2 { &wit_e1 } else { &[] };
        if commit_view(stmt, rep, e1, r.seeds[1], wit_commit_e1, &r.partner_ands) != r.commits[e1] {
            return Err(AuditError::ViewDigest {
                provider,
                rep,
                party: e1,
            });
        }
        if out_e != r.outputs[e] {
            return Err(AuditError::OutputShare {
                provider,
                rep,
                party: e,
            });
        }
        if out_e1 != r.outputs[e1] {
            return Err(AuditError::OutputShare {
                provider,
                rep,
                party: e1,
            });
        }
        for w in 0..nw {
            let recon = r.outputs[0][w] ^ r.outputs[1][w] ^ r.outputs[2][w];
            let lane_mask = if w + 1 == nw { mask } else { !0 };
            if recon & lane_mask != stmt.published[w] & lane_mask {
                return Err(AuditError::OutputMismatch { provider, rep });
            }
        }
    }
    Ok(())
}

/// [`verify_column`] reporting telemetry: `audit.verified` /
/// `audit.rejects{kind=…}` counters and the `audit.verify_ns`
/// histogram.
///
/// # Errors
///
/// Same contract as [`verify_column`].
pub fn verify_column_with_registry(
    stmt: &ColumnStatement<'_>,
    commitment: &ColumnCommitment,
    proof: &ColumnProof,
    params: &AuditParams,
    registry: &Registry,
) -> Result<(), AuditError> {
    let started = Instant::now();
    let out = verify_column(stmt, commitment, proof, params);
    registry
        .histogram("audit.verify_ns", &[])
        .record(started.elapsed().as_nanos() as u64);
    match &out {
        Ok(()) => registry.counter("audit.verified", &[]).add(1),
        Err(e) => registry
            .counter("audit.rejects", &[("kind", e.kind())])
            .add(1),
    }
    out
}

/// [`verify_column_with_registry`] under an `audit.verify` trace span
/// (payload: provider id).
///
/// # Errors
///
/// Same contract as [`verify_column`].
pub fn verify_column_traced(
    stmt: &ColumnStatement<'_>,
    commitment: &ColumnCommitment,
    proof: &ColumnProof,
    params: &AuditParams,
    registry: &Registry,
    tracer: &Tracer,
    parent: SpanCtx,
) -> Result<(), AuditError> {
    let mut span = tracer.child(parent, "audit.verify");
    span.set_payload(u64::from(stmt.provider.0));
    verify_column_with_registry(stmt, commitment, proof, params, registry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eppi_core::model::OwnerId;
    use eppi_core::publish::publish_cell;

    fn published_from(
        raw: &[u64],
        stmt_seed: u64,
        provider: ProviderId,
        betas: &[f64],
    ) -> Vec<u64> {
        let nw = words_for(betas.len());
        let mut out = vec![0u64; nw];
        for (j, &beta) in betas.iter().enumerate() {
            let member = raw[j / 64] >> (j % 64) & 1 == 1;
            if publish_cell(stmt_seed, provider, OwnerId(j as u32), member, beta) {
                out[j / 64] |= 1 << (j % 64);
            }
        }
        out
    }

    fn sample(owners: usize, seed: u64) -> (Vec<f64>, Vec<u64>, Vec<u64>) {
        let betas: Vec<f64> = (0..owners).map(|j| (j % 10) as f64 / 10.0).collect();
        let nw = words_for(owners);
        let mut raw = vec![0u64; nw];
        for j in 0..owners {
            if mix64(seed ^ j as u64) & 1 == 1 {
                raw[j / 64] |= 1 << (j % 64);
            }
        }
        let published = published_from(&raw, 77, ProviderId(3), &betas);
        (betas, raw, published)
    }

    #[test]
    fn honest_proof_verifies() {
        let (betas, raw, published) = sample(100, 1);
        let stmt = ColumnStatement {
            epoch_seed: 77,
            provider: ProviderId(3),
            betas: &betas,
            published: &published,
        };
        let params = AuditParams { repetitions: 8 };
        let commitment = ColumnCommitment::compute(77, ProviderId(3), &betas, &published);
        for prover_seed in 0..4 {
            let proof = prove_column(&stmt, &raw, &params, prover_seed);
            verify_column(&stmt, &commitment, &proof, &params).unwrap();
        }
    }

    #[test]
    fn deflipped_column_fails_output_check() {
        let (betas, raw, published) = sample(100, 2);
        // Drop one decoy: a lane where published = 1 but raw = 0.
        let mut deflipped = published.clone();
        let lane = (0..100)
            .find(|&j| published[j / 64] >> (j % 64) & 1 == 1 && raw[j / 64] >> (j % 64) & 1 == 0)
            .expect("some decoy exists");
        deflipped[lane / 64] ^= 1 << (lane % 64);
        let stmt = ColumnStatement {
            epoch_seed: 77,
            provider: ProviderId(3),
            betas: &betas,
            published: &deflipped,
        };
        let params = AuditParams { repetitions: 8 };
        let commitment = ColumnCommitment::compute(77, ProviderId(3), &betas, &deflipped);
        let proof = prove_column(&stmt, &raw, &params, 9);
        assert!(matches!(
            verify_column(&stmt, &commitment, &proof, &params),
            Err(AuditError::OutputMismatch {
                provider: 3,
                rep: 0
            })
        ));
    }

    #[test]
    fn forged_view_sometimes_escapes_one_repetition_never_forty() {
        let (betas, raw, published) = sample(80, 3);
        let mut deflipped = published.clone();
        let lane = (0..80)
            .find(|&j| published[j / 64] >> (j % 64) & 1 == 1 && raw[j / 64] >> (j % 64) & 1 == 0)
            .expect("some decoy exists");
        deflipped[lane / 64] ^= 1 << (lane % 64);
        let delta: Vec<u64> = published
            .iter()
            .zip(&deflipped)
            .map(|(a, b)| a ^ b)
            .collect();
        let stmt = ColumnStatement {
            epoch_seed: 77,
            provider: ProviderId(3),
            betas: &betas,
            published: &deflipped,
        };
        let commitment = ColumnCommitment::compute(77, ProviderId(3), &betas, &deflipped);
        // At R = 1 some prover seeds hit a lucky challenge; at the
        // default R = 40 none of them do.
        let one = AuditParams { repetitions: 1 };
        let mut escapes = 0;
        for seed in 0..60 {
            let proof = prove_column_forged(&stmt, &raw, &one, seed, &delta);
            if verify_column(&stmt, &commitment, &proof, &one).is_ok() {
                escapes += 1;
            }
        }
        assert!(escapes > 20, "≈2/3 of single reps escape, saw {escapes}/60");
        assert!(escapes < 60, "pair (2,0) must catch the forgery");
        let full = AuditParams {
            repetitions: DEFAULT_REPETITIONS,
        };
        for seed in 0..3 {
            let proof = prove_column_forged(&stmt, &raw, &full, seed, &delta);
            assert!(
                verify_column(&stmt, &commitment, &proof, &full).is_err(),
                "forgery survived 40 repetitions (seed {seed})"
            );
        }
    }

    #[test]
    fn tampered_proof_fields_are_rejected() {
        let (betas, raw, published) = sample(70, 4);
        let stmt = ColumnStatement {
            epoch_seed: 77,
            provider: ProviderId(3),
            betas: &betas,
            published: &published,
        };
        let params = AuditParams { repetitions: 4 };
        let commitment = ColumnCommitment::compute(77, ProviderId(3), &betas, &published);
        let proof = prove_column(&stmt, &raw, &params, 5);
        verify_column(&stmt, &commitment, &proof, &params).unwrap();

        let mut bad = proof.clone();
        bad.reps[1].partner_ands[3] ^= 1;
        assert!(verify_column(&stmt, &commitment, &bad, &params).is_err());

        let mut bad = proof.clone();
        bad.reps[2].seeds[0] ^= 1;
        assert!(verify_column(&stmt, &commitment, &bad, &params).is_err());

        let mut bad = proof.clone();
        bad.reps[0].outputs[0][0] ^= 1;
        assert!(verify_column(&stmt, &commitment, &bad, &params).is_err());

        let mut bad = proof;
        bad.reps.pop();
        assert!(matches!(
            verify_column(&stmt, &commitment, &bad, &params),
            Err(AuditError::Malformed { .. })
        ));
    }

    #[test]
    fn proof_size_scales_with_repetitions() {
        let (betas, raw, published) = sample(64, 5);
        let stmt = ColumnStatement {
            epoch_seed: 77,
            provider: ProviderId(3),
            betas: &betas,
            published: &published,
        };
        let p2 = prove_column(&stmt, &raw, &AuditParams { repetitions: 2 }, 1);
        let p4 = prove_column(&stmt, &raw, &AuditParams { repetitions: 4 }, 1);
        assert!(p4.size_bytes() > p2.size_bytes());
        assert!(p2.size_bytes() > 0);
    }
}
