//! Fault-injection properties of the durability store (ISSUE §11):
//! arbitrary byte flips and truncations in the checkpoint and log files
//! must leave recovery either succeeding with a **strictly older valid
//! state** of the same lineage or failing with a **typed error** —
//! never panicking, never loading corrupt state.
//!
//! The oracle is the uninterrupted run itself: every head the golden
//! lineage ever had is serialized up front, and a recovered head must
//! re-serialize to exactly one of those byte strings.

use eppi_core::delta::{ColumnChange, DeltaEntry, IndexDelta};
use eppi_core::model::{Epsilon, MembershipMatrix, OwnerId, ProviderId};
use eppi_durability::{encode_epoch, DurableStore, StoreError, WAL_FILE};
use eppi_protocol::{construct_epoch, ProtocolConfig};
use eppi_telemetry::Registry;
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// The golden store: checkpoints at epochs 0 and 3, a log carrying
/// epochs 4 and 5, and the serialized bytes of every head the lineage
/// ever had.
struct Golden {
    dir: PathBuf,
    /// `heads[e]` = `encode_epoch` of the lineage at epoch `e`.
    heads: Vec<Vec<u8>>,
    wal_len: u64,
    /// Checkpoint file names, newest first.
    checkpoints: Vec<PathBuf>,
}

fn golden() -> &'static Golden {
    static GOLDEN: OnceLock<Golden> = OnceLock::new();
    GOLDEN.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("eppi-fault-golden-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut matrix = MembershipMatrix::new(16, 5);
        for o in 0..5u32 {
            for p in 0..(1 + 2 * o) {
                matrix.set(ProviderId(p % 16), OwnerId(o), true);
            }
        }
        let epsilons: Vec<Epsilon> = [0.3, 0.6, 0.2, 0.8, 0.5]
            .iter()
            .map(|&v| Epsilon::new(v).unwrap())
            .collect();
        let cfg = ProtocolConfig {
            seed: 42,
            ..ProtocolConfig::default()
        };
        let registry = Registry::new();
        let epoch0 = construct_epoch(&matrix, &epsilons, &cfg).unwrap();
        let mut heads = vec![encode_epoch(&epoch0)];
        let mut store = DurableStore::create_with_registry(&dir, &epoch0, &registry).unwrap();
        for step in 0..5u32 {
            let owner = OwnerId(step % 5);
            let provider = ProviderId((step * 3) % 16);
            matrix.set(provider, owner, !matrix.get(provider, owner));
            let mut delta = IndexDelta::new(matrix.owners());
            delta.record(DeltaEntry {
                owner,
                change: ColumnChange::Changed,
                epsilon: Epsilon::new(0.4).unwrap(),
            });
            let built = store
                .advance_with_registry(&matrix, &delta, &registry)
                .unwrap();
            heads.push(encode_epoch(&built.epoch));
            if step == 2 {
                // Checkpoint mid-lineage: retains epochs 0 and 3,
                // leaves epochs 4 and 5 in the log.
                store.checkpoint().unwrap();
            }
        }
        let wal_len = store.wal_bytes().unwrap();
        drop(store);
        let mut checkpoints: Vec<PathBuf> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.file_name().is_some_and(|n| n != WAL_FILE))
            .collect();
        checkpoints.sort();
        checkpoints.reverse(); // newest (highest epoch) first
        assert_eq!(checkpoints.len(), 2);
        assert!(wal_len > 0);
        Golden {
            dir,
            heads,
            wal_len,
            checkpoints,
        }
    })
}

/// Copies the golden store into a fresh per-case directory.
fn fresh_case() -> PathBuf {
    static CASE: AtomicUsize = AtomicUsize::new(0);
    let golden = golden();
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("eppi-fault-case-{}-{case}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    for entry in std::fs::read_dir(&golden.dir).unwrap() {
        let from = entry.unwrap().path();
        std::fs::copy(&from, dir.join(from.file_name().unwrap())).unwrap();
    }
    dir
}

fn flip_byte(path: &Path, pos: u64, mask: u8) {
    let mut bytes = std::fs::read(path).unwrap();
    let i = (pos % bytes.len() as u64) as usize;
    bytes[i] ^= mask;
    std::fs::write(path, &bytes).unwrap();
}

/// The central invariant: recovery of a corrupted copy either yields a
/// head whose serialization is byte-identical to some epoch the golden
/// lineage actually had (never newer than the newest), or a typed
/// error. Panics fail the test by propagation.
fn assert_valid_outcome(dir: &Path) {
    let golden = golden();
    match DurableStore::open_with_registry(dir, &Registry::new()) {
        Ok((store, recovery)) => {
            let epoch = store.head().epoch() as usize;
            assert!(epoch < golden.heads.len(), "head beyond the golden lineage");
            assert_eq!(
                encode_epoch(store.head()),
                golden.heads[epoch],
                "recovered head is not a state the lineage ever had"
            );
            assert_eq!(recovery.head_epoch, epoch as u64);
            assert_eq!(recovery.lineage, 0);
        }
        Err(
            StoreError::CorruptStore { .. }
            | StoreError::NoCheckpoint { .. }
            | StoreError::Io { .. },
        ) => {}
        Err(other) => panic!("recovery surfaced an unexpected error kind: {other}"),
    }
    let _ = std::fs::remove_dir_all(dir);
}

/// Targeted tamper on an *audited* lineage: flip committed membership
/// bits inside a journaled record's column bytes and fix up the frame's
/// CRC so the framing layer accepts it. Replay then reconstructs a
/// column the providers never certified, and recovery must refuse with
/// a hard [`StoreError::Audit`] — not silently install, not discard as
/// a torn tail.
#[test]
fn audited_wal_tamper_is_a_hard_audit_error() {
    use eppi_index::crc32;
    use eppi_protocol::{construct_epoch_audited, AuditConfig};

    let dir = std::env::temp_dir().join(format!("eppi-fault-audit-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut matrix = MembershipMatrix::new(16, 5);
    for o in 0..5u32 {
        for p in 0..(1 + 2 * o) {
            matrix.set(ProviderId(p % 16), OwnerId(o), true);
        }
    }
    let epsilons: Vec<Epsilon> = vec![Epsilon::new(0.5).unwrap(); 5];
    let cfg = ProtocolConfig {
        seed: 77,
        ..ProtocolConfig::default()
    };
    let audit = AuditConfig {
        params: eppi_audit::AuditParams { repetitions: 2 },
        ..AuditConfig::default()
    };
    let registry = Registry::new();
    let anchor = construct_epoch_audited(&matrix, &epsilons, &cfg, &audit).unwrap();
    let mut store = DurableStore::create_audited_with_registry(&dir, &anchor, &registry).unwrap();
    matrix.set(
        ProviderId(9),
        OwnerId(2),
        !matrix.get(ProviderId(9), OwnerId(2)),
    );
    let mut delta = IndexDelta::new(matrix.owners());
    delta.record(DeltaEntry {
        owner: OwnerId(2),
        change: ColumnChange::Changed,
        epsilon: Epsilon::new(0.4).unwrap(),
    });
    store
        .advance_audited_with_registry(&matrix, &delta, &audit, &registry)
        .unwrap();
    drop(store);

    // Untampered control: recovery verifies both commitment sets.
    let (reopened, recovery) = DurableStore::open_with_registry(&dir, &Registry::new()).unwrap();
    assert_eq!(recovery.audited, 2);
    drop(reopened);

    // Tamper: the single record's frame is [len][crc][payload]; the
    // payload holds a 32-byte header, one 13-byte delta entry, then the
    // touched column's membership bytes. Flip a whole column byte
    // (providers 0..8 of owner 2) and recompute the CRC so the framing
    // layer cannot tell.
    let wal_path = dir.join(WAL_FILE);
    let mut bytes = std::fs::read(&wal_path).unwrap();
    let len = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
    let column_at = 8 + 32 + 13;
    bytes[column_at] ^= 0xff;
    let crc = crc32(&bytes[8..8 + len]);
    bytes[4..8].copy_from_slice(&crc.to_le_bytes());
    std::fs::write(&wal_path, &bytes).unwrap();

    match DurableStore::open_with_registry(&dir, &Registry::new()) {
        Err(StoreError::Audit(e)) => {
            let kind = e.kind();
            assert!(
                kind == "published_digest" || kind == "decisions_digest",
                "unexpected audit failure kind: {kind}"
            );
        }
        Ok(_) => panic!("tampered audited record was silently installed"),
        Err(other) => panic!("expected an audit error, got: {other}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any single byte flip anywhere in the log: the checkpoints are
    /// intact, so recovery must succeed, land on epoch 3, 4 or 5, and
    /// reproduce that epoch's exact bytes.
    #[test]
    fn wal_byte_flips_recover_an_older_valid_state(pos in any::<u64>(), mask in 1u8..255) {
        let dir = fresh_case();
        flip_byte(&dir.join(WAL_FILE), pos % golden().wal_len, mask);
        let (store, recovery) =
            DurableStore::open_with_registry(&dir, &Registry::new()).expect("checkpoints intact");
        let epoch = store.head().epoch();
        prop_assert!((3..=5).contains(&epoch), "epoch {epoch} outside checkpoint..head");
        prop_assert_eq!(&encode_epoch(store.head()), &golden().heads[epoch as usize]);
        prop_assert_eq!(recovery.checkpoint_epoch, 3);
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Truncating the log at any byte boundary (a crash mid-append)
    /// recovers the longest valid prefix — and a reopen after the
    /// repair is clean.
    #[test]
    fn wal_truncation_recovers_the_valid_prefix(cut in any::<u64>()) {
        let dir = fresh_case();
        let keep = cut % (golden().wal_len + 1);
        let wal_path = dir.join(WAL_FILE);
        let bytes = std::fs::read(&wal_path).unwrap();
        std::fs::write(&wal_path, &bytes[..keep as usize]).unwrap();

        let (store, recovery) =
            DurableStore::open_with_registry(&dir, &Registry::new()).expect("checkpoints intact");
        let epoch = store.head().epoch();
        prop_assert!((3..=5).contains(&epoch));
        prop_assert_eq!(&encode_epoch(store.head()), &golden().heads[epoch as usize]);
        prop_assert_eq!(recovery.replayed as u64, epoch - 3);
        drop(store);

        let (store, recovery) =
            DurableStore::open_with_registry(&dir, &Registry::new()).expect("repaired store");
        prop_assert_eq!(recovery.discarded_bytes, 0, "truncation repair must persist");
        prop_assert!(recovery.tail_defect.is_none());
        prop_assert_eq!(store.head().epoch(), epoch);
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Any single byte flip in either checkpoint file: recovery either
    /// reads the other checkpoint (plus whatever log prefix still
    /// chains onto it) or types out — and whatever head it produces is
    /// a state the lineage actually had.
    #[test]
    fn checkpoint_byte_flips_never_load_corrupt_state(
        which in 0usize..2,
        pos in any::<u64>(),
        mask in 1u8..255,
    ) {
        let dir = fresh_case();
        let name = golden().checkpoints[which].file_name().unwrap().to_owned();
        flip_byte(&dir.join(name), pos, mask);
        assert_valid_outcome(&dir);
    }

    /// Flips in *both* checkpoints plus the log — the worst case must
    /// still be a typed outcome, and any recovered head a real state.
    #[test]
    fn combined_corruption_is_typed_or_valid(
        pos_a in any::<u64>(),
        pos_b in any::<u64>(),
        pos_wal in any::<u64>(),
        mask in 1u8..255,
    ) {
        let dir = fresh_case();
        for (which, pos) in [(0usize, pos_a), (1, pos_b)] {
            let name = golden().checkpoints[which].file_name().unwrap().to_owned();
            flip_byte(&dir.join(name), pos, mask);
        }
        flip_byte(&dir.join(WAL_FILE), pos_wal % golden().wal_len, mask);
        assert_valid_outcome(&dir);
    }
}
