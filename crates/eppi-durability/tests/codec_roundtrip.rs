//! Property-based round-trips for every durability record type: the
//! EPPI v2 `IndexEpoch` snapshot codec and the write-ahead log's frame
//! payloads. Serialization must be injective up to equality — decoding
//! an encoding yields a value that re-encodes to the same bytes — for
//! arbitrary lineage shapes, not just the hand-picked unit-test ones.

use eppi_core::delta::{ColumnChange, DeltaEntry, IndexDelta};
use eppi_core::model::{Epsilon, MembershipMatrix, OwnerId, ProviderId};
use eppi_durability::{decode_epoch, encode_epoch, WalRecord};
use eppi_protocol::{construct_epoch, Backend, ProtocolConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_matrix(rng: &mut StdRng, providers: usize, owners: usize) -> MembershipMatrix {
    let mut matrix = MembershipMatrix::new(providers, owners);
    for p in 0..providers as u32 {
        for o in 0..owners as u32 {
            if rng.gen_bool(0.35) {
                matrix.set(ProviderId(p), OwnerId(o), true);
            }
        }
    }
    matrix
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `decode(encode(epoch))` reproduces the lineage head exactly —
    /// index, decisions, shares, thresholds and config — for arbitrary
    /// dimensions, ε assignments and backends.
    #[test]
    fn index_epoch_roundtrips(
        seed in any::<u64>(),
        providers in 3usize..=12,
        owners in 1usize..=6,
        backend_pick in 0u8..3,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let matrix = random_matrix(&mut rng, providers, owners);
        let epsilons: Vec<Epsilon> = (0..owners)
            .map(|_| Epsilon::saturating(rng.gen_range(0.0..1.0)))
            .collect();
        let backend = match backend_pick {
            0 => Backend::InProcess,
            1 => Backend::Threaded,
            _ => Backend::Simulated,
        };
        let cfg = ProtocolConfig { seed, backend, ..ProtocolConfig::default() };
        let epoch = construct_epoch(&matrix, &epsilons, &cfg).expect("construction");

        let bytes = encode_epoch(&epoch);
        let back = decode_epoch(&bytes).expect("decode own encoding");
        prop_assert_eq!(back.index(), epoch.index());
        prop_assert_eq!(back.decisions(), epoch.decisions());
        prop_assert_eq!(back.shares(), epoch.shares());
        prop_assert_eq!(back.thresholds(), epoch.thresholds());
        prop_assert_eq!(back.epoch(), epoch.epoch());
        prop_assert_eq!(back.common_count(), epoch.common_count());
        // Injectivity up to equality: the round-tripped value
        // re-encodes to the identical byte string.
        prop_assert_eq!(encode_epoch(&back), bytes);
    }

    /// WAL payload framing round-trips for arbitrary change batches:
    /// changed/withdrawn columns over the base plus dense appends, each
    /// with an arbitrary ε and an arbitrary new column.
    #[test]
    fn wal_payload_roundtrips(
        seed in any::<u64>(),
        lineage in any::<u64>(),
        epoch in any::<u64>(),
        providers in 1usize..=40,
        base_owners in 1usize..=10,
        appended in 0usize..=3,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let owners = base_owners + appended;
        let matrix = random_matrix(&mut rng, providers, owners);
        let mut delta = IndexDelta::new(base_owners);
        let mut any_entry = false;
        for o in 0..base_owners as u32 {
            match rng.gen_range(0u32..3) {
                0 => {}
                change => {
                    any_entry = true;
                    delta.record(DeltaEntry {
                        owner: OwnerId(o),
                        change: if change == 1 {
                            ColumnChange::Changed
                        } else {
                            ColumnChange::Withdrawn
                        },
                        epsilon: Epsilon::saturating(rng.gen_range(0.0..1.0)),
                    });
                }
            }
        }
        for o in base_owners as u32..owners as u32 {
            any_entry = true;
            delta.record(DeltaEntry {
                owner: OwnerId(o),
                change: ColumnChange::Added,
                epsilon: Epsilon::saturating(rng.gen_range(0.0..1.0)),
            });
        }
        // Guarantee at least one entry so the record is non-trivial.
        if !any_entry {
            delta.record(DeltaEntry {
                owner: OwnerId(0),
                change: ColumnChange::Changed,
                epsilon: Epsilon::saturating(0.5),
            });
        }

        let record = WalRecord::capture(lineage, epoch, &delta, &matrix);
        let payload = record.encode_payload();
        let back = WalRecord::decode_payload(&payload).expect("decode own encoding");
        prop_assert_eq!(&back, &record);
        prop_assert_eq!(back.encode_payload(), payload);
        // The synthesized replay matrix carries exactly the touched
        // columns of the original.
        let synth = record.matrix();
        for owner in delta.touched() {
            for p in 0..providers as u32 {
                prop_assert_eq!(
                    synth.get(ProviderId(p), owner),
                    matrix.get(ProviderId(p), owner)
                );
            }
        }
    }
}
