//! Error types of the durability layer.

use eppi_audit::AuditError;
use eppi_core::error::EppiError;
use eppi_index::CodecError;
use std::error::Error;
use std::fmt;
use std::io;
use std::path::PathBuf;

/// Errors raised by the crash-safe epoch store.
///
/// Every failure mode of opening, appending to, checkpointing or
/// recovering a store surfaces here as a *typed* error — the recovery
/// path never panics on hostile bytes (asserted by the fault-injection
/// proptests).
#[derive(Debug)]
#[non_exhaustive]
pub enum StoreError {
    /// A filesystem operation failed. The original [`io::Error`] is
    /// kept; `op` names the operation (`"open"`, `"fsync"`, …).
    Io {
        /// The failed operation.
        op: &'static str,
        /// The path involved.
        path: PathBuf,
        /// The underlying I/O error.
        source: io::Error,
    },
    /// A checkpoint or log payload failed structural decoding.
    Codec(CodecError),
    /// Recovered state failed the protocol layer's semantic validation
    /// ([`IndexEpoch::resume`](eppi_protocol::IndexEpoch::resume)) or a
    /// construction over it was rejected.
    Protocol(EppiError),
    /// Persisted publication commitments no longer verify against the
    /// recovered (or replayed) epoch — the store's content drifted from
    /// what the providers certified. Unlike a torn tail this is never
    /// silently discarded: tampering with audited state is a hard
    /// error.
    Audit(AuditError),
    /// The directory holds no checkpoint file at all — the store was
    /// never [`create`](crate::DurableStore::create)d here.
    NoCheckpoint {
        /// The store directory.
        dir: PathBuf,
    },
    /// Checkpoint files exist but every one of them is corrupt; the
    /// lineage cannot be recovered from this directory.
    CorruptStore {
        /// The store directory.
        dir: PathBuf,
        /// How many checkpoint candidates were tried and rejected.
        candidates: usize,
    },
    /// [`create`](crate::DurableStore::create) was pointed at a
    /// directory that already holds a store.
    AlreadyInitialized {
        /// The store directory.
        dir: PathBuf,
    },
    /// A delta was submitted out of lineage order.
    EpochOrder {
        /// The epoch number the lineage expects next.
        expected: u64,
        /// The epoch number actually submitted.
        actual: u64,
    },
    /// [`reanchor`](crate::DurableStore::reanchor) was handed an epoch
    /// that is not a fresh epoch-0 construction.
    NotAnAnchor {
        /// The epoch number of the rejected construction.
        epoch: u64,
    },
}

impl StoreError {
    /// Wraps an [`io::Error`] with its operation and path.
    pub(crate) fn io(op: &'static str, path: impl Into<PathBuf>, source: io::Error) -> Self {
        StoreError::Io {
            op,
            path: path.into(),
            source,
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { op, path, source } => {
                write!(f, "{op} failed on {}: {source}", path.display())
            }
            StoreError::Codec(e) => write!(f, "record decoding failed: {e}"),
            StoreError::Protocol(e) => write!(f, "recovered state rejected: {e}"),
            StoreError::Audit(e) => {
                write!(f, "recovered state fails its publication audit: {e}")
            }
            StoreError::NoCheckpoint { dir } => {
                write!(f, "no checkpoint found in {}", dir.display())
            }
            StoreError::CorruptStore { dir, candidates } => write!(
                f,
                "all {candidates} checkpoint candidate(s) in {} are corrupt",
                dir.display()
            ),
            StoreError::AlreadyInitialized { dir } => {
                write!(f, "{} already holds a store", dir.display())
            }
            StoreError::EpochOrder { expected, actual } => write!(
                f,
                "epoch out of lineage order: expected {expected}, got {actual}"
            ),
            StoreError::NotAnAnchor { epoch } => {
                write!(
                    f,
                    "re-anchor requires a fresh epoch-0 construction, got epoch {epoch}"
                )
            }
        }
    }
}

impl Error for StoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            StoreError::Codec(e) => Some(e),
            StoreError::Protocol(e) => Some(e),
            StoreError::Audit(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for StoreError {
    fn from(e: CodecError) -> Self {
        StoreError::Codec(e)
    }
}

impl From<EppiError> for StoreError {
    fn from(e: EppiError) -> Self {
        StoreError::Protocol(e)
    }
}

impl From<AuditError> for StoreError {
    fn from(e: AuditError) -> Self {
        StoreError::Audit(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StoreError::io("fsync", "/tmp/x", io::Error::other("boom"));
        assert!(e.to_string().contains("fsync"));
        assert!(e.to_string().contains("/tmp/x"));
        let e = StoreError::EpochOrder {
            expected: 4,
            actual: 7,
        };
        assert!(e.to_string().contains("expected 4"));
        let e = StoreError::CorruptStore {
            dir: "/s".into(),
            candidates: 2,
        };
        assert!(e.to_string().contains("2 checkpoint"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StoreError>();
    }
}
