//! # eppi-durability — crash-safe epoch lineage persistence
//!
//! The ε-PPI epoch lifecycle ([`eppi_protocol::epoch`]) makes index
//! refresh safe and O(k) — but only while the retained protocol state
//! (coordinator share vectors, thresholds, mix decisions, the lineage
//! seed) survives. Losing it forces a full re-randomized rebuild, which
//! is exactly the intersection-attack surface (§III-C of the paper) the
//! deterministic-coin design exists to avoid. This crate makes the
//! lineage durable:
//!
//! * **Write-ahead delta log** ([`wal`]) — every applied
//!   [`IndexDelta`](eppi_core::delta::IndexDelta) is journaled (with
//!   the touched membership columns, CRC-framed, fsync'd) *before* the
//!   produced epoch is installed.
//! * **Atomic checkpoints** ([`checkpoint`]) — full EPPI v2 epoch
//!   snapshots written temp-file-then-rename, retained two deep.
//! * **Recovery** ([`store`]) — newest decodable checkpoint + replay of
//!   the log's valid prefix; torn tails are detected, discarded and
//!   truncated. Replay re-runs the journaled constructions under the
//!   deterministic lineage coins, so the recovered head is
//!   bit-identical to the uninterrupted run.
//! * **Re-anchoring** — an operator can discard a lineage for a fresh
//!   epoch-0 construction under a bumped lineage generation (the
//!   anti-archive escape hatch).
//! * **Audited lineages** — a store created from an
//!   [`AuditedEpoch`](eppi_protocol::AuditedEpoch) persists every
//!   provider's publication commitment (checkpoint envelope + journal
//!   trailer), and recovery re-verifies them against the recovered and
//!   every replayed epoch: content that drifted from what the providers
//!   certified surfaces as a hard [`StoreError::Audit`], never a
//!   silently installed head (DESIGN.md §16).
//!
//! ```
//! use eppi_core::delta::{ColumnChange, DeltaEntry, IndexDelta};
//! use eppi_core::model::{Epsilon, MembershipMatrix, OwnerId, ProviderId};
//! use eppi_durability::DurableStore;
//! use eppi_protocol::{construct_epoch, ProtocolConfig};
//!
//! let mut matrix = MembershipMatrix::new(8, 2);
//! matrix.set(ProviderId(0), OwnerId(0), true);
//! matrix.set(ProviderId(3), OwnerId(1), true);
//! let epsilons = vec![Epsilon::new(0.5)?; 2];
//! let config = ProtocolConfig::default();
//! let epoch0 = construct_epoch(&matrix, &epsilons, &config)?;
//!
//! let dir = std::env::temp_dir().join(format!("eppi-doc-{}", std::process::id()));
//! # let _ = std::fs::remove_dir_all(&dir);
//! let mut store = DurableStore::create(&dir, &epoch0)?;
//!
//! // One journaled refresh…
//! matrix.set(ProviderId(5), OwnerId(1), true);
//! let mut delta = IndexDelta::new(2);
//! delta.record(DeltaEntry {
//!     owner: OwnerId(1),
//!     change: ColumnChange::Changed,
//!     epsilon: Epsilon::new(0.5)?,
//! });
//! store.advance(&matrix, &delta)?;
//! drop(store); // "crash"
//!
//! // …survives a restart bit-identically, no rebuild.
//! let (store, recovery) = DurableStore::open(&dir)?;
//! assert_eq!(store.head().epoch(), 1);
//! assert_eq!(recovery.replayed, 1);
//! # std::fs::remove_dir_all(&dir).unwrap();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod checkpoint;
pub mod epoch_codec;
pub mod error;
pub mod serve_cache;
pub mod store;
pub mod wal;

pub use checkpoint::Candidate;
pub use epoch_codec::{decode_epoch, encode_epoch, epoch_to_record};
pub use error::StoreError;
pub use serve_cache::{
    invalidate_serve_snapshot, load_serve_snapshot, save_serve_snapshot, SERVE_CACHE_FILE,
};
pub use store::{CheckpointReceipt, DurableStore, Recovery, KEEP_CHECKPOINTS, WAL_FILE};
pub use wal::{TailDefect, Wal, WalRecord};
