//! The crash-safe epoch lineage store.
//!
//! [`DurableStore`] keeps one directory per lineage:
//!
//! ```text
//! store/
//! ├── checkpoint-0000000000-00000000000000000003.eppi   (older fallback)
//! ├── checkpoint-0000000000-00000000000000000007.eppi   (newest snapshot)
//! └── wal.log                                           (deltas since it)
//! ```
//!
//! **Write path** — [`advance`](DurableStore::advance) runs
//! `construct_delta`, journals the delta's replay record (append +
//! `fdatasync`) and only then installs the new epoch as the lineage
//! head: a record is durable before anything downstream can observe the
//! epoch it produces. [`checkpoint`](DurableStore::checkpoint) folds
//! the log into one atomic snapshot (temp file + rename), truncates the
//! log *after* the snapshot is durable, and prunes all but the newest
//! two checkpoints.
//!
//! **Recovery** — [`open`](DurableStore::open) walks the recovery state
//! machine (DESIGN.md §11): newest decodable checkpoint → replay the
//! log's valid frame prefix in epoch order → discard and truncate
//! whatever is left (torn tail, foreign lineage, epoch gap or a record
//! the protocol layer rejects). Replay re-runs the journaled
//! constructions, so a recovered head is bit-identical to the
//! uninterrupted run — no rebuild, no re-randomized coins, no
//! intersection-attack surface.
//!
//! **Re-anchor** — [`reanchor`](DurableStore::reanchor) discards the
//! lineage for a fresh epoch-0 construction under a bumped lineage
//! generation; file-name ordering makes the new generation win recovery
//! even though its epoch numbers restart at 0.

use crate::checkpoint;
use crate::error::StoreError;
use crate::wal::{TailDefect, Wal, WalRecord};
use eppi_audit::ColumnCommitment;
use eppi_core::delta::IndexDelta;
use eppi_core::model::MembershipMatrix;
use eppi_protocol::{
    construct_delta_audited_traced, construct_delta_with_registry, verify_commitments, AuditConfig,
    AuditedConstructError, AuditedDelta, AuditedEpoch, DeltaConstruction, IndexEpoch,
};
use eppi_telemetry::{Counter, Histogram, Registry};
use eppi_trace::SpanCtx;
use eppi_trace::Tracer;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// File name of the write-ahead delta log inside a store directory.
pub const WAL_FILE: &str = "wal.log";

/// How many checkpoints a store retains (the newest, plus one fallback
/// in case the newest is later found corrupt).
pub const KEEP_CHECKPOINTS: usize = 2;

/// The `durability.*` instrument handles a store updates.
#[derive(Debug, Clone)]
struct StoreMetrics {
    fsyncs: Arc<Counter>,
    fsync_ns: Arc<Histogram>,
    wal_records: Arc<Counter>,
    wal_append_bytes: Arc<Counter>,
    replayed_records: Arc<Counter>,
    audit_checks: Arc<Counter>,
    recovery_ns: Arc<Histogram>,
    checkpoint_ns: Arc<Histogram>,
    checkpoint_bytes: Arc<Counter>,
}

impl StoreMetrics {
    fn new(registry: &Registry) -> Self {
        StoreMetrics {
            fsyncs: registry.counter("durability.fsyncs", &[]),
            fsync_ns: registry.histogram("durability.fsync_ns", &[]),
            wal_records: registry.counter("durability.wal_records", &[]),
            wal_append_bytes: registry.counter("durability.wal_append_bytes", &[]),
            replayed_records: registry.counter("durability.replayed_records", &[]),
            audit_checks: registry.counter("durability.audit_checks", &[]),
            recovery_ns: registry.histogram("durability.recovery_ns", &[]),
            checkpoint_ns: registry.histogram("durability.checkpoint_ns", &[]),
            checkpoint_bytes: registry.counter("durability.checkpoint_bytes", &[]),
        }
    }

    fn fsync(&self, wall: Duration, count: u64) {
        self.fsyncs.add(count);
        self.fsync_ns.record(wall.as_nanos() as u64);
    }
}

/// What [`DurableStore::open`] did to reconstruct the lineage head.
#[derive(Debug, Clone)]
pub struct Recovery {
    /// Epoch number of the checkpoint recovery started from.
    pub checkpoint_epoch: u64,
    /// Epoch number of the reconstructed head (≥ `checkpoint_epoch`).
    pub head_epoch: u64,
    /// Re-anchor generation of the recovered lineage.
    pub lineage: u64,
    /// Checkpoint candidates that failed to decode before one loaded.
    pub corrupt_checkpoints: usize,
    /// Log records replayed through `construct_delta`.
    pub replayed: usize,
    /// Log records skipped because the checkpoint already covers them.
    pub skipped_stale: usize,
    /// Log bytes discarded (torn tail plus anything past a defect).
    pub discarded_bytes: u64,
    /// Persisted commitment sets re-verified against recovered state
    /// (the checkpoint's, plus one per audited replayed record).
    pub audited: usize,
    /// Why the log tail was discarded, when it was.
    pub tail_defect: Option<TailDefect>,
    /// Wall time of the whole recovery.
    pub wall: Duration,
}

/// Receipt of one [`DurableStore::checkpoint`].
#[derive(Debug, Clone, Copy)]
pub struct CheckpointReceipt {
    /// Epoch number snapshotted.
    pub epoch: u64,
    /// Serialized snapshot size in bytes.
    pub bytes: u64,
    /// Older checkpoint files pruned.
    pub pruned: usize,
    /// Wall time of the whole checkpoint (write + truncate + prune).
    pub wall: Duration,
}

/// A crash-safe store for one epoch lineage: write-ahead delta log,
/// atomic checkpoints, warm recovery.
#[derive(Debug)]
pub struct DurableStore {
    dir: PathBuf,
    lineage: u64,
    head: IndexEpoch,
    /// The head's publication commitments (empty for an unaudited
    /// lineage); what the next checkpoint persists.
    commitments: Vec<ColumnCommitment>,
    wal: Wal,
    metrics: StoreMetrics,
}

impl DurableStore {
    /// Initializes `dir` as a new store anchored at `epoch` (normally a
    /// fresh [`construct_epoch`](eppi_protocol::construct_epoch)
    /// result) and leaves the log empty.
    ///
    /// # Errors
    ///
    /// [`StoreError::AlreadyInitialized`] if `dir` already holds a
    /// checkpoint; [`StoreError::Io`] on filesystem failure.
    pub fn create(dir: impl Into<PathBuf>, epoch: &IndexEpoch) -> Result<DurableStore, StoreError> {
        Self::create_with_registry(dir, epoch, eppi_telemetry::global())
    }

    /// [`create`](Self::create) reporting `durability.*` telemetry into
    /// a caller-owned registry.
    ///
    /// # Errors
    ///
    /// Same contract as [`create`](Self::create).
    pub fn create_with_registry(
        dir: impl Into<PathBuf>,
        epoch: &IndexEpoch,
        registry: &Registry,
    ) -> Result<DurableStore, StoreError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| StoreError::io("create_dir", &dir, e))?;
        if !checkpoint::scan(&dir)?.is_empty() {
            return Err(StoreError::AlreadyInitialized { dir });
        }
        let metrics = StoreMetrics::new(registry);
        let receipt = checkpoint::write_atomic(&dir, 0, epoch, &[])?;
        metrics.fsync(receipt.fsync_wall, receipt.fsyncs);
        metrics.checkpoint_bytes.add(receipt.bytes);
        let mut wal = Wal::open(dir.join(WAL_FILE))?;
        wal.clear()?;
        Ok(DurableStore {
            dir,
            lineage: 0,
            head: epoch.clone(),
            commitments: Vec::new(),
            wal,
            metrics,
        })
    }

    /// [`create`](Self::create) for an audited lineage: the anchor's
    /// per-provider publication commitments are persisted in the
    /// checkpoint, and every recovery re-verifies them before handing
    /// the store out.
    ///
    /// # Errors
    ///
    /// Same contract as [`create`](Self::create).
    pub fn create_audited(
        dir: impl Into<PathBuf>,
        anchor: &AuditedEpoch,
    ) -> Result<DurableStore, StoreError> {
        Self::create_audited_with_registry(dir, anchor, eppi_telemetry::global())
    }

    /// [`create_audited`](Self::create_audited) reporting telemetry
    /// into a caller-owned registry.
    ///
    /// # Errors
    ///
    /// Same contract as [`create`](Self::create).
    pub fn create_audited_with_registry(
        dir: impl Into<PathBuf>,
        anchor: &AuditedEpoch,
        registry: &Registry,
    ) -> Result<DurableStore, StoreError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| StoreError::io("create_dir", &dir, e))?;
        if !checkpoint::scan(&dir)?.is_empty() {
            return Err(StoreError::AlreadyInitialized { dir });
        }
        let commitments = anchor.commitments();
        let metrics = StoreMetrics::new(registry);
        let receipt = checkpoint::write_atomic(&dir, 0, &anchor.epoch, &commitments)?;
        metrics.fsync(receipt.fsync_wall, receipt.fsyncs);
        metrics.checkpoint_bytes.add(receipt.bytes);
        let mut wal = Wal::open(dir.join(WAL_FILE))?;
        wal.clear()?;
        Ok(DurableStore {
            dir,
            lineage: 0,
            head: anchor.epoch.clone(),
            commitments,
            wal,
            metrics,
        })
    }

    /// Recovers the lineage from `dir`: newest decodable checkpoint,
    /// plus a replay of the log's valid frame prefix. The log is
    /// truncated back to the replayed prefix so the next append lands
    /// after the last surviving record.
    ///
    /// # Errors
    ///
    /// [`StoreError::NoCheckpoint`] /
    /// [`StoreError::CorruptStore`] when no checkpoint decodes;
    /// [`StoreError::Io`] on filesystem failure. Corruption in the
    /// *log* is never an error — recovery falls back to the longest
    /// valid prefix (reported in [`Recovery`]).
    pub fn open(dir: impl Into<PathBuf>) -> Result<(DurableStore, Recovery), StoreError> {
        Self::open_with_registry(dir, eppi_telemetry::global())
    }

    /// [`open`](Self::open) reporting telemetry (both `durability.*`
    /// and the replayed constructions' `construct.*`) into a
    /// caller-owned registry.
    ///
    /// # Errors
    ///
    /// Same contract as [`open`](Self::open).
    pub fn open_with_registry(
        dir: impl Into<PathBuf>,
        registry: &Registry,
    ) -> Result<(DurableStore, Recovery), StoreError> {
        Self::open_traced(dir, registry, &Tracer::disabled())
    }

    /// [`open_with_registry`](Self::open_with_registry) with causal
    /// tracing: recovery runs under a `recover.open` root span with one
    /// child per state of the recovery machine —
    /// `recover.checkpoint_load` (payload = checkpoint candidates
    /// scanned), `recover.wal_scan` (payload = valid frames found), one
    /// `recover.replay_record` per delta re-run through
    /// `construct_delta` (payload = the record's epoch), and
    /// `recover.truncate` (payload = bytes discarded) when a tail is
    /// cut. A disabled tracer records nothing.
    ///
    /// # Errors
    ///
    /// Same contract as [`open`](Self::open).
    pub fn open_traced(
        dir: impl Into<PathBuf>,
        registry: &Registry,
        tracer: &Tracer,
    ) -> Result<(DurableStore, Recovery), StoreError> {
        let dir = dir.into();
        let metrics = StoreMetrics::new(registry);
        let started = Instant::now();
        let open_span = tracer.root("recover.open");
        let octx = open_span.ctx();

        // State 1 — newest decodable checkpoint, newest-first by
        // (lineage, epoch); a corrupt newest file falls back to the
        // retained older one (strictly older valid state).
        let mut load_span = tracer.child(octx, "recover.checkpoint_load");
        let candidates = checkpoint::scan(&dir)?;
        if candidates.is_empty() {
            return Err(StoreError::NoCheckpoint { dir });
        }
        let total = candidates.len();
        let mut corrupt_checkpoints = 0;
        let mut picked = None;
        for candidate in candidates {
            match checkpoint::load(&candidate.path) {
                Ok((epoch, commitments)) if epoch.epoch() == candidate.epoch => {
                    picked = Some((epoch, commitments, candidate.lineage));
                    break;
                }
                // A decodable file whose content disagrees with its
                // name is as untrustworthy as a checksum failure.
                Ok(_) | Err(StoreError::Codec(_)) | Err(StoreError::Protocol(_)) => {
                    corrupt_checkpoints += 1;
                }
                Err(e) => return Err(e),
            }
        }
        let Some((mut head, mut commitments, lineage)) = picked else {
            return Err(StoreError::CorruptStore {
                dir,
                candidates: total,
            });
        };
        let checkpoint_epoch = head.epoch();
        load_span.set_payload(total as u64);
        drop(load_span);

        // An audited checkpoint must still verify against the epoch it
        // carries — a mismatch is tampering with certified state, a
        // hard error rather than a discardable tail.
        let mut audited = 0;
        if !commitments.is_empty() {
            let mut audit_span = tracer.child(octx, "recover.audit_check");
            audit_span.set_payload(head.epoch());
            verify_commitments(&head, &commitments)?;
            metrics.audit_checks.inc();
            audited += 1;
        }

        // State 2 — replay the log's valid frame prefix in epoch order.
        let wal_path = dir.join(WAL_FILE);
        let mut scan_span = tracer.child(octx, "recover.wal_scan");
        let scan = Wal::scan(&wal_path)?;
        scan_span.set_payload(scan.frames.len() as u64);
        drop(scan_span);
        let mut tail_defect = scan.defect;
        let mut replayed = 0;
        let mut skipped_stale = 0;
        let mut kept: u64 = 0;
        for frame in &scan.frames {
            let record = &frame.record;
            if record.lineage != lineage {
                tail_defect = Some(TailDefect::ForeignLineage);
                break;
            }
            if record.epoch <= head.epoch() {
                skipped_stale += 1;
                kept = frame.end;
                continue;
            }
            if record.epoch != head.epoch() + 1 {
                tail_defect = Some(TailDefect::EpochGap);
                break;
            }
            let matrix = record.matrix();
            let mut replay_span = tracer.child(octx, "recover.replay_record");
            replay_span.set_payload(record.epoch);
            match construct_delta_with_registry(&head, &matrix, &record.delta, registry) {
                Ok(out) => {
                    // A journaled audited record must replay to exactly
                    // the columns its providers certified; a corrupted
                    // membership column that slips past the CRC is
                    // caught here as a hard audit error.
                    if !record.commitments.is_empty() {
                        let mut audit_span = tracer.child(octx, "recover.audit_check");
                        audit_span.set_payload(record.epoch);
                        verify_commitments(&out.epoch, &record.commitments)?;
                        metrics.audit_checks.inc();
                        audited += 1;
                    }
                    commitments = record.commitments.clone();
                    head = out.epoch;
                    replayed += 1;
                    kept = frame.end;
                }
                Err(_) => {
                    tail_defect = Some(TailDefect::InvalidState);
                    break;
                }
            }
        }

        // State 3 — truncate the discarded tail so appends resume
        // cleanly after the last surviving record.
        let mut wal = Wal::open(&wal_path)?;
        let discarded_bytes = scan.file_len - kept;
        if discarded_bytes > 0 {
            let mut truncate_span = tracer.child(octx, "recover.truncate");
            truncate_span.set_payload(discarded_bytes);
            wal.truncate_to(kept)?;
            self_fsync_note(&metrics);
        }

        let wall = started.elapsed();
        metrics.replayed_records.add(replayed as u64);
        metrics.recovery_ns.record(wall.as_nanos() as u64);
        let recovery = Recovery {
            checkpoint_epoch,
            head_epoch: head.epoch(),
            lineage,
            corrupt_checkpoints,
            replayed,
            skipped_stale,
            discarded_bytes,
            audited,
            tail_defect,
            wall,
        };
        Ok((
            DurableStore {
                dir,
                lineage,
                head,
                commitments,
                wal,
                metrics,
            },
            recovery,
        ))
    }

    /// The lineage head: the newest durable epoch.
    pub fn head(&self) -> &IndexEpoch {
        &self.head
    }

    /// The head's persisted publication commitments (empty when the
    /// head was installed without auditing).
    pub fn commitments(&self) -> &[ColumnCommitment] {
        &self.commitments
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The current re-anchor generation.
    pub fn lineage(&self) -> u64 {
        self.lineage
    }

    /// Current log length in bytes.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`].
    pub fn wal_bytes(&self) -> Result<u64, StoreError> {
        self.wal.len()
    }

    /// Applies one delta to the lineage: runs the incremental
    /// construction, journals its replay record durably, and only then
    /// installs the produced epoch as the head. A crash after this
    /// returns is recovered exactly; a crash before it leaves the
    /// previous head intact — there is no in-between.
    ///
    /// # Errors
    ///
    /// [`StoreError::Protocol`] when the construction rejects the
    /// delta; [`StoreError::Io`] on journal failure (the head is
    /// unchanged in both cases).
    pub fn advance(
        &mut self,
        matrix: &MembershipMatrix,
        delta: &IndexDelta,
    ) -> Result<DeltaConstruction, StoreError> {
        self.advance_with_registry(matrix, delta, eppi_telemetry::global())
    }

    /// [`advance`](Self::advance) reporting the construction's
    /// telemetry into a caller-owned registry.
    ///
    /// # Errors
    ///
    /// Same contract as [`advance`](Self::advance).
    pub fn advance_with_registry(
        &mut self,
        matrix: &MembershipMatrix,
        delta: &IndexDelta,
        registry: &Registry,
    ) -> Result<DeltaConstruction, StoreError> {
        let next = self.head.epoch() + 1;
        let built = construct_delta_with_registry(&self.head, matrix, delta, registry)?;
        let record = WalRecord::capture(self.lineage, next, delta, matrix);
        let receipt = self.wal.append(&record)?;
        self.metrics.wal_records.inc();
        self.metrics.wal_append_bytes.add(receipt.bytes);
        self.metrics.fsync(receipt.fsync_wall, 1);
        self.head = built.epoch.clone();
        // An unaudited advance downgrades the lineage: the old
        // commitments do not describe the new head.
        self.commitments.clear();
        Ok(built)
    }

    /// [`advance`](Self::advance) through the audit layer: the
    /// incremental construction is certified by every provider and
    /// auditor-verified *before* anything is journaled or installed,
    /// and the certificates' commitments ride the journal record so
    /// recovery replays stay audit-checked.
    ///
    /// # Errors
    ///
    /// [`StoreError::Audit`] when the auditor gate rejects (head and
    /// log unchanged); otherwise the same contract as
    /// [`advance`](Self::advance).
    pub fn advance_audited(
        &mut self,
        matrix: &MembershipMatrix,
        delta: &IndexDelta,
        audit: &AuditConfig,
    ) -> Result<AuditedDelta, StoreError> {
        self.advance_audited_with_registry(matrix, delta, audit, eppi_telemetry::global())
    }

    /// [`advance_audited`](Self::advance_audited) reporting telemetry
    /// (both the construction's and the `audit.*` instruments) into a
    /// caller-owned registry.
    ///
    /// # Errors
    ///
    /// Same contract as [`advance_audited`](Self::advance_audited).
    pub fn advance_audited_with_registry(
        &mut self,
        matrix: &MembershipMatrix,
        delta: &IndexDelta,
        audit: &AuditConfig,
        registry: &Registry,
    ) -> Result<AuditedDelta, StoreError> {
        let next = self.head.epoch() + 1;
        let built = construct_delta_audited_traced(
            &self.head,
            matrix,
            delta,
            audit,
            registry,
            &Tracer::disabled(),
            SpanCtx::NONE,
        )
        .map_err(|e| match e {
            AuditedConstructError::Protocol(e) => StoreError::Protocol(e),
            AuditedConstructError::Audit(e) => StoreError::Audit(e),
            // Forward-compatibility arm for the #[non_exhaustive]
            // source enum.
            _ => StoreError::Audit(eppi_audit::AuditError::Malformed {
                provider: u32::MAX,
                reason: "unknown audited-construction failure",
            }),
        })?;
        let commitments = built.commitments();
        let mut record = WalRecord::capture(self.lineage, next, delta, matrix);
        record.commitments = commitments.clone();
        let receipt = self.wal.append(&record)?;
        self.metrics.wal_records.inc();
        self.metrics.wal_append_bytes.add(receipt.bytes);
        self.metrics.fsync(receipt.fsync_wall, 1);
        self.head = built.delta.epoch.clone();
        self.commitments = commitments;
        Ok(built)
    }

    /// Folds the log into one atomic snapshot of the head, truncates
    /// the log, and prunes all but the newest
    /// [`KEEP_CHECKPOINTS`] checkpoints. Ordering is crash-safe: the
    /// log is only truncated once the snapshot is durable, so a crash
    /// at any boundary recovers either the old `(checkpoint, log)` pair
    /// or the new one.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`].
    pub fn checkpoint(&mut self) -> Result<CheckpointReceipt, StoreError> {
        let started = Instant::now();
        let receipt =
            checkpoint::write_atomic(&self.dir, self.lineage, &self.head, &self.commitments)?;
        self.metrics.fsync(receipt.fsync_wall, receipt.fsyncs);
        self.metrics.checkpoint_bytes.add(receipt.bytes);
        self.wal.clear()?;
        self_fsync_note(&self.metrics);
        let pruned = checkpoint::prune(&self.dir, KEEP_CHECKPOINTS)?;
        let wall = started.elapsed();
        self.metrics.checkpoint_ns.record(wall.as_nanos() as u64);
        Ok(CheckpointReceipt {
            epoch: receipt.epoch,
            bytes: receipt.bytes,
            pruned,
            wall,
        })
    }

    /// Discards the current lineage and re-anchors the store on a
    /// fresh epoch-0 construction under a new lineage generation — the
    /// operator response to an intersection-attack exposure window
    /// (DESIGN.md §11): archived epochs of the old generation stop
    /// accumulating against the new coins.
    ///
    /// Crash-safe by ordering: the old log is truncated first, so a
    /// crash mid-re-anchor recovers the old generation's checkpoint (a
    /// strictly older valid state) rather than a cross-generation mix.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotAnAnchor`] unless `anchor.epoch() == 0`;
    /// [`StoreError::Io`].
    pub fn reanchor(&mut self, anchor: IndexEpoch) -> Result<CheckpointReceipt, StoreError> {
        if anchor.epoch() != 0 {
            return Err(StoreError::NotAnAnchor {
                epoch: anchor.epoch(),
            });
        }
        let started = Instant::now();
        self.wal.clear()?;
        self_fsync_note(&self.metrics);
        let lineage = self.lineage + 1;
        let receipt = checkpoint::write_atomic(&self.dir, lineage, &anchor, &[])?;
        self.metrics.fsync(receipt.fsync_wall, receipt.fsyncs);
        self.metrics.checkpoint_bytes.add(receipt.bytes);
        let pruned = checkpoint::prune(&self.dir, KEEP_CHECKPOINTS)?;
        self.lineage = lineage;
        self.head = anchor;
        self.commitments.clear();
        let wall = started.elapsed();
        self.metrics.checkpoint_ns.record(wall.as_nanos() as u64);
        Ok(CheckpointReceipt {
            epoch: 0,
            bytes: receipt.bytes,
            pruned,
            wall,
        })
    }
}

/// Counts one fsync whose latency was folded into a surrounding
/// operation (log truncation syncs).
fn self_fsync_note(metrics: &StoreMetrics) {
    metrics.fsyncs.inc();
}

#[cfg(test)]
mod tests {
    use super::*;
    use eppi_core::delta::{ColumnChange, DeltaEntry};
    use eppi_core::model::{Epsilon, OwnerId, ProviderId};
    use eppi_protocol::{construct_epoch, ProtocolConfig};

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    fn base(seed: u64) -> (MembershipMatrix, Vec<Epsilon>, ProtocolConfig) {
        let mut mat = MembershipMatrix::new(24, 6);
        for j in 0..6u32 {
            for p in 0..(2 + 3 * j) {
                mat.set(ProviderId(p % 24), OwnerId(j), true);
            }
        }
        let e = vec![eps(0.3), eps(0.5), eps(0.7), eps(0.2), eps(0.9), eps(0.6)];
        let cfg = ProtocolConfig {
            seed,
            ..ProtocolConfig::default()
        };
        (mat, e, cfg)
    }

    fn touch(matrix: &mut MembershipMatrix, owner: u32, provider: u32) -> IndexDelta {
        let flipped = !matrix.get(ProviderId(provider), OwnerId(owner));
        matrix.set(ProviderId(provider), OwnerId(owner), flipped);
        let mut delta = IndexDelta::new(matrix.owners());
        delta.record(DeltaEntry {
            owner: OwnerId(owner),
            change: ColumnChange::Changed,
            epsilon: eps(0.5),
        });
        delta
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("eppi-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn create_advance_reopen_recovers_the_exact_head() {
        let dir = tmp_dir("reopen");
        let (mut mat, e, cfg) = base(11);
        let epoch0 = construct_epoch(&mat, &e, &cfg).unwrap();
        let registry = Registry::new();
        let mut store = DurableStore::create_with_registry(&dir, &epoch0, &registry).unwrap();

        let mut live = epoch0;
        for step in 0..4 {
            let delta = touch(&mut mat, step % 6, (step * 7) % 24);
            let built = store
                .advance_with_registry(&mat, &delta, &registry)
                .unwrap();
            live = built.epoch;
        }
        assert_eq!(store.head().epoch(), 4);
        drop(store);

        let (reopened, recovery) = DurableStore::open_with_registry(&dir, &registry).unwrap();
        assert_eq!(recovery.checkpoint_epoch, 0);
        assert_eq!(recovery.replayed, 4);
        assert_eq!(recovery.skipped_stale, 0);
        assert_eq!(recovery.discarded_bytes, 0);
        assert!(recovery.tail_defect.is_none());
        assert_eq!(reopened.head().index(), live.index());
        assert_eq!(reopened.head().decisions(), live.decisions());
        assert_eq!(reopened.head().shares(), live.shares());
        assert_eq!(reopened.head().common_count(), live.common_count());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_truncates_the_log_and_speeds_recovery() {
        let dir = tmp_dir("ckpt");
        let (mut mat, e, cfg) = base(5);
        let epoch0 = construct_epoch(&mat, &e, &cfg).unwrap();
        let registry = Registry::new();
        let mut store = DurableStore::create_with_registry(&dir, &epoch0, &registry).unwrap();
        for step in 0..3 {
            let delta = touch(&mut mat, step, step + 1);
            store
                .advance_with_registry(&mat, &delta, &registry)
                .unwrap();
        }
        let receipt = store.checkpoint().unwrap();
        assert_eq!(receipt.epoch, 3);
        assert_eq!(store.wal_bytes().unwrap(), 0);
        // One more delta after the checkpoint.
        let delta = touch(&mut mat, 4, 9);
        let live = store
            .advance_with_registry(&mat, &delta, &registry)
            .unwrap();
        drop(store);

        let (reopened, recovery) = DurableStore::open_with_registry(&dir, &registry).unwrap();
        assert_eq!(recovery.checkpoint_epoch, 3);
        assert_eq!(recovery.replayed, 1);
        assert_eq!(reopened.head().epoch(), 4);
        assert_eq!(reopened.head().index(), live.epoch.index());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn traced_recovery_spans_every_state() {
        use eppi_trace::TraceConfig;

        let dir = tmp_dir("traced");
        let (mut mat, e, cfg) = base(7);
        let epoch0 = construct_epoch(&mat, &e, &cfg).unwrap();
        let registry = Registry::new();
        let mut store = DurableStore::create_with_registry(&dir, &epoch0, &registry).unwrap();
        for step in 0..3 {
            let delta = touch(&mut mat, step, step + 2);
            store
                .advance_with_registry(&mat, &delta, &registry)
                .unwrap();
        }
        drop(store);

        // Tear the final record so the truncate state runs too.
        let wal_path = dir.join(WAL_FILE);
        let bytes = std::fs::read(&wal_path).unwrap();
        std::fs::write(&wal_path, &bytes[..bytes.len() - 3]).unwrap();

        let tracer = Tracer::new(TraceConfig::default());
        let (reopened, recovery) = DurableStore::open_traced(&dir, &registry, &tracer).unwrap();
        assert_eq!(recovery.replayed, 2);
        assert!(recovery.discarded_bytes > 0);
        assert_eq!(reopened.head().epoch(), 2);
        drop(reopened);

        let log = tracer.collect();
        let traces = log.trace_ids();
        assert_eq!(traces.len(), 1);
        let tree = log.span_tree(traces[0]).unwrap();
        assert_eq!(tree.name, "recover.open");
        assert_eq!(tree.count("recover.checkpoint_load"), 1);
        assert_eq!(tree.count("recover.wal_scan"), 1);
        assert_eq!(
            tree.count("recover.replay_record"),
            2,
            "{}",
            log.render(traces[0])
        );
        assert_eq!(tree.count("recover.truncate"), 1);
        // Replay spans carry the epoch each record produced.
        let epochs: Vec<u64> = tree
            .children
            .iter()
            .filter(|c| c.name == "recover.replay_record")
            .map(|c| c.payload)
            .collect();
        assert_eq!(epochs, vec![1, 2]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_discarded_and_truncated() {
        let dir = tmp_dir("torn");
        let (mut mat, e, cfg) = base(2);
        let epoch0 = construct_epoch(&mat, &e, &cfg).unwrap();
        let registry = Registry::new();
        let mut store = DurableStore::create_with_registry(&dir, &epoch0, &registry).unwrap();
        let d1 = touch(&mut mat, 0, 1);
        let after_one = store.advance_with_registry(&mat, &d1, &registry).unwrap();
        let d2 = touch(&mut mat, 1, 2);
        store.advance_with_registry(&mat, &d2, &registry).unwrap();
        drop(store);

        // Tear the final record mid-payload, as a crash during append
        // would.
        let wal_path = dir.join(WAL_FILE);
        let bytes = std::fs::read(&wal_path).unwrap();
        std::fs::write(&wal_path, &bytes[..bytes.len() - 3]).unwrap();

        let (reopened, recovery) = DurableStore::open_with_registry(&dir, &registry).unwrap();
        assert_eq!(recovery.replayed, 1);
        assert!(recovery.discarded_bytes > 0);
        assert!(recovery.tail_defect.is_some());
        assert_eq!(reopened.head().epoch(), 1);
        assert_eq!(reopened.head().index(), after_one.epoch.index());
        // The tail was truncated away: a second open is clean.
        drop(reopened);
        let (clean, recovery) = DurableStore::open_with_registry(&dir, &registry).unwrap();
        assert_eq!(recovery.discarded_bytes, 0);
        assert!(recovery.tail_defect.is_none());
        assert_eq!(clean.head().epoch(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reanchor_starts_a_winning_fresh_lineage() {
        let dir = tmp_dir("anchor");
        let (mut mat, e, cfg) = base(8);
        let epoch0 = construct_epoch(&mat, &e, &cfg).unwrap();
        let registry = Registry::new();
        let mut store = DurableStore::create_with_registry(&dir, &epoch0, &registry).unwrap();
        for step in 0..5 {
            let delta = touch(&mut mat, step, step);
            store
                .advance_with_registry(&mat, &delta, &registry)
                .unwrap();
        }
        // A non-anchor is rejected.
        let not_anchor = store.head().clone();
        assert!(matches!(
            store.reanchor(not_anchor),
            Err(StoreError::NotAnAnchor { epoch: 5 })
        ));
        // A fresh epoch-0 under a new seed re-anchors.
        let fresh_cfg = ProtocolConfig { seed: 999, ..cfg };
        let fresh = construct_epoch(&mat, &e, &fresh_cfg).unwrap();
        store.reanchor(fresh.clone()).unwrap();
        assert_eq!(store.lineage(), 1);
        assert_eq!(store.head().epoch(), 0);
        drop(store);

        // Recovery picks the new generation over the old epoch 5.
        let (reopened, recovery) = DurableStore::open_with_registry(&dir, &registry).unwrap();
        assert_eq!(recovery.lineage, 1);
        assert_eq!(recovery.checkpoint_epoch, 0);
        assert_eq!(reopened.head().index(), fresh.index());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn audited_lineage_roundtrips_and_reverifies_on_recovery() {
        use eppi_protocol::construct_epoch_audited;

        let dir = tmp_dir("audited");
        let (mut mat, e, cfg) = base(13);
        let audit = AuditConfig {
            params: eppi_audit::AuditParams { repetitions: 3 },
            ..AuditConfig::default()
        };
        let anchor = construct_epoch_audited(&mat, &e, &cfg, &audit).unwrap();
        let registry = Registry::new();
        let mut store =
            DurableStore::create_audited_with_registry(&dir, &anchor, &registry).unwrap();
        assert_eq!(store.commitments().len(), 24);

        let delta = touch(&mut mat, 2, 5);
        let built = store
            .advance_audited_with_registry(&mat, &delta, &audit, &registry)
            .unwrap();
        assert_eq!(built.delta.epoch.epoch(), 1);
        assert_eq!(store.commitments(), &built.commitments()[..]);
        drop(store);

        // Recovery re-verifies the checkpoint's commitments and the
        // replayed record's.
        let (reopened, recovery) = DurableStore::open_with_registry(&dir, &registry).unwrap();
        assert_eq!(recovery.audited, 2);
        assert_eq!(reopened.head().epoch(), 1);
        assert_eq!(reopened.commitments(), &built.commitments()[..]);
        assert_eq!(registry.counter("durability.audit_checks", &[]).get(), 2);

        // A checkpoint persists the audited head; reopening from it
        // still runs the audit check.
        let mut store = reopened;
        store.checkpoint().unwrap();
        drop(store);
        let (reopened, recovery) = DurableStore::open_with_registry(&dir, &registry).unwrap();
        assert_eq!(recovery.audited, 1);
        assert_eq!(reopened.commitments(), &built.commitments()[..]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unaudited_advance_downgrades_the_lineage() {
        use eppi_protocol::construct_epoch_audited;

        let dir = tmp_dir("downgrade");
        let (mut mat, e, cfg) = base(14);
        let audit = AuditConfig {
            params: eppi_audit::AuditParams { repetitions: 2 },
            ..AuditConfig::default()
        };
        let anchor = construct_epoch_audited(&mat, &e, &cfg, &audit).unwrap();
        let registry = Registry::new();
        let mut store =
            DurableStore::create_audited_with_registry(&dir, &anchor, &registry).unwrap();
        let delta = touch(&mut mat, 1, 3);
        store
            .advance_with_registry(&mat, &delta, &registry)
            .unwrap();
        assert!(store.commitments().is_empty());
        drop(store);
        let (reopened, recovery) = DurableStore::open_with_registry(&dir, &registry).unwrap();
        // The checkpoint's commitments were checked, the unaudited
        // record dropped them.
        assert_eq!(recovery.audited, 1);
        assert!(reopened.commitments().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn opening_nothing_is_a_typed_error() {
        let dir = tmp_dir("empty");
        assert!(matches!(
            DurableStore::open(&dir),
            Err(StoreError::NoCheckpoint { .. })
        ));
    }

    #[test]
    fn corrupt_newest_checkpoint_falls_back_to_the_retained_one() {
        let dir = tmp_dir("fallback");
        let (mut mat, e, cfg) = base(4);
        let epoch0 = construct_epoch(&mat, &e, &cfg).unwrap();
        let registry = Registry::new();
        let mut store = DurableStore::create_with_registry(&dir, &epoch0, &registry).unwrap();
        let delta = touch(&mut mat, 2, 3);
        store
            .advance_with_registry(&mat, &delta, &registry)
            .unwrap();
        store.checkpoint().unwrap();
        drop(store);

        // Corrupt the newest checkpoint (epoch 1); epoch 0 remains.
        let newest = checkpoint::scan(&dir).unwrap().remove(0);
        assert_eq!(newest.epoch, 1);
        let mut bytes = std::fs::read(&newest.path).unwrap();
        let mid = bytes.len() / 3;
        bytes[mid] ^= 0x80;
        std::fs::write(&newest.path, &bytes).unwrap();

        let (reopened, recovery) = DurableStore::open_with_registry(&dir, &registry).unwrap();
        assert_eq!(recovery.corrupt_checkpoints, 1);
        assert_eq!(recovery.checkpoint_epoch, 0);
        // Strictly older valid state: the log was truncated at the
        // checkpoint, so the head is epoch 0.
        assert_eq!(reopened.head().epoch(), 0);
        assert_eq!(reopened.head().index(), epoch0.index());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn telemetry_counts_fsyncs_and_replays() {
        let dir = tmp_dir("metrics");
        let (mut mat, e, cfg) = base(6);
        let epoch0 = construct_epoch(&mat, &e, &cfg).unwrap();
        let registry = Registry::new();
        let mut store = DurableStore::create_with_registry(&dir, &epoch0, &registry).unwrap();
        let delta = touch(&mut mat, 1, 1);
        store
            .advance_with_registry(&mat, &delta, &registry)
            .unwrap();
        drop(store);
        DurableStore::open_with_registry(&dir, &registry).unwrap();

        let fsyncs = registry.counter("durability.fsyncs", &[]).get();
        assert!(fsyncs >= 3, "create (2) + advance (1), got {fsyncs}");
        assert_eq!(registry.counter("durability.wal_records", &[]).get(), 1);
        assert_eq!(
            registry.counter("durability.replayed_records", &[]).get(),
            1
        );
        assert_eq!(registry.histogram("durability.recovery_ns", &[]).count(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
