//! Warm-boot cache for serving-layout snapshots.
//!
//! The durable store's checkpoints persist *protocol* state (v2 epoch
//! records); a serve node restoring from one still pays a full
//! re-shard — transpose, routing, and (for the compressed backend)
//! re-encoding every row — before it can answer a query. This module
//! caches the finished serving layout itself as an EPPI v3 frame
//! ([`eppi_index::codec::ServeSnapshotRecord`]): shard-map manifest,
//! per-shard owner lists, and the physical row blocks in whichever
//! backend the engine runs.
//!
//! Writes follow the checkpoint discipline (DESIGN.md §11): serialize
//! to a temp file, `fsync`, `rename(2)` into place, `fsync` the
//! directory. The cache is *advisory* — a missing, torn, or corrupt
//! file means a cold (re-shard) boot, never a wrong answer — so
//! [`load_serve_snapshot`] reports corruption as `Ok(None)` after the
//! codec rejects it, and only surfaces real I/O failures as errors. The
//! caller is responsible for checking the restored snapshot's version
//! against its lineage before serving it.

use crate::checkpoint::sync_dir;
use crate::error::StoreError;
use eppi_index::codec::{decode_serve_snapshot, encode_serve_snapshot, ServeSnapshotRecord};
use std::fs::{self, File};
use std::io;
use std::path::{Path, PathBuf};

/// The cache file name inside a store directory.
pub const SERVE_CACHE_FILE: &str = "serve-snapshot.eppi";

const TMP_NAME: &str = "serve-snapshot.tmp";

/// The cache file path inside `dir`.
pub fn cache_path(dir: &Path) -> PathBuf {
    dir.join(SERVE_CACHE_FILE)
}

/// Atomically writes `record` as the directory's serve cache,
/// replacing any previous one. Returns the encoded byte count.
///
/// # Errors
///
/// [`StoreError::Io`] if any filesystem step fails; the previous cache
/// file (if any) is untouched unless the final rename succeeded.
pub fn save_serve_snapshot(dir: &Path, record: &ServeSnapshotRecord) -> Result<u64, StoreError> {
    let bytes = encode_serve_snapshot(record);
    let tmp = dir.join(TMP_NAME);
    let fin = cache_path(dir);
    fs::write(&tmp, &bytes).map_err(|e| StoreError::io("write", &tmp, e))?;
    File::open(&tmp)
        .map_err(|e| StoreError::io("open", &tmp, e))?
        .sync_all()
        .map_err(|e| StoreError::io("fsync", &tmp, e))?;
    fs::rename(&tmp, &fin).map_err(|e| StoreError::io("rename", &fin, e))?;
    sync_dir(dir)?;
    Ok(bytes.len() as u64)
}

/// Loads the directory's serve cache, if a valid one exists.
///
/// Returns `Ok(None)` when the file is absent *or* fails the codec's
/// validation (bad checksum, truncation, version mismatch): an invalid
/// cache is indistinguishable from a crash mid-replacement, and the
/// correct response to either is a cold boot, not a refusal to start.
///
/// # Errors
///
/// [`StoreError::Io`] only for real I/O failures (permissions, device
/// errors) — not for a missing or corrupt file.
pub fn load_serve_snapshot(dir: &Path) -> Result<Option<ServeSnapshotRecord>, StoreError> {
    let path = cache_path(dir);
    let bytes = match fs::read(&path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(StoreError::io("read", &path, e)),
    };
    Ok(decode_serve_snapshot(&bytes).ok())
}

/// Removes the cache file, if present (e.g. after a re-anchor that
/// invalidates the cached lineage).
///
/// # Errors
///
/// [`StoreError::Io`] for any failure other than the file already
/// being absent.
pub fn invalidate_serve_snapshot(dir: &Path) -> Result<(), StoreError> {
    let path = cache_path(dir);
    match fs::remove_file(&path) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(StoreError::io("remove", &path, e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eppi_core::rowstore::RowBackend;
    use eppi_index::codec::{ServeShardRecord, ShardRowsRecord};

    fn sample_record() -> ServeSnapshotRecord {
        // 3 owners over 100 providers (2 words per row), 2 base shards:
        // owners 0 and 2 hash-route to shard 1, owner 1 to shard 0,
        // under the Fibonacci multiply-shift (matching eppi-serve's
        // routing, though the cache layer itself does not care).
        ServeSnapshotRecord {
            snapshot_version: 4,
            backend: RowBackend::Dense,
            providers: 100,
            betas: vec![0.5, 0.25, 1.0],
            base_shards: 2,
            base_owners: 3,
            append_capacity: 8192,
            shards: vec![
                ServeShardRecord {
                    owners: vec![1],
                    rows: ShardRowsRecord::Dense(vec![0xff, 0x1]),
                },
                ServeShardRecord {
                    owners: vec![0, 2],
                    rows: ShardRowsRecord::Dense(vec![0b1010, 0, u64::MAX, 0xf]),
                },
            ],
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("eppi-serve-cache-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn save_load_roundtrip_and_replacement() {
        let dir = temp_dir("roundtrip");
        assert_eq!(load_serve_snapshot(&dir).unwrap(), None, "empty dir");

        let record = sample_record();
        let bytes = save_serve_snapshot(&dir, &record).unwrap();
        assert!(bytes > 0);
        assert!(!dir.join(TMP_NAME).exists(), "temp renamed away");
        assert_eq!(load_serve_snapshot(&dir).unwrap(), Some(record.clone()));

        // Replacement wins atomically.
        let mut next = record;
        next.snapshot_version = 5;
        save_serve_snapshot(&dir, &next).unwrap();
        assert_eq!(
            load_serve_snapshot(&dir).unwrap().unwrap().snapshot_version,
            5
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_or_torn_cache_reads_as_cold_boot() {
        let dir = temp_dir("corrupt");
        save_serve_snapshot(&dir, &sample_record()).unwrap();

        // Flip a byte: checksum rejects, load says cold boot.
        let path = cache_path(&dir);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        assert_eq!(load_serve_snapshot(&dir).unwrap(), None);

        // Truncate: same.
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert_eq!(load_serve_snapshot(&dir).unwrap(), None);

        // A v2 epoch record under the cache name: version-rejected.
        fs::write(&path, b"EPPI\x02\x00junk").unwrap();
        assert_eq!(load_serve_snapshot(&dir).unwrap(), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn invalidate_is_idempotent() {
        let dir = temp_dir("invalidate");
        invalidate_serve_snapshot(&dir).unwrap();
        save_serve_snapshot(&dir, &sample_record()).unwrap();
        invalidate_serve_snapshot(&dir).unwrap();
        assert_eq!(load_serve_snapshot(&dir).unwrap(), None);
        invalidate_serve_snapshot(&dir).unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }
}
