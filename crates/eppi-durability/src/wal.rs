//! The write-ahead delta log.
//!
//! An append-only file of framed [`WalRecord`]s, one per applied
//! [`IndexDelta`]:
//!
//! ```text
//! ┌───────────┬───────────┬────────────────────┐
//! │ len  u32  │ crc32 u32 │ payload (len bytes)│  … repeated
//! └───────────┴───────────┴────────────────────┘
//! ```
//!
//! The CRC-32 covers the payload only, so a frame is self-validating:
//! recovery walks frames from the start and stops at the first defect —
//! a header cut short, a payload longer than the remaining file, a
//! checksum mismatch or a malformed payload. Everything before the
//! defect is the *valid prefix*; everything after is a torn tail the
//! store discards and truncates away ([`TailDefect`] names the reason).
//!
//! A payload carries the full replay input of one delta: the lineage
//! generation, the epoch number it produces, the delta's entries, and —
//! crucially — the **new membership column** of every touched owner.
//! [`construct_delta`](eppi_protocol::construct_delta) reads only the
//! touched columns of the new matrix, so these bitmaps are exactly the
//! data needed to re-run the construction deterministically: replay of
//! a journaled record is bit-identical to the run that journaled it.
//!
//! Every append ends in `fdatasync` before the record is considered
//! journaled — the store installs a delta only after its record is
//! durable.

use crate::error::StoreError;
use eppi_audit::ColumnCommitment;
use eppi_core::commit::Digest256;
use eppi_core::delta::{ColumnChange, DeltaEntry, IndexDelta};
use eppi_core::model::{Epsilon, MembershipMatrix, OwnerId, ProviderId};
use eppi_index::{crc32, CodecError};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Why the tail of a log (or its replay) was discarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum TailDefect {
    /// Fewer than 8 bytes left — the frame header itself is torn.
    TornHeader,
    /// The header promises more payload bytes than the file holds.
    TornPayload,
    /// The stored CRC-32 disagrees with the payload.
    Checksum,
    /// The payload passed its checksum but failed structural decoding
    /// (only possible under targeted corruption, not a torn write).
    Malformed,
    /// A structurally valid record belongs to a different lineage
    /// generation than the recovered checkpoint (stale pre-re-anchor
    /// tail).
    ForeignLineage,
    /// A structurally valid record skips ahead in the epoch sequence.
    EpochGap,
    /// The record replayed onto the recovered epoch was rejected by the
    /// protocol layer (dimensions no longer fit the lineage).
    InvalidState,
}

impl fmt::Display for TailDefect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TailDefect::TornHeader => "torn frame header",
            TailDefect::TornPayload => "torn payload",
            TailDefect::Checksum => "checksum mismatch",
            TailDefect::Malformed => "malformed payload",
            TailDefect::ForeignLineage => "foreign lineage generation",
            TailDefect::EpochGap => "epoch sequence gap",
            TailDefect::InvalidState => "record rejected by the protocol layer",
        };
        f.write_str(s)
    }
}

/// One journaled delta: everything replay needs to re-run its
/// [`construct_delta`](eppi_protocol::construct_delta) bit-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// Lineage generation (bumped by re-anchoring); replay refuses
    /// records from a generation other than the checkpoint's.
    pub lineage: u64,
    /// The epoch number this delta produces (`previous + 1`).
    pub epoch: u64,
    /// Provider count of the lineage.
    pub providers: usize,
    /// The owner-column change batch.
    pub delta: IndexDelta,
    /// `columns[t]`: the new membership column of `delta.touched()[t]`,
    /// packed LSB-first into bytes (`⌈providers/8⌉` each).
    pub columns: Vec<Vec<u8>>,
    /// Publication commitments of the epoch this record produces, one
    /// per provider (empty for an unaudited lineage). Encoded as a
    /// magic-tagged trailing section, so pre-audit records decode
    /// unchanged.
    pub commitments: Vec<ColumnCommitment>,
}

/// Magic tag opening a record's trailing audit section. Chosen so it
/// cannot be confused with the `TrailingBytes` garbage the strict
/// decoder otherwise rejects.
const AUDIT_MAGIC: u32 = u32::from_le_bytes(*b"ADT1");

/// Bytes per commitment entry: provider + owners + two 32-byte digests.
const COMMITMENT_BYTES: usize = 4 + 4 + 32 + 32;

pub(crate) fn encode_commitments(out: &mut Vec<u8>, commitments: &[ColumnCommitment]) {
    out.extend_from_slice(&AUDIT_MAGIC.to_le_bytes());
    out.extend_from_slice(&(commitments.len() as u32).to_le_bytes());
    for c in commitments {
        out.extend_from_slice(&c.provider.0.to_le_bytes());
        out.extend_from_slice(&c.owners.to_le_bytes());
        out.extend_from_slice(&c.published.to_bytes());
        out.extend_from_slice(&c.decisions.to_bytes());
    }
}

pub(crate) fn decode_commitments(bytes: &[u8]) -> Result<Vec<ColumnCommitment>, CodecError> {
    const HEADER: usize = 8;
    if bytes.len() < HEADER {
        return Err(CodecError::Truncated {
            expected: HEADER,
            actual: bytes.len(),
        });
    }
    if u32::from_le_bytes(bytes[..4].try_into().unwrap()) != AUDIT_MAGIC {
        return Err(CodecError::InvalidField {
            field: "audit magic",
        });
    }
    let count = u32::from_le_bytes(bytes[4..8].try_into().unwrap()) as usize;
    let need = HEADER as u128 + count as u128 * COMMITMENT_BYTES as u128;
    if need != bytes.len() as u128 {
        return Err(if need > bytes.len() as u128 {
            CodecError::Truncated {
                expected: need.min(usize::MAX as u128) as usize,
                actual: bytes.len(),
            }
        } else {
            CodecError::TrailingBytes(bytes.len() - need as usize)
        });
    }
    Ok((0..count)
        .map(|i| {
            let at = HEADER + i * COMMITMENT_BYTES;
            ColumnCommitment {
                provider: ProviderId(u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap())),
                owners: u32::from_le_bytes(bytes[at + 4..at + 8].try_into().unwrap()),
                published: Digest256::from_bytes(bytes[at + 8..at + 40].try_into().unwrap()),
                decisions: Digest256::from_bytes(bytes[at + 40..at + 72].try_into().unwrap()),
            }
        })
        .collect())
}

fn column_bytes(providers: usize) -> usize {
    providers.div_ceil(8)
}

impl WalRecord {
    /// Captures the replay input of one delta from the new full matrix
    /// (only the touched columns are read, mirroring what
    /// `construct_delta` consumes).
    pub fn capture(
        lineage: u64,
        epoch: u64,
        delta: &IndexDelta,
        matrix: &MembershipMatrix,
    ) -> WalRecord {
        let m = matrix.providers();
        let columns = delta
            .touched()
            .iter()
            .map(|&owner| {
                let mut col = vec![0u8; column_bytes(m)];
                for p in 0..m {
                    if matrix.get(ProviderId(p as u32), owner) {
                        col[p / 8] |= 1 << (p % 8);
                    }
                }
                col
            })
            .collect();
        WalRecord {
            lineage,
            epoch,
            providers: m,
            delta: delta.clone(),
            columns,
            commitments: Vec::new(),
        }
    }

    /// Synthesizes the matrix replay hands to `construct_delta`: full
    /// dimensions, with only the touched columns populated (exactly the
    /// columns the incremental construction reads).
    pub fn matrix(&self) -> MembershipMatrix {
        let mut matrix = MembershipMatrix::new(self.providers, self.delta.owners());
        for (col, &owner) in self.columns.iter().zip(self.delta.touched().iter()) {
            for p in 0..self.providers {
                if col[p / 8] & (1 << (p % 8)) != 0 {
                    matrix.set(ProviderId(p as u32), owner, true);
                }
            }
        }
        matrix
    }

    /// Serializes the payload (the frame header is added by
    /// [`Wal::append`]).
    pub fn encode_payload(&self) -> Vec<u8> {
        let k = self.delta.len();
        let cb = column_bytes(self.providers);
        debug_assert!(self.columns.iter().all(|c| c.len() == cb));
        let mut out = Vec::with_capacity(32 + k * (13 + cb));
        out.extend_from_slice(&self.lineage.to_le_bytes());
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&(self.providers as u32).to_le_bytes());
        out.extend_from_slice(&(self.delta.base_owners() as u32).to_le_bytes());
        out.extend_from_slice(&(self.delta.owners() as u32).to_le_bytes());
        out.extend_from_slice(&(k as u32).to_le_bytes());
        for entry in self.delta.entries() {
            out.extend_from_slice(&entry.owner.0.to_le_bytes());
            out.push(match entry.change {
                ColumnChange::Added => 0,
                ColumnChange::Changed => 1,
                ColumnChange::Withdrawn => 2,
            });
            out.extend_from_slice(&entry.epsilon.value().to_le_bytes());
        }
        for col in &self.columns {
            out.extend_from_slice(col);
        }
        if !self.commitments.is_empty() {
            encode_commitments(&mut out, &self.commitments);
        }
        out
    }

    /// Decodes one payload, re-validating every structural invariant a
    /// live [`IndexDelta`] enforces (ascending unique owners, dense
    /// appends, `Added ⇔ new column`, ε in domain) so that corrupt
    /// bytes yield a typed error rather than a downstream panic.
    ///
    /// # Errors
    ///
    /// [`CodecError`] naming the defect.
    pub fn decode_payload(bytes: &[u8]) -> Result<WalRecord, CodecError> {
        const HEADER: usize = 8 + 8 + 4 + 4 + 4 + 4;
        if bytes.len() < HEADER {
            return Err(CodecError::Truncated {
                expected: HEADER,
                actual: bytes.len(),
            });
        }
        let u64_at = |i: usize| u64::from_le_bytes(bytes[i..i + 8].try_into().unwrap());
        let u32_at = |i: usize| u32::from_le_bytes(bytes[i..i + 4].try_into().unwrap());
        let lineage = u64_at(0);
        let epoch = u64_at(8);
        let providers = u32_at(16) as usize;
        let base_owners = u32_at(20) as usize;
        let owners = u32_at(24) as usize;
        let k = u32_at(28) as usize;
        if owners < base_owners {
            return Err(CodecError::InvalidField {
                field: "wal owners",
            });
        }
        let cb = column_bytes(providers);
        let need = HEADER as u128 + k as u128 * (13 + cb as u128);
        if need > bytes.len() as u128 {
            return Err(CodecError::Truncated {
                expected: need.min(usize::MAX as u128) as usize,
                actual: bytes.len(),
            });
        }
        // Anything past the columns is either a magic-tagged audit
        // section or trailing garbage; the latter stays an error.
        let trailer = &bytes[need as usize..];
        let commitments = if trailer.is_empty() {
            Vec::new()
        } else if trailer.len() >= 4 && trailer[..4] == AUDIT_MAGIC.to_le_bytes() {
            decode_commitments(trailer)?
        } else {
            return Err(CodecError::TrailingBytes(trailer.len()));
        };
        let mut delta = IndexDelta::new(base_owners);
        let mut cursor = HEADER;
        let mut prev_owner: Option<u32> = None;
        for _ in 0..k {
            let owner = u32_at(cursor);
            let change = match bytes[cursor + 4] {
                0 => ColumnChange::Added,
                1 => ColumnChange::Changed,
                2 => ColumnChange::Withdrawn,
                tag => {
                    return Err(CodecError::UnknownTag {
                        field: "wal change",
                        tag,
                    })
                }
            };
            let raw = f64::from_le_bytes(bytes[cursor + 5..cursor + 13].try_into().unwrap());
            cursor += 13;
            if prev_owner.is_some_and(|p| owner <= p) {
                return Err(CodecError::InvalidField {
                    field: "wal owner order",
                });
            }
            prev_owner = Some(owner);
            let idx = owner as usize;
            // Mirror IndexDelta::record's invariants as errors: Added
            // exactly for new columns, appended densely, final owner
            // count matching the header.
            if (change == ColumnChange::Added) != (idx >= base_owners) {
                return Err(CodecError::InvalidField {
                    field: "wal change kind",
                });
            }
            if idx >= owners || (idx >= base_owners && idx > delta.owners()) {
                return Err(CodecError::InvalidField {
                    field: "wal owner index",
                });
            }
            let epsilon = Epsilon::new(raw).map_err(|_| CodecError::InvalidEpsilon { owner })?;
            delta.record(DeltaEntry {
                owner: OwnerId(owner),
                change,
                epsilon,
            });
        }
        if delta.owners() != owners {
            return Err(CodecError::InvalidField {
                field: "wal owner count",
            });
        }
        let columns = (0..k)
            .map(|t| bytes[cursor + t * cb..cursor + (t + 1) * cb].to_vec())
            .collect();
        Ok(WalRecord {
            lineage,
            epoch,
            providers,
            delta,
            columns,
            commitments,
        })
    }
}

/// Receipt of one durable append.
#[derive(Debug, Clone, Copy)]
pub struct AppendReceipt {
    /// Frame bytes written (header + payload).
    pub bytes: u64,
    /// Wall time of the `fdatasync` making the record durable.
    pub fsync_wall: Duration,
}

/// One scanned frame: the decoded record and the file offset one past
/// its frame (the valid prefix length if this is the last good frame).
#[derive(Debug, Clone)]
pub struct ScannedFrame {
    /// The decoded record.
    pub record: WalRecord,
    /// Offset one past this frame.
    pub end: u64,
}

/// Result of scanning a log file for its valid frame prefix.
#[derive(Debug, Clone, Default)]
pub struct WalScan {
    /// The structurally valid frames, in file order.
    pub frames: Vec<ScannedFrame>,
    /// Total file length in bytes.
    pub file_len: u64,
    /// Why scanning stopped before the end of the file, if it did.
    pub defect: Option<TailDefect>,
}

/// Append handle on a log file.
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    file: File,
}

impl Wal {
    /// Opens (creating if absent) the log at `path`, positioned for
    /// appending.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`].
    pub fn open(path: impl Into<PathBuf>) -> Result<Wal, StoreError> {
        let path = path.into();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| StoreError::io("open", &path, e))?;
        file.seek(SeekFrom::End(0))
            .map_err(|e| StoreError::io("seek", &path, e))?;
        Ok(Wal { path, file })
    }

    /// The log file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Current log length in bytes.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`].
    pub fn len(&self) -> Result<u64, StoreError> {
        Ok(self
            .file
            .metadata()
            .map_err(|e| StoreError::io("stat", &self.path, e))?
            .len())
    }

    /// `true` when the log holds no frames.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`].
    pub fn is_empty(&self) -> Result<bool, StoreError> {
        Ok(self.len()? == 0)
    }

    /// Appends one record and syncs it to disk; the record counts as
    /// journaled only once this returns.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`].
    pub fn append(&mut self, record: &WalRecord) -> Result<AppendReceipt, StoreError> {
        let payload = record.encode_payload();
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.file
            .write_all(&frame)
            .map_err(|e| StoreError::io("append", &self.path, e))?;
        let t = Instant::now();
        self.file
            .sync_data()
            .map_err(|e| StoreError::io("fsync", &self.path, e))?;
        Ok(AppendReceipt {
            bytes: frame.len() as u64,
            fsync_wall: t.elapsed(),
        })
    }

    /// Truncates the log to `len` bytes (recovery discarding a torn
    /// tail) and syncs.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`].
    pub fn truncate_to(&mut self, len: u64) -> Result<(), StoreError> {
        self.file
            .set_len(len)
            .map_err(|e| StoreError::io("truncate", &self.path, e))?;
        self.file
            .seek(SeekFrom::End(0))
            .map_err(|e| StoreError::io("seek", &self.path, e))?;
        self.file
            .sync_data()
            .map_err(|e| StoreError::io("fsync", &self.path, e))?;
        Ok(())
    }

    /// Empties the log (after a checkpoint made its content redundant).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`].
    pub fn clear(&mut self) -> Result<(), StoreError> {
        self.truncate_to(0)
    }

    /// Scans the file at `path` for its valid frame prefix. A missing
    /// file scans as empty; scanning stops (without error) at the first
    /// defective frame.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] for read failures only — corruption is
    /// reported in [`WalScan::defect`], not as an error.
    pub fn scan(path: &Path) -> Result<WalScan, StoreError> {
        let mut bytes = Vec::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_end(&mut bytes)
                    .map_err(|e| StoreError::io("read", path, e))?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(WalScan::default());
            }
            Err(e) => return Err(StoreError::io("open", path, e)),
        }
        let mut scan = WalScan {
            file_len: bytes.len() as u64,
            ..WalScan::default()
        };
        let mut at = 0usize;
        while at < bytes.len() {
            if bytes.len() - at < 8 {
                scan.defect = Some(TailDefect::TornHeader);
                break;
            }
            let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
            let stored = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().unwrap());
            if bytes.len() - at - 8 < len {
                scan.defect = Some(TailDefect::TornPayload);
                break;
            }
            let payload = &bytes[at + 8..at + 8 + len];
            if crc32(payload) != stored {
                scan.defect = Some(TailDefect::Checksum);
                break;
            }
            match WalRecord::decode_payload(payload) {
                Ok(record) => {
                    at += 8 + len;
                    scan.frames.push(ScannedFrame {
                        record,
                        end: at as u64,
                    });
                }
                Err(_) => {
                    scan.defect = Some(TailDefect::Malformed);
                    break;
                }
            }
        }
        Ok(scan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eppi_core::model::OwnerId;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    fn sample_record(lineage: u64, epoch: u64) -> WalRecord {
        let mut matrix = MembershipMatrix::new(10, 5);
        matrix.set(ProviderId(0), OwnerId(1), true);
        matrix.set(ProviderId(9), OwnerId(1), true);
        matrix.set(ProviderId(3), OwnerId(4), true);
        let mut delta = IndexDelta::new(4);
        delta.record(DeltaEntry {
            owner: OwnerId(1),
            change: ColumnChange::Changed,
            epsilon: eps(0.5),
        });
        delta.record(DeltaEntry {
            owner: OwnerId(4),
            change: ColumnChange::Added,
            epsilon: eps(0.25),
        });
        WalRecord::capture(lineage, epoch, &delta, &matrix)
    }

    #[test]
    fn payload_roundtrips() {
        let record = sample_record(3, 17);
        let back = WalRecord::decode_payload(&record.encode_payload()).expect("roundtrip");
        assert_eq!(back, record);
        // The synthesized matrix reproduces the touched columns.
        let matrix = back.matrix();
        assert!(matrix.get(ProviderId(0), OwnerId(1)));
        assert!(matrix.get(ProviderId(9), OwnerId(1)));
        assert!(matrix.get(ProviderId(3), OwnerId(4)));
        assert_eq!(matrix.ones(), 3);
        assert_eq!(matrix.owners(), 5);
    }

    #[test]
    fn append_scan_roundtrips_and_detects_torn_tails() {
        let dir = std::env::temp_dir().join(format!("eppi-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let _ = std::fs::remove_file(&path);

        let mut wal = Wal::open(&path).unwrap();
        let a = sample_record(0, 1);
        let b = sample_record(0, 2);
        let ra = wal.append(&a).unwrap();
        let rb = wal.append(&b).unwrap();
        assert_eq!(wal.len().unwrap(), ra.bytes + rb.bytes);

        let scan = Wal::scan(&path).unwrap();
        assert_eq!(scan.frames.len(), 2);
        assert_eq!(scan.frames[1].record, b);
        assert!(scan.defect.is_none());
        assert_eq!(scan.frames[1].end, scan.file_len);

        // Cut the last frame short: the first frame survives, the tail
        // is reported torn.
        wal.truncate_to(ra.bytes + 5).unwrap();
        let scan = Wal::scan(&path).unwrap();
        assert_eq!(scan.frames.len(), 1);
        assert_eq!(scan.frames[0].record, a);
        assert_eq!(scan.defect, Some(TailDefect::TornHeader));

        // Flip a payload byte of the only remaining frame.
        wal.truncate_to(ra.bytes).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[12] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let scan = Wal::scan(&path).unwrap();
        assert!(scan.frames.is_empty());
        assert_eq!(scan.defect, Some(TailDefect::Checksum));

        std::fs::remove_file(&path).unwrap();
        let scan = Wal::scan(&path).unwrap();
        assert!(scan.frames.is_empty() && scan.defect.is_none());
    }

    #[test]
    fn hostile_payloads_yield_typed_errors() {
        let record = sample_record(1, 2);
        let good = record.encode_payload();
        // Declared owner count below base.
        let mut bad = good.clone();
        bad[24..28].copy_from_slice(&1u32.to_le_bytes());
        assert!(WalRecord::decode_payload(&bad).is_err());
        // Unknown change tag.
        let mut bad = good.clone();
        bad[32 + 4] = 9;
        assert!(matches!(
            WalRecord::decode_payload(&bad),
            Err(CodecError::UnknownTag { .. })
        ));
        // Out-of-domain epsilon.
        let mut bad = good.clone();
        bad[32 + 5..32 + 13].copy_from_slice(&f64::NAN.to_le_bytes());
        assert!(matches!(
            WalRecord::decode_payload(&bad),
            Err(CodecError::InvalidEpsilon { .. })
        ));
        // Truncated and oversized payloads.
        assert!(WalRecord::decode_payload(&good[..good.len() - 1]).is_err());
        let mut long = good.clone();
        long.push(0);
        assert!(matches!(
            WalRecord::decode_payload(&long),
            Err(CodecError::TrailingBytes(1))
        ));
        // A huge declared k must not allocate.
        let mut huge = good.clone();
        huge[28..32].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            WalRecord::decode_payload(&huge),
            Err(CodecError::Truncated { .. })
        ));
    }
}
