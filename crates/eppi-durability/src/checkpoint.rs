//! Atomic epoch checkpoints.
//!
//! A checkpoint is one EPPI v2 epoch record written atomically:
//! serialize to `checkpoint.tmp`, `fsync` the file, `rename(2)` it into
//! place, `fsync` the directory. A crash at any byte boundary leaves
//! either the old file set intact or the new file fully present — never
//! a half-written checkpoint under a valid name (the temp file is
//! ignored by recovery and clobbered by the next attempt).
//!
//! File names carry the full recovery ordering:
//!
//! ```text
//! checkpoint-{lineage:010}-{epoch:020}.eppi
//! ```
//!
//! `lineage` is the re-anchor generation: an operator-triggered
//! re-anchor starts a fresh epoch-0 lineage whose files must win over
//! any epoch number of the previous generation, so recovery orders
//! candidates by `(lineage, epoch)` descending and takes the first one
//! that decodes. Older files are pruned down to a small retention set
//! so a latent corruption of the newest checkpoint still leaves a valid
//! (strictly older) fallback.

use crate::epoch_codec::{decode_epoch, encode_epoch};
use crate::error::StoreError;
use crate::wal::{decode_commitments, encode_commitments};
use eppi_audit::ColumnCommitment;
use eppi_protocol::IndexEpoch;
use std::fs::{self, File};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

const PREFIX: &str = "checkpoint-";
const SUFFIX: &str = ".eppi";
const TMP_NAME: &str = "checkpoint.tmp";

/// Magic opening an *audited* checkpoint envelope:
///
/// ```text
/// [u32 "EPAC"][u32 record_len][epoch record][audit section]
/// ```
///
/// A legacy checkpoint is the bare epoch record (which starts with the
/// v2 codec's own `"EPPI"` magic, so the two are unambiguous); the
/// loader accepts both.
const ENVELOPE_MAGIC: u32 = u32::from_le_bytes(*b"EPAC");

/// One checkpoint file candidate found on disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Candidate {
    /// Re-anchor generation parsed from the file name.
    pub lineage: u64,
    /// Epoch number parsed from the file name.
    pub epoch: u64,
    /// The file path.
    pub path: PathBuf,
}

/// The checkpoint file name for `(lineage, epoch)`.
pub fn file_name(lineage: u64, epoch: u64) -> String {
    format!("{PREFIX}{lineage:010}-{epoch:020}{SUFFIX}")
}

fn parse_name(name: &str) -> Option<(u64, u64)> {
    let rest = name.strip_prefix(PREFIX)?.strip_suffix(SUFFIX)?;
    let (lineage, epoch) = rest.split_once('-')?;
    if lineage.len() != 10 || epoch.len() != 20 {
        return None;
    }
    Some((lineage.parse().ok()?, epoch.parse().ok()?))
}

/// Timing/size receipt of one atomic checkpoint write.
#[derive(Debug, Clone, Copy)]
pub struct WriteReceipt {
    /// Serialized record size in bytes.
    pub bytes: u64,
    /// Number of `fsync` calls issued (file + directory).
    pub fsyncs: u64,
    /// Total wall time spent inside `fsync`.
    pub fsync_wall: Duration,
    /// The epoch number written.
    pub epoch: u64,
}

pub(crate) fn sync_dir(dir: &Path) -> Result<(), StoreError> {
    File::open(dir)
        .map_err(|e| StoreError::io("open", dir, e))?
        .sync_all()
        .map_err(|e| StoreError::io("fsync", dir, e))
}

/// Atomically writes `epoch` as the `(lineage, epoch)` checkpoint of
/// `dir`, wrapping it in the audited envelope when `commitments` is
/// non-empty.
///
/// # Errors
///
/// [`StoreError::Io`].
pub fn write_atomic(
    dir: &Path,
    lineage: u64,
    epoch: &IndexEpoch,
    commitments: &[ColumnCommitment],
) -> Result<WriteReceipt, StoreError> {
    let record = encode_epoch(epoch);
    let bytes = if commitments.is_empty() {
        record
    } else {
        let mut out = Vec::with_capacity(record.len() + 16 + commitments.len() * 72);
        out.extend_from_slice(&ENVELOPE_MAGIC.to_le_bytes());
        out.extend_from_slice(&(record.len() as u32).to_le_bytes());
        out.extend_from_slice(&record);
        encode_commitments(&mut out, commitments);
        out
    };
    let tmp = dir.join(TMP_NAME);
    let fin = dir.join(file_name(lineage, epoch.epoch()));
    fs::write(&tmp, &bytes).map_err(|e| StoreError::io("write", &tmp, e))?;
    let mut fsync_wall = Duration::ZERO;
    let t = Instant::now();
    File::open(&tmp)
        .map_err(|e| StoreError::io("open", &tmp, e))?
        .sync_all()
        .map_err(|e| StoreError::io("fsync", &tmp, e))?;
    fsync_wall += t.elapsed();
    fs::rename(&tmp, &fin).map_err(|e| StoreError::io("rename", &fin, e))?;
    let t = Instant::now();
    sync_dir(dir)?;
    fsync_wall += t.elapsed();
    Ok(WriteReceipt {
        bytes: bytes.len() as u64,
        fsyncs: 2,
        fsync_wall,
        epoch: epoch.epoch(),
    })
}

/// Lists the checkpoint candidates of `dir`, newest first by
/// `(lineage, epoch)`. Non-checkpoint files (including the temp file)
/// are ignored; a missing directory lists as empty.
///
/// # Errors
///
/// [`StoreError::Io`].
pub fn scan(dir: &Path) -> Result<Vec<Candidate>, StoreError> {
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(StoreError::io("read_dir", dir, e)),
    };
    let mut out = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| StoreError::io("read_dir", dir, e))?;
        if let Some((lineage, epoch)) = entry.file_name().to_str().and_then(parse_name) {
            out.push(Candidate {
                lineage,
                epoch,
                path: entry.path(),
            });
        }
    }
    out.sort_by_key(|c| std::cmp::Reverse((c.lineage, c.epoch)));
    Ok(out)
}

/// Loads and decodes one checkpoint file: either a bare (legacy) epoch
/// record, or the audited envelope carrying the head's publication
/// commitments alongside it.
///
/// # Errors
///
/// [`StoreError::Io`] on read failure, [`StoreError::Codec`] /
/// [`StoreError::Protocol`] on corrupt or invalid content.
pub fn load(path: &Path) -> Result<(IndexEpoch, Vec<ColumnCommitment>), StoreError> {
    let bytes = fs::read(path).map_err(|e| StoreError::io("read", path, e))?;
    if bytes.len() >= 8 && bytes[..4] == ENVELOPE_MAGIC.to_le_bytes() {
        let record_len = u32::from_le_bytes(bytes[4..8].try_into().unwrap()) as usize;
        let body = &bytes[8..];
        if record_len > body.len() {
            return Err(StoreError::Codec(eppi_index::CodecError::Truncated {
                expected: 8 + record_len,
                actual: bytes.len(),
            }));
        }
        let epoch = decode_epoch(&body[..record_len])?;
        let commitments = decode_commitments(&body[record_len..])?;
        Ok((epoch, commitments))
    } else {
        Ok((decode_epoch(&bytes)?, Vec::new()))
    }
}

/// Deletes all but the newest `keep` checkpoints; returns how many were
/// removed.
///
/// # Errors
///
/// [`StoreError::Io`].
pub fn prune(dir: &Path, keep: usize) -> Result<usize, StoreError> {
    let candidates = scan(dir)?;
    let mut removed = 0;
    for stale in candidates.iter().skip(keep) {
        fs::remove_file(&stale.path).map_err(|e| StoreError::io("remove", &stale.path, e))?;
        removed += 1;
    }
    if removed > 0 {
        sync_dir(dir)?;
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eppi_core::model::{Epsilon, MembershipMatrix, OwnerId, ProviderId};
    use eppi_protocol::{construct_epoch, ProtocolConfig};

    fn sample_epoch(seed: u64) -> IndexEpoch {
        let mut mat = MembershipMatrix::new(16, 3);
        for j in 0..3u32 {
            for p in 0..=j {
                mat.set(ProviderId(p * 5), OwnerId(j), true);
            }
        }
        let eps = vec![Epsilon::new(0.5).unwrap(); 3];
        let cfg = ProtocolConfig {
            seed,
            ..ProtocolConfig::default()
        };
        construct_epoch(&mat, &eps, &cfg).unwrap()
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("eppi-ckpt-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn names_roundtrip_and_sort_by_lineage_then_epoch() {
        assert_eq!(parse_name(&file_name(3, 17)), Some((3, 17)));
        assert_eq!(parse_name("checkpoint.tmp"), None);
        assert_eq!(parse_name("checkpoint-x-y.eppi"), None);

        let dir = tmp_dir("sort");
        for (l, e) in [(0, 5), (0, 9), (1, 0)] {
            fs::write(dir.join(file_name(l, e)), b"x").unwrap();
        }
        let got: Vec<(u64, u64)> = scan(&dir)
            .unwrap()
            .iter()
            .map(|c| (c.lineage, c.epoch))
            .collect();
        // The re-anchored generation wins over any older epoch number.
        assert_eq!(got, vec![(1, 0), (0, 9), (0, 5)]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_load_prune_cycle() {
        let dir = tmp_dir("cycle");
        let epoch = sample_epoch(7);
        let receipt = write_atomic(&dir, 0, &epoch, &[]).unwrap();
        assert!(receipt.bytes > 0);
        let found = scan(&dir).unwrap();
        assert_eq!(found.len(), 1);
        let (back, commitments) = load(&found[0].path).unwrap();
        assert_eq!(back.index(), epoch.index());
        assert!(commitments.is_empty());
        assert!(!dir.join(TMP_NAME).exists(), "temp file renamed away");

        // Write two more generations and prune down to 2.
        write_atomic(&dir, 1, &sample_epoch(8), &[]).unwrap();
        write_atomic(&dir, 2, &sample_epoch(9), &[]).unwrap();
        assert_eq!(prune(&dir, 2).unwrap(), 1);
        let left = scan(&dir).unwrap();
        assert_eq!(left.len(), 2);
        assert_eq!((left[0].lineage, left[1].lineage), (2, 1));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn audited_envelope_roundtrips_and_binds_its_commitments() {
        use eppi_protocol::{certify_epoch, AuditConfig};

        let dir = tmp_dir("audited");
        let epoch = sample_epoch(6);
        let mat = {
            let mut mat = MembershipMatrix::new(16, 3);
            for j in 0..3u32 {
                for p in 0..=j {
                    mat.set(ProviderId(p * 5), OwnerId(j), true);
                }
            }
            mat
        };
        let audit = AuditConfig {
            params: eppi_audit::AuditParams { repetitions: 2 },
            ..AuditConfig::default()
        };
        let commitments: Vec<_> = certify_epoch(&mat, &epoch, &audit)
            .into_iter()
            .map(|c| c.commitment)
            .collect();
        write_atomic(&dir, 0, &epoch, &commitments).unwrap();
        let path = scan(&dir).unwrap().remove(0).path;
        let (back, loaded) = load(&path).unwrap();
        assert_eq!(back.index(), epoch.index());
        assert_eq!(loaded, commitments);
        // A tampered envelope byte fails the CRC or the audit framing.
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x10;
        fs::write(&path, &bytes).unwrap();
        let (_, tampered) = load(&path).unwrap();
        assert_ne!(tampered, commitments, "digest byte flip must surface");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_checkpoints_load_as_typed_errors() {
        let dir = tmp_dir("corrupt");
        let epoch = sample_epoch(3);
        write_atomic(&dir, 0, &epoch, &[]).unwrap();
        let path = scan(&dir).unwrap().remove(0).path;
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(load(&path), Err(StoreError::Codec(_))));
        fs::remove_dir_all(&dir).unwrap();
    }
}
