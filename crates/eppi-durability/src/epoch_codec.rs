//! Mapping between live [`IndexEpoch`]s and the on-disk EPPI v2
//! [`EpochRecord`].
//!
//! `eppi-index` owns the byte format (magic, versioning, CRC — see
//! [`eppi_index::codec`]); this module owns the *semantic* mapping: the
//! tag ↔ enum conversions for the β policy and the MPC backend, raw
//! `f64` ε's back into validated [`Epsilon`]s, and the final
//! [`IndexEpoch::resume`] pass that refuses to hand out state violating
//! a protocol invariant. Decoding therefore composes three layers of
//! validation — framing/CRC, field domains, protocol semantics — and a
//! byte sequence that survives all three is indistinguishable from the
//! live epoch it was serialized from.

use crate::error::StoreError;
use eppi_core::model::Epsilon;
use eppi_core::policy::PolicyKind;
use eppi_index::{decode_epoch_record, encode_epoch_record, CodecError, ConfigRecord, EpochRecord};
use eppi_net::sim::LinkModel;
use eppi_protocol::{Backend, EpochState, IndexEpoch, ProtocolConfig};

/// Converts a live epoch into the plain-data record the v2 codec
/// serializes.
pub fn epoch_to_record(epoch: &IndexEpoch) -> EpochRecord {
    let state = epoch.clone().into_state();
    let (policy_tag, policy_param) = match state.config.policy {
        PolicyKind::Basic => (0, 0.0),
        PolicyKind::Incremented { delta } => (1, delta),
        PolicyKind::Chernoff { gamma } => (2, gamma),
    };
    // Low 3 bits: backend discriminant (0–2 as in v2; 3 = pipelined).
    // High 5 bits: the pipelined worker count (a tuning knob that does
    // not affect outputs; capped at 31 by the encoding).
    let backend_tag = match state.config.backend {
        Backend::InProcess => 0,
        Backend::Threaded => 1,
        Backend::Simulated => 2,
        Backend::Pipelined { workers } => 3 | ((workers.clamp(1, 31) as u8) << 3),
    };
    EpochRecord {
        index: state.index,
        decisions: state.decisions,
        lambda: state.lambda,
        common_count: state.common_count,
        epoch: state.epoch,
        thresholds: state.thresholds,
        epsilons: state.epsilons.iter().map(|e| e.value()).collect(),
        shares: state.shares,
        config: ConfigRecord {
            coordinators: state.config.c as u32,
            policy_tag,
            policy_param,
            coin_bits: state.config.coin_bits as u32,
            link_latency_us: state.config.link.latency_us,
            link_bandwidth: state.config.link.bandwidth_bytes_per_us,
            backend_tag,
            seed: state.config.seed,
        },
    }
}

/// Serializes an epoch as one EPPI v2 byte record.
pub fn encode_epoch(epoch: &IndexEpoch) -> Vec<u8> {
    encode_epoch_record(&epoch_to_record(epoch))
}

/// Rebuilds a validated record back into a resumed [`IndexEpoch`].
fn record_to_epoch(record: EpochRecord) -> Result<IndexEpoch, StoreError> {
    let policy = match record.config.policy_tag {
        0 => PolicyKind::Basic,
        1 => PolicyKind::Incremented {
            delta: record.config.policy_param,
        },
        2 => PolicyKind::Chernoff {
            gamma: record.config.policy_param,
        },
        _ => {
            return Err(CodecError::UnknownTag {
                field: "policy",
                tag: record.config.policy_tag,
            }
            .into())
        }
    };
    let backend = match record.config.backend_tag & 0x07 {
        0 if record.config.backend_tag == 0 => Backend::InProcess,
        1 if record.config.backend_tag == 1 => Backend::Threaded,
        2 if record.config.backend_tag == 2 => Backend::Simulated,
        3 if record.config.backend_tag >> 3 > 0 => Backend::Pipelined {
            workers: (record.config.backend_tag >> 3) as usize,
        },
        _ => {
            return Err(CodecError::UnknownTag {
                field: "backend",
                tag: record.config.backend_tag,
            }
            .into())
        }
    };
    let epsilons = record
        .epsilons
        .iter()
        .map(|&e| Epsilon::new(e))
        .collect::<Result<Vec<_>, _>>()?;
    let config = ProtocolConfig {
        c: record.config.coordinators as usize,
        policy,
        coin_bits: record.config.coin_bits as usize,
        link: LinkModel {
            latency_us: record.config.link_latency_us,
            bandwidth_bytes_per_us: record.config.link_bandwidth,
        },
        backend,
        seed: record.config.seed,
    };
    IndexEpoch::resume(EpochState {
        index: record.index,
        decisions: record.decisions,
        lambda: record.lambda,
        common_count: record.common_count,
        epoch: record.epoch,
        thresholds: record.thresholds,
        epsilons,
        shares: record.shares,
        config,
    })
    .map_err(StoreError::Protocol)
}

/// Deserializes one EPPI v2 byte record into a resumed [`IndexEpoch`].
///
/// # Errors
///
/// [`StoreError::Codec`] for framing, checksum or field-domain defects;
/// [`StoreError::Protocol`] when the structurally valid record still
/// violates a protocol invariant.
pub fn decode_epoch(bytes: &[u8]) -> Result<IndexEpoch, StoreError> {
    record_to_epoch(decode_epoch_record(bytes)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eppi_core::model::{MembershipMatrix, OwnerId, ProviderId};
    use eppi_protocol::construct_epoch;

    fn sample_epoch(policy: PolicyKind, backend: Backend) -> IndexEpoch {
        let mut mat = MembershipMatrix::new(24, 5);
        for j in 0..5u32 {
            for p in 0..(3 + j * 4) {
                mat.set(ProviderId(p % 24), OwnerId(j), true);
            }
        }
        let eps: Vec<Epsilon> = [0.1, 0.4, 0.6, 0.8, 1.0]
            .iter()
            .map(|&v| Epsilon::new(v).unwrap())
            .collect();
        let cfg = ProtocolConfig {
            policy,
            backend,
            seed: 42,
            ..ProtocolConfig::default()
        };
        construct_epoch(&mat, &eps, &cfg).unwrap()
    }

    #[test]
    fn epoch_roundtrips_through_bytes() {
        for (policy, backend) in [
            (PolicyKind::Basic, Backend::InProcess),
            (PolicyKind::Incremented { delta: 0.2 }, Backend::Threaded),
            (PolicyKind::Chernoff { gamma: 0.9 }, Backend::Simulated),
            (PolicyKind::Basic, Backend::Pipelined { workers: 2 }),
        ] {
            let epoch = sample_epoch(policy, backend);
            let bytes = encode_epoch(&epoch);
            let back = decode_epoch(&bytes).expect("roundtrip");
            assert_eq!(back.index(), epoch.index());
            assert_eq!(back.decisions(), epoch.decisions());
            assert_eq!(back.thresholds(), epoch.thresholds());
            assert_eq!(back.shares(), epoch.shares());
            assert_eq!(back.epsilons(), epoch.epsilons());
            assert_eq!(back.lambda(), epoch.lambda());
            assert_eq!(back.common_count(), epoch.common_count());
            assert_eq!(back.epoch(), epoch.epoch());
            assert_eq!(back.config(), epoch.config());
        }
    }

    #[test]
    fn bare_pipelined_tag_is_rejected() {
        // Discriminant 3 with a zero worker count is not a value the
        // encoder can produce; the decoder must not invent workers.
        let epoch = sample_epoch(PolicyKind::Basic, Backend::InProcess);
        let mut record = epoch_to_record(&epoch);
        record.config.backend_tag = 3;
        let bytes = encode_epoch_record(&record);
        assert!(matches!(
            decode_epoch(&bytes),
            Err(StoreError::Codec(CodecError::UnknownTag {
                field: "backend",
                ..
            }))
        ));
    }

    #[test]
    fn corrupt_bytes_yield_typed_errors() {
        let epoch = sample_epoch(PolicyKind::Basic, Backend::InProcess);
        let bytes = encode_epoch(&epoch);
        // Flip one byte in the middle: the CRC rejects it.
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        assert!(matches!(
            decode_epoch(&flipped),
            Err(StoreError::Codec(CodecError::BadChecksum { .. }))
        ));
        // Truncation is detected before any allocation-heavy work.
        assert!(matches!(
            decode_epoch(&bytes[..bytes.len() - 3]),
            Err(StoreError::Codec(_))
        ));
    }
}
