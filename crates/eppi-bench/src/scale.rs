//! Million-owner scale sweep over the serve path's storage backends.
//!
//! The paper's experiments stop at 20,000 owners; this sweep shows the
//! serving layer holding its latency envelope as the owner population
//! grows to a million, and measures what the pluggable row storage
//! (DESIGN.md §14) buys: at realistic sparsity (an owner visits a few
//! of 10,000 providers), the EWAH-compressed backend's resident bytes
//! fall to a small fraction of the dense layout's, while answers stay
//! bit-identical.
//!
//! Each scale point builds one sparse index and serves it twice — once
//! per backend — under the *open-loop* pass (fixed arrival schedule, so
//! queueing under load is charged to the service, not silently omitted;
//! see the module docs of [`crate::serve`]). Memory is read back from
//! the engine's own `serve.index_bytes` gauge rather than recomputed,
//! so the JSON can never disagree with what the engine reported, and
//! the shard counts come from [`eppi_serve::default_shards_for`], which
//! scales with the owner population rather than the core count alone.
//!
//! CI gates on the emitted section: at the largest swept scale the
//! compressed backend must stay under half the dense resident bytes,
//! and its open-loop p99 must stay within a small factor of the
//! 20k-owner dense baseline (the acceptance envelope of the
//! million-owner index work).

use crate::serve::{open_loop, LoadResult, ServeLoadConfig};
use eppi_core::model::{MembershipMatrix, OwnerId, ProviderId, PublishedIndex};
use eppi_core::rowstore::RowBackend;
use eppi_serve::{default_shards_for, ServeConfig, ServeEngine};
use eppi_telemetry::json::JsonValue;
use eppi_telemetry::Registry;
use eppi_workload::presets::Preset;
use eppi_workload::queries::QueryWorkload;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Configuration of one backend-vs-scale sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleConfig {
    /// Provider universe (fixed across scales; the paper's 10,000).
    pub providers: usize,
    /// Owner populations to sweep, ascending.
    pub owner_scales: Vec<usize>,
    /// Fewest providers an owner visits.
    pub min_visits: usize,
    /// Most providers an owner visits.
    pub max_visits: usize,
    /// Zipf exponent of the query stream.
    pub skew: f64,
    /// Concurrent open-loop client threads.
    pub clients: usize,
    /// Bounded queue depth per worker.
    pub queue_depth: usize,
    /// Open-loop target arrival rate (total queries/second).
    pub open_target_qps: f64,
    /// Open-loop run length per point.
    pub open_duration: Duration,
    /// Open-loop passes per point; the pass with the lowest p99 is
    /// reported (the same best-of-N de-noising as the trace-overhead
    /// comparison — a single short pass on a busy host charges one
    /// scheduler hiccup to the service).
    pub attempts: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl ScaleConfig {
    /// Paper-scale sweep: 20k → 200k → 1M owners over 10,000 providers.
    pub fn paper() -> Self {
        ScaleConfig {
            providers: 10_000,
            owner_scales: vec![20_000, 200_000, 1_000_000],
            min_visits: 4,
            max_visits: 16,
            skew: 1.0,
            clients: 4,
            queue_depth: 1024,
            open_target_qps: 20_000.0,
            open_duration: Duration::from_secs(2),
            attempts: 3,
            seed: 0x5ca1e,
        }
    }

    /// Scaled-down sweep for tests and CI smoke (`EPPI_SCALE=quick`):
    /// 20k and 100k owners, short open-loop passes.
    pub fn quick() -> Self {
        ScaleConfig {
            owner_scales: vec![20_000, 100_000],
            open_target_qps: 5_000.0,
            open_duration: Duration::from_millis(250),
            attempts: 2,
            ..Self::paper()
        }
    }
}

/// One (owner scale, backend) measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalePoint {
    /// Owner population served.
    pub owners: usize,
    /// Physical row backend.
    pub backend: RowBackend,
    /// Worker threads the engine ran (base shards, capped by the
    /// engine at 4× the hardware parallelism).
    pub shards: usize,
    /// Data shards resident in the served snapshot.
    pub data_shards: usize,
    /// Resident row-storage bytes, from the `serve.index_bytes` gauge.
    pub index_bytes: u64,
    /// Wall-clock to build + install the sharded snapshot.
    pub build: Duration,
    /// The open-loop pass against this snapshot.
    pub open: LoadResult,
}

/// The full sweep (feeds the `scale` section of `BENCH_serve.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleReport {
    /// Provider universe of every point.
    pub providers: usize,
    /// One entry per (owner scale × backend), dense first.
    pub points: Vec<ScalePoint>,
}

/// A sparse membership matrix at locator-network density: each owner
/// visits `min_visits..=max_visits` uniformly chosen providers. At
/// 10,000 providers this is the sparsity regime the paper's networks
/// live in, and the one where compressed rows pay off.
fn build_sparse_index(config: &ScaleConfig, owners: usize) -> PublishedIndex {
    let mut rng = StdRng::seed_from_u64(config.seed ^ owners as u64);
    let mut matrix = MembershipMatrix::new(config.providers, owners);
    for o in 0..owners as u32 {
        let visits = rng.gen_range(config.min_visits..=config.max_visits);
        for _ in 0..visits {
            let p = rng.gen_range(0..config.providers) as u32;
            matrix.set(ProviderId(p), OwnerId(o), true);
        }
    }
    let betas = vec![0.1; owners];
    PublishedIndex::new(matrix, betas)
}

/// Owners per warmup batch request.
const WARM_BATCH: usize = 4096;

/// Runs one point: engine start (timed), full-snapshot warmup,
/// open-loop pass, gauge readback.
fn run_point(
    config: &ScaleConfig,
    index: &PublishedIndex,
    owners: usize,
    backend: RowBackend,
) -> ScalePoint {
    let shards = default_shards_for(owners);
    let registry = Registry::new();
    let started = Instant::now();
    let engine = ServeEngine::start_with_registry(
        index,
        ServeConfig {
            shards,
            queue_depth: config.queue_depth,
            telemetry: true,
            backend,
        },
        &registry,
    );
    let build = started.elapsed();

    // The open-loop driver reads its pacing knobs from a
    // ServeLoadConfig; everything else in it is inert here.
    let load = ServeLoadConfig {
        preset: Preset::Mini,
        skew: config.skew,
        shards,
        queue_depth: config.queue_depth,
        clients: config.clients,
        ops_per_client: 0,
        batch_size: 1,
        open_target_qps: config.open_target_qps,
        open_duration: config.open_duration,
        telemetry: true,
        backend,
        seed: config.seed ^ owners as u64,
    };
    // Fault in every row and warm the worker pool before the timed
    // pass: first-touch page faults on a freshly built multi-GB
    // snapshot are a build cost, not a serve cost, and would otherwise
    // land in the dense points' tail latency only.
    let warm = engine.client();
    let mut batch = Vec::with_capacity(WARM_BATCH);
    for o in 0..owners as u32 {
        batch.push(OwnerId(o));
        if batch.len() == WARM_BATCH {
            let _ = warm.query_batch(&batch);
            batch.clear();
        }
    }
    if !batch.is_empty() {
        let _ = warm.query_batch(&batch);
    }

    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xab);
    let workload = QueryWorkload::new(owners, config.skew, &mut rng);
    // Each attempt records into its own throwaway registry so the pass
    // histograms never mix; the engine's serve.* gauges stay on the
    // point's registry.
    let open = (0..config.attempts.max(1))
        .map(|_| open_loop(&engine, &workload, &load, &Registry::new()))
        .min_by(|a, b| {
            a.latency
                .p99_us
                .partial_cmp(&b.latency.p99_us)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .expect("at least one attempt");

    let index_bytes = registry
        .gauge("serve.index_bytes", &[("backend", backend.name())])
        .get() as u64;
    let workers = engine.shards();
    let data_shards = engine.data_shards();
    engine.shutdown();
    ScalePoint {
        owners,
        backend,
        shards: workers,
        data_shards,
        index_bytes,
        build,
        open,
    }
}

/// Runs the sweep: per owner scale, one sparse index served by both
/// backends (dense first), each under its own fresh registry so the
/// open-loop histograms never mix across points.
pub fn run_scale(config: &ScaleConfig) -> ScaleReport {
    let mut points = Vec::new();
    for &owners in &config.owner_scales {
        let index = build_sparse_index(config, owners);
        for backend in [RowBackend::Dense, RowBackend::Compressed] {
            points.push(run_point(config, &index, owners, backend));
        }
    }
    ScaleReport {
        providers: config.providers,
        points,
    }
}

/// Serializes the sweep as the `scale` JSON section.
pub fn to_json_value(report: &ScaleReport) -> JsonValue {
    let points = report
        .points
        .iter()
        .map(|p| {
            JsonValue::Object(vec![
                ("owners".into(), JsonValue::UInt(p.owners as u64)),
                ("backend".into(), JsonValue::Str(p.backend.name().into())),
                ("shards".into(), JsonValue::UInt(p.shards as u64)),
                ("data_shards".into(), JsonValue::UInt(p.data_shards as u64)),
                ("index_bytes".into(), JsonValue::UInt(p.index_bytes)),
                (
                    "build_ms".into(),
                    JsonValue::Float(p.build.as_secs_f64() * 1e3),
                ),
                (
                    "open_loop".into(),
                    JsonValue::Object(vec![
                        ("ops".into(), JsonValue::UInt(p.open.ops)),
                        ("qps".into(), JsonValue::Float(p.open.qps)),
                        (
                            "latency_us".into(),
                            JsonValue::Object(vec![
                                ("p50".into(), JsonValue::Float(p.open.latency.p50_us)),
                                ("p95".into(), JsonValue::Float(p.open.latency.p95_us)),
                                ("p99".into(), JsonValue::Float(p.open.latency.p99_us)),
                                ("max".into(), JsonValue::Float(p.open.latency.max_us)),
                            ]),
                        ),
                    ]),
                ),
            ])
        })
        .collect();
    JsonValue::Object(vec![
        ("providers".into(), JsonValue::UInt(report.providers as u64)),
        ("points".into(), JsonValue::Array(points)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny sweep end to end: answers at both backends, gauge-backed
    /// memory numbers, compressed strictly smaller at sparse fill, and
    /// a well-formed JSON section.
    #[test]
    fn tiny_sweep_reports_both_backends() {
        let config = ScaleConfig {
            providers: 2_000,
            owner_scales: vec![3_000],
            min_visits: 2,
            max_visits: 6,
            clients: 2,
            open_target_qps: 2_000.0,
            open_duration: Duration::from_millis(100),
            ..ScaleConfig::quick()
        };
        let report = run_scale(&config);
        assert_eq!(report.points.len(), 2);
        let dense = &report.points[0];
        let compressed = &report.points[1];
        assert_eq!(dense.backend, RowBackend::Dense);
        assert_eq!(compressed.backend, RowBackend::Compressed);
        assert_eq!(dense.owners, 3_000);
        for p in &report.points {
            assert!(p.open.ops > 0, "{} pass idle", p.backend);
            assert!(p.index_bytes > 0);
            // A freshly built snapshot has no append shards, so data
            // shards can only exceed workers via the engine's
            // worker-thread cap.
            assert!(p.shards >= 1 && p.data_shards >= p.shards);
        }
        assert!(
            (compressed.index_bytes as f64) < 0.5 * dense.index_bytes as f64,
            "compressed {} vs dense {} bytes",
            compressed.index_bytes,
            dense.index_bytes
        );

        let json = to_json_value(&report).to_pretty();
        for key in [
            "\"points\"",
            "\"index_bytes\"",
            "\"backend\": \"compressed\"",
            "\"open_loop\"",
            "\"p99\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }

        // Attached to a load report, the sweep travels in the
        // document's `scale_sweep` section (the one CI gates on).
        let load_report = crate::serve::ServeLoadReport {
            config: crate::serve::ServeLoadConfig::quick(),
            providers: config.providers,
            owners: 3_000,
            passes: Vec::new(),
            telemetry: Registry::new().snapshot(),
            trace: None,
            scale: Some(report),
        };
        let doc = crate::serve::to_json(&load_report, "quick");
        let parsed = JsonValue::parse(&doc).expect("well-formed document");
        let sweep = parsed.get("scale_sweep").expect("scale_sweep section");
        assert_eq!(
            sweep
                .get("points")
                .and_then(|p| p.as_array())
                .map(<[JsonValue]>::len),
            Some(2)
        );
    }
}
