//! Fig. 4 — ε-PPI (non-grouping) versus grouping-based PPIs.
//!
//! Paper setting (§V-A.1): 10,000 providers, expected false-positive
//! rate ε = 0.8, 20 uniform samples, grouping PPIs at several group
//! counts, ε-PPI with the incremented-expectation (Δ = 0.01) and
//! Chernoff (γ = 0.9) policies.
//!
//! * **Fig. 4a** — success ratio vs identity frequency;
//! * **Fig. 4b** — success ratio vs ε.
//!
//! Expected shape: the non-grouping ε-PPI stays at ≈ 1.0 across the
//! sweep; grouping fluctuates wildly with frequency (small per-group
//! sample spaces) and collapses toward 0 as ε grows.

use crate::report::{f3, Table};
use eppi_baselines::grouping::GroupingPpi;
use eppi_core::construct::{construct, ConstructionConfig};
use eppi_core::model::{Epsilon, MembershipMatrix};
use eppi_core::policy::PolicyKind;
use eppi_core::privacy::success_ratio;
use eppi_workload::collections::{fixed_epsilons, pinned_cohorts, Cohort};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration of the Fig. 4 sweeps.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4Config {
    /// Number of providers `m`.
    pub providers: usize,
    /// Owners per sampled cohort.
    pub cohort: usize,
    /// Number of uniform samples averaged per point.
    pub samples: usize,
    /// Fixed ε for Fig. 4a.
    pub epsilon: f64,
    /// Identity-frequency x-axis of Fig. 4a.
    pub frequencies: Vec<usize>,
    /// ε x-axis of Fig. 4b.
    pub epsilons: Vec<f64>,
    /// Fixed identity frequency for Fig. 4b.
    pub frequency_for_4b: usize,
    /// Group counts of the grouping baselines.
    pub group_counts: Vec<usize>,
    /// Base RNG seed.
    pub seed: u64,
}

impl Fig4Config {
    /// The paper's configuration (m = 10,000, ε = 0.8, 20 samples,
    /// frequencies 34–446, groups 400/1000/2500).
    pub fn paper() -> Self {
        Fig4Config {
            providers: 10_000,
            cohort: 50,
            samples: 20,
            epsilon: 0.8,
            frequencies: vec![34, 67, 100, 134, 176, 234, 446],
            epsilons: vec![0.1, 0.3, 0.5, 0.7, 0.9],
            frequency_for_4b: 100,
            group_counts: vec![400, 1000, 2000, 2500],
            seed: 0x44a,
        }
    }

    /// A scaled-down configuration for tests and smoke runs.
    pub fn quick() -> Self {
        Fig4Config {
            providers: 500,
            cohort: 20,
            samples: 3,
            epsilon: 0.8,
            frequencies: vec![5, 10, 25],
            epsilons: vec![0.3, 0.6, 0.9],
            frequency_for_4b: 10,
            group_counts: vec![25, 100],
            seed: 0x44a,
        }
    }
}

/// Series measured in one Fig. 4 cell.
fn measure_point(
    matrix: &MembershipMatrix,
    epsilons: &[Epsilon],
    cfg: &Fig4Config,
    seed: u64,
) -> Vec<f64> {
    let mut out = Vec::with_capacity(2 + cfg.group_counts.len());
    // Non-grouping ε-PPI: inc-exp Δ = 0.01 and Chernoff γ = 0.9.
    for policy in [
        PolicyKind::Incremented { delta: 0.01 },
        PolicyKind::Chernoff { gamma: 0.9 },
    ] {
        let mut rng = StdRng::seed_from_u64(seed);
        let c = construct(
            matrix,
            epsilons,
            ConstructionConfig {
                policy,
                mixing: true,
            },
            &mut rng,
        )
        .expect("valid construction");
        out.push(success_ratio(matrix, &c.index, epsilons, true));
    }
    // Grouping baselines.
    for &groups in &cfg.group_counts {
        let mut rng = StdRng::seed_from_u64(seed ^ groups as u64);
        let ppi = GroupingPpi::construct(matrix, groups.min(matrix.providers()), &mut rng);
        out.push(success_ratio(matrix, ppi.index(), epsilons, true));
    }
    out
}

fn headers(cfg: &Fig4Config, x: &str) -> Vec<String> {
    let mut h = vec![
        x.to_string(),
        "Nongrouping-IncExp-0.01".to_string(),
        "Nongrouping-Chernoff-0.9".to_string(),
    ];
    for &g in &cfg.group_counts {
        h.push(format!("Grouping-{g}"));
    }
    h
}

/// Runs Fig. 4a: success ratio vs identity frequency at fixed ε.
pub fn fig4a(cfg: &Fig4Config) -> Table {
    let mut table = Table::new(
        format!(
            "Fig. 4a — success ratio vs identity frequency (m={}, ε={}, {} samples)",
            cfg.providers, cfg.epsilon, cfg.samples
        ),
        headers(cfg, "frequency"),
    );
    let eps = Epsilon::saturating(cfg.epsilon);
    for &freq in &cfg.frequencies {
        let mut sums = vec![0.0; 2 + cfg.group_counts.len()];
        for s in 0..cfg.samples {
            let seed = cfg.seed ^ ((freq as u64) << 16) ^ s as u64;
            let mut rng = StdRng::seed_from_u64(seed);
            let matrix = pinned_cohorts(
                cfg.providers,
                &[Cohort {
                    owners: cfg.cohort,
                    frequency: freq,
                }],
                &mut rng,
            );
            let epsilons = fixed_epsilons(cfg.cohort, eps);
            for (acc, v) in sums
                .iter_mut()
                .zip(measure_point(&matrix, &epsilons, cfg, seed))
            {
                *acc += v;
            }
        }
        let mut row = vec![freq.to_string()];
        row.extend(sums.iter().map(|s| f3(s / cfg.samples as f64)));
        table.push_row(row);
    }
    table
}

/// Runs Fig. 4b: success ratio vs ε at fixed identity frequency.
pub fn fig4b(cfg: &Fig4Config) -> Table {
    let mut table = Table::new(
        format!(
            "Fig. 4b — success ratio vs ε (m={}, frequency={}, {} samples)",
            cfg.providers, cfg.frequency_for_4b, cfg.samples
        ),
        headers(cfg, "epsilon"),
    );
    for &e in &cfg.epsilons {
        let eps = Epsilon::saturating(e);
        let mut sums = vec![0.0; 2 + cfg.group_counts.len()];
        for s in 0..cfg.samples {
            let seed = cfg.seed ^ ((e * 1000.0) as u64) << 12 ^ s as u64;
            let mut rng = StdRng::seed_from_u64(seed);
            let matrix = pinned_cohorts(
                cfg.providers,
                &[Cohort {
                    owners: cfg.cohort,
                    frequency: cfg.frequency_for_4b,
                }],
                &mut rng,
            );
            let epsilons = fixed_epsilons(cfg.cohort, eps);
            for (acc, v) in sums
                .iter_mut()
                .zip(measure_point(&matrix, &epsilons, cfg, seed))
            {
                *acc += v;
            }
        }
        let mut row = vec![format!("{e:.1}")];
        row.extend(sums.iter().map(|s| f3(s / cfg.samples as f64)));
        table.push_row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_fig4a_shape_holds() {
        let cfg = Fig4Config::quick();
        let t = fig4a(&cfg);
        assert_eq!(t.rows.len(), cfg.frequencies.len());
        // Chernoff column (index 2) should be near 1 everywhere.
        for row in &t.rows {
            let chernoff: f64 = row[2].parse().unwrap();
            assert!(chernoff > 0.8, "chernoff {chernoff} too low: {row:?}");
        }
    }

    #[test]
    fn quick_fig4b_grouping_degrades_with_epsilon() {
        let cfg = Fig4Config::quick();
        let t = fig4b(&cfg);
        // Grouping at the largest ε should do worse than Chernoff ε-PPI.
        let last = t.rows.last().unwrap();
        let chernoff: f64 = last[2].parse().unwrap();
        let grouping: f64 = last[3].parse().unwrap();
        assert!(
            chernoff >= grouping,
            "chernoff {chernoff} should beat grouping {grouping} at high ε"
        );
    }
}
