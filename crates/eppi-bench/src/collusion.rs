//! Extension experiment: coalition-assisted attacks on the published
//! index (the paper defers this analysis to its technical report \[21\]).
//!
//! Sweeps the coalition size and reports the attacker's mean effective
//! confidence against ε-PPI indexes built at several ε values. Expected
//! shape: confidence starts at `≈ 1 − ε` with no colluders (the
//! ε-PRIVATE bound) and erodes toward certainty as colluders both
//! eliminate decoys and directly confirm memberships.

use crate::report::{f3, Table};
use eppi_attacks::collusion::mean_effective_confidence;
use eppi_core::construct::{construct, ConstructionConfig};
use eppi_core::model::Epsilon;
use eppi_workload::collections::{fixed_epsilons, pinned_cohorts, Cohort};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration of the collusion sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct CollusionConfig {
    /// Number of providers.
    pub providers: usize,
    /// Owners in the measured cohort.
    pub cohort: usize,
    /// Identity frequency of the cohort.
    pub frequency: usize,
    /// ε values (one index per value).
    pub epsilons: Vec<f64>,
    /// Coalition sizes swept.
    pub coalition_sizes: Vec<usize>,
    /// Random coalitions averaged per point.
    pub samples: usize,
    /// Seed.
    pub seed: u64,
}

impl CollusionConfig {
    /// Default: 1,000 providers, frequency 10, coalitions up to 50% of
    /// the network.
    pub fn paper() -> Self {
        CollusionConfig {
            providers: 1000,
            cohort: 50,
            frequency: 10,
            epsilons: vec![0.5, 0.8, 0.95],
            coalition_sizes: vec![0, 10, 50, 100, 250, 500],
            samples: 10,
            seed: 0xc011,
        }
    }

    /// Scaled-down configuration for tests.
    pub fn quick() -> Self {
        CollusionConfig {
            providers: 120,
            cohort: 15,
            frequency: 4,
            epsilons: vec![0.5, 0.9],
            coalition_sizes: vec![0, 12, 60],
            samples: 4,
            seed: 0xc011,
        }
    }
}

/// Runs the collusion sweep.
pub fn collusion(cfg: &CollusionConfig) -> Table {
    let mut headers = vec!["colluders".to_string()];
    headers.extend(cfg.epsilons.iter().map(|e| format!("e-PPI(ε={e})")));
    let mut table = Table::new(
        format!(
            "Collusion — mean attacker confidence vs coalition size (m={}, freq={})",
            cfg.providers, cfg.frequency
        ),
        headers,
    );

    // One index per ε.
    let indexes: Vec<_> = cfg
        .epsilons
        .iter()
        .map(|&e| {
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ (e * 100.0) as u64);
            let matrix = pinned_cohorts(
                cfg.providers,
                &[Cohort {
                    owners: cfg.cohort,
                    frequency: cfg.frequency,
                }],
                &mut rng,
            );
            let epsilons = fixed_epsilons(cfg.cohort, Epsilon::saturating(e));
            let built = construct(&matrix, &epsilons, ConstructionConfig::default(), &mut rng)
                .expect("construction");
            (matrix, built.index)
        })
        .collect();

    for &size in &cfg.coalition_sizes {
        let mut row = vec![size.to_string()];
        for (matrix, index) in &indexes {
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ (size as u64) << 20);
            row.push(f3(mean_effective_confidence(
                matrix,
                index,
                size,
                cfg.samples,
                &mut rng,
            )));
        }
        table.push_row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confidence_starts_at_bound_and_erodes() {
        let cfg = CollusionConfig::quick();
        let t = collusion(&cfg);
        // Column 1 = ε-PPI(0.5): starts ≈ 0.5, grows with coalition size.
        let start: f64 = t.rows[0][1].parse().unwrap();
        let end: f64 = t.rows.last().unwrap()[1].parse().unwrap();
        assert!(
            start <= 0.62,
            "no-collusion confidence {start} must be ≈ 1 − ε"
        );
        assert!(end > start, "collusion must erode privacy: {start} → {end}");
        // Higher ε always starts lower.
        let start_hi: f64 = t.rows[0][2].parse().unwrap();
        assert!(start_hi < start, "ε = 0.9 must bound lower than ε = 0.5");
    }
}
