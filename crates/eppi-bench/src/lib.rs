//! # eppi-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation
//! (§V) plus the ablations DESIGN.md calls out. Each module exposes a
//! `paper()` configuration matching the published setting and a
//! `quick()` configuration used by tests and smoke runs; the binaries in
//! `src/bin/` print the resulting tables (set `EPPI_SCALE=quick` for a
//! fast pass).
//!
//! | Target | Reproduces |
//! |--------|------------|
//! | `table2` | Table II — privacy degrees under both attacks |
//! | `fig4a`, `fig4b` | Fig. 4 — ε-PPI vs grouping PPIs |
//! | `fig5a`, `fig5b` | Fig. 5 — the three β policies |
//! | `fig6a`, `fig6b`, `fig6c` | Fig. 6 — construction performance |
//! | `search_cost` | supplementary search-overhead numbers |
//! | `ablation_c` | collusion-tolerance trade-off |
//! | `collusion` | coalition-assisted attack sweep (tech-report analysis) |
//! | `theory_check` | measured vs exact-Binomial vs Theorem 3.1 bound |
//! | `serve_load` | eppi-serve front-end throughput/latency (`results/BENCH_serve.json`) |
//! | `bench_private` | private (XOR-PIR) vs plaintext serve, single and batched (`results/BENCH_private.json`) |
//! | `bench_mpc` | packed GMW core vs unpacked reference (`results/BENCH_mpc.json`) |
//! | `bench_refresh` | delta refresh vs full rebuild sweep (`results/BENCH_refresh.json`) |
//! | `bench_recovery` | crash recovery vs log length (`results/BENCH_recovery.json`) |
//! | `bench_audit` | publication-audit prove/verify cost + cheater detection (`results/BENCH_audit.json`) |
//! | `all_experiments` | everything above, in order |

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ablation;
pub mod audit;
pub mod collusion;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod mpc_speed;
pub mod private;
pub mod recovery;
pub mod refresh;
pub mod report;
pub mod scale;
pub mod search_cost;
pub mod serve;
pub mod table2;
pub mod theory;

/// Experiment scale selected via the `EPPI_SCALE` environment variable:
/// `quick` for the scaled-down configurations, anything else (or unset)
/// for the paper-scale ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-scale configuration.
    Paper,
    /// Scaled-down smoke configuration.
    Quick,
}

impl Scale {
    /// Reads the scale from the environment.
    pub fn from_env() -> Self {
        match std::env::var("EPPI_SCALE").as_deref() {
            Ok("quick") => Scale::Quick,
            _ => Scale::Paper,
        }
    }
}

/// Reads the `--trace-out <path>` (or `--trace-out=<path>`) argument
/// the traced binaries (`serve_load`, `bench_private`) accept: where to
/// write the run's Chrome `trace_event` JSON. `None` when absent.
///
/// # Panics
///
/// Panics if `--trace-out` is given without a path.
pub fn trace_out_arg() -> Option<std::path::PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--trace-out" {
            let path = args.next().expect("--trace-out requires a path");
            return Some(path.into());
        }
        if let Some(path) = arg.strip_prefix("--trace-out=") {
            return Some(path.into());
        }
    }
    None
}

/// Prints a table as markdown, or as CSV when `EPPI_CSV=1` — for piping
/// straight into a plotting script.
pub fn print_table(table: &report::Table) {
    if std::env::var("EPPI_CSV").as_deref() == Ok("1") {
        print!("{}", table.to_csv());
    } else {
        println!("{table}");
    }
}
