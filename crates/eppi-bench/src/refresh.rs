//! Delta-refresh benchmark: the epoch lifecycle vs full rebuild.
//!
//! Sweeps the changed-column fraction and, for each point, runs the
//! same change batch through both refresh paths:
//!
//! * **delta** — `construct_delta` over the `k` touched columns,
//!   installed into a running [`ServeEngine`] through the
//!   copy-on-write [`ServeEngine::apply_delta`] path;
//! * **full** — `construct_distributed` over all `n` columns,
//!   installed through the re-sharding [`ServeEngine::refresh`] path.
//!
//! Reported per point: protocol wall time, total MPC gates
//! (CountBelow + mix-decision), SecSumShare messages and bytes, and
//! the serving-side install wall (publication until every shard
//! answers from the new version — the install jobs queue behind one
//! probe query per shard, so the measured wall includes the last
//! worker's switch). Results land in `results/BENCH_refresh.json`
//! (override with `EPPI_REFRESH_OUT`); `EPPI_SCALE=quick` selects the
//! smoke configuration.
//!
//! The expected shape at paper scale: delta MPC cost is sized by `k`
//! alone, so protocol wall and gates fall roughly linearly with the
//! fraction while the full-rebuild column stays flat — the delta path
//! wins on wall for small fractions, which is the whole point of the
//! epoch lifecycle (DESIGN.md §10).

use crate::report::Table;
use eppi_core::delta::{ColumnChange, DeltaEntry, IndexDelta};
use eppi_core::model::{Epsilon, MembershipMatrix, OwnerId, ProviderId};
use eppi_protocol::construct::{construct_distributed_with_registry, ProtocolConfig};
use eppi_protocol::epoch::{
    construct_delta_with_registry, construct_epoch_with_registry, IndexEpoch,
};
use eppi_serve::{default_shards, ServeConfig, ServeEngine};
use eppi_telemetry::json::JsonValue;
use eppi_telemetry::Registry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Configuration of one refresh benchmark run.
#[derive(Debug, Clone, PartialEq)]
pub struct RefreshBenchConfig {
    /// Providers `m`.
    pub providers: usize,
    /// Owners `n`.
    pub owners: usize,
    /// Changed-column fractions to sweep (each yields one row).
    pub fractions: Vec<f64>,
    /// Serve-engine shards for the install measurement.
    pub shards: usize,
    /// Membership bits flipped per churned column.
    pub flips_per_column: usize,
    /// Base RNG seed (also the protocol seed).
    pub seed: u64,
}

impl RefreshBenchConfig {
    /// Paper-scale sweep: the evaluation's owner population with a
    /// fraction sweep from one-in-a-thousand churn up to a quarter of
    /// the index.
    pub fn paper() -> Self {
        RefreshBenchConfig {
            providers: 64,
            owners: 4096,
            fractions: vec![0.001, 0.004, 0.016, 0.064, 0.25],
            shards: default_shards(),
            flips_per_column: 3,
            seed: 0x4ef4e5,
        }
    }

    /// Scaled-down smoke run for tests and `EPPI_SCALE=quick`.
    pub fn quick() -> Self {
        RefreshBenchConfig {
            providers: 24,
            owners: 256,
            fractions: vec![0.01, 0.05, 0.2],
            shards: 2,
            flips_per_column: 2,
            seed: 0x4ef4e5,
        }
    }
}

/// One fraction's measurements, delta path vs full rebuild.
#[derive(Debug, Clone, PartialEq)]
pub struct RefreshRow {
    /// Requested changed fraction.
    pub fraction: f64,
    /// Touched columns `k` actually churned.
    pub touched: usize,
    /// Protocol wall of the delta construction.
    pub delta_wall: Duration,
    /// Protocol wall of the full reconstruction.
    pub full_wall: Duration,
    /// Total MPC gates (CountBelow + mix) of the delta run.
    pub delta_gates: usize,
    /// Total MPC gates of the full run.
    pub full_gates: usize,
    /// SecSumShare messages of the delta run (m·c — fraction-blind).
    pub delta_secsum_messages: u64,
    /// SecSumShare messages of the full run.
    pub full_secsum_messages: u64,
    /// SecSumShare payload bytes of the delta run (sized by `k`).
    pub delta_secsum_bytes: u64,
    /// SecSumShare payload bytes of the full run (sized by `n`).
    pub full_secsum_bytes: u64,
    /// Publication-to-served wall of the copy-on-write install.
    pub delta_install: Duration,
    /// Publication-to-served wall of the full re-shard install.
    pub full_install: Duration,
}

impl RefreshRow {
    /// Protocol-wall advantage of the delta path (`> 1` = delta wins).
    pub fn wall_speedup(&self) -> f64 {
        self.full_wall.as_secs_f64() / self.delta_wall.as_secs_f64().max(1e-9)
    }
}

/// Everything one invocation produces (feeds both table and JSON).
#[derive(Debug, Clone, PartialEq)]
pub struct RefreshReport {
    /// The configuration that ran.
    pub config: RefreshBenchConfig,
    /// One entry per swept fraction.
    pub rows: Vec<RefreshRow>,
}

/// A random base network: every owner delegated to a random non-empty
/// provider subset, with a random ε.
fn build_base(config: &RefreshBenchConfig, rng: &mut StdRng) -> (MembershipMatrix, Vec<Epsilon>) {
    let mut matrix = MembershipMatrix::new(config.providers, config.owners);
    for owner in matrix.owner_ids() {
        let freq = rng.gen_range(1..config.providers.max(2));
        for i in 0..freq {
            matrix.set(
                ProviderId(((i * 7 + owner.index()) % config.providers) as u32),
                owner,
                true,
            );
        }
    }
    let epsilons = (0..config.owners)
        .map(|_| Epsilon::saturating(rng.gen_range(0.1..0.9)))
        .collect();
    (matrix, epsilons)
}

/// Churns `k` evenly-spread columns of `matrix`, returning the new
/// matrix, the spliced ε vector and the change batch.
fn churn(
    matrix: &MembershipMatrix,
    epsilons: &[Epsilon],
    k: usize,
    flips: usize,
    rng: &mut StdRng,
) -> (MembershipMatrix, Vec<Epsilon>, IndexDelta) {
    let n = matrix.owners();
    let mut next = matrix.clone();
    let mut next_eps = epsilons.to_vec();
    let mut delta = IndexDelta::new(n);
    for i in 0..k {
        // Evenly spread distinct owners, so every shard sees churn at
        // large fractions while small fractions stay sparse.
        let owner = OwnerId(((i * n) / k) as u32);
        for _ in 0..flips {
            let p = ProviderId(rng.gen_range(0..matrix.providers()) as u32);
            next.set(p, owner, !next.get(p, owner));
        }
        next_eps[owner.index()] = Epsilon::saturating(rng.gen_range(0.1..0.9));
        delta.record(DeltaEntry {
            owner,
            change: ColumnChange::Changed,
            epsilon: next_eps[owner.index()],
        });
    }
    (next, next_eps, delta)
}

fn bench_fraction(
    epoch0: &IndexEpoch,
    base: &MembershipMatrix,
    epsilons: &[Epsilon],
    proto: &ProtocolConfig,
    config: &RefreshBenchConfig,
    fraction: f64,
    rng: &mut StdRng,
) -> RefreshRow {
    let n = base.owners();
    let k = ((fraction * n as f64).round() as usize).clamp(1, n);
    let (next, next_eps, delta) = churn(base, epsilons, k, config.flips_per_column, rng);

    let built = construct_delta_with_registry(epoch0, &next, &delta, &Registry::new())
        .expect("delta construction");
    let full = construct_distributed_with_registry(&next, &next_eps, proto, &Registry::new())
        .expect("full construction");

    // Serving-side install: one engine per row, fed the same base
    // snapshot; a probe query per shard queues behind the install job,
    // so the measured wall covers the last worker's version switch.
    let engine = ServeEngine::start_with_registry(
        epoch0.index(),
        ServeConfig {
            shards: config.shards,
            queue_depth: 64,
            telemetry: false,
            backend: eppi_core::rowstore::RowBackend::Dense,
        },
        &Registry::new(),
    );
    let client = engine.client();
    let probe: Vec<OwnerId> = (0..config.shards.min(n) as u32).map(OwnerId).collect();
    let touched = delta.touched();
    let at = Instant::now();
    engine
        .apply_delta(built.epoch.index(), &touched)
        .expect("delta install in lineage order");
    for &o in &probe {
        let _ = client.query(o);
    }
    let delta_install = at.elapsed();
    let at = Instant::now();
    engine.refresh(&full.index);
    for &o in &probe {
        let _ = client.query(o);
    }
    let full_install = at.elapsed();
    engine.shutdown();

    RefreshRow {
        fraction,
        touched: k,
        delta_wall: built.report.wall,
        full_wall: full.report.wall,
        delta_gates: built.report.circuit_size(),
        full_gates: full.report.circuit_size(),
        delta_secsum_messages: built.report.secsum.messages,
        full_secsum_messages: full.report.secsum.messages,
        delta_secsum_bytes: built.report.secsum.bytes,
        full_secsum_bytes: full.report.secsum.bytes,
        delta_install,
        full_install,
    }
}

/// Runs the whole fraction sweep over one shared base epoch.
pub fn run(config: &RefreshBenchConfig) -> RefreshReport {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let (base, epsilons) = build_base(config, &mut rng);
    let proto = ProtocolConfig {
        seed: config.seed,
        ..ProtocolConfig::default()
    };
    let epoch0 = construct_epoch_with_registry(&base, &epsilons, &proto, &Registry::new())
        .expect("epoch 0 construction");
    let rows = config
        .fractions
        .iter()
        .map(|&fraction| {
            bench_fraction(
                &epoch0, &base, &epsilons, &proto, config, fraction, &mut rng,
            )
        })
        .collect();
    RefreshReport {
        config: config.clone(),
        rows,
    }
}

/// Renders the report as the harness's usual aligned table.
pub fn to_table(report: &RefreshReport) -> Table {
    let mut table = Table::new(
        format!(
            "delta refresh vs full rebuild — {} providers, {} owners, {} shards",
            report.config.providers, report.config.owners, report.config.shards
        ),
        [
            "fraction",
            "k",
            "Δ wall ms",
            "full ms",
            "speedup",
            "Δ gates",
            "full gates",
            "Δ install µs",
            "full install µs",
        ]
        .map(String::from)
        .to_vec(),
    );
    for row in &report.rows {
        table.push_row(vec![
            format!("{:.3}", row.fraction),
            row.touched.to_string(),
            format!("{:.2}", row.delta_wall.as_secs_f64() * 1e3),
            format!("{:.2}", row.full_wall.as_secs_f64() * 1e3),
            format!("{:.1}x", row.wall_speedup()),
            row.delta_gates.to_string(),
            row.full_gates.to_string(),
            format!("{:.0}", row.delta_install.as_secs_f64() * 1e6),
            format!("{:.0}", row.full_install.as_secs_f64() * 1e6),
        ]);
    }
    table
}

fn path_json(
    wall: Duration,
    gates: usize,
    messages: u64,
    bytes: u64,
    install: Duration,
) -> JsonValue {
    JsonValue::Object(vec![
        ("wall_ms".into(), JsonValue::Float(wall.as_secs_f64() * 1e3)),
        ("mpc_gates".into(), JsonValue::UInt(gates as u64)),
        ("secsum_messages".into(), JsonValue::UInt(messages)),
        ("secsum_bytes".into(), JsonValue::UInt(bytes)),
        (
            "install_ms".into(),
            JsonValue::Float(install.as_secs_f64() * 1e3),
        ),
    ])
}

/// Serializes the report to the `BENCH_refresh.json` schema.
pub fn to_json(report: &RefreshReport, scale: &str) -> String {
    let threads = std::thread::available_parallelism().map_or(0, |p| p.get());
    let rows = report
        .rows
        .iter()
        .map(|row| {
            JsonValue::Object(vec![
                ("fraction".into(), JsonValue::Float(row.fraction)),
                ("touched".into(), JsonValue::UInt(row.touched as u64)),
                (
                    "delta".into(),
                    path_json(
                        row.delta_wall,
                        row.delta_gates,
                        row.delta_secsum_messages,
                        row.delta_secsum_bytes,
                        row.delta_install,
                    ),
                ),
                (
                    "full".into(),
                    path_json(
                        row.full_wall,
                        row.full_gates,
                        row.full_secsum_messages,
                        row.full_secsum_bytes,
                        row.full_install,
                    ),
                ),
                ("wall_speedup".into(), JsonValue::Float(row.wall_speedup())),
            ])
        })
        .collect();
    let doc = JsonValue::Object(vec![
        ("bench".into(), JsonValue::Str("refresh".into())),
        ("scale".into(), JsonValue::Str(scale.into())),
        (
            "machine".into(),
            JsonValue::Object(vec![
                ("os".into(), JsonValue::Str(std::env::consts::OS.into())),
                ("arch".into(), JsonValue::Str(std::env::consts::ARCH.into())),
                ("hardware_threads".into(), JsonValue::UInt(threads as u64)),
            ]),
        ),
        (
            "config".into(),
            JsonValue::Object(vec![
                (
                    "providers".into(),
                    JsonValue::UInt(report.config.providers as u64),
                ),
                (
                    "owners".into(),
                    JsonValue::UInt(report.config.owners as u64),
                ),
                (
                    "shards".into(),
                    JsonValue::UInt(report.config.shards as u64),
                ),
                (
                    "flips_per_column".into(),
                    JsonValue::UInt(report.config.flips_per_column as u64),
                ),
                ("seed".into(), JsonValue::UInt(report.config.seed)),
            ]),
        ),
        ("rows".into(), JsonValue::Array(rows)),
    ]);
    let mut out = doc.to_pretty();
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_shows_delta_cost_scaling_with_k() {
        let config = RefreshBenchConfig {
            owners: 96,
            fractions: vec![0.02, 0.25],
            ..RefreshBenchConfig::quick()
        };
        let report = run(&config);
        assert_eq!(report.rows.len(), 2);
        for row in &report.rows {
            assert!(row.touched >= 1);
            assert!(
                row.delta_gates < row.full_gates,
                "delta must run a smaller circuit ({} vs {})",
                row.delta_gates,
                row.full_gates
            );
            assert!(row.delta_secsum_bytes < row.full_secsum_bytes);
            // SecSumShare message count depends on m and c only.
            assert_eq!(row.delta_secsum_messages, row.full_secsum_messages);
        }
        // The MPC circuit grows with the fraction.
        assert!(report.rows[0].delta_gates < report.rows[1].delta_gates);

        let json = to_json(&report, "quick");
        let doc = JsonValue::parse(&json).expect("BENCH_refresh.json must parse");
        assert_eq!(
            doc.get("bench").and_then(JsonValue::as_str),
            Some("refresh")
        );
        for key in [
            "\"rows\"",
            "\"fraction\"",
            "\"wall_speedup\"",
            "\"mpc_gates\"",
            "\"secsum_bytes\"",
            "\"install_ms\"",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
        let table = to_table(&report).to_string();
        assert!(table.contains("speedup"));
    }
}
