//! Table II — privacy degrees of ε-PPI versus the prior PPIs under both
//! attacks.
//!
//! The paper's Table II is analytical; this experiment reproduces it
//! *empirically*: construct each index over the same network — one that
//! contains common identities — run the primary and common-identity
//! attacks, and classify the achieved degree. Expected result (matching
//! the paper):
//!
//! | PPI          | Primary attack | Common-identity attack |
//! |--------------|----------------|------------------------|
//! | Grouping PPI | NoGuarantee    | NoGuarantee            |
//! | SS-PPI       | NoGuarantee    | NoProtect              |
//! | ε-PPI        | ε-PRIVATE      | ε-PRIVATE              |
//!
//! One empirical nuance: the paper rates grouping PPIs *NoGuarantee*
//! (not NoProtect) on the common-identity channel because their leak is
//! data-dependent. On networks like this one — where a truly common
//! identity is claimed by every group and no other identity looks
//! common — the attack in fact succeeds with certainty, so the measured
//! degree lands at NoProtect, the worst case of NoGuarantee.

use crate::report::{f3, Table};
use eppi_attacks::evaluate::evaluate;
use eppi_baselines::grouping::GroupingPpi;
use eppi_baselines::ss_ppi::SsPpi;
use eppi_core::construct::{construct, ConstructionConfig};
use eppi_core::model::{Epsilon, MembershipMatrix, OwnerId, ProviderId};
use eppi_core::policy::PolicyKind;
use eppi_core::privacy::PrivacyDegree;
use eppi_workload::collections::{pinned_cohorts, Cohort};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Statistical allowance for the ε-PRIVATE reading: the Chernoff policy
/// runs at γ = 0.9, so up to 10% of owners may miss their ε; add slack
/// for sampling noise.
const ALLOWANCE: f64 = 0.15;

/// Configuration of the Table II experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table2Config {
    /// Number of providers.
    pub providers: usize,
    /// Regular (non-common) identities.
    pub regular_owners: usize,
    /// Frequency of regular identities.
    pub regular_frequency: usize,
    /// Truly common identities (frequency = m).
    pub common_owners: usize,
    /// ε assigned to every owner.
    pub epsilon: f64,
    /// Group count for the grouping baselines.
    pub groups: usize,
    /// What counts as "common" for the attack (fraction of m).
    pub common_fraction: f64,
    /// Seed.
    pub seed: u64,
}

impl Table2Config {
    /// A representative configuration: a 1,000-provider network with a
    /// handful of common identities hiding among 500 regular ones.
    pub fn paper() -> Self {
        Table2Config {
            providers: 1000,
            regular_owners: 500,
            regular_frequency: 20,
            common_owners: 5,
            epsilon: 0.95,
            groups: 100,
            common_fraction: 0.95,
            seed: 0x22a,
        }
    }

    /// A scaled-down configuration for tests.
    pub fn quick() -> Self {
        Table2Config {
            providers: 120,
            regular_owners: 80,
            regular_frequency: 4,
            common_owners: 3,
            epsilon: 0.95,
            groups: 12,
            common_fraction: 0.95,
            seed: 0x22a,
        }
    }
}

fn degree_name(d: PrivacyDegree) -> &'static str {
    match d {
        PrivacyDegree::Unleaked => "Unleaked",
        PrivacyDegree::EpsPrivate => "eps-PRIVATE",
        PrivacyDegree::NoGuarantee => "NoGuarantee",
        PrivacyDegree::NoProtect => "NoProtect",
    }
}

/// Builds the benchmark network: `regular_owners` identities at
/// `regular_frequency` plus `common_owners` identities present in every
/// provider.
pub fn build_network(cfg: &Table2Config) -> (MembershipMatrix, Vec<Epsilon>) {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut matrix = pinned_cohorts(
        cfg.providers,
        &[Cohort {
            owners: cfg.regular_owners,
            frequency: cfg.regular_frequency,
        }],
        &mut rng,
    );
    // Append the common identities as extra columns.
    let total = cfg.regular_owners + cfg.common_owners;
    let mut full = MembershipMatrix::new(cfg.providers, total);
    for p in matrix.provider_ids() {
        for o in matrix.owner_ids() {
            if matrix.get(p, o) {
                full.set(p, o, true);
            }
        }
    }
    for j in cfg.regular_owners..total {
        for p in 0..cfg.providers {
            full.set(ProviderId(p as u32), OwnerId(j as u32), true);
        }
    }
    matrix = full;
    let epsilons = vec![Epsilon::saturating(cfg.epsilon); total];
    (matrix, epsilons)
}

/// Runs the Table II comparison.
pub fn table2(cfg: &Table2Config) -> Table {
    let (matrix, epsilons) = build_network(cfg);
    let mut table = Table::new(
        format!(
            "Table II — privacy degrees under attack (m={}, commons={}, ε={})",
            cfg.providers, cfg.common_owners, cfg.epsilon
        ),
        vec![
            "PPI".into(),
            "primary attack".into(),
            "primary confidence".into(),
            "common-id attack".into(),
            "common-id precision".into(),
        ],
    );

    // Grouping PPI [12], [13].
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 1);
    let grouping = GroupingPpi::construct(&matrix, cfg.groups, &mut rng);
    let ev = evaluate(
        &matrix,
        grouping.index(),
        &epsilons,
        None,
        cfg.common_fraction,
        ALLOWANCE,
    );
    table.push_row(vec![
        "Grouping PPI".into(),
        degree_name(ev.primary_degree).into(),
        f3(ev.primary_mean_confidence),
        degree_name(ev.common_degree).into(),
        ev.common.precision.map_or("-".into(), f3),
    ]);

    // SS-PPI [22]: same index shape + construction-time frequency leak.
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 2);
    let ss = SsPpi::construct(&matrix, cfg.groups, &mut rng);
    let leak = ss.leaked_frequencies().to_vec();
    let ev = evaluate(
        &matrix,
        ss.index(),
        &epsilons,
        Some(&leak),
        cfg.common_fraction,
        ALLOWANCE,
    );
    table.push_row(vec![
        "SS-PPI".into(),
        degree_name(ev.primary_degree).into(),
        f3(ev.primary_mean_confidence),
        degree_name(ev.common_degree).into(),
        ev.common.precision.map_or("-".into(), f3),
    ]);

    // ε-PPI with mixing.
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 3);
    let eppi = construct(
        &matrix,
        &epsilons,
        ConstructionConfig {
            policy: PolicyKind::Chernoff { gamma: 0.9 },
            mixing: true,
        },
        &mut rng,
    )
    .expect("valid construction");
    let ev = evaluate(
        &matrix,
        &eppi.index,
        &epsilons,
        None,
        cfg.common_fraction,
        ALLOWANCE,
    );
    table.push_row(vec![
        "e-PPI".into(),
        degree_name(ev.primary_degree).into(),
        f3(ev.primary_mean_confidence),
        degree_name(ev.common_degree).into(),
        ev.common.precision.map_or("-".into(), f3),
    ]);

    // Ablation: ε-PPI without identity mixing (shows why mixing exists).
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 4);
    let nomix = construct(
        &matrix,
        &epsilons,
        ConstructionConfig {
            policy: PolicyKind::Chernoff { gamma: 0.9 },
            mixing: false,
        },
        &mut rng,
    )
    .expect("valid construction");
    let ev = evaluate(
        &matrix,
        &nomix.index,
        &epsilons,
        None,
        cfg.common_fraction,
        ALLOWANCE,
    );
    table.push_row(vec![
        "e-PPI (no mixing)".into(),
        degree_name(ev.primary_degree).into(),
        f3(ev.primary_mean_confidence),
        degree_name(ev.common_degree).into(),
        ev.common.precision.map_or("-".into(), f3),
    ]);

    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_reproduces_degree_ordering() {
        let t = table2(&Table2Config::quick());
        assert_eq!(t.rows.len(), 4);
        let degree_of = |name: &str, col: usize| -> String {
            t.rows
                .iter()
                .find(|r| r[0] == name)
                .unwrap_or_else(|| panic!("row {name}"))[col]
                .clone()
        };
        // SS-PPI is NoProtect against the common-identity attack.
        assert_eq!(degree_of("SS-PPI", 3), "NoProtect");
        // ε-PPI is ε-private against the primary attack.
        assert_eq!(degree_of("e-PPI", 1), "eps-PRIVATE");
        // Without mixing, the common channel degrades below ε-PPI's.
        let mixed: f64 = degree_of("e-PPI", 4).parse().unwrap_or(1.0);
        let unmixed: f64 = degree_of("e-PPI (no mixing)", 4).parse().unwrap_or(1.0);
        assert!(
            unmixed >= mixed,
            "attack precision without mixing ({unmixed}) should be ≥ with mixing ({mixed})"
        );
    }

    #[test]
    fn network_builder_places_commons() {
        let cfg = Table2Config::quick();
        let (m, eps) = build_network(&cfg);
        assert_eq!(m.owners(), cfg.regular_owners + cfg.common_owners);
        assert_eq!(eps.len(), m.owners());
        let freqs = m.frequencies();
        for (j, &f) in freqs.iter().enumerate() {
            if j < cfg.regular_owners {
                assert_eq!(f, cfg.regular_frequency, "regular identity {j}");
            } else {
                assert_eq!(f, cfg.providers, "common identity {j}");
            }
        }
    }
}
