//! Regenerates Fig. 6c (construction time vs identities).
use eppi_bench::fig6::{fig6c, Fig6Config};
use eppi_bench::Scale;

fn main() {
    let cfg = match Scale::from_env() {
        Scale::Quick => Fig6Config::quick(),
        Scale::Paper => Fig6Config::paper(),
    };
    eppi_bench::print_table(&fig6c(&cfg));
}
