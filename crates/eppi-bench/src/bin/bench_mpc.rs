//! Times the packed GMW core against the frozen unpacked reference on
//! Fig. 6-scale pure-MPC construction circuits, sweeps the pipelined
//! multi-lane runtime over worker counts, and writes
//! `results/BENCH_mpc.json`.
//!
//! Knobs: `EPPI_SCALE=quick|paper` picks the configuration;
//! `EPPI_MPC_OUT` overrides the output path.
use eppi_bench::mpc_speed::{
    pipeline_to_table, run, run_pipeline, to_json, to_table, MpcBenchConfig, PipelineBenchConfig,
};
use eppi_bench::Scale;
use std::path::PathBuf;

fn main() {
    let (config, pipeline_config, scale) = match Scale::from_env() {
        Scale::Quick => (
            MpcBenchConfig::quick(),
            PipelineBenchConfig::quick(),
            "quick",
        ),
        Scale::Paper => (
            MpcBenchConfig::paper(),
            PipelineBenchConfig::paper(),
            "paper",
        ),
    };
    let report = run(&config);
    eppi_bench::print_table(&to_table(&report));
    println!("speedup geomean: {:.3}x", report.geomean_speedup());

    let pipeline = run_pipeline(&pipeline_config);
    eppi_bench::print_table(&pipeline_to_table(&pipeline));
    println!(
        "pipeline: lockstep {:.3} ms, 4w-vs-1w speedup {:.3}x",
        pipeline.lockstep_ms,
        pipeline.speedup_4w_vs_1w()
    );

    let out: PathBuf = std::env::var_os("EPPI_MPC_OUT")
        .map_or_else(|| PathBuf::from("results/BENCH_mpc.json"), PathBuf::from);
    if let Some(dir) = out.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create results directory");
        }
    }
    std::fs::write(&out, to_json(&report, &pipeline, scale)).expect("write BENCH_mpc.json");
    eprintln!("wrote {}", out.display());
}
