//! Times the packed GMW core against the frozen unpacked reference on
//! Fig. 6-scale pure-MPC construction circuits and writes
//! `results/BENCH_mpc.json`.
//!
//! Knobs: `EPPI_SCALE=quick|paper` picks the configuration;
//! `EPPI_MPC_OUT` overrides the output path.
use eppi_bench::mpc_speed::{run, to_json, to_table, MpcBenchConfig};
use eppi_bench::Scale;
use std::path::PathBuf;

fn main() {
    let (config, scale) = match Scale::from_env() {
        Scale::Quick => (MpcBenchConfig::quick(), "quick"),
        Scale::Paper => (MpcBenchConfig::paper(), "paper"),
    };
    let report = run(&config);
    eppi_bench::print_table(&to_table(&report));
    println!("speedup geomean: {:.3}x", report.geomean_speedup());

    let out: PathBuf = std::env::var_os("EPPI_MPC_OUT")
        .map_or_else(|| PathBuf::from("results/BENCH_mpc.json"), PathBuf::from);
    if let Some(dir) = out.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create results directory");
        }
    }
    std::fs::write(&out, to_json(&report, scale)).expect("write BENCH_mpc.json");
    eprintln!("wrote {}", out.display());
}
