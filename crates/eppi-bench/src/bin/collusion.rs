//! Sweeps coalition-assisted attacks against ε-PPI indexes.
use eppi_bench::collusion::{collusion, CollusionConfig};
use eppi_bench::Scale;

fn main() {
    let cfg = match Scale::from_env() {
        Scale::Quick => CollusionConfig::quick(),
        Scale::Paper => CollusionConfig::paper(),
    };
    eppi_bench::print_table(&collusion(&cfg));
}
