//! Load-tests the eppi-serve front-end (closed-loop, batched, and
//! open-loop passes) and writes `results/BENCH_serve.json`, including
//! the run's full telemetry snapshot.
//!
//! Knobs: `EPPI_SCALE=quick|paper` picks the configuration;
//! `EPPI_TELEMETRY=off` disables the engine-side per-query
//! instrumentation (the overhead baseline — harness measurement stays
//! on); `EPPI_SERVE_OUT` overrides the output path.
use eppi_bench::serve::{run, to_json, to_table, ServeLoadConfig};
use eppi_bench::Scale;
use std::path::PathBuf;

fn main() {
    let (mut config, scale) = match Scale::from_env() {
        Scale::Quick => (ServeLoadConfig::quick(), "quick"),
        Scale::Paper => (ServeLoadConfig::paper(), "paper"),
    };
    if let Ok(v) = std::env::var("EPPI_TELEMETRY") {
        let v = v.to_ascii_lowercase();
        config.telemetry = !matches!(v.as_str(), "off" | "0" | "false");
    }
    let report = run(&config);
    eppi_bench::print_table(&to_table(&report));
    println!(
        "telemetry snapshot ({} metrics):",
        report.telemetry.metrics.len()
    );
    print!("{}", report.telemetry.to_text());

    let out: PathBuf = std::env::var_os("EPPI_SERVE_OUT")
        .map_or_else(|| PathBuf::from("results/BENCH_serve.json"), PathBuf::from);
    if let Some(dir) = out.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create results directory");
        }
    }
    std::fs::write(&out, to_json(&report, scale)).expect("write BENCH_serve.json");
    eprintln!("wrote {}", out.display());
}
