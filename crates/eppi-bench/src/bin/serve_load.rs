//! Load-tests the eppi-serve front-end (closed-loop, batched, and
//! open-loop passes) and writes `results/BENCH_serve.json`, including
//! the run's full telemetry snapshot.
//!
//! Knobs: `EPPI_SCALE=quick|paper` picks the configuration;
//! `EPPI_TELEMETRY=off` disables the engine-side per-query
//! instrumentation (the overhead baseline — harness measurement stays
//! on); `EPPI_SERVE_OUT` overrides the output path; `--trace-out
//! <path>` additionally writes the traced overhead pass's span log as
//! Chrome `trace_event` JSON (open in `chrome://tracing` or Perfetto).
//!
//! After the load passes the binary runs the backend-vs-scale sweep
//! ([`eppi_bench::scale`]) — dense and compressed row storage at each
//! owner scale (paper: 20k/200k/1M) — and embeds it as the report's
//! `scale_sweep` section; CI gates on its memory ratio and p99.
use eppi_bench::scale::{run_scale, ScaleConfig};
use eppi_bench::serve::{run, to_json, to_table, trace_overhead, ServeLoadConfig};
use eppi_bench::Scale;
use eppi_trace::chrome;
use std::path::PathBuf;

fn main() {
    let (mut config, scale) = match Scale::from_env() {
        Scale::Quick => (ServeLoadConfig::quick(), "quick"),
        Scale::Paper => (ServeLoadConfig::paper(), "paper"),
    };
    if let Ok(v) = std::env::var("EPPI_TELEMETRY") {
        let v = v.to_ascii_lowercase();
        config.telemetry = !matches!(v.as_str(), "off" | "0" | "false");
    }
    let mut report = run(&config);
    let (overhead, trace_log) = trace_overhead(&config);
    println!(
        "trace overhead: {:.0} qps untraced vs {:.0} qps traced ({:+.1}%), {} events kept, {} dropped",
        overhead.untraced.qps,
        overhead.traced.qps,
        overhead.overhead_pct,
        overhead.events,
        overhead.dropped,
    );
    report.trace = Some(overhead);

    let scale_config = match Scale::from_env() {
        Scale::Quick => ScaleConfig::quick(),
        Scale::Paper => ScaleConfig::paper(),
    };
    let sweep = run_scale(&scale_config);
    for point in &sweep.points {
        println!(
            "scale {:>9} owners {:>10} backend: {:>12} bytes, {:>6} shards, open p99 {:>9.1} us ({:.0} qps)",
            point.owners,
            point.backend.name(),
            point.index_bytes,
            point.data_shards,
            point.open.latency.p99_us,
            point.open.qps,
        );
    }
    report.scale = Some(sweep);

    eppi_bench::print_table(&to_table(&report));
    println!(
        "telemetry snapshot ({} metrics):",
        report.telemetry.metrics.len()
    );
    print!("{}", report.telemetry.to_text());

    if let Some(path) = eppi_bench::trace_out_arg() {
        std::fs::write(&path, chrome::to_chrome_string(&trace_log)).expect("write trace JSON");
        eprintln!("wrote {}", path.display());
    }

    let out: PathBuf = std::env::var_os("EPPI_SERVE_OUT")
        .map_or_else(|| PathBuf::from("results/BENCH_serve.json"), PathBuf::from);
    if let Some(dir) = out.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create results directory");
        }
    }
    std::fs::write(&out, to_json(&report, scale)).expect("write BENCH_serve.json");
    eprintln!("wrote {}", out.display());
}
