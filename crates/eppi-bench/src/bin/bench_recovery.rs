//! Benchmarks crash recovery from the durability store across a
//! write-ahead-log-length sweep and writes
//! `results/BENCH_recovery.json`.
//!
//! Knobs: `EPPI_SCALE=quick|paper` picks the configuration;
//! `EPPI_RECOVERY_OUT` overrides the output path.
use eppi_bench::recovery::{run, to_json, to_table, RecoveryBenchConfig};
use eppi_bench::Scale;
use std::path::PathBuf;

fn main() {
    let (config, scale) = match Scale::from_env() {
        Scale::Quick => (RecoveryBenchConfig::quick(), "quick"),
        Scale::Paper => (RecoveryBenchConfig::paper(), "paper"),
    };
    let report = run(&config);
    eppi_bench::print_table(&to_table(&report));

    let out: PathBuf = std::env::var_os("EPPI_RECOVERY_OUT").map_or_else(
        || PathBuf::from("results/BENCH_recovery.json"),
        PathBuf::from,
    );
    if let Some(dir) = out.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create results directory");
        }
    }
    std::fs::write(&out, to_json(&report, scale)).expect("write BENCH_recovery.json");
    eprintln!("wrote {}", out.display());
}
