//! Regenerates Fig. 6b (circuit size vs parties).
use eppi_bench::fig6::{fig6b, Fig6Config};
use eppi_bench::Scale;

fn main() {
    let cfg = match Scale::from_env() {
        Scale::Quick => Fig6Config::quick(),
        Scale::Paper => Fig6Config::paper(),
    };
    eppi_bench::print_table(&fig6b(&cfg));
}
