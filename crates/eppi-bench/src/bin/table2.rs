//! Regenerates Table II (privacy degrees under both attacks).
use eppi_bench::table2::{table2, Table2Config};
use eppi_bench::Scale;

fn main() {
    let cfg = match Scale::from_env() {
        Scale::Quick => Table2Config::quick(),
        Scale::Paper => Table2Config::paper(),
    };
    eppi_bench::print_table(&table2(&cfg));
}
