//! Fig. 6a under the simulated LAN link model (network-time view).
use eppi_bench::fig6::{fig6a_simulated, Fig6Config};
use eppi_bench::Scale;

fn main() {
    let cfg = match Scale::from_env() {
        Scale::Quick => Fig6Config::quick(),
        Scale::Paper => Fig6Config::paper(),
    };
    eppi_bench::print_table(&fig6a_simulated(&cfg));
}
