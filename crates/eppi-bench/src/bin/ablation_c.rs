//! Sweeps the collusion-tolerance parameter c.
use eppi_bench::ablation::{ablation_c, AblationConfig};
use eppi_bench::Scale;

fn main() {
    let cfg = match Scale::from_env() {
        Scale::Quick => AblationConfig::quick(),
        Scale::Paper => AblationConfig::paper(),
    };
    eppi_bench::print_table(&ablation_c(&cfg));
}
