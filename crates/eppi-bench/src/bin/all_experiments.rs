//! Runs every experiment of the paper's evaluation section in order.
use eppi_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    macro_rules! cfg {
        ($m:ident, $c:ident) => {
            match scale {
                Scale::Quick => eppi_bench::$m::$c::quick(),
                Scale::Paper => eppi_bench::$m::$c::paper(),
            }
        };
    }
    println!(
        "{}",
        eppi_bench::table2::table2(&cfg!(table2, Table2Config))
    );
    let f4 = cfg!(fig4, Fig4Config);
    println!("{}", eppi_bench::fig4::fig4a(&f4));
    println!("{}", eppi_bench::fig4::fig4b(&f4));
    let f5 = cfg!(fig5, Fig5Config);
    println!("{}", eppi_bench::fig5::fig5a(&f5));
    println!("{}", eppi_bench::fig5::fig5b(&f5));
    let f6 = cfg!(fig6, Fig6Config);
    println!("{}", eppi_bench::fig6::fig6a(&f6));
    println!("{}", eppi_bench::fig6::fig6a_simulated(&f6));
    println!("{}", eppi_bench::fig6::fig6b(&f6));
    println!("{}", eppi_bench::fig6::fig6c(&f6));
    println!(
        "{}",
        eppi_bench::search_cost::search_cost(&cfg!(search_cost, SearchCostConfig))
    );
    println!(
        "{}",
        eppi_bench::ablation::ablation_c(&cfg!(ablation, AblationConfig))
    );
    println!(
        "{}",
        eppi_bench::collusion::collusion(&cfg!(collusion, CollusionConfig))
    );
    println!(
        "{}",
        eppi_bench::theory::theory_check(&cfg!(theory, TheoryConfig))
    );

    // Everything above reported into the process-global registry
    // (GMW rounds, construction phases, SecSumShare traffic); close
    // with the accumulated observability report.
    let snapshot = eppi_telemetry::global().snapshot();
    println!("run telemetry ({} metrics):", snapshot.metrics.len());
    print!("{}", snapshot.to_text());
}
