//! Benchmarks the epoch lifecycle's delta refresh against a full
//! rebuild across a changed-fraction sweep and writes
//! `results/BENCH_refresh.json`.
//!
//! Knobs: `EPPI_SCALE=quick|paper` picks the configuration;
//! `EPPI_REFRESH_OUT` overrides the output path.
use eppi_bench::refresh::{run, to_json, to_table, RefreshBenchConfig};
use eppi_bench::Scale;
use std::path::PathBuf;

fn main() {
    let (config, scale) = match Scale::from_env() {
        Scale::Quick => (RefreshBenchConfig::quick(), "quick"),
        Scale::Paper => (RefreshBenchConfig::paper(), "paper"),
    };
    let report = run(&config);
    eppi_bench::print_table(&to_table(&report));

    let out: PathBuf = std::env::var_os("EPPI_REFRESH_OUT").map_or_else(
        || PathBuf::from("results/BENCH_refresh.json"),
        PathBuf::from,
    );
    if let Some(dir) = out.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create results directory");
        }
    }
    std::fs::write(&out, to_json(&report, scale)).expect("write BENCH_refresh.json");
    eprintln!("wrote {}", out.display());
}
