//! Cross-checks measured success rates against the exact Binomial law
//! and Theorem 3.1's Chernoff bound.
use eppi_bench::theory::{theory_check, TheoryConfig};
use eppi_bench::Scale;

fn main() {
    let cfg = match Scale::from_env() {
        Scale::Quick => TheoryConfig::quick(),
        Scale::Paper => TheoryConfig::paper(),
    };
    eppi_bench::print_table(&theory_check(&cfg));
}
