//! Regenerates Fig. 4a (success ratio vs identity frequency).
use eppi_bench::fig4::{fig4a, Fig4Config};
use eppi_bench::Scale;

fn main() {
    let cfg = match Scale::from_env() {
        Scale::Quick => Fig4Config::quick(),
        Scale::Paper => Fig4Config::paper(),
    };
    eppi_bench::print_table(&fig4a(&cfg));
}
