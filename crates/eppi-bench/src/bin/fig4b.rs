//! Regenerates Fig. 4b (success ratio vs ε).
use eppi_bench::fig4::{fig4b, Fig4Config};
use eppi_bench::Scale;

fn main() {
    let cfg = match Scale::from_env() {
        Scale::Quick => Fig4Config::quick(),
        Scale::Paper => Fig4Config::paper(),
    };
    eppi_bench::print_table(&fig4b(&cfg));
}
