//! Regenerates Fig. 5a (β-policy success rate vs identity frequency).
use eppi_bench::fig5::{fig5a, Fig5Config};
use eppi_bench::Scale;

fn main() {
    let cfg = match Scale::from_env() {
        Scale::Quick => Fig5Config::quick(),
        Scale::Paper => Fig5Config::paper(),
    };
    eppi_bench::print_table(&fig5a(&cfg));
}
