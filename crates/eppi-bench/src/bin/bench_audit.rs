//! Benchmarks the publication audit (MPC-in-the-head prove/verify
//! sweeps plus the cheater-detection trial) and writes
//! `results/BENCH_audit.json`.
//!
//! Knobs: `EPPI_SCALE=quick|paper` picks the configuration;
//! `EPPI_AUDIT_OUT` overrides the output path.
use eppi_bench::audit::{run, to_json, to_table, AuditBenchConfig};
use eppi_bench::Scale;
use std::path::PathBuf;

fn main() {
    let (config, scale) = match Scale::from_env() {
        Scale::Quick => (AuditBenchConfig::quick(), "quick"),
        Scale::Paper => (AuditBenchConfig::paper(), "paper"),
    };
    let report = run(&config);
    eppi_bench::print_table(&to_table(&report));

    let out: PathBuf = std::env::var_os("EPPI_AUDIT_OUT")
        .map_or_else(|| PathBuf::from("results/BENCH_audit.json"), PathBuf::from);
    if let Some(dir) = out.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create results directory");
        }
    }
    std::fs::write(&out, to_json(&report, scale)).expect("write BENCH_audit.json");
    eprintln!("wrote {}", out.display());
}
