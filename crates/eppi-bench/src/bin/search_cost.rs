//! Regenerates the supplementary search-cost numbers.
use eppi_bench::search_cost::{search_cost, SearchCostConfig};
use eppi_bench::Scale;

fn main() {
    let cfg = match Scale::from_env() {
        Scale::Quick => SearchCostConfig::quick(),
        Scale::Paper => SearchCostConfig::paper(),
    };
    eppi_bench::print_table(&search_cost(&cfg));
}
