//! Benchmarks the private (2-server XOR-PIR) serve mode against the
//! plaintext path, single-shot and batched, and writes
//! `results/BENCH_private.json` — including the batching-amortization
//! summary, the in-run equivalence tally, and the run's full telemetry
//! snapshot.
//!
//! Knobs: `EPPI_SCALE=quick|paper` picks the configuration;
//! `EPPI_PRIVATE_OUT` overrides the output path; `--trace-out <path>`
//! additionally writes one traced private query as Chrome
//! `trace_event` JSON (open in `chrome://tracing` or Perfetto).
use eppi_bench::private::{one_query_chrome_trace, run, to_json, to_table, PrivateLoadConfig};
use eppi_bench::Scale;
use std::path::PathBuf;

fn main() {
    let (config, scale) = match Scale::from_env() {
        Scale::Quick => (PrivateLoadConfig::quick(), "quick"),
        Scale::Paper => (PrivateLoadConfig::paper(), "paper"),
    };
    let report = run(&config);
    eppi_bench::print_table(&to_table(&report));
    assert_eq!(
        report.mismatches, 0,
        "{} of {} cross-checked private answers diverged from plaintext",
        report.mismatches, report.answers_checked
    );
    println!(
        "equivalence: {} answers cross-checked, 0 mismatches",
        report.answers_checked
    );

    let out: PathBuf = std::env::var_os("EPPI_PRIVATE_OUT").map_or_else(
        || PathBuf::from("results/BENCH_private.json"),
        PathBuf::from,
    );
    if let Some(dir) = out.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create results directory");
        }
    }
    std::fs::write(&out, to_json(&report, scale)).expect("write BENCH_private.json");
    eprintln!("wrote {}", out.display());

    if let Some(path) = eppi_bench::trace_out_arg() {
        std::fs::write(&path, one_query_chrome_trace(&config)).expect("write trace JSON");
        eprintln!("wrote {}", path.display());
    }
}
