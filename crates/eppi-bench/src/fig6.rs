//! Fig. 6 — performance of the index-construction protocol: ε-PPI's
//! MPC-reduced approach versus the pure-MPC baseline.
//!
//! Paper setting (§V-B): FairplayMP-based prototype on 3–9 Emulab
//! machines, `c = 3`. Our substitution runs the same two protocols on
//! the threaded in-process runtime (one OS thread per party; see
//! DESIGN.md §4).
//!
//! * **Fig. 6a** — start-to-end execution time vs number of parties
//!   (3–9), single identity;
//! * **Fig. 6b** — compiled circuit size vs number of parties (3–61);
//! * **Fig. 6c** — execution time vs number of identities (1–1000),
//!   three parties.
//!
//! Expected shape: pure MPC grows super-linearly in the party count
//! while ε-PPI stays near-flat (its MPC part is pinned to `c`
//! coordinators); in 6c both grow with the identity count but ε-PPI
//! with a much smaller slope.

use crate::report::{ms, Table};
use eppi_core::model::{Epsilon, MembershipMatrix, OwnerId, ProviderId};
use eppi_core::policy::PolicyKind;
use eppi_mpc::circuits::{
    CountBelowCircuit, FixedPoint, MixDecisionCircuit, NaiveConstructionCircuit,
};
use eppi_protocol::construct::{construct_distributed, frequency_thresholds, ProtocolConfig};
use eppi_protocol::countbelow::Backend;
use eppi_protocol::pure_mpc::{construct_pure_mpc, PureMpcConfig};
use std::time::Instant;

/// Configuration of the Fig. 6 experiments.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6Config {
    /// Party counts of Fig. 6a.
    pub party_counts: Vec<usize>,
    /// Party counts of Fig. 6b (circuit size only, so it scales further).
    pub circuit_party_counts: Vec<usize>,
    /// Identity counts of Fig. 6c.
    pub identity_counts: Vec<usize>,
    /// Number of coordinators `c`.
    pub c: usize,
    /// ε assigned to every identity.
    pub epsilon: f64,
    /// Mixing-coin bits.
    pub coin_bits: usize,
    /// Repetitions per timing point.
    pub reps: usize,
    /// Base seed.
    pub seed: u64,
}

impl Fig6Config {
    /// The paper's configuration (3–9 machines for time, up to 61
    /// parties for circuit size, 1–1000 identities).
    pub fn paper() -> Self {
        Fig6Config {
            party_counts: vec![3, 5, 7, 9],
            circuit_party_counts: vec![3, 11, 21, 31, 41, 51, 61],
            identity_counts: vec![1, 10, 100, 1000],
            c: 3,
            epsilon: 0.5,
            coin_bits: 8,
            reps: 3,
            seed: 0x66a,
        }
    }

    /// A scaled-down configuration for tests and smoke runs.
    pub fn quick() -> Self {
        Fig6Config {
            party_counts: vec![3, 5],
            circuit_party_counts: vec![3, 9, 17],
            identity_counts: vec![1, 8],
            c: 3,
            epsilon: 0.5,
            coin_bits: 4,
            reps: 1,
            seed: 0x66a,
        }
    }
}

/// Builds a small network of `m` providers and `n` identities where each
/// identity is held by roughly a third of the providers.
fn network(m: usize, n: usize) -> MembershipMatrix {
    let mut matrix = MembershipMatrix::new(m, n);
    for j in 0..n {
        let holders = (m / 3).max(1);
        for p in 0..holders {
            matrix.set(ProviderId(((p + j) % m) as u32), OwnerId(j as u32), true);
        }
    }
    matrix
}

/// Runs Fig. 6a: execution time vs number of parties, single identity.
pub fn fig6a(cfg: &Fig6Config) -> Table {
    let mut table = Table::new(
        format!(
            "Fig. 6a — execution time (ms) vs parties, 1 identity, c={}",
            cfg.c
        ),
        vec!["parties".into(), "e-PPI".into(), "Pure-MPC".into()],
    );
    for &m in &cfg.party_counts {
        let matrix = network(m, 1);
        let epsilons = vec![Epsilon::saturating(cfg.epsilon)];
        let (eppi_t, pure_t) = time_both(&matrix, &epsilons, cfg);
        table.push_row(vec![m.to_string(), ms(eppi_t), ms(pure_t)]);
    }
    table
}

fn time_both(
    matrix: &MembershipMatrix,
    epsilons: &[Epsilon],
    cfg: &Fig6Config,
) -> (std::time::Duration, std::time::Duration) {
    let mut eppi_total = std::time::Duration::ZERO;
    let mut pure_total = std::time::Duration::ZERO;
    for rep in 0..cfg.reps {
        let proto = ProtocolConfig {
            c: cfg.c.min(matrix.providers()),
            coin_bits: cfg.coin_bits,
            backend: Backend::Threaded,
            seed: cfg.seed ^ rep as u64,
            ..ProtocolConfig::default()
        };
        let started = Instant::now();
        construct_distributed(matrix, epsilons, &proto).expect("e-PPI construction");
        eppi_total += started.elapsed();

        let pure = PureMpcConfig {
            coin_bits: cfg.coin_bits,
            backend: Backend::Threaded,
            seed: cfg.seed ^ rep as u64,
            // The paper's naive baseline keeps the whole β computation
            // (Eq. 5's division and square root) inside the circuit.
            in_circuit_beta: true,
            ..PureMpcConfig::default()
        };
        let started = Instant::now();
        construct_pure_mpc(matrix, epsilons, &pure).expect("pure-MPC construction");
        pure_total += started.elapsed();
    }
    (eppi_total / cfg.reps as u32, pure_total / cfg.reps as u32)
}

/// Fig. 6a under the *simulated* network: per-point simulated network
/// time (ms) instead of wall-clock — the latency-dominated view that
/// matches the paper's Emulab environment, where LAN round trips (not
/// CPU) set the curve.
pub fn fig6a_simulated(cfg: &Fig6Config) -> Table {
    let mut table = Table::new(
        format!(
            "Fig. 6a (simulated LAN) — network time (ms) vs parties, 1 identity, c={}",
            cfg.c
        ),
        vec!["parties".into(), "e-PPI".into(), "Pure-MPC".into()],
    );
    for &m in &cfg.party_counts {
        let matrix = network(m, 1);
        let epsilons = vec![Epsilon::saturating(cfg.epsilon)];
        let proto = ProtocolConfig {
            c: cfg.c.min(m),
            coin_bits: cfg.coin_bits,
            backend: Backend::Simulated,
            seed: cfg.seed,
            ..ProtocolConfig::default()
        };
        let eppi = construct_distributed(&matrix, &epsilons, &proto).expect("e-PPI");
        // ε-PPI simulated time: SecSumShare + both coordinator stages.
        let eppi_us = eppi.report.secsum.simulated_us
            + eppi.report.count_stage.simulated_us
            + eppi.report.mix_stage.simulated_us;

        // Pure baseline: one big simulated circuit over m parties.
        let thresholds = frequency_thresholds(PolicyKind::default(), &epsilons, m);
        let fp = eppi_mpc::circuits::FixedPoint { frac_bits: 8 };
        let a_fp = fp.encode(1.0 / cfg.epsilon - 1.0);
        let l_fp = fp.encode((1.0f64 / (1.0 - 0.9)).ln());
        let _ = &thresholds;
        let pure = eppi_mpc::circuits::NaiveConstructionCircuit::build(
            m,
            &[a_fp],
            l_fp,
            fp,
            cfg.coin_bits,
            0,
        );
        let inputs: Vec<Vec<bool>> = (0..m)
            .map(|p| pure.encode_party_input(&[p < m / 3 + 1], &[0]))
            .collect();
        let (_, net) = eppi_protocol::sim_gmw::execute_simulated(
            pure.circuit(),
            pure.layout(),
            &inputs,
            eppi_net::sim::LinkModel::LAN,
            cfg.seed,
        );
        table.push_row(vec![
            m.to_string(),
            format!("{:.2}", eppi_us / 1000.0),
            format!("{:.2}", net.simulated_us / 1000.0),
        ]);
    }
    table
}

/// Runs Fig. 6b: compiled circuit size vs number of parties (no
/// execution — the paper uses circuit size as the proxy that lets it
/// scale to 61 parties).
pub fn fig6b(cfg: &Fig6Config) -> Table {
    let mut table = Table::new(
        format!(
            "Fig. 6b — circuit size (gates) vs parties, 1 identity, c={}",
            cfg.c
        ),
        vec!["parties".into(), "e-PPI".into(), "Pure-MPC".into()],
    );
    let eps = vec![Epsilon::saturating(cfg.epsilon)];
    for &m in &cfg.circuit_party_counts {
        let thresholds = frequency_thresholds(PolicyKind::default(), &eps, m);
        let width = eppi_protocol::construct::share_width(m);
        // ε-PPI's MPC is always among c coordinators regardless of m.
        let count = CountBelowCircuit::build(cfg.c, &thresholds, width);
        let mix = MixDecisionCircuit::build(cfg.c, &thresholds, width, cfg.coin_bits, 0);
        let eppi_size = count.circuit().stats().total_gates + mix.circuit().stats().total_gates;
        let fp = FixedPoint { frac_bits: 8 };
        let a_fp = fp.encode(1.0 / cfg.epsilon - 1.0);
        let l_fp = fp.encode((1.0f64 / (1.0 - 0.9)).ln());
        let pure = NaiveConstructionCircuit::build(m, &[a_fp], l_fp, fp, cfg.coin_bits, 0);
        let pure_size = pure.circuit().stats().total_gates;
        table.push_row(vec![
            m.to_string(),
            eppi_size.to_string(),
            pure_size.to_string(),
        ]);
    }
    table
}

/// Runs Fig. 6c: execution time vs number of identities, `c`-party
/// network.
pub fn fig6c(cfg: &Fig6Config) -> Table {
    let mut table = Table::new(
        format!(
            "Fig. 6c — execution time (ms) vs identities, {} parties",
            cfg.c
        ),
        vec!["identities".into(), "e-PPI".into(), "Pure-MPC".into()],
    );
    for &n in &cfg.identity_counts {
        let matrix = network(cfg.c, n);
        let epsilons = vec![Epsilon::saturating(cfg.epsilon); n];
        let (eppi_t, pure_t) = time_both(&matrix, &epsilons, cfg);
        table.push_row(vec![n.to_string(), ms(eppi_t), ms(pure_t)]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6b_eppi_flat_pure_grows() {
        let cfg = Fig6Config::quick();
        let t = fig6b(&cfg);
        let first_eppi: usize = t.rows[0][1].parse().unwrap();
        let last_eppi: usize = t.rows.last().unwrap()[1].parse().unwrap();
        let first_pure: usize = t.rows[0][2].parse().unwrap();
        let last_pure: usize = t.rows.last().unwrap()[2].parse().unwrap();
        // ε-PPI's circuit grows only via the share width (log m); the
        // naive pure-MPC circuit carries the whole Eq. 5 computation and
        // grows further with every provider's input bits.
        assert!(last_pure > first_pure, "pure should grow: {t}");
        assert!(
            first_pure > 20 * first_eppi,
            "in-circuit β must dwarf the coordinator circuits: {t}"
        );
        assert!(
            last_pure - first_pure > 2 * (last_eppi - first_eppi),
            "pure must grow faster than ε-PPI in absolute gates: {t}"
        );
    }

    #[test]
    fn fig6a_sim_shows_latency_gap() {
        let cfg = Fig6Config::quick();
        let t = fig6a_simulated(&cfg);
        assert_eq!(t.rows.len(), cfg.party_counts.len());
        let eppi: f64 = t.rows[0][1].parse().unwrap();
        let pure: f64 = t.rows[0][2].parse().unwrap();
        assert!(
            pure > 10.0 * eppi,
            "latency-bound pure MPC must dwarf ε-PPI: {eppi} vs {pure}"
        );
    }

    #[test]
    fn fig6a_produces_rows() {
        let cfg = Fig6Config::quick();
        let t = fig6a(&cfg);
        assert_eq!(t.rows.len(), cfg.party_counts.len());
    }

    #[test]
    fn fig6c_produces_rows() {
        let cfg = Fig6Config::quick();
        let t = fig6c(&cfg);
        assert_eq!(t.rows.len(), cfg.identity_counts.len());
    }
}
