//! Plain-text experiment reporting: aligned tables that mirror the rows
//! and series of the paper's figures, plus CSV output for plotting.

use std::fmt;

/// A rendered experiment result: one table per figure/series set.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Table title (e.g. `"Fig. 5a — success rate vs identity frequency"`).
    pub title: String,
    /// Column headers; the first column is the x-axis.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: Vec<String>) -> Self {
        Table {
            title: title.into(),
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Renders the table as CSV (headers first).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "## {}", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let rendered: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            writeln!(f, "| {} |", rendered.join(" | "))
        };
        line(f, &self.headers)?;
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        writeln!(f, "|-{}-|", sep.join("-|-"))?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with three decimals (the paper's success-ratio
/// resolution).
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a duration in milliseconds with two decimals.
pub fn ms(d: std::time::Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new("demo", vec!["x".into(), "value".into()]);
        t.push_row(vec!["1".into(), "0.5".into()]);
        t.push_row(vec!["100".into(), "0.999".into()]);
        let s = t.to_string();
        assert!(s.contains("## demo"));
        assert!(s.contains("|   x | value |"));
        assert!(s.contains("| 100 | 0.999 |"));
    }

    #[test]
    fn csv_roundtrip() {
        let mut t = Table::new("demo", vec!["a".into(), "b".into()]);
        t.push_row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_checked() {
        let mut t = Table::new("demo", vec!["a".into()]);
        t.push_row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f3(0.5), "0.500");
        assert_eq!(ms(std::time::Duration::from_millis(1500)), "1500.00");
    }
}
