//! Private-vs-plaintext serve benchmark: what does oblivious
//! (2-server XOR-PIR) `QueryPPI` cost, and how much does batching buy
//! back?
//!
//! Four passes against one [`PrivateEngine`] (its replica A doubles as
//! the plaintext engine, so both modes run on identical worker pools
//! and the same sharded snapshot):
//!
//! * `plaintext_single` / `plaintext_batch` — the ordinary serve path,
//!   the baseline the privacy overhead is measured against.
//! * `private_single` — one XOR-PIR query pair per lookup: every query
//!   pays a full oblivious pass over the packed rows on each replica.
//! * `private_batch` — [`eppi_serve::PrivateClient::query_batch`]: one
//!   oblivious pass per replica serves the whole batch (row-outer,
//!   query-inner), the amortization Peer2PIR-style batching is built
//!   for.
//!
//! Every pass cross-checks a sample of its answers against the plain
//! [`PpiServer`] in-run (`answers_checked` / `mismatches` in the JSON),
//! so the report is also an end-to-end equivalence witness — CI asserts
//! `mismatches == 0` structurally instead of trusting wall-clock
//! numbers. The `amortization` section compares scanned words and qps
//! between the two private passes; scan volume comes from the engine's
//! `pir.scanned_words` counter, which moves identically whatever owners
//! the queries target.

use crate::report::Table;
use crate::serve::LatencySummary;
use eppi_core::model::{MembershipMatrix, OwnerId, PublishedIndex};
use eppi_index::server::PpiServer;
use eppi_serve::{default_shards, PrivateEngine, ServeConfig};
use eppi_telemetry::json::JsonValue;
use eppi_telemetry::{Registry, Snapshot};
use eppi_workload::presets::Preset;
use eppi_workload::queries::QueryWorkload;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// Cross-check every Nth operation's answers against the plain server.
const CHECK_EVERY: usize = 16;

/// Configuration of one private-serve benchmark run.
#[derive(Debug, Clone, PartialEq)]
pub struct PrivateLoadConfig {
    /// Network scale (providers/owners and membership skew).
    pub preset: Preset,
    /// Zipf popularity exponent of the query stream.
    pub skew: f64,
    /// Engine shards (= worker threads *per replica*).
    pub shards: usize,
    /// Bounded queue depth per shard.
    pub queue_depth: usize,
    /// Concurrent client threads.
    pub clients: usize,
    /// Plaintext queries per client (single-shot pass; the batch pass
    /// issues the same total in batches).
    pub plaintext_ops_per_client: usize,
    /// Private queries per client (single-shot pass; each one is a
    /// full oblivious scan on both replicas, so this is much smaller).
    pub private_ops_per_client: usize,
    /// Queries per batched request in both batch passes.
    pub batch_size: usize,
    /// Engine-side per-query instrumentation.
    pub telemetry: bool,
    /// Base RNG seed.
    pub seed: u64,
}

impl PrivateLoadConfig {
    /// Paper-scale run: the experiments' default network (10,000
    /// providers, 20,000 owners) under skewed traffic.
    pub fn paper() -> Self {
        let shards = default_shards();
        PrivateLoadConfig {
            preset: Preset::Default,
            skew: 1.0,
            shards,
            queue_depth: 256,
            clients: 4,
            plaintext_ops_per_client: 20_000,
            private_ops_per_client: 64,
            batch_size: 64,
            telemetry: true,
            seed: 0x9e1a7e,
        }
    }

    /// Scaled-down smoke run for tests and `EPPI_SCALE=quick`.
    pub fn quick() -> Self {
        PrivateLoadConfig {
            preset: Preset::Mini,
            skew: 1.0,
            shards: 2,
            queue_depth: 64,
            clients: 2,
            plaintext_ops_per_client: 500,
            private_ops_per_client: 32,
            batch_size: 16,
            telemetry: true,
            seed: 0x9e1a7e,
        }
    }
}

/// Throughput + latency + scan volume of one pass.
#[derive(Debug, Clone, PartialEq)]
pub struct PrivateLoadResult {
    /// Pass name (`plaintext_single`, `plaintext_batch`,
    /// `private_single`, `private_batch`).
    pub mode: String,
    /// Queries completed.
    pub ops: u64,
    /// Wall-clock time of the pass.
    pub elapsed: Duration,
    /// Completed queries per second.
    pub qps: f64,
    /// Per-request latency percentiles (a batch is one request).
    pub latency: LatencySummary,
    /// `u64` words obliviously scanned during the pass (both replicas;
    /// 0 for the plaintext passes).
    pub scanned_words: u64,
    /// Scanned words per completed query — the amortization lever.
    pub words_per_query: f64,
}

/// The batching story in one block: private single vs private batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Amortization {
    /// Oblivious words scanned per single-shot private query.
    pub single_words_per_query: f64,
    /// Oblivious words scanned per batched private query.
    pub batch_words_per_query: f64,
    /// `single / batch` scan-volume ratio (≈ batch size until the
    /// vector set outgrows cache).
    pub scan_ratio: f64,
    /// `batch qps / single qps`.
    pub qps_gain: f64,
}

/// Everything one invocation produces (feeds both table and JSON).
#[derive(Debug, Clone, PartialEq)]
pub struct PrivateLoadReport {
    /// The configuration that ran.
    pub config: PrivateLoadConfig,
    /// Providers in the served index.
    pub providers: usize,
    /// Owners in the served index.
    pub owners: usize,
    /// Packed words per provider row.
    pub words_per_row: usize,
    /// One entry per pass.
    pub passes: Vec<PrivateLoadResult>,
    /// The private-batching amortization summary.
    pub amortization: Amortization,
    /// Answers cross-checked against the plain server in-run.
    pub answers_checked: u64,
    /// Cross-checked answers that disagreed (must be 0).
    pub mismatches: u64,
    /// The run's full metric snapshot (`load.*`, `serve.*`, `pir.*`).
    pub telemetry: Snapshot,
}

fn build_index(config: &PrivateLoadConfig) -> PublishedIndex {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let matrix: MembershipMatrix = config.preset.build(&mut rng);
    let betas = vec![0.1; matrix.owners()];
    PublishedIndex::new(matrix, betas)
}

/// Runs one traced private query against a fresh engine and returns
/// its Chrome `trace_event` JSON (the `--trace-out` exemplar of
/// `bench_private`): client submit → PIR pair generation → both
/// replicas' scatter / per-shard scan / gather → recombine, one span
/// each (DESIGN.md §13).
pub fn one_query_chrome_trace(config: &PrivateLoadConfig) -> String {
    use eppi_trace::{chrome, TraceConfig, Tracer};

    let registry = Registry::new();
    let index = build_index(config);
    let tracer = Tracer::new(TraceConfig::default());
    let engine = PrivateEngine::start_traced(
        &index,
        ServeConfig {
            shards: config.shards,
            queue_depth: config.queue_depth,
            telemetry: config.telemetry,
            backend: eppi_core::rowstore::RowBackend::Dense,
        },
        &registry,
        tracer.clone(),
    );
    let mut client = engine.client(config.seed ^ 0x7bace);
    let _ = client.query(OwnerId(0));
    engine.shutdown();
    chrome::to_chrome_string(&tracer.collect())
}

/// Runs the four passes and assembles the report.
pub fn run(config: &PrivateLoadConfig) -> PrivateLoadReport {
    let registry = Registry::new();
    let index = build_index(config);
    let (providers, owners) = (index.matrix().providers(), index.matrix().owners());
    let engine = PrivateEngine::start_with_registry(
        &index,
        ServeConfig {
            shards: config.shards,
            queue_depth: config.queue_depth,
            telemetry: config.telemetry,
            backend: eppi_core::rowstore::RowBackend::Dense,
        },
        &registry,
    );
    let words_per_row = engine.replica_a().current().words_per_row();
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xabcd);
    let workload = QueryWorkload::new(owners, config.skew, &mut rng);
    let oracle = PpiServer::new(index.clone());

    let passes = vec![
        run_pass(
            &engine,
            &workload,
            &oracle,
            config,
            &registry,
            Mode::PlainSingle,
        ),
        run_pass(
            &engine,
            &workload,
            &oracle,
            config,
            &registry,
            Mode::PlainBatch,
        ),
        run_pass(
            &engine,
            &workload,
            &oracle,
            config,
            &registry,
            Mode::PrivateSingle,
        ),
        run_pass(
            &engine,
            &workload,
            &oracle,
            config,
            &registry,
            Mode::PrivateBatch,
        ),
    ];
    engine.shutdown();

    let per_query = |mode: &str| {
        passes
            .iter()
            .find(|p| p.mode == mode)
            .map_or(0.0, |p| p.words_per_query)
    };
    let qps = |mode: &str| {
        passes
            .iter()
            .find(|p| p.mode == mode)
            .map_or(0.0, |p| p.qps)
    };
    let single_words = per_query("private_single");
    let batch_words = per_query("private_batch");
    let amortization = Amortization {
        single_words_per_query: single_words,
        batch_words_per_query: batch_words,
        scan_ratio: if batch_words > 0.0 {
            single_words / batch_words
        } else {
            0.0
        },
        qps_gain: if qps("private_single") > 0.0 {
            qps("private_batch") / qps("private_single")
        } else {
            0.0
        },
    };
    PrivateLoadReport {
        config: config.clone(),
        providers,
        owners,
        words_per_row,
        passes,
        amortization,
        answers_checked: registry.counter("load.answers_checked", &[]).get(),
        mismatches: registry.counter("load.mismatches", &[]).get(),
        telemetry: registry.snapshot(),
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    PlainSingle,
    PlainBatch,
    PrivateSingle,
    PrivateBatch,
}

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::PlainSingle => "plaintext_single",
            Mode::PlainBatch => "plaintext_batch",
            Mode::PrivateSingle => "private_single",
            Mode::PrivateBatch => "private_batch",
        }
    }

    fn is_private(self) -> bool {
        matches!(self, Mode::PrivateSingle | Mode::PrivateBatch)
    }
}

fn run_pass(
    engine: &PrivateEngine,
    workload: &QueryWorkload,
    oracle: &PpiServer,
    config: &PrivateLoadConfig,
    registry: &Registry,
    mode: Mode,
) -> PrivateLoadResult {
    let name = mode.name();
    let ops_per_client = if mode.is_private() {
        config.private_ops_per_client
    } else {
        config.plaintext_ops_per_client
    };
    let batch = match mode {
        Mode::PlainBatch | Mode::PrivateBatch => config.batch_size.max(1),
        _ => 1,
    };
    let ops_counter = registry.counter("load.ops", &[("pass", name)]);
    let checked = registry.counter("load.answers_checked", &[]);
    let mismatches = registry.counter("load.mismatches", &[]);
    let words_before = engine.stats().pir_scanned_words();
    let started = Instant::now();
    std::thread::scope(|s| {
        for t in 0..config.clients {
            let mut lat = registry.recorder("load.latency_ns", &[("pass", name)]);
            let (ops_counter, checked, mismatches) = (&ops_counter, &checked, &mismatches);
            let plain = engine.replica_a().client();
            let mut private = engine.client(config.seed ^ (0xc11e00 + t as u64));
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(config.seed + 1 + t as u64);
                let mut done = 0usize;
                let mut requests = 0usize;
                while done < ops_per_client {
                    let owners: Vec<OwnerId> = workload.batch(batch, &mut rng);
                    let at = Instant::now();
                    let answers = match (mode.is_private(), batch) {
                        (false, 1) => vec![plain.query(owners[0])],
                        (false, _) => plain.query_batch(&owners),
                        (true, 1) => vec![private.query(owners[0])],
                        (true, _) => private.query_batch(&owners),
                    };
                    lat.record(at.elapsed().as_nanos() as u64);
                    done += batch;
                    requests += 1;
                    ops_counter.add(batch as u64);
                    // Sampled in-run equivalence check against the
                    // unsharded oracle.
                    if requests.is_multiple_of(CHECK_EVERY) {
                        for (&o, row) in owners.iter().zip(&answers) {
                            checked.inc();
                            if row != &oracle.query(o) {
                                mismatches.inc();
                            }
                        }
                    }
                }
            });
        }
    });
    let elapsed = started.elapsed();
    let ops = ops_counter.get();
    let scanned_words = engine.stats().pir_scanned_words() - words_before;
    let digest = registry
        .histogram("load.latency_ns", &[("pass", name)])
        .summary();
    PrivateLoadResult {
        mode: name.to_string(),
        ops,
        elapsed,
        qps: ops as f64 / elapsed.as_secs_f64(),
        latency: LatencySummary::from_histogram(&digest),
        scanned_words,
        words_per_query: if ops > 0 {
            scanned_words as f64 / ops as f64
        } else {
            0.0
        },
    }
}

/// Renders the report as the harness's usual aligned table.
pub fn to_table(report: &PrivateLoadReport) -> Table {
    let mut table = Table::new(
        format!(
            "eppi private serve — {} providers, {} owners ({} words/row), {} shards/replica",
            report.providers, report.owners, report.words_per_row, report.config.shards
        ),
        ["mode", "ops", "qps", "p50 us", "p99 us", "words/query"]
            .map(String::from)
            .to_vec(),
    );
    for pass in &report.passes {
        table.push_row(vec![
            pass.mode.clone(),
            pass.ops.to_string(),
            format!("{:.0}", pass.qps),
            format!("{:.1}", pass.latency.p50_us),
            format!("{:.1}", pass.latency.p99_us),
            format!("{:.0}", pass.words_per_query),
        ]);
    }
    table.push_row(vec![
        "amortization".into(),
        format!("checked {}", report.answers_checked),
        format!("mismatches {}", report.mismatches),
        format!("scan x{:.1}", report.amortization.scan_ratio),
        format!("qps x{:.1}", report.amortization.qps_gain),
        String::new(),
    ]);
    table
}

/// Serializes the report to the `BENCH_private.json` schema, including
/// the full `telemetry` snapshot section.
pub fn to_json(report: &PrivateLoadReport, scale: &str) -> String {
    let threads = std::thread::available_parallelism().map_or(0, |p| p.get());
    let passes = report
        .passes
        .iter()
        .map(|pass| {
            JsonValue::Object(vec![
                ("mode".into(), JsonValue::Str(pass.mode.clone())),
                ("ops".into(), JsonValue::UInt(pass.ops)),
                (
                    "elapsed_ms".into(),
                    JsonValue::Float(pass.elapsed.as_secs_f64() * 1e3),
                ),
                ("qps".into(), JsonValue::Float(pass.qps)),
                (
                    "latency_us".into(),
                    JsonValue::Object(vec![
                        ("p50".into(), JsonValue::Float(pass.latency.p50_us)),
                        ("p95".into(), JsonValue::Float(pass.latency.p95_us)),
                        ("p99".into(), JsonValue::Float(pass.latency.p99_us)),
                        ("max".into(), JsonValue::Float(pass.latency.max_us)),
                    ]),
                ),
                ("scanned_words".into(), JsonValue::UInt(pass.scanned_words)),
                (
                    "words_per_query".into(),
                    JsonValue::Float(pass.words_per_query),
                ),
            ])
        })
        .collect();
    let doc = JsonValue::Object(vec![
        ("bench".into(), JsonValue::Str("private_serve".into())),
        ("scale".into(), JsonValue::Str(scale.into())),
        (
            "machine".into(),
            JsonValue::Object(vec![
                ("os".into(), JsonValue::Str(std::env::consts::OS.into())),
                ("arch".into(), JsonValue::Str(std::env::consts::ARCH.into())),
                ("hardware_threads".into(), JsonValue::UInt(threads as u64)),
            ]),
        ),
        (
            "config".into(),
            JsonValue::Object(vec![
                ("providers".into(), JsonValue::UInt(report.providers as u64)),
                ("owners".into(), JsonValue::UInt(report.owners as u64)),
                (
                    "words_per_row".into(),
                    JsonValue::UInt(report.words_per_row as u64),
                ),
                (
                    "shards".into(),
                    JsonValue::UInt(report.config.shards as u64),
                ),
                (
                    "clients".into(),
                    JsonValue::UInt(report.config.clients as u64),
                ),
                (
                    "batch_size".into(),
                    JsonValue::UInt(report.config.batch_size as u64),
                ),
                ("zipf_s".into(), JsonValue::Float(report.config.skew)),
                ("telemetry".into(), JsonValue::Bool(report.config.telemetry)),
                ("seed".into(), JsonValue::UInt(report.config.seed)),
            ]),
        ),
        ("passes".into(), JsonValue::Array(passes)),
        (
            "amortization".into(),
            JsonValue::Object(vec![
                (
                    "single_words_per_query".into(),
                    JsonValue::Float(report.amortization.single_words_per_query),
                ),
                (
                    "batch_words_per_query".into(),
                    JsonValue::Float(report.amortization.batch_words_per_query),
                ),
                (
                    "scan_ratio".into(),
                    JsonValue::Float(report.amortization.scan_ratio),
                ),
                (
                    "qps_gain".into(),
                    JsonValue::Float(report.amortization.qps_gain),
                ),
            ]),
        ),
        (
            "equivalence".into(),
            JsonValue::Object(vec![
                (
                    "answers_checked".into(),
                    JsonValue::UInt(report.answers_checked),
                ),
                ("mismatches".into(), JsonValue::UInt(report.mismatches)),
            ]),
        ),
        ("telemetry".into(), report.telemetry.to_json_value()),
    ]);
    let mut out = doc.to_pretty();
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use eppi_telemetry::MetricValue;

    #[test]
    fn one_query_trace_exports_full_private_path() {
        let config = PrivateLoadConfig::quick();
        let text = one_query_chrome_trace(&config);
        let doc = JsonValue::parse(&text).expect("chrome trace parses");
        let events = doc
            .get("traceEvents")
            .and_then(JsonValue::as_array)
            .expect("traceEvents");
        let count = |name: &str| {
            events
                .iter()
                .filter(|e| e.get("name").and_then(JsonValue::as_str) == Some(name))
                .count()
        };
        assert_eq!(count("private.query"), 1);
        assert_eq!(count("pir.scatter"), 2);
        assert_eq!(count("pir.scan"), 2 * config.shards);
        assert_eq!(count("pir.recombine"), 1);
    }

    #[test]
    fn quick_run_is_equivalent_and_amortizes() {
        let mut config = PrivateLoadConfig::quick();
        config.plaintext_ops_per_client = 200;
        config.private_ops_per_client = 32;
        let report = run(&config);
        assert_eq!(report.passes.len(), 4);
        for pass in &report.passes {
            assert!(pass.ops > 0, "{} did no work", pass.mode);
            assert!(pass.qps > 0.0);
        }
        // The in-run cross-checks all agreed with the plain server.
        assert!(report.answers_checked > 0);
        assert_eq!(report.mismatches, 0);
        // Plaintext passes scan no PIR words; private ones scan the
        // whole database per pass, and batching cuts words/query by
        // roughly the batch size.
        assert_eq!(report.passes[0].scanned_words, 0);
        assert_eq!(report.passes[1].scanned_words, 0);
        let single = report.amortization.single_words_per_query;
        let batch = report.amortization.batch_words_per_query;
        assert!(single > 0.0 && batch > 0.0);
        assert!(
            report.amortization.scan_ratio > config.batch_size as f64 * 0.8,
            "batching did not amortize the scan: ratio {}",
            report.amortization.scan_ratio
        );
        // Each single private query scans the database once per replica.
        let db_words = (report.owners * report.words_per_row) as f64;
        assert!(
            (single - 2.0 * db_words).abs() < 1e-6,
            "single scan volume {single} != 2x database {db_words}"
        );
    }

    #[test]
    fn emitted_json_is_well_formed() {
        let mut config = PrivateLoadConfig::quick();
        config.plaintext_ops_per_client = 100;
        config.private_ops_per_client = 16;
        let report = run(&config);
        let json = to_json(&report, "quick");
        let doc = JsonValue::parse(&json).expect("BENCH_private.json must parse");
        for key in [
            "bench",
            "scale",
            "machine",
            "config",
            "passes",
            "amortization",
            "equivalence",
            "telemetry",
        ] {
            assert!(doc.get(key).is_some(), "missing {key}");
        }
        let snap = Snapshot::from_json_value(doc.get("telemetry").unwrap())
            .expect("telemetry round-trips");
        assert_eq!(snap, report.telemetry);
        // The pir.* counters made it into the snapshot and moved.
        for name in ["pir.scans", "pir.queries", "pir.scanned_words"] {
            match &snap.expect(name, &[]).unwrap().value {
                MetricValue::Counter(v) => assert!(*v > 0, "{name} never moved"),
                other => panic!("unexpected metric {other:?}"),
            }
        }
        let table = to_table(&report).to_string();
        assert!(table.contains("private_batch"));
    }
}
