//! Packed-vs-unpacked speedup of the GMW core and the pipelined
//! runtime's worker sweep (`results/BENCH_mpc.json`).
//!
//! The bit-packed core refactor claims a concrete win: evaluating the
//! Fig. 6 pure-MPC construction circuit with 64 wires per `u64` word
//! must beat the frozen pre-refactor `Vec<bool>` executor
//! ([`eppi_mpc::gmw_core::reference`]) at every paper-scale party
//! count. This module measures exactly that — same circuits, same
//! inputs, both paths verified to open identical outputs before the
//! timed runs — and emits the speedup table the CI smoke check asserts
//! over.
//!
//! The `pipeline` section measures the stage-pipelined multi-lane
//! runtime (DESIGN.md §15) under an emulated link latency: the same
//! CountBelow lane set is driven by the lockstep per-lane baseline and
//! by [`eppi_protocol::execute_pipelined`] at 1/2/4 workers. Keeping
//! several lanes in flight overlaps their latency waits, so throughput
//! must grow with the worker count even on one core — the wall-clock
//! claim the CI gate asserts (pipelined ≥ lockstep at 4 workers).

use crate::report::{f3, Table};
use eppi_mpc::circuits::{lambda_threshold, CountBelowCircuit, PureConstructionCircuit};
use eppi_mpc::gmw;
use eppi_mpc::gmw_core::reference;
use eppi_net::pipeline::LinkPacing;
use eppi_protocol::{execute_lanes_sequential, execute_pipelined, LaneSpec, PipelineConfig};
use eppi_telemetry::json::JsonValue;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Configuration of the packed-core benchmark.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MpcBenchConfig {
    /// Party counts `m` to sweep (the paper's Fig. 6 x-axis).
    pub party_counts: Vec<usize>,
    /// Identities per circuit (sets the per-layer gate width the
    /// packing amortizes over).
    pub identities: usize,
    /// Mixing-coin bits of the pure-MPC circuit.
    pub coin_bits: usize,
    /// Timed repetitions per point (best-of to shed scheduler noise).
    pub reps: usize,
    /// Base seed.
    pub seed: u64,
}

impl MpcBenchConfig {
    /// Paper-scale sweep: `m ∈ 3..=10` on Fig. 6-sized pure-MPC
    /// circuits.
    pub fn paper() -> Self {
        MpcBenchConfig {
            party_counts: (3..=10).collect(),
            identities: 128,
            coin_bits: 8,
            reps: 3,
            seed: 0xbe9c,
        }
    }

    /// Scaled-down smoke configuration.
    pub fn quick() -> Self {
        MpcBenchConfig {
            party_counts: vec![3, 5],
            identities: 2,
            coin_bits: 4,
            reps: 1,
            seed: 0xbe9c,
        }
    }
}

/// One measured point of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct MpcBenchRow {
    /// Number of parties `m`.
    pub parties: usize,
    /// AND gates of the compiled circuit.
    pub and_gates: usize,
    /// Total gates of the compiled circuit.
    pub total_gates: usize,
    /// Best wall time of the unpacked reference executor, milliseconds.
    pub unpacked_ms: f64,
    /// Best wall time of the packed core, milliseconds.
    pub packed_ms: f64,
    /// `unpacked_ms / packed_ms`.
    pub speedup: f64,
}

/// The full sweep result.
#[derive(Debug, Clone, PartialEq)]
pub struct MpcBenchReport {
    /// Configuration the sweep ran under.
    pub config: MpcBenchConfig,
    /// One row per party count.
    pub rows: Vec<MpcBenchRow>,
}

impl MpcBenchReport {
    /// Geometric mean of the per-point speedups.
    pub fn geomean_speedup(&self) -> f64 {
        if self.rows.is_empty() {
            return 1.0;
        }
        let log_sum: f64 = self.rows.iter().map(|r| r.speedup.ln()).sum();
        (log_sum / self.rows.len() as f64).exp()
    }
}

fn best_of<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let started = Instant::now();
        f();
        best = best.min(started.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Runs the sweep.
pub fn run(config: &MpcBenchConfig) -> MpcBenchReport {
    let n = config.identities;
    let mut rows = Vec::with_capacity(config.party_counts.len());
    for &m in &config.party_counts {
        // Fig. 6 pure-MPC construction circuit: m providers feed
        // membership bits and coins; threshold is the majority count.
        let thresholds = vec![m.div_ceil(2) as u64; n];
        let lam = lambda_threshold(0.5, config.coin_bits);
        let pc = PureConstructionCircuit::build(m, &thresholds, config.coin_bits, lam);
        let (circuit, layout) = (pc.circuit(), pc.layout());

        let mut in_rng = StdRng::seed_from_u64(config.seed ^ (m as u64) << 8);
        let inputs: Vec<Vec<bool>> = (0..m)
            .map(|_| {
                let membership: Vec<bool> = (0..n).map(|_| in_rng.gen()).collect();
                let coins: Vec<u64> = (0..n)
                    .map(|_| in_rng.gen_range(0..(1u64 << config.coin_bits)))
                    .collect();
                pc.encode_party_input(&membership, &coins)
            })
            .collect();

        // Equivalence guard before timing: both paths must open the
        // same bits as the cleartext evaluation.
        let clear = circuit.eval(&layout.flatten(&inputs));
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0xcafe);
        let (packed_out, _) = gmw::execute(circuit, layout, &inputs, &mut rng);
        let (unpacked_out, _) = reference::execute_unpacked(circuit, layout, &inputs, &mut rng);
        assert_eq!(packed_out, clear, "packed output diverged at m={m}");
        assert_eq!(unpacked_out, clear, "unpacked output diverged at m={m}");

        let unpacked_ms = best_of(config.reps, || {
            let mut rng = StdRng::seed_from_u64(config.seed ^ 0x11);
            let _ = reference::execute_unpacked(circuit, layout, &inputs, &mut rng);
        });
        let packed_ms = best_of(config.reps, || {
            let mut rng = StdRng::seed_from_u64(config.seed ^ 0x11);
            let _ = gmw::execute(circuit, layout, &inputs, &mut rng);
        });

        let stats = circuit.stats();
        rows.push(MpcBenchRow {
            parties: m,
            and_gates: stats.and_gates,
            total_gates: stats.total_gates,
            unpacked_ms,
            packed_ms,
            speedup: unpacked_ms / packed_ms.max(1e-9),
        });
    }
    MpcBenchReport {
        config: config.clone(),
        rows,
    }
}

/// Renders the sweep as a printable table.
pub fn to_table(report: &MpcBenchReport) -> Table {
    let mut table = Table::new(
        "BENCH_mpc — packed GMW core vs unpacked reference (pure-MPC circuit)",
        [
            "m",
            "and_gates",
            "total_gates",
            "unpacked_ms",
            "packed_ms",
            "speedup",
        ]
        .map(String::from)
        .to_vec(),
    );
    for r in &report.rows {
        table.push_row(vec![
            r.parties.to_string(),
            r.and_gates.to_string(),
            r.total_gates.to_string(),
            f3(r.unpacked_ms),
            f3(r.packed_ms),
            f3(r.speedup),
        ]);
    }
    table
}

/// Configuration of the pipelined-runtime worker sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineBenchConfig {
    /// Independent CountBelow lanes per run (batch columns in flight).
    pub lanes: usize,
    /// Identities (columns) per lane circuit.
    pub columns_per_lane: usize,
    /// Coordinator count per lane.
    pub parties: usize,
    /// Emulated one-way frame latency, microseconds.
    pub latency_us: u64,
    /// Worker counts to sweep.
    pub worker_counts: Vec<usize>,
    /// Timed repetitions per point (best-of).
    pub reps: usize,
    /// Base seed.
    pub seed: u64,
}

impl PipelineBenchConfig {
    /// Paper-scale sweep: 16 lanes of 8 columns among 3 coordinators
    /// under a 200 µs link.
    pub fn paper() -> Self {
        PipelineBenchConfig {
            lanes: 16,
            columns_per_lane: 8,
            parties: 3,
            latency_us: 200,
            worker_counts: vec![1, 2, 4],
            reps: 3,
            seed: 0x919e,
        }
    }

    /// Scaled-down smoke configuration.
    pub fn quick() -> Self {
        PipelineBenchConfig {
            lanes: 4,
            columns_per_lane: 2,
            parties: 3,
            latency_us: 100,
            worker_counts: vec![1, 2, 4],
            reps: 1,
            seed: 0x919e,
        }
    }
}

/// One measured point of the worker sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineBenchRow {
    /// Pipeline worker threads per party.
    pub workers: usize,
    /// Best wall time of the pipelined run, milliseconds.
    pub wall_ms: f64,
    /// `lockstep_ms / wall_ms`.
    pub speedup_vs_lockstep: f64,
}

/// The pipelined-runtime sweep result.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineBenchReport {
    /// Configuration the sweep ran under.
    pub config: PipelineBenchConfig,
    /// Best wall time of the lockstep per-lane baseline, milliseconds.
    pub lockstep_ms: f64,
    /// One row per worker count, in sweep order.
    pub rows: Vec<PipelineBenchRow>,
}

impl PipelineBenchReport {
    /// Wall-clock speedup of the widest worker count over one worker.
    pub fn speedup_4w_vs_1w(&self) -> f64 {
        let one = self
            .rows
            .iter()
            .find(|r| r.workers == 1)
            .map_or(0.0, |r| r.wall_ms);
        let widest = self
            .rows
            .iter()
            .max_by_key(|r| r.workers)
            .map_or(f64::INFINITY, |r| r.wall_ms);
        one / widest.max(1e-9)
    }
}

/// Runs the pipelined-runtime worker sweep.
///
/// All lanes share one CountBelow circuit shape but carry independent
/// inputs and triple seeds. Before timing, the pipelined outputs are
/// checked bit-for-bit against the lockstep baseline — the equivalence
/// the cross-backend proptests prove at random; here it guards the
/// numbers actually published.
pub fn run_pipeline(config: &PipelineBenchConfig) -> PipelineBenchReport {
    let width = 10usize;
    let thresholds = vec![1u64 << (width - 1); config.columns_per_lane];
    let cc = CountBelowCircuit::build(config.parties, &thresholds, width);
    let mut in_rng = StdRng::seed_from_u64(config.seed ^ 0x1a9e5);
    let inputs: Vec<Vec<Vec<bool>>> = (0..config.lanes)
        .map(|_| {
            (0..config.parties)
                .map(|_| {
                    let shares: Vec<u64> = (0..config.columns_per_lane)
                        .map(|_| in_rng.gen_range(0..(1u64 << width)))
                        .collect();
                    cc.encode_party_input(&shares)
                })
                .collect()
        })
        .collect();
    let lanes: Vec<LaneSpec> = inputs
        .iter()
        .enumerate()
        .map(|(i, lane_inputs)| LaneSpec {
            circuit: cc.circuit(),
            layout: cc.layout(),
            inputs: lane_inputs,
            seed: config.seed ^ (i as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        })
        .collect();
    let pacing = LinkPacing {
        latency: Duration::from_micros(config.latency_us),
    };

    // Equivalence guard before timing.
    let (baseline_outs, _) = execute_lanes_sequential(&lanes, None);
    let (pipe_outs, _) = execute_pipelined(&lanes, &PipelineConfig::with_workers(2))
        .expect("in-process pipeline cannot lose a party");
    assert_eq!(
        baseline_outs, pipe_outs,
        "pipelined outputs diverged from the lockstep baseline"
    );

    let lockstep_ms = best_of(config.reps, || {
        let _ = execute_lanes_sequential(&lanes, Some(pacing));
    });
    let rows = config
        .worker_counts
        .iter()
        .map(|&workers| {
            let cfg = PipelineConfig {
                pacing: Some(pacing),
                ..PipelineConfig::with_workers(workers)
            };
            let wall_ms = best_of(config.reps, || {
                let _ = execute_pipelined(&lanes, &cfg).expect("pipelined run");
            });
            PipelineBenchRow {
                workers,
                wall_ms,
                speedup_vs_lockstep: lockstep_ms / wall_ms.max(1e-9),
            }
        })
        .collect();
    PipelineBenchReport {
        config: config.clone(),
        lockstep_ms,
        rows,
    }
}

/// Renders the worker sweep as a printable table.
pub fn pipeline_to_table(report: &PipelineBenchReport) -> Table {
    let mut table = Table::new(
        "BENCH_mpc pipeline — stage-pipelined lanes vs lockstep baseline",
        ["workers", "wall_ms", "speedup_vs_lockstep"]
            .map(String::from)
            .to_vec(),
    );
    for r in &report.rows {
        table.push_row(vec![
            r.workers.to_string(),
            f3(r.wall_ms),
            f3(r.speedup_vs_lockstep),
        ]);
    }
    table
}

fn pipeline_to_json(report: &PipelineBenchReport) -> JsonValue {
    let rows: Vec<JsonValue> = report
        .rows
        .iter()
        .map(|r| {
            JsonValue::Object(vec![
                ("workers".into(), JsonValue::UInt(r.workers as u64)),
                ("wall_ms".into(), JsonValue::Float(r.wall_ms)),
                (
                    "speedup_vs_lockstep".into(),
                    JsonValue::Float(r.speedup_vs_lockstep),
                ),
            ])
        })
        .collect();
    JsonValue::Object(vec![
        ("lanes".into(), JsonValue::UInt(report.config.lanes as u64)),
        (
            "columns_per_lane".into(),
            JsonValue::UInt(report.config.columns_per_lane as u64),
        ),
        (
            "parties".into(),
            JsonValue::UInt(report.config.parties as u64),
        ),
        (
            "latency_us".into(),
            JsonValue::UInt(report.config.latency_us),
        ),
        ("lockstep_ms".into(), JsonValue::Float(report.lockstep_ms)),
        ("rows".into(), JsonValue::Array(rows)),
        (
            "speedup_4w_vs_1w".into(),
            JsonValue::Float(report.speedup_4w_vs_1w()),
        ),
    ])
}

/// Serializes the sweep to the `results/BENCH_mpc.json` document.
pub fn to_json(report: &MpcBenchReport, pipeline: &PipelineBenchReport, scale: &str) -> String {
    let rows: Vec<JsonValue> = report
        .rows
        .iter()
        .map(|r| {
            JsonValue::Object(vec![
                ("parties".into(), JsonValue::UInt(r.parties as u64)),
                ("and_gates".into(), JsonValue::UInt(r.and_gates as u64)),
                ("total_gates".into(), JsonValue::UInt(r.total_gates as u64)),
                ("unpacked_ms".into(), JsonValue::Float(r.unpacked_ms)),
                ("packed_ms".into(), JsonValue::Float(r.packed_ms)),
                ("speedup".into(), JsonValue::Float(r.speedup)),
            ])
        })
        .collect();
    JsonValue::Object(vec![
        (
            "bench".into(),
            JsonValue::Str("mpc_packed_vs_unpacked".into()),
        ),
        ("scale".into(), JsonValue::Str(scale.into())),
        (
            "identities".into(),
            JsonValue::UInt(report.config.identities as u64),
        ),
        (
            "coin_bits".into(),
            JsonValue::UInt(report.config.coin_bits as u64),
        ),
        ("reps".into(), JsonValue::UInt(report.config.reps as u64)),
        ("rows".into(), JsonValue::Array(rows)),
        (
            "speedup_geomean".into(),
            JsonValue::Float(report.geomean_speedup()),
        ),
        ("pipeline".into(), pipeline_to_json(pipeline)),
    ])
    .to_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_produces_wellformed_rows_and_json() {
        let report = run(&MpcBenchConfig::quick());
        assert_eq!(report.rows.len(), 2);
        for r in &report.rows {
            assert!(r.and_gates > 0);
            assert!(r.unpacked_ms > 0.0 && r.packed_ms > 0.0);
            assert!(r.speedup > 0.0);
        }
        let pipeline = run_pipeline(&PipelineBenchConfig::quick());
        assert_eq!(pipeline.rows.len(), 3);
        for r in &pipeline.rows {
            assert!(r.wall_ms > 0.0 && r.speedup_vs_lockstep > 0.0);
        }
        let json = to_json(&report, &pipeline, "quick");
        let doc = JsonValue::parse(&json).expect("well-formed JSON");
        assert_eq!(
            doc.get("bench").and_then(JsonValue::as_str),
            Some("mpc_packed_vs_unpacked")
        );
        assert_eq!(
            doc.get("rows")
                .and_then(JsonValue::as_array)
                .map(<[_]>::len),
            Some(2)
        );
        assert!(doc
            .get("speedup_geomean")
            .and_then(JsonValue::as_f64)
            .is_some());
        let pipe_doc = doc.get("pipeline").expect("pipeline section");
        assert_eq!(
            pipe_doc
                .get("rows")
                .and_then(JsonValue::as_array)
                .map(<[_]>::len),
            Some(3)
        );
        assert!(pipe_doc
            .get("speedup_4w_vs_1w")
            .and_then(JsonValue::as_f64)
            .is_some());
    }

    /// Even the quick lane set must overlap its latency waits: more
    /// workers in flight may never make wall clock meaningfully worse,
    /// and the widest sweep point must beat the lockstep baseline.
    #[test]
    fn pipeline_overlap_beats_the_lockstep_baseline() {
        let report = run_pipeline(&PipelineBenchConfig::quick());
        let widest = report.rows.iter().max_by_key(|r| r.workers).unwrap();
        assert!(
            widest.speedup_vs_lockstep >= 1.0,
            "4-worker pipeline ({:.3} ms) slower than lockstep ({:.3} ms)",
            widest.wall_ms,
            report.lockstep_ms
        );
    }
}
