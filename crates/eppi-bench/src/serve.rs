//! Load-test harness for the `eppi-serve` front-end.
//!
//! Drives a [`ServeEngine`] with Zipf-skewed `QueryPPI` traffic (the
//! same popularity model as the workload crate's query streams) in two
//! standard modes:
//!
//! * **closed loop** — each client thread issues its next query the
//!   moment the previous one completes; measures peak sustainable
//!   throughput and in-service latency.
//! * **open loop** — arrivals are scheduled at a fixed target rate
//!   regardless of completions; latency is measured from the *scheduled*
//!   arrival, so queueing delay under overload is visible (closed-loop
//!   numbers hide it — coordinated omission).
//!
//! Measurement runs through `eppi-telemetry`: every run owns a fresh
//! [`Registry`]; client threads record request latency through
//! per-thread recorders into the `load.latency_ns{pass}` histogram
//! family, the engine reports its own `serve.*` families into the same
//! registry, and a small [`construct_distributed_with_registry`] probe
//! contributes per-phase construction timings. The whole snapshot is
//! embedded as the `telemetry` section of `results/BENCH_serve.json`
//! (override the path with `EPPI_SERVE_OUT`); reported percentiles are
//! read back from the shared histograms, so the JSON's `passes` and
//! `telemetry` sections can never disagree.
//!
//! Setting [`ServeLoadConfig::telemetry`] to `false` (the
//! `EPPI_TELEMETRY=off` knob of the `serve_load` binary) disables the
//! engine-side per-query instrumentation while keeping the harness's
//! own measurements, which is how the read-path overhead is measured
//! (DESIGN.md §8).

use crate::report::Table;
use eppi_core::model::{Epsilon, MembershipMatrix, PublishedIndex};
use eppi_core::rowstore::RowBackend;
use eppi_protocol::construct::{construct_distributed_with_registry, ProtocolConfig};
use eppi_serve::{default_shards, ServeConfig, ServeEngine};
use eppi_telemetry::json::JsonValue;
use eppi_telemetry::{HistogramSummary, Registry, Snapshot};
use eppi_trace::{TraceConfig, TraceLog, Tracer};
use eppi_workload::presets::Preset;
use eppi_workload::queries::QueryWorkload;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Configuration of one serve load run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeLoadConfig {
    /// Network scale (providers/owners and membership skew).
    pub preset: Preset,
    /// Zipf popularity exponent of the query stream.
    pub skew: f64,
    /// Engine shards (= worker threads).
    pub shards: usize,
    /// Bounded queue depth per shard.
    pub queue_depth: usize,
    /// Concurrent client threads.
    pub clients: usize,
    /// Closed-loop queries per client.
    pub ops_per_client: usize,
    /// Queries per batched request in the batch pass.
    pub batch_size: usize,
    /// Open-loop target rate (total queries/second).
    pub open_target_qps: f64,
    /// Open-loop run length.
    pub open_duration: Duration,
    /// Engine-side per-query instrumentation (`false` = overhead
    /// baseline; harness-side measurement stays on).
    pub telemetry: bool,
    /// Physical row-storage backend of the served snapshot.
    pub backend: RowBackend,
    /// Base RNG seed.
    pub seed: u64,
}

impl ServeLoadConfig {
    /// Paper-scale run: the experiments' default network (10,000
    /// providers, 20,000 owners) under skewed traffic.
    pub fn paper() -> Self {
        let shards = default_shards();
        ServeLoadConfig {
            preset: Preset::Default,
            skew: 1.0,
            shards,
            queue_depth: 1024,
            clients: 2 * shards,
            ops_per_client: 20_000,
            batch_size: 64,
            open_target_qps: 50_000.0,
            open_duration: Duration::from_secs(2),
            telemetry: true,
            backend: RowBackend::Dense,
            seed: 0x5e12e,
        }
    }

    /// Scaled-down smoke run for tests and `EPPI_SCALE=quick`.
    pub fn quick() -> Self {
        ServeLoadConfig {
            preset: Preset::Mini,
            skew: 1.0,
            shards: 2,
            queue_depth: 64,
            clients: 4,
            ops_per_client: 1_000,
            batch_size: 16,
            open_target_qps: 5_000.0,
            open_duration: Duration::from_millis(200),
            telemetry: true,
            backend: RowBackend::Dense,
            seed: 0x5e12e,
        }
    }
}

/// Latency percentiles in microseconds, from one run's samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Median.
    pub p50_us: f64,
    /// 95th percentile.
    pub p95_us: f64,
    /// 99th percentile.
    pub p99_us: f64,
    /// Worst observed.
    pub max_us: f64,
}

impl LatencySummary {
    /// Summarizes raw nanosecond samples (sorted internally). Exact;
    /// used by tests as the ground truth the histogram path must match
    /// within its documented error bound.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn from_nanos(mut samples: Vec<u64>) -> Self {
        assert!(!samples.is_empty(), "no latency samples recorded");
        samples.sort_unstable();
        let pick = |q: f64| {
            let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
            samples[rank - 1] as f64 / 1e3
        };
        LatencySummary {
            p50_us: pick(0.50),
            p95_us: pick(0.95),
            p99_us: pick(0.99),
            max_us: *samples.last().unwrap() as f64 / 1e3,
        }
    }

    /// Reads the percentiles from a telemetry histogram digest
    /// (nanosecond domain), as published in the run's snapshot.
    ///
    /// # Panics
    ///
    /// Panics if the histogram is empty.
    pub fn from_histogram(digest: &HistogramSummary) -> Self {
        assert!(digest.count > 0, "no latency samples recorded");
        LatencySummary {
            p50_us: digest.p50 as f64 / 1e3,
            p95_us: digest.p95 as f64 / 1e3,
            p99_us: digest.p99 as f64 / 1e3,
            max_us: digest.max as f64 / 1e3,
        }
    }
}

/// Throughput + latency of one load pass.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadResult {
    /// Pass name (`closed_loop`, `closed_loop_batch`, `open_loop`).
    pub mode: String,
    /// Queries completed.
    pub ops: u64,
    /// Wall-clock time of the pass.
    pub elapsed: Duration,
    /// Completed queries per second.
    pub qps: f64,
    /// Latency percentiles (from the pass's shared histogram).
    pub latency: LatencySummary,
}

/// Traced-vs-untraced closed-loop comparison (DESIGN.md §13): the same
/// closed-loop pass against a fresh engine without a tracer and against
/// one with every request under an `eppi-trace` span.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceOverhead {
    /// Closed-loop pass with tracing off.
    pub untraced: LoadResult,
    /// The same pass with every request traced.
    pub traced: LoadResult,
    /// Throughput lost to tracing, in percent of the untraced qps
    /// (negative when the traced pass happened to run faster).
    pub overhead_pct: f64,
    /// Span/instant events surviving in the rings after the traced pass.
    pub events: u64,
    /// Events overwritten by ring overflow during the traced pass.
    pub dropped: u64,
}

/// Everything one invocation produces (feeds both table and JSON).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeLoadReport {
    /// The configuration that ran.
    pub config: ServeLoadConfig,
    /// Providers in the served index.
    pub providers: usize,
    /// Owners in the served index.
    pub owners: usize,
    /// One entry per pass.
    pub passes: Vec<LoadResult>,
    /// The run's full metric snapshot: the harness's `load.*` families,
    /// the engine's `serve.*` families, and the construction probe's
    /// `construct.*`/`secsum.*` families.
    pub telemetry: Snapshot,
    /// Traced-vs-untraced overhead comparison, when measured (the
    /// `serve_load` binary always measures it; [`run`] leaves it out).
    pub trace: Option<TraceOverhead>,
    /// Backend-vs-owner-scale sweep, when measured (the `serve_load`
    /// binary runs it; [`run`] leaves it out).
    pub scale: Option<crate::scale::ScaleReport>,
}

fn build_index(config: &ServeLoadConfig) -> PublishedIndex {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let matrix: MembershipMatrix = config.preset.build(&mut rng);
    let betas = vec![0.1; matrix.owners()];
    PublishedIndex::new(matrix, betas)
}

/// A modest fixed-size distributed construction, so every serve report
/// also carries per-phase construction timings (the paper's Fig. 6
/// breakdown) in its telemetry section. Deliberately independent of the
/// load preset: the probe measures protocol phases, not serve scale.
fn construction_probe(registry: &Registry, seed: u64) {
    let providers = 120;
    let mut rng = StdRng::seed_from_u64(seed ^ 0xc0de);
    let mut matrix = MembershipMatrix::new(providers, 24);
    for owner in matrix.owner_ids() {
        let freq = rng.gen_range(1..providers);
        for p in 0..freq {
            matrix.set(eppi_core::model::ProviderId(p as u32), owner, true);
        }
    }
    let epsilons = vec![Epsilon::new(0.5).expect("valid epsilon"); 24];
    let config = ProtocolConfig {
        seed,
        ..ProtocolConfig::default()
    };
    construct_distributed_with_registry(&matrix, &epsilons, &config, registry)
        .expect("construction probe");
}

/// Runs all three passes against a freshly built engine, plus one
/// snapshot refresh and the construction probe, and captures the run's
/// whole telemetry snapshot.
pub fn run(config: &ServeLoadConfig) -> ServeLoadReport {
    let registry = Registry::new();
    let index = build_index(config);
    let (providers, owners) = (index.matrix().providers(), index.matrix().owners());
    let engine = ServeEngine::start_with_registry(
        &index,
        ServeConfig {
            shards: config.shards,
            queue_depth: config.queue_depth,
            telemetry: config.telemetry,
            backend: config.backend,
        },
        &registry,
    );
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xabcd);
    let workload = QueryWorkload::new(owners, config.skew, &mut rng);

    let passes = vec![
        closed_loop(&engine, &workload, config, 1, &registry),
        closed_loop(
            &engine,
            &workload,
            config,
            config.batch_size.max(1),
            &registry,
        ),
        open_loop(&engine, &workload, config, &registry),
    ];
    // One re-publication so the snapshot covers the refresh path
    // (`serve.refreshes`, `serve.install_lag_ns`).
    engine.refresh(&index);
    construction_probe(&registry, config.seed);
    engine.shutdown();
    ServeLoadReport {
        config: config.clone(),
        providers,
        owners,
        passes,
        telemetry: registry.snapshot(),
        trace: None,
        scale: None,
    }
}

/// Measures the closed-loop cost of tracing: the same closed-loop
/// pass against an untraced engine and against an engine whose every
/// request runs under an `eppi-trace` span, on one index and workload.
/// Returns the comparison plus the last traced pass's collected
/// [`TraceLog`], so callers can export it (`--trace-out`).
///
/// Machine noise between two single passes routinely reaches the same
/// magnitude as the tracing cost itself, so this runs
/// [`TRACE_OVERHEAD_ROUNDS`] interleaved untraced/traced pairs and
/// compares the best pass of each mode: peak throughput is far more
/// stable than any individual pass.
pub fn trace_overhead(config: &ServeLoadConfig) -> (TraceOverhead, TraceLog) {
    // A quick-scale pass lasts ~10 ms — too short for a stable qps
    // reading — so the overhead passes run at least 5000 ops/client.
    let mut config = config.clone();
    config.ops_per_client = config.ops_per_client.max(5_000);
    let config = &config;
    let index = build_index(config);
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xabcd);
    let workload = QueryWorkload::new(index.matrix().owners(), config.skew, &mut rng);
    let serve_config = ServeConfig {
        shards: config.shards,
        queue_depth: config.queue_depth,
        telemetry: config.telemetry,
        backend: config.backend,
    };

    let mut untraced: Option<LoadResult> = None;
    let mut traced: Option<LoadResult> = None;
    let mut last_tracer = Tracer::disabled();
    for _ in 0..TRACE_OVERHEAD_ROUNDS {
        let registry = Registry::new();
        let engine = ServeEngine::start_with_registry(&index, serve_config, &registry);
        let mut pass = closed_loop(&engine, &workload, config, 1, &registry);
        engine.shutdown();
        pass.mode = "closed_loop_untraced".into();
        if untraced.as_ref().is_none_or(|best| pass.qps > best.qps) {
            untraced = Some(pass);
        }

        let registry = Registry::new();
        let tracer = Tracer::new(TraceConfig::default());
        let engine = ServeEngine::start_traced(&index, serve_config, &registry, tracer.clone());
        let mut pass = closed_loop(&engine, &workload, config, 1, &registry);
        engine.shutdown();
        pass.mode = "closed_loop_traced".into();
        if traced.as_ref().is_none_or(|best| pass.qps > best.qps) {
            traced = Some(pass);
        }
        last_tracer = tracer;
    }
    let untraced = untraced.expect("TRACE_OVERHEAD_ROUNDS >= 1");
    let traced = traced.expect("TRACE_OVERHEAD_ROUNDS >= 1");

    let log = last_tracer.collect();
    let overhead = TraceOverhead {
        overhead_pct: (untraced.qps - traced.qps) / untraced.qps * 100.0,
        events: log.total_events() as u64,
        dropped: log.total_dropped(),
        untraced,
        traced,
    };
    (overhead, log)
}

/// Interleaved untraced/traced pass pairs [`trace_overhead`] runs; the
/// reported numbers are each mode's best pass.
pub const TRACE_OVERHEAD_ROUNDS: usize = 4;

/// Builds the pass result from the shared per-pass histogram and the
/// ops counter — the same numbers the exported snapshot carries.
fn pass_result(registry: &Registry, mode: &str, elapsed: Duration) -> LoadResult {
    let ops = registry.counter("load.ops", &[("pass", mode)]).get();
    let digest = registry
        .histogram("load.latency_ns", &[("pass", mode)])
        .summary();
    LoadResult {
        mode: mode.to_string(),
        ops,
        elapsed,
        qps: ops as f64 / elapsed.as_secs_f64(),
        latency: LatencySummary::from_histogram(&digest),
    }
}

fn closed_loop(
    engine: &ServeEngine,
    workload: &QueryWorkload,
    config: &ServeLoadConfig,
    batch: usize,
    registry: &Registry,
) -> LoadResult {
    let mode = if batch == 1 {
        "closed_loop"
    } else {
        "closed_loop_batch"
    };
    let ops_counter = registry.counter("load.ops", &[("pass", mode)]);
    let started = Instant::now();
    std::thread::scope(|s| {
        for t in 0..config.clients {
            let client = engine.client();
            let mut lat = registry.recorder("load.latency_ns", &[("pass", mode)]);
            let ops_counter = &ops_counter;
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(config.seed + 1 + t as u64);
                let mut done = 0usize;
                while done < config.ops_per_client {
                    let at = Instant::now();
                    if batch == 1 {
                        let _ = client.query(workload.sample(&mut rng));
                        done += 1;
                        ops_counter.inc();
                    } else {
                        let owners = workload.batch(batch, &mut rng);
                        let _ = client.query_batch(&owners);
                        done += batch;
                        ops_counter.add(batch as u64);
                    }
                    lat.record(at.elapsed().as_nanos() as u64);
                }
                // Recorder drop flushes the tail into the shared family.
            });
        }
    });
    pass_result(registry, mode, started.elapsed())
}

pub(crate) fn open_loop(
    engine: &ServeEngine,
    workload: &QueryWorkload,
    config: &ServeLoadConfig,
    registry: &Registry,
) -> LoadResult {
    // Each client owns an even slice of the target rate and schedules
    // its own arrivals; latency runs from the scheduled arrival, so
    // falling behind schedule (queueing) is charged to the service.
    let mode = "open_loop";
    let per_client = config.open_target_qps / config.clients.max(1) as f64;
    let interval = Duration::from_secs_f64(1.0 / per_client.max(1.0));
    let ops_counter = registry.counter("load.ops", &[("pass", mode)]);
    let started = Instant::now();
    std::thread::scope(|s| {
        for t in 0..config.clients {
            let client = engine.client();
            let mut lat = registry.recorder("load.latency_ns", &[("pass", mode)]);
            let ops_counter = &ops_counter;
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(config.seed + 101 + t as u64);
                let mut k = 0u32;
                loop {
                    let scheduled = interval * k;
                    if scheduled >= config.open_duration {
                        break;
                    }
                    let now = started.elapsed();
                    if now < scheduled {
                        std::thread::sleep(scheduled - now);
                    }
                    let _ = client.query(workload.sample(&mut rng));
                    let completed = started.elapsed();
                    lat.record((completed.saturating_sub(scheduled)).as_nanos() as u64);
                    ops_counter.inc();
                    k += 1;
                }
            });
        }
    });
    pass_result(registry, mode, started.elapsed())
}

/// Renders the report as the harness's usual aligned table.
pub fn to_table(report: &ServeLoadReport) -> Table {
    let mut table = Table::new(
        format!(
            "eppi-serve load — {} providers, {} owners, {} shards, {} clients",
            report.providers, report.owners, report.config.shards, report.config.clients
        ),
        ["mode", "ops", "qps", "p50 us", "p95 us", "p99 us", "max us"]
            .map(String::from)
            .to_vec(),
    );
    for pass in &report.passes {
        table.push_row(vec![
            pass.mode.clone(),
            pass.ops.to_string(),
            format!("{:.0}", pass.qps),
            format!("{:.1}", pass.latency.p50_us),
            format!("{:.1}", pass.latency.p95_us),
            format!("{:.1}", pass.latency.p99_us),
            format!("{:.1}", pass.latency.max_us),
        ]);
    }
    table
}

/// Serializes the report to the `BENCH_serve.json` schema, including
/// the full `telemetry` snapshot section (see README "Reading the
/// metrics block").
pub fn to_json(report: &ServeLoadReport, scale: &str) -> String {
    let threads = std::thread::available_parallelism().map_or(0, |p| p.get());
    let passes = report
        .passes
        .iter()
        .map(|pass| {
            JsonValue::Object(vec![
                ("mode".into(), JsonValue::Str(pass.mode.clone())),
                ("ops".into(), JsonValue::UInt(pass.ops)),
                (
                    "elapsed_ms".into(),
                    JsonValue::Float(pass.elapsed.as_secs_f64() * 1e3),
                ),
                ("qps".into(), JsonValue::Float(pass.qps)),
                (
                    "latency_us".into(),
                    JsonValue::Object(vec![
                        ("p50".into(), JsonValue::Float(pass.latency.p50_us)),
                        ("p95".into(), JsonValue::Float(pass.latency.p95_us)),
                        ("p99".into(), JsonValue::Float(pass.latency.p99_us)),
                        ("max".into(), JsonValue::Float(pass.latency.max_us)),
                    ]),
                ),
            ])
        })
        .collect();
    let mut fields = vec![
        ("bench".into(), JsonValue::Str("serve_load".into())),
        ("scale".into(), JsonValue::Str(scale.into())),
        (
            "machine".into(),
            JsonValue::Object(vec![
                ("os".into(), JsonValue::Str(std::env::consts::OS.into())),
                ("arch".into(), JsonValue::Str(std::env::consts::ARCH.into())),
                ("hardware_threads".into(), JsonValue::UInt(threads as u64)),
            ]),
        ),
        (
            "config".into(),
            JsonValue::Object(vec![
                ("providers".into(), JsonValue::UInt(report.providers as u64)),
                ("owners".into(), JsonValue::UInt(report.owners as u64)),
                (
                    "shards".into(),
                    JsonValue::UInt(report.config.shards as u64),
                ),
                (
                    "queue_depth".into(),
                    JsonValue::UInt(report.config.queue_depth as u64),
                ),
                (
                    "clients".into(),
                    JsonValue::UInt(report.config.clients as u64),
                ),
                ("zipf_s".into(), JsonValue::Float(report.config.skew)),
                (
                    "batch_size".into(),
                    JsonValue::UInt(report.config.batch_size as u64),
                ),
                ("telemetry".into(), JsonValue::Bool(report.config.telemetry)),
                (
                    "backend".into(),
                    JsonValue::Str(report.config.backend.name().into()),
                ),
                ("seed".into(), JsonValue::UInt(report.config.seed)),
            ]),
        ),
        ("passes".into(), JsonValue::Array(passes)),
        ("telemetry".into(), report.telemetry.to_json_value()),
    ];
    if let Some(trace) = &report.trace {
        fields.push((
            "trace".into(),
            JsonValue::Object(vec![
                ("untraced_qps".into(), JsonValue::Float(trace.untraced.qps)),
                ("traced_qps".into(), JsonValue::Float(trace.traced.qps)),
                ("overhead_pct".into(), JsonValue::Float(trace.overhead_pct)),
                ("events".into(), JsonValue::UInt(trace.events)),
                ("dropped".into(), JsonValue::UInt(trace.dropped)),
            ]),
        ));
    }
    if let Some(sweep) = &report.scale {
        fields.push(("scale_sweep".into(), crate::scale::to_json_value(sweep)));
    }
    let mut out = JsonValue::Object(fields).to_pretty();
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use eppi_telemetry::MetricValue;

    #[test]
    fn percentiles_from_known_samples() {
        // 1..=100 µs in nanoseconds.
        let samples: Vec<u64> = (1..=100u64).map(|v| v * 1_000).collect();
        let lat = LatencySummary::from_nanos(samples);
        assert_eq!(lat.p50_us, 50.0);
        assert_eq!(lat.p95_us, 95.0);
        assert_eq!(lat.p99_us, 99.0);
        assert_eq!(lat.max_us, 100.0);
        let single = LatencySummary::from_nanos(vec![5_000]);
        assert_eq!(single.p50_us, 5.0);
        assert_eq!(single.p99_us, 5.0);
    }

    #[test]
    fn histogram_percentiles_match_exact_within_error_bound() {
        let hist = eppi_telemetry::Histogram::new();
        let samples: Vec<u64> = (1..=100u64).map(|v| v * 1_000).collect();
        for &v in &samples {
            hist.record(v);
        }
        let from_hist = LatencySummary::from_histogram(&hist.summary());
        let exact = LatencySummary::from_nanos(samples);
        for (got, want) in [
            (from_hist.p50_us, exact.p50_us),
            (from_hist.p95_us, exact.p95_us),
            (from_hist.p99_us, exact.p99_us),
        ] {
            assert!(
                (got - want).abs() <= want * eppi_telemetry::MAX_RELATIVE_ERROR,
                "{got} vs {want}"
            );
        }
        assert_eq!(from_hist.max_us, exact.max_us, "max is tracked exactly");
    }

    #[test]
    fn quick_run_produces_complete_report_and_json() {
        let mut config = ServeLoadConfig::quick();
        config.ops_per_client = 200;
        config.open_duration = Duration::from_millis(50);
        let report = run(&config);
        assert_eq!(report.providers, 250);
        assert_eq!(report.owners, 500);
        assert_eq!(report.passes.len(), 3);
        for pass in &report.passes {
            assert!(pass.ops > 0, "{} did no work", pass.mode);
            assert!(pass.qps > 0.0);
            assert!(pass.latency.p50_us <= pass.latency.p99_us);
        }
        let json = to_json(&report, "quick");
        for key in [
            "\"bench\": \"serve_load\"",
            "\"machine\"",
            "\"hardware_threads\"",
            "\"shards\": 2",
            "\"qps\"",
            "\"p50\"",
            "\"p99\"",
            "closed_loop",
            "closed_loop_batch",
            "open_loop",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let table = to_table(&report).to_string();
        assert!(table.contains("closed_loop_batch"));
    }

    /// Acceptance criteria for the telemetry section: the emitted JSON
    /// parses, its `telemetry` section round-trips into a [`Snapshot`],
    /// and that snapshot carries per-shard serve latency histograms,
    /// queue-depth gauges, and per-phase construction timings.
    #[test]
    fn emitted_json_contains_well_formed_telemetry_snapshot() {
        let mut config = ServeLoadConfig::quick();
        config.ops_per_client = 100;
        config.open_duration = Duration::from_millis(20);
        let report = run(&config);
        let json = to_json(&report, "quick");
        let doc = JsonValue::parse(&json).expect("BENCH_serve.json must parse");
        let telemetry = doc.get("telemetry").expect("telemetry section");
        let snap = Snapshot::from_json_value(telemetry).expect("well-formed snapshot");
        assert_eq!(snap, report.telemetry);

        // Per-shard serve latency histograms with populated quantiles.
        let service = snap.family("serve.service_ns");
        assert_eq!(service.len(), config.shards);
        for m in &service {
            match &m.value {
                MetricValue::Histogram(h) => {
                    assert!(h.count > 0, "{} empty", m.id());
                    assert!(h.p50 <= h.p95 && h.p95 <= h.p99, "{}", m.id());
                }
                other => panic!("unexpected metric {other:?}"),
            }
        }
        // Queue-depth gauges, drained by shutdown.
        let depth = snap.family("serve.queue_depth");
        assert_eq!(depth.len(), config.shards);
        for m in &depth {
            match &m.value {
                MetricValue::Gauge { value, .. } => assert_eq!(*value, 0, "{}", m.id()),
                other => panic!("unexpected metric {other:?}"),
            }
        }
        // Per-phase construction timings from the probe (incl. the
        // dedicated cleartext λ phase).
        assert_eq!(snap.family("construct.phase_ns").len(), 6);
        // The passes' latency numbers come from these histograms.
        for pass in &report.passes {
            let m = snap
                .expect("load.latency_ns", &[("pass", &pass.mode)])
                .unwrap();
            match &m.value {
                MetricValue::Histogram(h) => {
                    assert_eq!(
                        LatencySummary::from_histogram(h),
                        pass.latency,
                        "{} diverged from its histogram",
                        pass.mode
                    );
                }
                other => panic!("unexpected metric {other:?}"),
            }
        }
    }

    /// The traced-vs-untraced comparison runs both passes, collects a
    /// non-empty span log, and lands as a `trace` section in the JSON.
    #[test]
    fn trace_overhead_measures_both_passes() {
        let mut config = ServeLoadConfig::quick();
        config.ops_per_client = 200;
        config.open_duration = Duration::from_millis(20);
        let (overhead, log) = trace_overhead(&config);
        assert_eq!(overhead.untraced.mode, "closed_loop_untraced");
        assert_eq!(overhead.traced.mode, "closed_loop_traced");
        assert!(overhead.untraced.ops > 0 && overhead.traced.ops > 0);
        assert!(overhead.events > 0, "traced pass recorded no spans");
        assert_eq!(overhead.events as usize, log.total_events());
        assert!(log.trace_ids().iter().any(|&t| {
            log.span_tree(t)
                .is_some_and(|n| n.name == "serve.query" && n.count("serve.shard_query") == 1)
        }));

        let mut report = run(&config);
        report.trace = Some(overhead);
        let json = to_json(&report, "quick");
        let doc = JsonValue::parse(&json).expect("parses");
        let trace = doc.get("trace").expect("trace section");
        assert!(trace.get("untraced_qps").is_some());
        assert!(trace.get("overhead_pct").is_some());
    }

    /// The `telemetry: false` baseline still produces a full report —
    /// the engine-side families just stay empty.
    #[test]
    fn telemetry_off_run_still_reports() {
        let mut config = ServeLoadConfig::quick();
        config.ops_per_client = 100;
        config.open_duration = Duration::from_millis(20);
        config.telemetry = false;
        let report = run(&config);
        assert_eq!(report.passes.len(), 3);
        for pass in &report.passes {
            assert!(pass.ops > 0);
        }
        for m in report.telemetry.family("serve.service_ns") {
            match &m.value {
                MetricValue::Histogram(h) => assert_eq!(h.count, 0, "{} recorded", m.id()),
                other => panic!("unexpected metric {other:?}"),
            }
        }
    }
}
