//! Load-test harness for the `eppi-serve` front-end.
//!
//! Drives a [`ServeEngine`] with Zipf-skewed `QueryPPI` traffic (the
//! same popularity model as the workload crate's query streams) in two
//! standard modes:
//!
//! * **closed loop** — each client thread issues its next query the
//!   moment the previous one completes; measures peak sustainable
//!   throughput and in-service latency.
//! * **open loop** — arrivals are scheduled at a fixed target rate
//!   regardless of completions; latency is measured from the *scheduled*
//!   arrival, so queueing delay under overload is visible (closed-loop
//!   numbers hide it — coordinated omission).
//!
//! Results go to stdout as a table and to `results/BENCH_serve.json`
//! (override with `EPPI_SERVE_OUT`) with machine info, configuration,
//! throughput, and p50/p95/p99 latencies.

use crate::report::Table;
use eppi_core::model::{MembershipMatrix, PublishedIndex};
use eppi_serve::{ServeConfig, ServeEngine};
use eppi_workload::presets::Preset;
use eppi_workload::queries::QueryWorkload;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// Configuration of one serve load run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeLoadConfig {
    /// Network scale (providers/owners and membership skew).
    pub preset: Preset,
    /// Zipf popularity exponent of the query stream.
    pub skew: f64,
    /// Engine shards (= worker threads).
    pub shards: usize,
    /// Bounded queue depth per shard.
    pub queue_depth: usize,
    /// Concurrent client threads.
    pub clients: usize,
    /// Closed-loop queries per client.
    pub ops_per_client: usize,
    /// Queries per batched request in the batch pass.
    pub batch_size: usize,
    /// Open-loop target rate (total queries/second).
    pub open_target_qps: f64,
    /// Open-loop run length.
    pub open_duration: Duration,
    /// Base RNG seed.
    pub seed: u64,
}

impl ServeLoadConfig {
    /// Paper-scale run: the experiments' default network (10,000
    /// providers, 20,000 owners) under skewed traffic.
    pub fn paper() -> Self {
        let shards = std::thread::available_parallelism().map_or(4, |p| p.get());
        ServeLoadConfig {
            preset: Preset::Default,
            skew: 1.0,
            shards,
            queue_depth: 1024,
            clients: 2 * shards,
            ops_per_client: 20_000,
            batch_size: 64,
            open_target_qps: 50_000.0,
            open_duration: Duration::from_secs(2),
            seed: 0x5e12e,
        }
    }

    /// Scaled-down smoke run for tests and `EPPI_SCALE=quick`.
    pub fn quick() -> Self {
        ServeLoadConfig {
            preset: Preset::Mini,
            skew: 1.0,
            shards: 2,
            queue_depth: 64,
            clients: 4,
            ops_per_client: 1_000,
            batch_size: 16,
            open_target_qps: 5_000.0,
            open_duration: Duration::from_millis(200),
            seed: 0x5e12e,
        }
    }
}

/// Latency percentiles in microseconds, from one run's samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Median.
    pub p50_us: f64,
    /// 95th percentile.
    pub p95_us: f64,
    /// 99th percentile.
    pub p99_us: f64,
    /// Worst observed.
    pub max_us: f64,
}

impl LatencySummary {
    /// Summarizes raw nanosecond samples (sorted internally).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn from_nanos(mut samples: Vec<u64>) -> Self {
        assert!(!samples.is_empty(), "no latency samples recorded");
        samples.sort_unstable();
        let pick = |q: f64| {
            let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
            samples[rank - 1] as f64 / 1e3
        };
        LatencySummary {
            p50_us: pick(0.50),
            p95_us: pick(0.95),
            p99_us: pick(0.99),
            max_us: *samples.last().unwrap() as f64 / 1e3,
        }
    }
}

/// Throughput + latency of one load pass.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadResult {
    /// Pass name (`closed_loop`, `closed_loop_batch`, `open_loop`).
    pub mode: String,
    /// Queries completed.
    pub ops: u64,
    /// Wall-clock time of the pass.
    pub elapsed: Duration,
    /// Completed queries per second.
    pub qps: f64,
    /// Latency percentiles.
    pub latency: LatencySummary,
}

/// Everything one invocation produces (feeds both table and JSON).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeLoadReport {
    /// The configuration that ran.
    pub config: ServeLoadConfig,
    /// Providers in the served index.
    pub providers: usize,
    /// Owners in the served index.
    pub owners: usize,
    /// One entry per pass.
    pub passes: Vec<LoadResult>,
}

fn build_index(config: &ServeLoadConfig) -> PublishedIndex {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let matrix: MembershipMatrix = config.preset.build(&mut rng);
    let betas = vec![0.1; matrix.owners()];
    PublishedIndex::new(matrix, betas)
}

/// Runs all three passes against a freshly built engine.
pub fn run(config: &ServeLoadConfig) -> ServeLoadReport {
    let index = build_index(config);
    let (providers, owners) = (index.matrix().providers(), index.matrix().owners());
    let engine = ServeEngine::start(
        &index,
        ServeConfig {
            shards: config.shards,
            queue_depth: config.queue_depth,
        },
    );
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xabcd);
    let workload = QueryWorkload::new(owners, config.skew, &mut rng);

    let passes = vec![
        closed_loop(&engine, &workload, config, 1),
        closed_loop(&engine, &workload, config, config.batch_size.max(1)),
        open_loop(&engine, &workload, config),
    ];
    engine.shutdown();
    ServeLoadReport {
        config: config.clone(),
        providers,
        owners,
        passes,
    }
}

fn closed_loop(
    engine: &ServeEngine,
    workload: &QueryWorkload,
    config: &ServeLoadConfig,
    batch: usize,
) -> LoadResult {
    let started = Instant::now();
    let lat_per_client: Vec<Vec<u64>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..config.clients)
            .map(|t| {
                let client = engine.client();
                s.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(config.seed + 1 + t as u64);
                    let mut lat = Vec::with_capacity(config.ops_per_client / batch + 1);
                    let mut done = 0usize;
                    while done < config.ops_per_client {
                        let at = Instant::now();
                        if batch == 1 {
                            let _ = client.query(workload.sample(&mut rng));
                            done += 1;
                        } else {
                            let owners = workload.batch(batch, &mut rng);
                            let _ = client.query_batch(&owners);
                            done += batch;
                        }
                        lat.push(at.elapsed().as_nanos() as u64);
                    }
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    let elapsed = started.elapsed();
    let requests: u64 = lat_per_client.iter().map(|l| l.len() as u64).sum();
    let ops = requests * batch as u64;
    LoadResult {
        mode: if batch == 1 {
            "closed_loop".into()
        } else {
            "closed_loop_batch".into()
        },
        ops,
        elapsed,
        qps: ops as f64 / elapsed.as_secs_f64(),
        latency: LatencySummary::from_nanos(lat_per_client.into_iter().flatten().collect()),
    }
}

fn open_loop(
    engine: &ServeEngine,
    workload: &QueryWorkload,
    config: &ServeLoadConfig,
) -> LoadResult {
    // Each client owns an even slice of the target rate and schedules
    // its own arrivals; latency runs from the scheduled arrival, so
    // falling behind schedule (queueing) is charged to the service.
    let per_client = config.open_target_qps / config.clients.max(1) as f64;
    let interval = Duration::from_secs_f64(1.0 / per_client.max(1.0));
    let started = Instant::now();
    let lat_per_client: Vec<Vec<u64>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..config.clients)
            .map(|t| {
                let client = engine.client();
                s.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(config.seed + 101 + t as u64);
                    let mut lat = Vec::new();
                    let mut k = 0u32;
                    loop {
                        let scheduled = interval * k;
                        if scheduled >= config.open_duration {
                            break;
                        }
                        let now = started.elapsed();
                        if now < scheduled {
                            std::thread::sleep(scheduled - now);
                        }
                        let _ = client.query(workload.sample(&mut rng));
                        let completed = started.elapsed();
                        lat.push((completed.saturating_sub(scheduled)).as_nanos() as u64);
                        k += 1;
                    }
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    let elapsed = started.elapsed();
    let ops: u64 = lat_per_client.iter().map(|l| l.len() as u64).sum();
    LoadResult {
        mode: "open_loop".into(),
        ops,
        elapsed,
        qps: ops as f64 / elapsed.as_secs_f64(),
        latency: LatencySummary::from_nanos(lat_per_client.into_iter().flatten().collect()),
    }
}

/// Renders the report as the harness's usual aligned table.
pub fn to_table(report: &ServeLoadReport) -> Table {
    let mut table = Table::new(
        format!(
            "eppi-serve load — {} providers, {} owners, {} shards, {} clients",
            report.providers, report.owners, report.config.shards, report.config.clients
        ),
        ["mode", "ops", "qps", "p50 us", "p95 us", "p99 us", "max us"]
            .map(String::from)
            .to_vec(),
    );
    for pass in &report.passes {
        table.push_row(vec![
            pass.mode.clone(),
            pass.ops.to_string(),
            format!("{:.0}", pass.qps),
            format!("{:.1}", pass.latency.p50_us),
            format!("{:.1}", pass.latency.p95_us),
            format!("{:.1}", pass.latency.p99_us),
            format!("{:.1}", pass.latency.max_us),
        ]);
    }
    table
}

/// Serializes the report to the `BENCH_serve.json` schema (hand-rolled;
/// the build environment has no JSON crate).
pub fn to_json(report: &ServeLoadReport, scale: &str) -> String {
    let threads = std::thread::available_parallelism().map_or(0, |p| p.get());
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"serve_load\",\n");
    out.push_str(&format!("  \"scale\": \"{scale}\",\n"));
    out.push_str(&format!(
        "  \"machine\": {{\"os\": \"{}\", \"arch\": \"{}\", \"hardware_threads\": {threads}}},\n",
        std::env::consts::OS,
        std::env::consts::ARCH
    ));
    out.push_str(&format!(
        "  \"config\": {{\"providers\": {}, \"owners\": {}, \"shards\": {}, \"queue_depth\": {}, \
         \"clients\": {}, \"zipf_s\": {}, \"batch_size\": {}, \"seed\": {}}},\n",
        report.providers,
        report.owners,
        report.config.shards,
        report.config.queue_depth,
        report.config.clients,
        report.config.skew,
        report.config.batch_size,
        report.config.seed
    ));
    out.push_str("  \"passes\": [\n");
    for (i, pass) in report.passes.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"ops\": {}, \"elapsed_ms\": {:.2}, \"qps\": {:.1}, \
             \"latency_us\": {{\"p50\": {:.2}, \"p95\": {:.2}, \"p99\": {:.2}, \"max\": {:.2}}}}}{}\n",
            pass.mode,
            pass.ops,
            pass.elapsed.as_secs_f64() * 1e3,
            pass.qps,
            pass.latency.p50_us,
            pass.latency.p95_us,
            pass.latency.p99_us,
            pass.latency.max_us,
            if i + 1 == report.passes.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_from_known_samples() {
        // 1..=100 µs in nanoseconds.
        let samples: Vec<u64> = (1..=100u64).map(|v| v * 1_000).collect();
        let lat = LatencySummary::from_nanos(samples);
        assert_eq!(lat.p50_us, 50.0);
        assert_eq!(lat.p95_us, 95.0);
        assert_eq!(lat.p99_us, 99.0);
        assert_eq!(lat.max_us, 100.0);
        let single = LatencySummary::from_nanos(vec![5_000]);
        assert_eq!(single.p50_us, 5.0);
        assert_eq!(single.p99_us, 5.0);
    }

    #[test]
    fn quick_run_produces_complete_report_and_json() {
        let mut config = ServeLoadConfig::quick();
        config.ops_per_client = 200;
        config.open_duration = Duration::from_millis(50);
        let report = run(&config);
        assert_eq!(report.providers, 250);
        assert_eq!(report.owners, 500);
        assert_eq!(report.passes.len(), 3);
        for pass in &report.passes {
            assert!(pass.ops > 0, "{} did no work", pass.mode);
            assert!(pass.qps > 0.0);
            assert!(pass.latency.p50_us <= pass.latency.p99_us);
        }
        let json = to_json(&report, "quick");
        for key in [
            "\"bench\": \"serve_load\"",
            "\"machine\"",
            "\"hardware_threads\"",
            "\"shards\": 2",
            "\"qps\"",
            "\"p50\"",
            "\"p99\"",
            "\"closed_loop\"",
            "\"closed_loop_batch\"",
            "\"open_loop\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let table = to_table(&report).to_string();
        assert!(table.contains("closed_loop_batch"));
    }
}
